// Shard-scaling bench: serving throughput and LSH rebuild latency of the
// model-parallel ShardedSampledLayer at S = 1, 2, 4, 8 shards.
//
// What sharding buys (core/sharded_layer.h): each shard owns its own table
// group and maintenance thread, so an asynchronous full rebuild of the
// whole output layer runs as S concurrent single-shard builds instead of
// one serialized pass — wall-clock rebuild latency falls roughly like
// 1/min(S, cores) when cores are available, and holds ~flat (same total
// hashing work, same total table memory thanks to per-shard range
// scaling) when they are not. The qps column prices the serve-side trade:
// every query hashes against S independent families, a fixed per-query
// cost that the per-candidate scoring work amortizes as the layer widens
// — expect qps to dip with S at small widths and converge at paper scale.
//
//   ./build/bench/shard_scaling
//
// Environment: SLIDE_BENCH_SCALE (tiny|small|medium|paper),
// SLIDE_BENCH_THREADS, SLIDE_BENCH_REPS, SLIDE_BENCH_JSON_DIR. Emits
// BENCH_shard.json (gated by tools/bench_compare.py in CI): per-S qps and
// async rebuild latency, plus scale-invariant within-run speedup ratios —
// the monotone-improvement contract lives in those.
#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace {

using namespace slide;

struct Workload {
  Index features;
  Index labels;
  Index hidden;
  Index target;
  std::size_t queries;
};

Workload workload_for(Scale scale) {
  switch (scale) {
    case Scale::kTiny:
      return {.features = 2'000, .labels = 8'192, .hidden = 64,
              .target = 164, .queries = 512};
    case Scale::kSmall:
      return {.features = 5'000, .labels = 32'768, .hidden = 128,
              .target = 656, .queries = 1'024};
    case Scale::kMedium:
      return {.features = 20'000, .labels = 131'072, .hidden = 128,
              .target = 2'622, .queries = 2'048};
    case Scale::kPaper:
      return {.features = 100'000, .labels = 262'144, .hidden = 128,
              .target = 5'243, .queries = 4'096};
  }
  return workload_for(Scale::kTiny);
}

struct Row {
  int shards = 0;
  double qps = 0.0;
  double async_rebuild_ms = 0.0;
  double sync_rebuild_info = 0.0;  // ms; informational (not gated)
  long rebuilds = 0;
  /// Mean merged candidates per sampled-inference query. Each shard fills
  /// toward its ceil-rounded proportional target, so the merged count
  /// creeps above the monolithic target as S grows (sum of ceils — the
  /// sharded oversampling artifact; S=8 below overshoots by a few).
  double mean_candidates = 0.0;
  /// Same, with a global sampling.inference_budget BELOW the target: the
  /// budget is ceil-split across shards (derive_shard_config) and caps each
  /// shard's fill, so the merged count tracks the budget — a knob the
  /// per-shard targets alone don't give you — and sampled qps rises.
  double mean_candidates_budgeted = 0.0;
  double qps_budgeted = 0.0;
};

/// Merged candidate-set size of sampled inference, measured at the output
/// layer directly (random dense hidden activations): predict_* exposes only
/// the top-k, but the scored-candidate count is what the budget governs.
double measure_mean_candidates(const Network& net, Index hidden,
                               std::size_t queries) {
  const Layer& out = net.stack(net.stack_depth() - 1);
  Rng rng(123);
  VisitedSet visited(out.units());
  std::vector<float> prev(static_cast<std::size_t>(hidden));
  std::vector<Index> ids;
  std::vector<float> act;
  std::uint64_t total = 0;
  for (std::size_t q = 0; q < queries; ++q) {
    for (float& v : prev) v = rng.uniform_float();
    out.forward_inference({}, prev, /*exact=*/false, rng, visited, ids, act);
    total += ids.size();
  }
  return static_cast<double>(total) / static_cast<double>(queries);
}

int env_reps() {
  const char* env = std::getenv("SLIDE_BENCH_REPS");
  const int n = env == nullptr ? 0 : std::atoi(env);
  return n > 0 ? n : 3;
}

Row run_config(int shards, const Workload& w, const Dataset& queries,
               int threads, int reps) {
  Row row{.shards = shards};

  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 9;
  family.l = 50;
  // Aggressive schedule so maybe_rebuild(iteration) fires on demand: the
  // bench drives maintenance events explicitly, it does not train.
  NetworkConfig cfg = NetworkBuilder(w.features)
                          .dense(w.hidden)
                          .sampled(w.labels, family, w.target)
                          .table({.range_pow = 12, .bucket_size = 128})
                          .rebuild_schedule({.enabled = true,
                                             .initial_period = 1,
                                             .decay = 0.0})
                          .maintenance(MaintenancePolicy::kAsyncFull)
                          .shards(shards)
                          .max_batch(64)
                          .seed(7)
                          .to_config();
  Network net(cfg, threads);
  ThreadPool pool(threads);

  // Async rebuild latency: fire one maintenance event (S concurrent
  // shard rebuilds on the per-shard workers) and wait for the publish.
  long iteration = 0;
  double best_async = 1e100;
  for (int r = 0; r < reps; ++r) {
    net.quiesce_maintenance();
    WallTimer timer;
    net.maybe_rebuild(++iteration, nullptr);
    net.quiesce_maintenance();
    best_async = std::min(best_async, timer.seconds());
  }
  row.async_rebuild_ms = best_async * 1e3;
  row.rebuilds = dynamic_cast<const ShardedSampledLayer&>(net.stack(0))
                     .rebuild_count();

  // Sync rebuild (rebuild_all: shards fan out across the pool) — context
  // number, not gated: at S=1 it parallelizes *within* the single group,
  // so it does not isolate the sharding effect the async number shows.
  double best_sync = 1e100;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    net.rebuild_all(&pool);
    best_sync = std::min(best_sync, timer.seconds());
  }
  row.sync_rebuild_info = best_sync * 1e3;

  // Serving throughput through the batch path (sampled inference, the
  // serve engine's dispatch): best-of-reps queries/sec.
  std::vector<SparseVector> inputs;
  inputs.reserve(w.queries);
  for (std::size_t i = 0; i < w.queries; ++i)
    inputs.push_back(queries[i % queries.size()].features);
  BatchOutput out;
  double best_batch = 1e100;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    net.predict_batch(inputs, out, &pool, /*top_k=*/4, /*exact=*/false);
    best_batch = std::min(best_batch, timer.seconds());
  }
  row.qps = static_cast<double>(w.queries) / best_batch;
  row.mean_candidates = measure_mean_candidates(net, w.hidden, 256);

  // The budgeted leg: a global inference_budget at half the sampling
  // target, ceil-split across shards at construction. The merged candidate
  // count must drop to ~budget regardless of S (the unbudgeted leg can
  // only ever fill to the sum of per-shard ceil'd targets) and sampled
  // qps rises with the smaller scored set.
  NetworkConfig bcfg = cfg;
  bcfg.layers[0].sampling.inference_budget = std::max<Index>(1, w.target / 2);
  Network bnet(bcfg, threads);
  row.mean_candidates_budgeted = measure_mean_candidates(bnet, w.hidden, 256);
  double best_budgeted = 1e100;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    bnet.predict_batch(inputs, out, &pool, /*top_k=*/4, /*exact=*/false);
    best_budgeted = std::min(best_budgeted, timer.seconds());
  }
  row.qps_budgeted = static_cast<double>(w.queries) / best_budgeted;
  return row;
}

}  // namespace

int main() {
  const Scale scale = bench::env_scale(Scale::kTiny);
  const int threads = bench::env_threads();
  const int reps = env_reps();
  const Workload w = workload_for(scale);

  bench::print_header(
      "BENCH_shard — sharded wide-output layer scaling (qps + rebuild "
      "latency vs shard count)",
      "model-parallel LSH shards (cf. Distributed SLIDE, Yan et al. 2022); "
      "per-shard maintenance threads rebuild concurrently");
  bench::print_env(scale, threads);
  const int cores = hardware_threads();
  std::printf("[workload] labels=%u hidden=%u target=%u queries=%zu "
              "reps=%d cores=%d\n\n",
              w.labels, w.hidden, w.target, w.queries, reps, cores);
  if (cores < 4) {
    std::printf("[note] %d hardware core(s): S concurrent shard rebuilds "
                "serialize, so expect ~flat (not improving) rebuild "
                "latency in this run's numbers\n\n",
                cores);
  }

  SyntheticConfig dcfg;
  dcfg.feature_dim = w.features;
  dcfg.label_dim = w.labels;
  dcfg.num_train = 16;  // the bench never trains
  dcfg.num_test = w.queries;
  dcfg.seed = 11;
  const SyntheticDataset data = make_synthetic_xc(dcfg);

  std::vector<Row> rows;
  for (int shards : {1, 2, 4, 8}) {
    rows.push_back(run_config(shards, w, data.test, threads, reps));
    const Row& r = rows.back();
    std::printf("  S=%d  qps %10.0f | async rebuild %8.2f ms | sync "
                "rebuild %8.2f ms | rebuilds %ld\n",
                r.shards, r.qps, r.async_rebuild_ms, r.sync_rebuild_info,
                r.rebuilds);
    std::printf("       candidates/query %8.1f unbudgeted -> %8.1f "
                "budgeted (budget=%u) | budgeted qps %10.0f\n",
                r.mean_candidates, r.mean_candidates_budgeted, w.target / 2,
                r.qps_budgeted);
  }

  auto at = [&](int shards) -> const Row& {
    for (const Row& r : rows)
      if (r.shards == shards) return r;
    std::abort();
  };
  const double s2 = at(1).async_rebuild_ms / at(2).async_rebuild_ms;
  const double s4 = at(1).async_rebuild_ms / at(4).async_rebuild_ms;
  const double s8 = at(1).async_rebuild_ms / at(8).async_rebuild_ms;
  const double qps4 = at(4).qps / at(1).qps;
  std::printf("\n[summary] async rebuild speedup vs S=1: S=2 %.2fx, S=4 "
              "%.2fx, S=8 %.2fx | qps S=4/S=1 %.2fx (cores matter: expect "
              "~min(S, cores)x for rebuilds)\n",
              s2, s4, s8, qps4);

  bench::Json json;
  json.begin_object();
  json.key("bench").string("shard_scaling");
  json.key("scale").string(bench::scale_name(scale));
  json.key("threads").number(static_cast<long long>(threads));
  json.key("hardware_cores").number(static_cast<long long>(cores));
  json.key("labels").number(static_cast<long long>(w.labels));
  json.key("queries").number(static_cast<long long>(w.queries));
  json.key("configs").begin_array();
  for (const Row& r : rows) {
    json.begin_object();
    json.key("name").string(("s" + std::to_string(r.shards)).c_str());
    json.key("shards").number(static_cast<long long>(r.shards));
    json.key("qps").number(r.qps);
    json.key("async_rebuild_ms").number(r.async_rebuild_ms);
    json.key("sync_rebuild_info").number(r.sync_rebuild_info);
    json.key("qps_budgeted").number(r.qps_budgeted);
    json.key("candidates_info").number(r.mean_candidates);
    json.key("candidates_budgeted_info").number(r.mean_candidates_budgeted);
    json.end_object();
  }
  json.end_array();
  // Scale-invariant within-run ratios: these carry the monotone-
  // improvement contract through the CI gate regardless of runner speed.
  json.key("speedup_async_rebuild_s2_vs_s1").number(s2);
  json.key("speedup_async_rebuild_s4_vs_s1").number(s4);
  json.key("speedup_async_rebuild_s8_vs_s1").number(s8);
  json.key("speedup_qps_s4_vs_s1").number(qps4);
  // Oversampling contract (also asserted in tests/test_dist DistBudget):
  // the unbudgeted ratio witnesses the sum-of-ceils creep above 1.0 as S
  // grows; the budgeted ratio must hold ~1.0 because the global budget
  // caps the merged count regardless of shard count. Absolute budgeted
  // counts additionally sit at ~half the unbudgeted ones (budget=target/2).
  json.key("candidate_inflation_s4_info")
      .number(at(4).mean_candidates / at(1).mean_candidates);
  json.key("candidate_inflation_s4_budgeted_info")
      .number(at(4).mean_candidates_budgeted /
              at(1).mean_candidates_budgeted);
  json.end_object();
  json.write_file(bench::json_path("BENCH_shard.json"));
  return 0;
}
