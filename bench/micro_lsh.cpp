// Micro-benchmarks (google-benchmark) for the LSH substrate: hash-code
// computation per family, table insert/query, sampling strategies, and the
// incremental Simhash update path.
#include <benchmark/benchmark.h>

#include "lsh/factory.h"
#include "lsh/sampling.h"
#include "lsh/table_group.h"
#include "sys/rng.h"

namespace slide {
namespace {

constexpr Index kDim = 128;

std::vector<float> dense_input(std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<float> x(kDim);
  for (auto& v : x) v = rng.normal();
  return x;
}

HashFamilyConfig family_config(HashFamilyKind kind) {
  HashFamilyConfig cfg;
  cfg.kind = kind;
  cfg.k = kind == HashFamilyKind::kSimhash ? 9 : 8;
  cfg.l = 50;
  cfg.dim = kDim;
  cfg.bin_size = 8;
  return cfg;
}

void BM_HashDense(benchmark::State& state) {
  const auto kind = static_cast<HashFamilyKind>(state.range(0));
  const auto family = make_hash_family(family_config(kind));
  const auto x = dense_input();
  std::vector<std::uint32_t> keys(static_cast<std::size_t>(family->l()));
  for (auto _ : state) {
    family->hash_dense(x.data(), keys);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetLabel(family->name());
}
BENCHMARK(BM_HashDense)
    ->Arg(static_cast<int>(HashFamilyKind::kSimhash))
    ->Arg(static_cast<int>(HashFamilyKind::kWta))
    ->Arg(static_cast<int>(HashFamilyKind::kDwta))
    ->Arg(static_cast<int>(HashFamilyKind::kDoph));

void BM_HashSparse(benchmark::State& state) {
  // 16-nnz sparse input over 10'000 dims: DWTA's native regime.
  HashFamilyConfig cfg = family_config(HashFamilyKind::kDwta);
  cfg.dim = 10'000;
  const auto family = make_hash_family(cfg);
  Rng rng(2);
  std::vector<Index> idx;
  std::vector<float> val;
  for (int i = 0; i < 16; ++i) {
    idx.push_back(rng.uniform(10'000));
    val.push_back(rng.uniform_float());
  }
  std::vector<std::uint32_t> keys(50);
  for (auto _ : state) {
    family->hash_sparse(idx.data(), val.data(), idx.size(), keys);
    benchmark::DoNotOptimize(keys.data());
  }
}
BENCHMARK(BM_HashSparse);

void BM_SimhashIncrementalUpdate(benchmark::State& state) {
  Simhash h({.k = 9, .l = 50, .dim = kDim, .density = 1.0 / 3.0, .seed = 3});
  const auto x = dense_input(3);
  std::vector<float> dots(static_cast<std::size_t>(h.num_projections()));
  h.project_dense(x.data(), dots.data());
  Rng rng(4);
  for (auto _ : state) {
    h.update_projections(rng.uniform(kDim), 0.01f, dots.data());
    benchmark::DoNotOptimize(dots.data());
  }
}
BENCHMARK(BM_SimhashIncrementalUpdate);

void BM_SimhashFullProjection(benchmark::State& state) {
  Simhash h({.k = 9, .l = 50, .dim = kDim, .density = 1.0 / 3.0, .seed = 3});
  const auto x = dense_input(3);
  std::vector<float> dots(static_cast<std::size_t>(h.num_projections()));
  for (auto _ : state) {
    h.project_dense(x.data(), dots.data());
    benchmark::DoNotOptimize(dots.data());
  }
}
BENCHMARK(BM_SimhashFullProjection);

struct TableFixture {
  TableFixture() : group(make_hash_family(family_config(HashFamilyKind::kSimhash)),
                         {.range_pow = 12, .bucket_size = 128}) {
    Rng rng(5);
    const Index neurons = 50'000;
    rows.resize(static_cast<std::size_t>(neurons) * kDim);
    for (auto& w : rows) w = 0.2f * rng.normal();
    group.build_from_rows(rows.data(), kDim, neurons);
  }
  std::vector<float> rows;
  LshTableGroup group;
};

TableFixture& fixture() {
  static TableFixture f;
  return f;
}

void BM_TableInsert(benchmark::State& state) {
  auto& f = fixture();
  Rng rng(6);
  Index id = 0;
  for (auto _ : state) {
    f.group.insert_dense(id++ % 50'000, f.rows.data() + (id % 50'000) * kDim,
                         rng);
  }
}
BENCHMARK(BM_TableInsert);

void BM_TableQueryAndSample(benchmark::State& state) {
  auto& f = fixture();
  const auto strategy = static_cast<SamplingStrategy>(state.range(0));
  Rng rng(7);
  VisitedSet visited(50'000);
  std::vector<std::uint32_t> keys(50);
  std::vector<std::span<const Index>> buckets;
  std::vector<Index> out;
  auto q = dense_input(8);
  SamplingConfig cfg;
  cfg.strategy = strategy;
  cfg.target = 1'000;
  cfg.hard_threshold_m = 2;
  for (auto _ : state) {
    f.group.query_keys_dense(q.data(), keys);
    f.group.buckets(keys, buckets);
    sample_neurons(cfg, buckets, visited, rng, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(to_string(strategy));
}
BENCHMARK(BM_TableQueryAndSample)
    ->Arg(static_cast<int>(SamplingStrategy::kVanilla))
    ->Arg(static_cast<int>(SamplingStrategy::kTopK))
    ->Arg(static_cast<int>(SamplingStrategy::kHardThreshold));

}  // namespace
}  // namespace slide
