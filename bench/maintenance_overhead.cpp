// Maintenance-overhead bench: sync vs async LSH table maintenance.
//
// SLIDE's hash-table refresh is the dominant non-compute overhead (Chen et
// al. §4.2 amortize it with decaying schedules; Daghaghi et al. 2021 name
// maintenance cost as the next bottleneck after vectorization). This bench
// trains the same model under the three MaintenancePolicy settings and two
// refresh cadences, timing end-to-end training (including a final
// flush/quiesce, so async policies cannot hide unfinished work) plus the
// trainer-visible rebuild stall:
//
//   sync        — full rebuild on the trainer thread (stalls every step)
//   async_full  — full rebuild on the background thread (shadow + publish)
//   async_delta — only dirty neurons re-inserted between hygiene rebuilds
//
// Emits BENCH_maintenance.json for the CI benchmark-regression gate
// (tools/bench_compare.py): samples_per_sec and the async-vs-sync speedups
// are the gated, higher-is-better metrics.
#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace slide {
namespace {

struct Workload {
  Index features, labels, hidden, target;
  std::size_t num_train;
  int batch;
  long iterations;
};

Workload workload_for(Scale scale) {
  switch (scale) {
    case Scale::kTiny:
      return {.features = 2'000, .labels = 16'384, .hidden = 32,
              .target = 64, .num_train = 1'500, .batch = 32,
              .iterations = 120};
    case Scale::kSmall:
      return {.features = 5'000, .labels = 32'768, .hidden = 64,
              .target = 128, .num_train = 4'000, .batch = 64,
              .iterations = 120};
    case Scale::kMedium:
      return {.features = 20'000, .labels = 65'536, .hidden = 128,
              .target = 256, .num_train = 8'000, .batch = 128,
              .iterations = 200};
    case Scale::kPaper:
      return {.features = 100'000, .labels = 200'000, .hidden = 128,
              .target = 1'024, .num_train = 20'000, .batch = 128,
              .iterations = 400};
  }
  return workload_for(Scale::kTiny);
}

struct Arm {
  const char* schedule;
  MaintenancePolicy policy;
  double total_seconds = 0.0;
  double samples_per_sec = 0.0;
  double rebuild_stall_seconds = 0.0;
  long rebuilds = 0;
  long delta_reinserted = 0;
  long publishes = 0;
  double p_at_1 = 0.0;
};

Arm run_arm_once(const char* schedule, const RebuildSchedule& rebuild,
                 MaintenancePolicy policy, const Workload& w,
                 const SyntheticDataset& data, int threads) {
  Arm arm{.schedule = schedule, .policy = policy};

  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 6;
  family.l = 20;
  NetworkConfig cfg = NetworkBuilder(w.features)
                          .dense(w.hidden)
                          .sampled(w.labels, family, w.target)
                          .rebuild_schedule(rebuild)
                          .maintenance(policy)
                          .max_batch(w.batch)
                          .seed(7)
                          .to_config();
  cfg.layers[0].table.range_pow = 11;
  cfg.layers[0].table.bucket_size = 64;

  Network net(cfg, threads);
  TrainerConfig tc;
  tc.batch_size = w.batch;
  tc.num_threads = threads;
  tc.learning_rate = 1e-3f;
  Trainer trainer(net, tc);

  // End-to-end clock: training plus the final settle. flush_maintenance
  // inside the timed region keeps the comparison honest — an async policy
  // gets no credit for work it merely deferred past the finish line.
  WallTimer total;
  trainer.train(data.train, w.iterations);
  net.flush_maintenance();
  arm.total_seconds = total.seconds();

  arm.samples_per_sec =
      static_cast<double>(w.iterations) * w.batch / arm.total_seconds;
  arm.rebuild_stall_seconds = trainer.time_breakdown().rebuild_seconds;
  arm.rebuilds = net.output_layer().rebuild_count();
  arm.delta_reinserted = net.output_layer().delta_reinserted();
  arm.publishes =
      static_cast<long>(net.output_layer().tables()->publish_count());
  arm.p_at_1 = evaluate_p_at_1(net, data.test, trainer.pool(),
                               {.exact = true, .max_samples = 500});
  return arm;
}

/// Best-of-N wall clock (SLIDE_BENCH_REPS, default 3): scheduler noise on
/// shared runners only ever adds time, so the minimum is the stable
/// estimate the CI regression gate compares.
Arm run_arm(const char* schedule, const RebuildSchedule& rebuild,
            MaintenancePolicy policy, const Workload& w,
            const SyntheticDataset& data, int threads) {
  const char* env = std::getenv("SLIDE_BENCH_REPS");
  const int reps = env != nullptr && std::atoi(env) > 0 ? std::atoi(env) : 3;
  Arm best;
  for (int r = 0; r < reps; ++r) {
    Arm arm = run_arm_once(schedule, rebuild, policy, w, data, threads);
    if (r == 0 || arm.total_seconds < best.total_seconds) best = arm;
  }
  return best;
}

}  // namespace
}  // namespace slide

int main() {
  using namespace slide;
  const auto scale = bench::env_scale();
  // The stall being measured scales with the number of threads it blocks:
  // run with at least 8 trainer threads (the acceptance regime) unless the
  // environment pins a count.
  const char* env = std::getenv("SLIDE_BENCH_THREADS");
  const int threads = env != nullptr && std::atoi(env) > 0
                          ? std::atoi(env)
                          : std::max(8, hardware_threads());
  const Workload w = workload_for(scale);

  bench::print_header(
      "BENCH maintenance_overhead — async LSH maintenance vs sync rebuilds",
      "rebuild stall removal; delta re-insertion of dirty neurons (cf. "
      "paper §4.2, Daghaghi et al. 2021)");
  bench::print_env(scale, threads);
  std::printf("[cfg] features=%d labels=%d hidden=%d target=%d batch=%d "
              "iterations=%ld\n",
              static_cast<int>(w.features), static_cast<int>(w.labels),
              static_cast<int>(w.hidden), static_cast<int>(w.target), w.batch,
              w.iterations);

  SyntheticConfig dcfg;
  dcfg.feature_dim = w.features;
  dcfg.label_dim = w.labels;
  dcfg.num_train = w.num_train;
  dcfg.num_test = 500;
  dcfg.seed = 13;
  const auto data = make_synthetic_xc(dcfg);

  // Two cadences: "paper" is the decaying schedule of §4.2 (maintenance is
  // already amortized; async mostly removes the residual stall);
  // "aggressive" refreshes every 2 iterations (maximum table freshness —
  // the regime where synchronous maintenance dominates the step time and
  // delta re-insertion pays off hardest).
  const RebuildSchedule paper{.enabled = true, .initial_period = 20,
                              .decay = 0.05};
  const RebuildSchedule aggressive{.enabled = true, .initial_period = 2,
                                   .decay = 0.0};

  std::vector<Arm> arms;
  for (const auto& [name, schedule] :
       {std::pair<const char*, RebuildSchedule>{"paper", paper},
        std::pair<const char*, RebuildSchedule>{"aggressive", aggressive}}) {
    for (auto policy : {MaintenancePolicy::kSync, MaintenancePolicy::kAsyncFull,
                        MaintenancePolicy::kAsyncDelta}) {
      arms.push_back(run_arm(name, schedule, policy, w, data, threads));
      const Arm& a = arms.back();
      std::printf(
          "[arm] schedule=%-10s policy=%-11s total=%7.3fs samples/s=%9.1f "
          "stall=%6.3fs rebuilds=%3ld delta_reinserted=%6ld publishes=%3ld "
          "p@1=%.3f\n",
          a.schedule, to_string(a.policy), a.total_seconds, a.samples_per_sec,
          a.rebuild_stall_seconds, a.rebuilds, a.delta_reinserted,
          a.publishes, a.p_at_1);
    }
  }

  auto find = [&](const char* schedule, MaintenancePolicy policy) -> const Arm& {
    for (const auto& a : arms)
      if (std::string_view(a.schedule) == schedule && a.policy == policy)
        return a;
    throw Error("arm not found");
  };
  const double delta_speedup =
      find("aggressive", MaintenancePolicy::kSync).total_seconds /
      find("aggressive", MaintenancePolicy::kAsyncDelta).total_seconds;
  const double full_speedup =
      find("aggressive", MaintenancePolicy::kSync).total_seconds /
      find("aggressive", MaintenancePolicy::kAsyncFull).total_seconds;
  std::printf(
      "\n[summary] aggressive cadence: async_delta %.2fx vs sync, "
      "async_full %.2fx vs sync (threads=%d)\n",
      delta_speedup, full_speedup, threads);

  bench::Json json;
  json.begin_object();
  json.key("bench").string("maintenance_overhead");
  json.key("scale").string(bench::scale_name(scale));
  json.key("threads").number(static_cast<long long>(threads));
  json.key("iterations").number(static_cast<long long>(w.iterations));
  json.key("batch").number(static_cast<long long>(w.batch));
  json.key("labels").number(static_cast<long long>(w.labels));
  json.key("arms").begin_array();
  for (const auto& a : arms) {
    json.begin_object();
    json.key("schedule").string(a.schedule);
    json.key("policy").string(to_string(a.policy));
    json.key("total_seconds").number(a.total_seconds);
    json.key("samples_per_sec").number(a.samples_per_sec);
    json.key("rebuild_stall_seconds").number(a.rebuild_stall_seconds);
    json.key("rebuilds").number(static_cast<long long>(a.rebuilds));
    json.key("delta_reinserted")
        .number(static_cast<long long>(a.delta_reinserted));
    json.key("publishes").number(static_cast<long long>(a.publishes));
    json.key("p_at_1").number(a.p_at_1);
    json.end_object();
  }
  json.end_array();
  json.key("speedup_async_delta_vs_sync").number(delta_speedup);
  json.key("speedup_async_full_vs_sync").number(full_speedup);
  json.end_object();
  json.write_file(bench::json_path("BENCH_maintenance.json"));
  return 0;
}
