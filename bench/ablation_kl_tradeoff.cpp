// Ablation: the (K, L) trade-off of paper §3.2 — "SLIDE provides a natural
// trade-off between the efficiency of retrieving active neurons and the
// quality of the retrieved ones".
//
// Larger K makes buckets sparser (fewer false positives, cheaper unions,
// but more misses -> more random fill); larger L adds tables (better recall
// of genuinely similar neurons, more hashing + memory). The sweep reports,
// per (K, L): LSH-retrieved vs random-filled share of the active set,
// sampling time, table memory, and accuracy after a fixed budget of
// iterations.
#include "bench_common.h"

using namespace slide;

int main() {
  const Scale scale = bench::env_scale(Scale::kTiny);
  const int threads = bench::env_threads();
  bench::print_header(
      "Ablation: (K, L) retrieval efficiency vs quality (paper §3.2)",
      "larger K -> sparser buckets (precision); larger L -> more tables "
      "(recall, cost); paper settles on K=9, L=50");
  bench::print_env(scale, threads);

  const auto data = make_synthetic_xc(delicious_like(scale));
  const long iterations = 150;
  const Index target = std::max<Index>(32, data.train.label_dim() / 50);

  MarkdownTable table({"K", "L", "P@1", "lsh-retrieved share",
                       "sampling time (s)", "tables (MB)",
                       "train time (s)"});
  for (int k : {4, 6, 9, 12}) {
    for (int l : {10, 50}) {
      NetworkConfig cfg =
          bench::slide_config_for(data.train, HashFamilyKind::kSimhash);
      cfg.layers[0].family.k = k;
      cfg.layers[0].family.l = l;
      cfg.layers[0].sampling.target = target;

      Network network(cfg, threads);
      TrainerConfig tcfg;
      tcfg.batch_size = 128;
      tcfg.num_threads = threads;
      tcfg.learning_rate = 1e-3f;
      Trainer trainer(network, tcfg);
      WallTimer timer;
      trainer.train(data.train, iterations);
      const double train_seconds = timer.seconds();
      const double acc =
          evaluate_p_at_1(network, data.test, trainer.pool(),
                          {.exact = true, .max_samples = 1'000});

      // Probe retrieval quality: how much of the active set came from the
      // hash tables vs the uniform random fill-in? Measure by disabling the
      // fill on a probe network sharing the same trained weights.
      double lsh_share;
      {
        std::vector<std::uint32_t> keys(static_cast<std::size_t>(l));
        std::vector<std::span<const Index>> buckets;
        std::vector<Index> out;
        VisitedSet visited(network.output_dim());
        Rng rng(99);
        InferenceContext ctx(network.max_sampled_units());
        double retrieved = 0.0;
        const int probes = 200;
        const auto* tables = network.output_layer().tables();
        for (int p = 0; p < probes; ++p) {
          ctx.dense.resize(network.embedding().units());
          network.embedding().forward_inference(
              data.test[static_cast<std::size_t>(p)].features,
              ctx.dense.data());
          tables->query_keys_dense(ctx.dense.data(), keys);
          tables->buckets(keys, buckets);
          SamplingConfig sampling = cfg.layers[0].sampling;
          sample_neurons(sampling, buckets, visited, rng, out);
          retrieved += static_cast<double>(out.size());
        }
        lsh_share = retrieved / (static_cast<double>(probes) * target);
      }

      table.add_row({fmt_int(k), fmt_int(l), fmt(acc, 3),
                     fmt_pct(std::min(1.0, lsh_share), 1),
                     fmt(network.output_layer().sampling_seconds(), 2),
                     fmt(static_cast<double>(
                             network.output_layer().tables()->memory_bytes()) /
                             (1 << 20),
                         1),
                     fmt(train_seconds, 2)});
    }
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nReading: small K floods buckets (high retrieved share but "
      "unselective -> slower sampling);\nlarge K with small L starves "
      "retrieval (random fill dominates, adaptivity lost); L=50 restores\n"
      "recall at higher memory/hash cost — the paper's K=9, L=50 sits on "
      "this frontier.\n");
  return 0;
}
