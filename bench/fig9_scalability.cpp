// Figure 9 (+ appendix Figure 13) — scalability with CPU cores:
// convergence time vs thread count for SLIDE and the dense baseline, plus
// the Figure-13 ratio-to-best-time view.
//
// Paper shape: both speed up with cores, but SLIDE's curve drops much more
// steeply (near-perfect scaling from asynchronous, independent per-sample
// work) while TF-CPU flattens past 16 cores. Crossover points: SLIDE beats
// TF-CPU with 2-8 cores and TF-GPU with 8-32 cores.
#include "bench_common.h"

using namespace slide;

int main() {
  const Scale scale = bench::env_scale();
  const int max_threads = bench::env_threads();
  bench::print_header(
      "Figure 9/13: convergence time vs #cores",
      "SLIDE scales near-perfectly; TF-CPU flattens; crossovers at few "
      "cores");
  bench::print_env(scale, max_threads);
  std::printf("[note] container exposes %d hardware threads; sweep "
              "{1, 2, %d} (widen with SLIDE_BENCH_THREADS)\n",
              hardware_threads(), 2 * max_threads);

  const auto data = make_synthetic_xc(delicious_like(scale));
  const long iterations = scale == Scale::kTiny ? 150 : 100;
  const long eval_every = std::max<long>(1, iterations / 10);

  // Accuracy target: 70% of what a quick calibration run reaches, so every
  // sweep arm crosses it and "convergence time" is well defined.
  double target = 0.0;
  {
    NetworkConfig cfg =
        bench::slide_config_for(data.train, HashFamilyKind::kSimhash);
    Network network(cfg, max_threads);
    TrainerConfig tcfg;
    tcfg.batch_size = 128;
    tcfg.num_threads = max_threads;
    tcfg.learning_rate = 1e-3f;
    ConvergenceRecorder calib("calibration");
    bench::run_slide_convergence(network, data.train, data.test, tcfg,
                                 iterations, eval_every, calib, 500);
    target = 0.7 * calib.best_accuracy();
  }
  std::printf("[target] convergence = first crossing of P@1 >= %.3f\n",
              target);

  std::vector<int> sweep = {1, 2, 2 * max_threads};
  if (max_threads > 2) sweep = {1, 2, max_threads / 2, max_threads};

  struct Row {
    int threads;
    double slide_s = -1.0, dense_s = -1.0;
  };
  std::vector<Row> rows;
  for (int threads : sweep) {
    Row row{threads};
    {
      NetworkConfig cfg =
          bench::slide_config_for(data.train, HashFamilyKind::kSimhash);
      Network network(cfg, threads);
      TrainerConfig tcfg;
      tcfg.batch_size = 128;
      tcfg.num_threads = threads;
      tcfg.learning_rate = 1e-3f;
      ConvergenceRecorder rec("slide");
      bench::run_slide_convergence(network, data.train, data.test, tcfg,
                                   iterations, eval_every, rec, 500);
      row.slide_s = rec.seconds_to_accuracy(target);
    }
    {
      DenseNetwork::Config dcfg;
      dcfg.input_dim = data.train.feature_dim();
      dcfg.output_units = data.train.label_dim();
      dcfg.max_batch_size = 128;
      DenseNetwork dense(dcfg, threads);
      ConvergenceRecorder rec("dense");
      bench::run_dense_convergence(dense, data.train, data.test, 128,
                                   threads, 1e-3f, iterations, eval_every,
                                   rec, 500);
      row.dense_s = rec.seconds_to_accuracy(target);
    }
    rows.push_back(row);
  }

  MarkdownTable fig9({"#cores", "SLIDE conv time (s)",
                      "Dense(TF-role) conv time (s)", "SLIDE speedup"});
  double slide_best = 1e30, dense_best = 1e30;
  for (const Row& r : rows) {
    if (r.slide_s > 0) slide_best = std::min(slide_best, r.slide_s);
    if (r.dense_s > 0) dense_best = std::min(dense_best, r.dense_s);
    fig9.add_row({fmt_int(r.threads),
                  r.slide_s < 0 ? "-" : fmt(r.slide_s, 2),
                  r.dense_s < 0 ? "-" : fmt(r.dense_s, 2),
                  (r.slide_s > 0 && r.dense_s > 0)
                      ? fmt(r.dense_s / r.slide_s, 2) + "x"
                      : "-"});
  }
  std::printf("%s", fig9.str().c_str());

  std::printf("\nFigure 13 view — ratio of convergence time to the best "
              "(all-core) time:\n");
  MarkdownTable fig13({"#cores", "SLIDE ratio", "Dense ratio"});
  for (const Row& r : rows) {
    fig13.add_row({fmt_int(r.threads),
                   r.slide_s < 0 ? "-" : fmt(r.slide_s / slide_best, 2),
                   r.dense_s < 0 ? "-" : fmt(r.dense_s / dense_best, 2)});
  }
  std::printf("%s", fig13.str().c_str());
  std::printf("\nReading: the SLIDE ratio falls more steeply with cores "
              "(paper: near-perfect scaling vs\nTF-CPU flattening beyond 16 "
              "cores). The 2-core container limits the sweep width.\n");
  return 0;
}
