// Figure 4 (and its appendix duplicate, Figure 12) — "Time consumed for
// various sampling strategies for retrieving active neurons from hash
// tables": Vanilla vs TopK vs Hard Thresholding, sweeping the number of
// samples retrieved.
//
// Paper shape: Vanilla is fastest (O(beta)), Hard Thresholding slightly
// above it, TopK an order of magnitude slower (it aggregates + sorts all
// candidates), with the gap growing with the sample count.
#include "bench_common.h"

using namespace slide;

int main() {
  const Scale scale = bench::env_scale();
  const int threads = bench::env_threads();
  bench::print_header(
      "Figure 4/12: sampling-strategy retrieval time vs #samples",
      "Vanilla << Hard-Thresholding << TopK; TopK grows ~n log n");
  bench::print_env(scale, threads);

  // Last-layer-scale neuron population hashed into (K=9, L=50) tables,
  // mirroring the Delicious output layer of the experiments.
  const Index neurons = scale == Scale::kPaper    ? 205'443
                        : scale == Scale::kMedium ? 100'000
                        : scale == Scale::kSmall  ? 50'000
                                                  : 5'000;
  const Index fan_in = 128;
  Rng rng(1);
  std::vector<float> rows(static_cast<std::size_t>(neurons) * fan_in);
  for (auto& w : rows) w = rng.normal() * 0.2f;

  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 9;
  family.l = 50;
  family.dim = fan_in;
  LshTableGroup tables(make_hash_family(family),
                       {.range_pow = 12, .bucket_size = 128});
  ThreadPool pool(threads);
  WallTimer build_timer;
  tables.build_from_rows(rows.data(), fan_in, neurons, &pool);
  std::printf("[setup] %u neurons hashed into K=9,L=50 tables in %.2fs\n",
              neurons, build_timer.seconds());

  constexpr int kQueries = 2'000;
  std::vector<float> query(fan_in);
  VisitedSet visited(neurons);
  std::vector<std::uint32_t> keys(static_cast<std::size_t>(tables.l()));
  std::vector<std::span<const Index>> buckets;
  std::vector<Index> out;

  MarkdownTable table({"#samples (beta)", "vanilla (s)", "topk (s)",
                       "hard-threshold (s)", "topk/vanilla"});

  for (Index beta : {2'000u, 3'000u, 4'000u, 5'000u, 6'000u, 7'000u}) {
    double seconds[3] = {0, 0, 0};
    const SamplingStrategy strategies[3] = {SamplingStrategy::kVanilla,
                                            SamplingStrategy::kTopK,
                                            SamplingStrategy::kHardThreshold};
    for (int s = 0; s < 3; ++s) {
      Rng qrng(42);  // identical query stream per strategy
      SamplingConfig cfg;
      cfg.strategy = strategies[s];
      cfg.target = beta;
      cfg.hard_threshold_m = 2;
      double strategy_seconds = 0.0;
      for (int q = 0; q < kQueries; ++q) {
        for (auto& v : query) v = qrng.normal();
        // Hashing and bucket lookup are shared work; only the strategy
        // itself is on the clock (matching the paper's comparison).
        tables.query_keys_dense(query.data(), keys);
        tables.buckets(keys, buckets);
        WallTimer timer;
        sample_neurons(cfg, buckets, visited, qrng, out);
        strategy_seconds += timer.seconds();
      }
      seconds[s] = strategy_seconds;
    }
    table.add_row({fmt_int(beta), fmt(seconds[0], 4), fmt(seconds[1], 4),
                   fmt(seconds[2], 4), fmt(seconds[1] / seconds[0], 1) + "x"});
  }
  std::printf("%s", table.str().c_str());
  std::printf("\n(times are cumulative strategy-only seconds over %d "
              "queries)\n", kQueries);
  return 0;
}
