// Micro-benchmarks for the runtime-dispatched compute backend: the hot
// kernels (dot / axpy / adam_step) and their quantized-precision variants
// (bf16 / fp16 / int8) at EVERY dispatch level this host supports, at the
// fan-in sizes the engine actually uses (128 = hidden width; 4096 = wide
// strips). Row names carry the scoring precision (dot_fp32, dot_bf16,
// dot_i8, ...) and the int8/fp16 rows additionally carry the instruction
// path the level's table bound (vnni / maddubs-512 / f16c-256 / scalar
// ...), so a BENCH_backend.json from a VNNI host is distinguishable from
// the graceful-downgrade path on one without.
//
// Unlike bench/micro_kernels (which A/Bs the deprecated on/off shim for
// Figure-10 continuity), this bench pins an explicit SimdLevel per
// registration, so the emitted BENCH_backend.json carries one entry per
// (kernel, size, level) — the artifact the CI regression gate diffs
// against bench/baselines/BENCH_backend.json. Levels the runner does not
// support simply produce no entries; bench_compare treats the missing
// metrics as non-fatal.
//
//   ./build/bench/micro_backend --benchmark_out=BENCH_backend.json \
//       --benchmark_out_format=json
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "simd/backend.h"
#include "simd/kernels.h"
#include "sys/rng.h"

namespace slide {
namespace {

using simd::Bf16;
using simd::SimdLevel;

std::vector<float> vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

std::vector<Bf16> bf16_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bf16> v(n);
  for (auto& x : v) x = simd::float_to_bf16(rng.normal());
  return v;
}

void bm_dot(benchmark::State& state, SimdLevel level, std::size_t n) {
  const simd::Backend& be = *simd::backend_for(level);
  const auto a = vec(n, 1), b = vec(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(be.dot(a.data(), b.data(), n));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          2 * sizeof(float));
}

void bm_axpy(benchmark::State& state, SimdLevel level, std::size_t n) {
  const simd::Backend& be = *simd::backend_for(level);
  const auto x = vec(n, 3);
  auto y = vec(n, 4);
  for (auto _ : state) {
    be.axpy(0.37f, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
}

void bm_adam(benchmark::State& state, SimdLevel level, std::size_t n) {
  const simd::Backend& be = *simd::backend_for(level);
  auto w = vec(n, 8), m = vec(n, 9), v = vec(n, 10);
  for (auto& x : v) x = x * x;  // second moment must be non-negative
  const auto g = vec(n, 11);
  for (auto _ : state) {
    be.adam_step(w.data(), m.data(), v.data(), g.data(), n, 1e-3f, 0.9f,
                 0.999f, 1e-8f, 0.1f, 0.001f);
    benchmark::DoNotOptimize(w.data());
  }
}

void bm_dot_bf16(benchmark::State& state, SimdLevel level, std::size_t n) {
  const simd::Backend& be = *simd::backend_for(level);
  const auto w = bf16_vec(n, 5);
  const auto x = vec(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(be.dot_bf16(w.data(), x.data(), n));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          (sizeof(Bf16) + sizeof(float)));
}

void bm_axpy_bf16(benchmark::State& state, SimdLevel level, std::size_t n) {
  const simd::Backend& be = *simd::backend_for(level);
  const auto x = bf16_vec(n, 7);
  auto y = vec(n, 12);
  for (auto _ : state) {
    be.axpy_bf16(0.37f, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
}

void bm_quantize(benchmark::State& state, SimdLevel level, std::size_t n) {
  const simd::Backend& be = *simd::backend_for(level);
  const auto src = vec(n, 13);
  std::vector<Bf16> dst(n);
  for (auto _ : state) {
    be.quantize_bf16(src.data(), dst.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
}

std::vector<simd::Fp16> f16_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<simd::Fp16> v(n);
  for (auto& x : v) x = simd::float_to_fp16(rng.normal());
  return v;
}

std::vector<simd::I8> i8_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<simd::I8> v(n);
  for (auto& x : v)
    x = static_cast<simd::I8>(static_cast<int>(rng.uniform(255)) - 127);
  return v;
}

std::vector<simd::U8> u8_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<simd::U8> v(n);
  for (auto& x : v) x = static_cast<simd::U8>(rng.uniform(128));
  return v;
}

void bm_dot_f16(benchmark::State& state, SimdLevel level, std::size_t n) {
  const simd::Backend& be = *simd::backend_for(level);
  const auto w = f16_vec(n, 14);
  const auto x = vec(n, 15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(be.dot_f16(w.data(), x.data(), n));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          (sizeof(simd::Fp16) + sizeof(float)));
}

void bm_axpy_f16(benchmark::State& state, SimdLevel level, std::size_t n) {
  const simd::Backend& be = *simd::backend_for(level);
  const auto x = f16_vec(n, 16);
  auto y = vec(n, 17);
  for (auto _ : state) {
    be.axpy_f16(0.37f, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
}

void bm_quantize_f16(benchmark::State& state, SimdLevel level,
                     std::size_t n) {
  const simd::Backend& be = *simd::backend_for(level);
  const auto src = vec(n, 18);
  std::vector<simd::Fp16> dst(n);
  for (auto _ : state) {
    be.quantize_f16(src.data(), dst.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
}

void bm_dot_i8(benchmark::State& state, SimdLevel level, std::size_t n) {
  const simd::Backend& be = *simd::backend_for(level);
  const auto w = i8_vec(n, 19);
  const auto x = u8_vec(n, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(be.dot_i8(w.data(), x.data(), n));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          2);
}

void bm_axpy_i8(benchmark::State& state, SimdLevel level, std::size_t n) {
  const simd::Backend& be = *simd::backend_for(level);
  const auto x = i8_vec(n, 21);
  auto y = vec(n, 22);
  for (auto _ : state) {
    be.axpy_i8(0.013f, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
}

void bm_quantize_i8(benchmark::State& state, SimdLevel level, std::size_t n) {
  const simd::Backend& be = *simd::backend_for(level);
  const auto src = vec(n, 23);
  std::vector<simd::I8> dst(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(be.quantize_i8(src.data(), dst.data(), n));
  }
}

void register_all() {
  using Fn = void (*)(benchmark::State&, SimdLevel, std::size_t);
  // Every row name carries its scoring precision; int8/fp16 dot/axpy rows
  // are additionally tagged with the instruction path the level's bound
  // table scores through (resolved from the table at registration time).
  enum class PathTag { kNone, kI8, kF16 };
  struct Kernel {
    const char* name;
    Fn fn;
    PathTag path = PathTag::kNone;
  };
  const Kernel kernels[] = {
      {"dot_fp32", bm_dot},
      {"axpy_fp32", bm_axpy},
      {"adam_step_fp32", bm_adam},
      {"dot_bf16", bm_dot_bf16},
      {"axpy_bf16", bm_axpy_bf16},
      {"quantize_bf16", bm_quantize},
      {"dot_f16", bm_dot_f16, PathTag::kF16},
      {"axpy_f16", bm_axpy_f16, PathTag::kF16},
      {"quantize_f16", bm_quantize_f16},
      {"dot_i8", bm_dot_i8, PathTag::kI8},
      {"axpy_i8", bm_axpy_i8, PathTag::kI8},
      {"quantize_i8", bm_quantize_i8},
  };
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAVX2, SimdLevel::kAVX512}) {
    if (!simd::level_supported(level)) continue;
    const simd::Backend& table = *simd::backend_for(level);
    for (const Kernel& kernel : kernels) {
      for (std::size_t n : {std::size_t{128}, std::size_t{4096}}) {
        std::string name = std::string("BM_backend/") + kernel.name + "/" +
                           std::to_string(n) + "/" +
                           simd::to_string(level);
        if (kernel.path == PathTag::kI8)
          name += std::string("/") + table.i8_path;
        else if (kernel.path == PathTag::kF16)
          name += std::string("/") + table.f16_path;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [fn = kernel.fn, level, n](benchmark::State& state) {
              fn(state, level, n);
            });
      }
    }
  }
}

}  // namespace
}  // namespace slide

int main(int argc, char** argv) {
  slide::register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
