// Micro-benchmarks for the runtime-dispatched compute backend: the hot
// kernels (dot / axpy / adam_step) and their bf16 mixed-precision variants
// at EVERY dispatch level this host supports, at the fan-in sizes the
// engine actually uses (128 = hidden width; 4096 = wide strips).
//
// Unlike bench/micro_kernels (which A/Bs the deprecated on/off shim for
// Figure-10 continuity), this bench pins an explicit SimdLevel per
// registration, so the emitted BENCH_backend.json carries one entry per
// (kernel, size, level) — the artifact the CI regression gate diffs
// against bench/baselines/BENCH_backend.json. Levels the runner does not
// support simply produce no entries; bench_compare treats the missing
// metrics as non-fatal.
//
//   ./build/bench/micro_backend --benchmark_out=BENCH_backend.json \
//       --benchmark_out_format=json
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "simd/backend.h"
#include "simd/kernels.h"
#include "sys/rng.h"

namespace slide {
namespace {

using simd::Bf16;
using simd::SimdLevel;

std::vector<float> vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

std::vector<Bf16> bf16_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bf16> v(n);
  for (auto& x : v) x = simd::float_to_bf16(rng.normal());
  return v;
}

void bm_dot(benchmark::State& state, SimdLevel level, std::size_t n) {
  const simd::Backend& be = *simd::backend_for(level);
  const auto a = vec(n, 1), b = vec(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(be.dot(a.data(), b.data(), n));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          2 * sizeof(float));
}

void bm_axpy(benchmark::State& state, SimdLevel level, std::size_t n) {
  const simd::Backend& be = *simd::backend_for(level);
  const auto x = vec(n, 3);
  auto y = vec(n, 4);
  for (auto _ : state) {
    be.axpy(0.37f, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
}

void bm_adam(benchmark::State& state, SimdLevel level, std::size_t n) {
  const simd::Backend& be = *simd::backend_for(level);
  auto w = vec(n, 8), m = vec(n, 9), v = vec(n, 10);
  for (auto& x : v) x = x * x;  // second moment must be non-negative
  const auto g = vec(n, 11);
  for (auto _ : state) {
    be.adam_step(w.data(), m.data(), v.data(), g.data(), n, 1e-3f, 0.9f,
                 0.999f, 1e-8f, 0.1f, 0.001f);
    benchmark::DoNotOptimize(w.data());
  }
}

void bm_dot_bf16(benchmark::State& state, SimdLevel level, std::size_t n) {
  const simd::Backend& be = *simd::backend_for(level);
  const auto w = bf16_vec(n, 5);
  const auto x = vec(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(be.dot_bf16(w.data(), x.data(), n));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          (sizeof(Bf16) + sizeof(float)));
}

void bm_axpy_bf16(benchmark::State& state, SimdLevel level, std::size_t n) {
  const simd::Backend& be = *simd::backend_for(level);
  const auto x = bf16_vec(n, 7);
  auto y = vec(n, 12);
  for (auto _ : state) {
    be.axpy_bf16(0.37f, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
}

void bm_quantize(benchmark::State& state, SimdLevel level, std::size_t n) {
  const simd::Backend& be = *simd::backend_for(level);
  const auto src = vec(n, 13);
  std::vector<Bf16> dst(n);
  for (auto _ : state) {
    be.quantize_bf16(src.data(), dst.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
}

void register_all() {
  using Fn = void (*)(benchmark::State&, SimdLevel, std::size_t);
  struct Kernel {
    const char* name;
    Fn fn;
  };
  const Kernel kernels[] = {
      {"dot", bm_dot},           {"axpy", bm_axpy},
      {"adam_step", bm_adam},    {"dot_bf16", bm_dot_bf16},
      {"axpy_bf16", bm_axpy_bf16}, {"quantize_bf16", bm_quantize},
  };
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAVX2, SimdLevel::kAVX512}) {
    if (!simd::level_supported(level)) continue;
    for (const Kernel& kernel : kernels) {
      for (std::size_t n : {std::size_t{128}, std::size_t{4096}}) {
        const std::string name = std::string("BM_backend/") + kernel.name +
                                 "/" + std::to_string(n) + "/" +
                                 simd::to_string(level);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [fn = kernel.fn, level, n](benchmark::State& state) {
              fn(state, level, n);
            });
      }
    }
  }
}

}  // namespace
}  // namespace slide

int main(int argc, char** argv) {
  slide::register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
