// Distributed-transport bench: frame codec throughput, RPC round-trip
// latency over loopback TCP and same-host shared-memory rings, and the
// headline bytes-on-wire number — how much smaller the sparse active-set
// payloads are than dense model-parallel activation exchange.
//
//   ./build/bench/dist_transport
//
// Emits BENCH_dist.json. Gated keys: frame encode/decode throughput and
// RPC round-trips/sec per transport. The sparse/dense wire ratio is the
// acceptance number for the distributed subsystem (<= 10% of the dense
// equivalent at the paper's ~0.5-2% active fractions) and is asserted
// here, not just logged.
//
// Environment: SLIDE_BENCH_REPS, SLIDE_BENCH_JSON_DIR.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "dist/protocol.h"
#include "dist/transport.h"
#include "dist/worker.h"

namespace {

using namespace slide;

int env_reps() {
  const char* env = std::getenv("SLIDE_BENCH_REPS");
  const int n = env == nullptr ? 0 : std::atoi(env);
  return n > 0 ? n : 3;
}

/// A ForwardMsg-shaped frame with `active` sparse pairs out of a
/// `dense_width`-unit previous layer (the hot-path payload shape).
dist::Frame make_active_frame(Index dense_width, Index active, bool bf16) {
  ActiveSet prev;  // dense shape: ids empty, act indexed by unit
  prev.dense_width = dense_width;
  prev.act.resize(static_cast<std::size_t>(dense_width), 0.0f);
  Rng rng(7);
  for (Index i = 0; i < active; ++i)
    prev.act[rng.uniform(static_cast<std::uint32_t>(dense_width))] =
        rng.uniform_float();
  dist::ForwardMsg msg;
  msg.slot = 0;
  msg.rng = rng.state();
  msg.prev = dist::WireActiveSet::capture(prev);
  return msg.to_frame(bf16);
}

/// Round-trips `frames` echo exchanges over a connected transport pair
/// (client thread sends + receives; server thread echoes). Returns RTTs/s.
double measure_rtt(dist::Transport& a, dist::Transport& b,
                   const dist::Frame& frame, int frames) {
  std::thread echo([&b, frames] {
    for (int i = 0; i < frames; ++i) b.send(b.recv(/*timeout_ms=*/10'000));
  });
  WallTimer timer;
  for (int i = 0; i < frames; ++i) {
    a.send(frame);
    (void)a.recv(/*timeout_ms=*/10'000);
  }
  const double seconds = timer.seconds();
  echo.join();
  return static_cast<double>(frames) / seconds;
}

struct TransportPair {
  std::unique_ptr<dist::Transport> client;
  std::unique_ptr<dist::Transport> server;
};

TransportPair connect_pair(const std::string& endpoint) {
  TransportPair pair;
  auto listener = dist::listen_endpoint(endpoint);
  std::thread dial([&pair, &listener] {
    pair.client = dist::connect_endpoint(listener->endpoint());
  });
  pair.server = listener->accept(/*timeout_ms=*/5'000);
  dial.join();
  return pair;
}

}  // namespace

int main() {
  const int reps = env_reps();
  bench::print_header(
      "BENCH_dist — distributed transport (frame codec, RPC round-trips, "
      "bytes on the wire)",
      "Distributed SLIDE (arXiv:2201.12667): model parallelism that "
      "exchanges only the sparse active sets");
  std::printf("[env] reps=%d\n\n", reps);

  // Workload shape: a 128-unit hidden layer feeding a wide output layer
  // whose active set is ~1% — the paper architecture's hot-path frame.
  const Index dense_width = 128;
  const Index wide_units = 65'536;
  const Index wide_active = 656;  // ~1% of the wide layer

  // 1. Frame codec throughput (encode + header/CRC decode + assemble).
  const dist::Frame frame = make_active_frame(dense_width, 96, false);
  std::vector<std::uint8_t> encoded;
  dist::encode_frame(frame, encoded);
  const double frame_kb =
      static_cast<double>(encoded.size()) / 1024.0;
  const int codec_iters = 20'000;
  double best_codec = 1e100;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    for (int i = 0; i < codec_iters; ++i) {
      dist::encode_frame(frame, encoded);
      const dist::FrameHeader h = dist::decode_frame_header(encoded.data());
      std::vector<std::uint8_t> payload(
          encoded.begin() + static_cast<long>(dist::kFrameHeaderBytes),
          encoded.end());
      const dist::Frame decoded = dist::assemble_frame(h, std::move(payload));
      if (decoded.payload.size() != frame.payload.size()) return 1;
    }
    best_codec = std::min(best_codec, timer.seconds());
  }
  const double codec_per_sec = codec_iters / best_codec;
  std::printf("frame codec: %.0f encode+decode/s (%.1f KiB frame, CRC-32 "
              "both ways)\n",
              codec_per_sec, frame_kb);

  // 2. RPC round-trip rate, TCP loopback vs shared-memory ring.
  const int rtt_frames = 2'000;
  double tcp_rtt = 0.0, shm_rtt = 0.0;
  {
    TransportPair p = connect_pair("tcp:127.0.0.1:0");
    for (int r = 0; r < reps; ++r)
      tcp_rtt = std::max(tcp_rtt, measure_rtt(*p.client, *p.server, frame,
                                              rtt_frames));
  }
  const std::string shm_path =
      (std::filesystem::temp_directory_path() / "bench_dist_ring").string();
  {
    TransportPair p = connect_pair("shm:" + shm_path);
    for (int r = 0; r < reps; ++r)
      shm_rtt = std::max(shm_rtt, measure_rtt(*p.client, *p.server, frame,
                                              rtt_frames));
  }
  std::printf("rpc round-trips: tcp loopback %.0f/s | shm ring %.0f/s "
              "(%.2fx)\n",
              tcp_rtt, shm_rtt, shm_rtt / tcp_rtt);

  // 3. Bytes on the wire: the kForwardActive/kBackwardScatter exchange for
  //    one sample vs dense model parallelism shipping every output unit's
  //    activation out and error back as {u32 idx, f32 val} pairs.
  ActiveSet wide;  // sparse shape: parallel ids/act runs
  wide.ids.resize(static_cast<std::size_t>(wide_active));
  wide.act.resize(static_cast<std::size_t>(wide_active));
  Rng rng(13);
  for (Index i = 0; i < wide_active; ++i) {
    wide.ids[i] = rng.uniform(static_cast<std::uint32_t>(wide_units));
    wide.act[i] = rng.uniform_float();
  }
  const dist::WireActiveSet sparse_set = dist::WireActiveSet::capture(wide);
  std::vector<std::uint8_t> sparse_fp32, sparse_bf16;
  {
    dist::PayloadWriter w(sparse_fp32);
    sparse_set.write(w, /*bf16=*/false);
  }
  {
    dist::PayloadWriter w(sparse_bf16);
    sparse_set.write(w, /*bf16=*/true);
  }
  // x2: activations out + errors back cross the wire per sample either way.
  const double sparse_bytes =
      2.0 * (static_cast<double>(sparse_fp32.size()) + dist::kFrameHeaderBytes);
  const double dense_bytes = 2.0 * 8.0 * static_cast<double>(wide_units);
  const double ratio = sparse_bytes / dense_bytes;
  std::printf("bytes on wire per sample (%u-unit layer, %u active = %.1f%%): "
              "sparse %.1f KiB vs dense %.1f KiB -> %.2f%% (bf16 values: "
              "%.1f KiB)\n",
              wide_units, wide_active,
              100.0 * wide_active / static_cast<double>(wide_units),
              sparse_bytes / 1024.0, dense_bytes / 1024.0, 100.0 * ratio,
              2.0 * static_cast<double>(sparse_bf16.size()) / 1024.0);
  if (ratio > 0.10) {
    std::fprintf(stderr,
                 "FAIL: sparse wire bytes %.1f%% of dense (acceptance 10%%)\n",
                 100.0 * ratio);
    return 1;
  }

  bench::Json json;
  json.begin_object();
  json.key("bench").string("dist_transport");
  json.key("frame_kib").number(frame_kb);
  json.key("codec_frames_per_sec").number(codec_per_sec);
  json.key("tcp_roundtrips_per_sec").number(tcp_rtt);
  json.key("shm_roundtrips_per_sec").number(shm_rtt);
  json.key("speedup_shm_vs_tcp").number(shm_rtt / tcp_rtt);
  json.key("wide_units").number(static_cast<long long>(wide_units));
  json.key("wide_active").number(static_cast<long long>(wide_active));
  json.key("sparse_wire_bytes_info").number(sparse_bytes);
  json.key("dense_wire_bytes_info").number(dense_bytes);
  json.key("sparse_vs_dense_ratio_info").number(ratio);
  json.key("bf16_wire_bytes_info")
      .number(2.0 * static_cast<double>(sparse_bf16.size()));
  json.end_object();
  json.write_file(bench::json_path("BENCH_dist.json"));
  return 0;
}
