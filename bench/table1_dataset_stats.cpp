// Table 1 — "Statistics of the datasets".
//
// Paper values (Delicious-200K, Amazon-670K) are printed next to the
// synthetic stand-ins this repository trains on (see DESIGN.md §3 for the
// substitution). At SLIDE_BENCH_SCALE=paper the stand-ins match the paper's
// dimensions exactly; smaller scales shrink every axis proportionally.
#include "bench_common.h"

using namespace slide;

namespace {

void add_dataset_row(MarkdownTable& table, const std::string& name,
                     const DatasetStats& train, std::size_t test_size) {
  table.add_row({name, fmt_int(static_cast<long long>(train.feature_dim)),
                 fmt_pct(train.feature_density, 4),
                 fmt_int(static_cast<long long>(train.label_dim)),
                 fmt_int(static_cast<long long>(train.num_samples)),
                 fmt_int(static_cast<long long>(test_size)),
                 fmt(train.avg_labels_per_sample, 2)});
}

}  // namespace

int main() {
  const Scale scale = bench::env_scale();
  bench::print_header(
      "Table 1: dataset statistics",
      "Delicious-200K: 782,585 feats / 0.038% / 205,443 labels / 196,606 "
      "train / 100,095 test;  Amazon-670K: 135,909 / 0.055% / 670,091 / "
      "490,449 / 153,025");
  bench::print_env(scale, bench::env_threads());

  MarkdownTable table({"dataset", "feature dim", "feature density",
                       "label dim", "train size", "test size",
                       "avg labels"});
  table.add_row({"Delicious-200K (paper)", "782585", "0.0380%", "205443",
                 "196606", "100095", "-"});
  table.add_row({"Amazon-670K (paper)", "135909", "0.0550%", "670091",
                 "490449", "153025", "-"});

  {
    const auto data = make_synthetic_xc(delicious_like(scale));
    add_dataset_row(table, "delicious-like (ours)", data.train.stats(),
                    data.test.size());
  }
  {
    const auto data = make_synthetic_xc(amazon_like(scale));
    add_dataset_row(table, "amazon-like (ours)", data.train.stats(),
                    data.test.size());
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nNote: synthetic stand-ins reproduce the workload shape (extreme "
      "label width, sparse inputs,\nZipf label skew, learnable planted "
      "structure); set SLIDE_BENCH_SCALE=paper for paper dimensions.\n");
  return 0;
}
