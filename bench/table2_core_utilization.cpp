// Table 2 — "Core Utilization": SLIDE vs the dense baseline (TF-CPU role)
// at increasing thread counts.
//
// Paper shape: TF-CPU utilization is low (<50%) and *falls* as threads
// increase (8->32 threads: 45%->32%); SLIDE stays high (~80%+) because each
// batch instance runs independently with tiny, thread-private state and
// lock-free updates.
//
// VTune substitution (DESIGN.md §3): utilization = busy-time fraction of
// (threads x wall-time) from the pool's per-thread accounting.
#include "bench_common.h"

using namespace slide;

int main() {
  const Scale scale = bench::env_scale();
  const int max_threads = bench::env_threads();
  bench::print_header(
      "Table 2: core utilization vs thread count",
      "TF-CPU: 45%/35%/32% at 8/16/32 threads; SLIDE: 82%/81%/85%");
  bench::print_env(scale, max_threads);
  std::printf("[note] container has %d hardware threads; sweep uses "
              "{1, 2, %d} (set SLIDE_BENCH_THREADS to widen)\n",
              hardware_threads(), 2 * max_threads);

  const auto data = make_synthetic_xc(delicious_like(scale));
  const long iterations = scale == Scale::kTiny ? 60 : 40;
  std::vector<int> sweep = {1, 2, 2 * max_threads};
  if (max_threads > 2) sweep = {1, max_threads / 2, max_threads,
                                2 * max_threads};

  MarkdownTable table({"engine", "threads", "utilization", "batch time (s)",
                       "note"});
  for (int threads : sweep) {
    // SLIDE.
    {
      NetworkConfig cfg =
          bench::slide_config_for(data.train, HashFamilyKind::kSimhash);
      Network network(cfg, threads);
      TrainerConfig tcfg;
      tcfg.batch_size = 128;
      tcfg.num_threads = threads;
      Trainer trainer(network, tcfg);
      trainer.train(data.train, iterations);
      table.add_row({"SLIDE", fmt_int(threads),
                     fmt_pct(trainer.core_utilization(), 1),
                     fmt(trainer.time_breakdown().total_seconds, 2),
                     threads > hardware_threads() ? "oversubscribed" : ""});
    }
    // Dense baseline: utilization measured the same way through the pool.
    {
      DenseNetwork::Config dcfg;
      dcfg.input_dim = data.train.feature_dim();
      dcfg.output_units = data.train.label_dim();
      dcfg.max_batch_size = 128;
      DenseNetwork dense(dcfg, threads);
      ThreadPool pool(threads);
      Batcher batcher(data.train, 128, true, 3);
      WallTimer timer;
      for (long i = 0; i < iterations; ++i)
        dense.step(data.train, batcher.next(), 1e-3f, pool);
      const double wall = timer.seconds();
      double busy = 0.0;
      for (double b : pool.busy_seconds()) busy += b;
      table.add_row({"Dense(TF-role)", fmt_int(threads),
                     fmt_pct(busy / (wall * threads), 1), fmt(wall, 2),
                     threads > hardware_threads() ? "oversubscribed" : ""});
    }
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nReading: SLIDE's utilization stays flat/high with more threads; "
      "the dense engine's\nper-thread share of memory bandwidth shrinks, "
      "so its utilization decays (paper Table 2 trend).\n");
  return 0;
}
