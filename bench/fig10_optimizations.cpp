// Figure 10 — impact of the platform micro-optimizations (appendix D):
// plain SLIDE vs SLIDE with Transparent-Huge-Page-backed weights + AVX2
// SIMD kernels (+ software prefetching, which is compiled in).
//
// Paper shape: the optimized build is ~1.3x faster end-to-end on both
// datasets, turning the 2.7x lead over TF-GPU into 3.5x.
#include "bench_common.h"

using namespace slide;

namespace {

double timed_run(const SyntheticDataset& data, int threads, long iterations,
                 bool simd_on, bool thp_on, double* accuracy_out) {
  simd::set_simd_enabled(simd_on);
  set_hugepages_enabled(thp_on);
  NetworkConfig cfg =
      bench::slide_config_for(data.train, HashFamilyKind::kSimhash);
  Network network(cfg, threads);  // allocates weights under the THP setting
  TrainerConfig tcfg;
  tcfg.batch_size = 128;
  tcfg.num_threads = threads;
  tcfg.learning_rate = 1e-3f;
  Trainer trainer(network, tcfg);
  WallTimer timer;
  trainer.train(data.train, iterations);
  const double seconds = timer.seconds();
  if (accuracy_out != nullptr) {
    *accuracy_out = evaluate_p_at_1(network, data.test, trainer.pool(),
                                    {.exact = true, .max_samples = 1'000});
  }
  simd::set_simd_enabled(true);
  set_hugepages_enabled(true);
  return seconds;
}

}  // namespace

int main() {
  const Scale scale = bench::env_scale();
  const int threads = bench::env_threads();
  bench::print_header(
      "Figure 10: Hugepages + SIMD optimization impact",
      "optimized SLIDE ~1.3x faster than plain SLIDE on both datasets");
  bench::print_env(scale, threads);
  std::printf("[thp] kernel mode=%s, madvise(MADV_HUGEPAGE) %s\n",
              thp_mode().c_str(),
              hugepages_supported() ? "available" : "unavailable");

  const long iterations = scale == Scale::kTiny ? 120 : 80;
  MarkdownTable table({"dataset", "variant", "train time (s)", "P@1",
                       "speedup vs plain"});
  for (int which = 0; which < 2; ++which) {
    const auto data = make_synthetic_xc(
        which == 0 ? delicious_like(scale) : amazon_like(scale));
    const char* name = which == 0 ? "delicious-like" : "amazon-like";

    double acc_plain = 0.0, acc_opt = 0.0, acc_simd = 0.0;
    const double plain =
        timed_run(data, threads, iterations, false, false, &acc_plain);
    const double simd_only =
        timed_run(data, threads, iterations, true, false, &acc_simd);
    const double optimized =
        timed_run(data, threads, iterations, true, true, &acc_opt);

    table.add_row({name, "plain (scalar, 4K pages)", fmt(plain, 2),
                   fmt(acc_plain, 3), "1.00x"});
    table.add_row({name, "+SIMD (AVX2)", fmt(simd_only, 2), fmt(acc_simd, 3),
                   fmt(plain / simd_only, 2) + "x"});
    table.add_row({name, "+SIMD +Hugepages (optimized)", fmt(optimized, 2),
                   fmt(acc_opt, 3), fmt(plain / optimized, 2) + "x"});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nNote: THP gains grow with the weight-table footprint; at small "
      "scales the SIMD term\ndominates. AnonHugePages currently mapped: "
      "%.1f MB.\n",
      static_cast<double>(anon_hugepage_bytes()) / (1 << 20));
  return 0;
}
