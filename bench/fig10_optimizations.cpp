// Figure 10 — impact of the platform micro-optimizations (appendix D):
// plain SLIDE vs SLIDE with Transparent-Huge-Page-backed weights + SIMD
// kernels (+ software prefetching, which is compiled in).
//
// Paper shape: the optimized build is ~1.3x faster end-to-end on both
// datasets, turning the 2.7x lead over TF-GPU into 3.5x. The follow-up
// "Accelerating SLIDE on Modern CPUs" adds AVX-512 on the same loops; the
// runtime dispatch (simd/backend.h) lets this bench sweep every level the
// host supports — scalar / AVX2 / AVX-512 — in one binary.
#include "bench_common.h"

using namespace slide;

namespace {

double timed_run(const SyntheticDataset& data, int threads, long iterations,
                 simd::SimdLevel level, bool thp_on, double* accuracy_out) {
  simd::set_simd_level(level);
  set_hugepages_enabled(thp_on);
  NetworkConfig cfg =
      bench::slide_config_for(data.train, HashFamilyKind::kSimhash);
  Network network(cfg, threads);  // allocates weights under the THP setting
  TrainerConfig tcfg;
  tcfg.batch_size = 128;
  tcfg.num_threads = threads;
  tcfg.learning_rate = 1e-3f;
  Trainer trainer(network, tcfg);
  WallTimer timer;
  trainer.train(data.train, iterations);
  const double seconds = timer.seconds();
  if (accuracy_out != nullptr) {
    *accuracy_out = evaluate_p_at_1(network, data.test, trainer.pool(),
                                    {.exact = true, .max_samples = 1'000});
  }
  simd::set_simd_level(simd::detected_level());
  set_hugepages_enabled(true);
  return seconds;
}

}  // namespace

int main() {
  const Scale scale = bench::env_scale();
  const int threads = bench::env_threads();
  bench::print_header(
      "Figure 10: Hugepages + SIMD optimization impact",
      "optimized SLIDE ~1.3x faster than plain SLIDE on both datasets");
  bench::print_env(scale, threads);
  std::printf("[thp] kernel mode=%s, madvise(MADV_HUGEPAGE) %s\n",
              thp_mode().c_str(),
              hugepages_supported() ? "available" : "unavailable");

  std::vector<simd::SimdLevel> levels;
  for (simd::SimdLevel level :
       {simd::SimdLevel::kScalar, simd::SimdLevel::kAVX2,
        simd::SimdLevel::kAVX512}) {
    if (simd::level_supported(level)) levels.push_back(level);
  }
  std::printf("[simd] sweeping levels:");
  for (simd::SimdLevel level : levels)
    std::printf(" %s", simd::to_string(level));
  std::printf("\n");

  const long iterations = scale == Scale::kTiny ? 120 : 80;
  MarkdownTable table({"dataset", "variant", "train time (s)", "P@1",
                       "speedup vs plain"});
  for (int which = 0; which < 2; ++which) {
    const auto data = make_synthetic_xc(
        which == 0 ? delicious_like(scale) : amazon_like(scale));
    const char* name = which == 0 ? "delicious-like" : "amazon-like";

    // Plain: scalar kernels, 4K pages.
    double acc_plain = 0.0;
    const double plain = timed_run(data, threads, iterations,
                                   simd::SimdLevel::kScalar, false,
                                   &acc_plain);
    table.add_row({name, "plain (scalar, 4K pages)", fmt(plain, 2),
                   fmt(acc_plain, 3), "1.00x"});

    // Each vector level on 4K pages isolates the SIMD term.
    for (std::size_t i = 1; i < levels.size(); ++i) {
      double acc = 0.0;
      const double t =
          timed_run(data, threads, iterations, levels[i], false, &acc);
      table.add_row({name,
                     std::string("+SIMD (") + simd::to_string(levels[i]) +
                         ")",
                     fmt(t, 2), fmt(acc, 3), fmt(plain / t, 2) + "x"});
    }

    // Fully optimized: widest level + hugepages.
    double acc_opt = 0.0;
    const double optimized = timed_run(data, threads, iterations,
                                       levels.back(), true, &acc_opt);
    table.add_row({name,
                   std::string("+SIMD (") + simd::to_string(levels.back()) +
                       ") +Hugepages (optimized)",
                   fmt(optimized, 2), fmt(acc_opt, 3),
                   fmt(plain / optimized, 2) + "x"});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nNote: THP gains grow with the weight-table footprint; at small "
      "scales the SIMD term\ndominates. AnonHugePages currently mapped: "
      "%.1f MB.\n",
      static_cast<double>(anon_hugepage_bytes()) / (1 << 20));
  return 0;
}
