// Figure 8 — effect of batch size (64 / 128 / 256) on time-vs-accuracy,
// SLIDE vs dense vs sampled softmax, on the amazon-like workload.
//
// Paper shape: SLIDE wins at every batch size, and the gap *widens* with
// larger batches — more per-batch parallelism for SLIDE's independent
// per-sample threads, while the dense engine's cost per batch grows
// linearly regardless.
#include "bench_common.h"

using namespace slide;

int main() {
  const Scale scale = bench::env_scale();
  const int threads = bench::env_threads();
  bench::print_header(
      "Figure 8: effect of batch size (amazon-like workload)",
      "SLIDE outperforms at all batch sizes; gap widens from 64 to 256");
  bench::print_env(scale, threads);

  const auto data = make_synthetic_xc(amazon_like(scale));
  const long iterations = scale == Scale::kTiny ? 160 : 100;
  const long eval_every = std::max<long>(1, iterations / 5);
  const Index label_dim = data.train.label_dim();

  MarkdownTable summary({"batch", "engine", "best P@1", "train time (s)",
                         "s / iteration", "SLIDE speedup"});
  for (int batch : {64, 128, 256}) {
    // SLIDE (DWTA, the paper's amazon configuration).
    ConvergenceRecorder slide_rec("SLIDE b" + std::to_string(batch));
    {
      NetworkConfig cfg = bench::slide_config_for(
          data.train, HashFamilyKind::kDwta, 128, batch);
      Network network(cfg, threads);
      TrainerConfig tcfg;
      tcfg.batch_size = batch;
      tcfg.num_threads = threads;
      tcfg.learning_rate = 1e-3f;
      bench::run_slide_convergence(network, data.train, data.test, tcfg,
                                   iterations, eval_every, slide_rec, 500);
    }
    // Dense baseline.
    ConvergenceRecorder dense_rec("Dense b" + std::to_string(batch));
    {
      DenseNetwork::Config dcfg;
      dcfg.input_dim = data.train.feature_dim();
      dcfg.output_units = label_dim;
      dcfg.max_batch_size = batch;
      DenseNetwork dense(dcfg, threads);
      bench::run_dense_convergence(dense, data.train, data.test, batch,
                                   threads, 1e-3f, iterations, eval_every,
                                   dense_rec, 500);
    }
    // Sampled softmax at 10% budget.
    ConvergenceRecorder ssm_rec("SSM b" + std::to_string(batch));
    {
      NetworkConfig cfg = make_sampled_softmax_network(
          data.train.feature_dim(), label_dim,
          std::max<Index>(32, label_dim / 10));
      cfg.max_batch_size = batch;
      Network network(cfg, threads);
      TrainerConfig tcfg;
      tcfg.batch_size = batch;
      tcfg.num_threads = threads;
      tcfg.learning_rate = 1e-3f;
      bench::run_slide_convergence(network, data.train, data.test, tcfg,
                                   iterations, eval_every, ssm_rec, 500);
    }
    std::printf("\n-- batch %d --\n%s", batch,
                merge_to_markdown({&slide_rec, &dense_rec, &ssm_rec})
                    .c_str());

    const double slide_s = slide_rec.points().back().seconds;
    const double dense_s = dense_rec.points().back().seconds;
    const double ssm_s = ssm_rec.points().back().seconds;
    summary.add_row({fmt_int(batch), "SLIDE",
                     fmt(slide_rec.best_accuracy(), 3), fmt(slide_s, 1),
                     fmt(slide_s / iterations, 3), "1.0x"});
    summary.add_row({fmt_int(batch), "Dense(TF-role)",
                     fmt(dense_rec.best_accuracy(), 3), fmt(dense_s, 1),
                     fmt(dense_s / iterations, 3),
                     fmt(dense_s / slide_s, 2) + "x"});
    summary.add_row({fmt_int(batch), "SSM(10%)",
                     fmt(ssm_rec.best_accuracy(), 3), fmt(ssm_s, 1),
                     fmt(ssm_s / iterations, 3),
                     fmt(ssm_s / slide_s, 2) + "x"});
  }
  std::printf("\n== summary ==\n%s", summary.str().c_str());
  return 0;
}
