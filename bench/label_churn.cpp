// Label-churn serving bench: sustained qps and P@1 while the output label
// space churns through the InferenceEngine online-update path (add_units /
// retire_units + incremental training + republish), versus a no-churn
// baseline on the same model.
//
// Not a paper artifact — the paper trains on a fixed label universe. This
// measures the dynamic-label lifecycle the serving subsystem adds on top:
// a recommendation catalog where ~1% of the label space turns over per
// minute (new items appended, stale items tombstoned) must not cost the
// serving path its throughput or accuracy. Two in-bench gates enforce the
// PR's acceptance criteria (hard exit 1):
//   * P@1 under churn within 2 points of the no-churn baseline,
//   * qps under churn within 15% of the no-churn baseline.
// BENCH_churn.json carries the qps metrics into the bench_compare gate.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.h"

using namespace slide;

namespace {

struct LoadStats {
  std::uint64_t completed = 0;
  std::uint64_t hits = 0;  // top-1 in the sample's true label set
  std::uint64_t retried = 0;
  std::uint64_t failed = 0;
  double wall_seconds = 0.0;

  double qps() const {
    return wall_seconds > 0 ? static_cast<double>(completed) / wall_seconds
                            : 0.0;
  }
  double p_at_1() const {
    return completed > 0
               ? static_cast<double>(hits) / static_cast<double>(completed)
               : 0.0;
  }
};

/// Closed-loop clients scoring P@1 on the fly: top-1 counts as a hit when
/// it is one of the sample's true labels.
LoadStats closed_loop(InferenceEngine& engine, const Dataset& queries,
                      int clients, double seconds) {
  std::atomic<bool> running{true};
  std::atomic<std::uint64_t> completed{0}, hits{0}, retried{0}, failed{0};
  std::vector<std::thread> threads;
  WallTimer timer;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::size_t i = static_cast<std::size_t>(c) * 31;
      while (running.load(std::memory_order_relaxed)) {
        const Sample& sample = queries[i++ % queries.size()];
        auto f = engine.submit(sample.features, {.top_k = 1});
        if (!f.has_value()) {
          retried.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        try {
          const Prediction p = f->get();
          completed.fetch_add(1, std::memory_order_relaxed);
          if (!p.labels.empty() &&
              std::binary_search(sample.labels.begin(), sample.labels.end(),
                                 p.labels[0]))
            hits.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception&) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  while (timer.seconds() < seconds)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  running.store(false);
  for (auto& t : threads) t.join();
  return {completed.load(), hits.load(), retried.load(), failed.load(),
          timer.seconds()};
}

/// A serving clone of `master` (same weights, immutable role): the
/// engine's online master must stay distinct from the store's snapshot.
std::shared_ptr<Network> clone_network(const Network& master) {
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_weights(master, buffer);
  auto clone = std::make_shared<Network>(master.config(), 1);
  load_weights(*clone, buffer);
  return clone;
}

}  // namespace

int main() {
  const Scale scale = bench::env_scale(Scale::kTiny);
  const int max_threads = bench::env_threads();
  bench::print_header(
      "label_churn: qps + P@1 while ~1%/min of the label space churns",
      "dynamic-label serving beyond the paper (fixed-universe training)");
  bench::print_env(scale, max_threads);

  const SyntheticDataset data = make_synthetic_xc(delicious_like(scale));
  NetworkConfig net_cfg =
      bench::slide_config_for(data.train, HashFamilyKind::kSimhash,
                              /*hidden=*/64, /*max_batch=*/128);
  auto master = std::make_shared<Network>(net_cfg, max_threads);
  TrainerConfig tcfg;
  tcfg.batch_size = 128;
  tcfg.num_threads = max_threads;
  tcfg.learning_rate = 1e-3f;
  {
    Trainer trainer(*master, tcfg);
    trainer.train(data.train, 100);
    master->rebuild_all(&trainer.pool());
  }

  const double phase_seconds =
      scale == Scale::kTiny ? 1.5 : (scale == Scale::kSmall ? 3.0 : 6.0);
  const int clients = 2;
  const Index label_dim = data.train.label_dim();

  auto make_engine = [&](std::shared_ptr<ModelStore>& store_out) {
    store_out = std::make_shared<ModelStore>(
        std::static_pointer_cast<const Network>(clone_network(*master)));
    ServeConfig cfg;
    cfg.num_workers = 2;
    cfg.max_batch = 16;
    cfg.max_wait_us = 200;
    cfg.queue_capacity = 1 << 14;
    return std::make_unique<InferenceEngine>(store_out, cfg);
  };

  // ---- Phase A: no churn -------------------------------------------------
  LoadStats base;
  {
    std::shared_ptr<ModelStore> store;
    auto engine = make_engine(store);
    base = closed_loop(*engine, data.test, clients, phase_seconds);
    engine->stop();
  }
  std::printf("baseline: qps %.0f | P@1 %.4f | completed %llu | failed %llu\n",
              base.qps(), base.p_at_1(),
              static_cast<unsigned long long>(base.completed),
              static_cast<unsigned long long>(base.failed));

  // ---- Phase B: serve under churn ----------------------------------------
  // A churn thread drives the online-update path while the same client
  // load runs: each tick appends fresh labels, tombstones the ones
  // appended two ticks earlier (ephemeral-item catalog churn — the
  // planted ground-truth labels stay alive so P@1 remains comparable),
  // trains a few live samples against the fp32 master, and republishes a
  // snapshot. The tick budget is >= 1%/min of the label space, with at
  // least one add+retire per tick so the path is exercised even at tiny
  // label widths.
  const double tick_seconds = 0.2;
  const Index per_tick = std::max<Index>(
      1, static_cast<Index>(std::ceil(static_cast<double>(label_dim) * 0.01 *
                                      tick_seconds / 60.0)));
  LoadStats churn;
  ServeStats churn_stats;
  {
    std::shared_ptr<ModelStore> store;
    auto engine = make_engine(store);
    OnlineUpdateConfig ocfg;
    ocfg.learning_rate = 1e-3f;
    ocfg.publish_every = 1;
    ocfg.rebuild_threads = 1;
    engine->enable_online_updates(master, ocfg);

    std::atomic<bool> churning{true};
    std::thread churner([&] {
      const auto train_samples = data.train.samples();
      std::vector<Index> pending;  // appended ids not yet retired
      std::size_t cursor = 0;
      int ticks = 0;
      while (churning.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            tick_seconds));
        if (!churning.load(std::memory_order_relaxed)) break;
        OnlineDelta delta;
        delta.add_units = per_tick;
        const Index first_new = master->output_dim();
        // Retire the batch appended two ticks ago (now "stale items").
        if (pending.size() >= 2 * static_cast<std::size_t>(per_tick)) {
          delta.retire.assign(pending.begin(),
                              pending.begin() + per_tick);
          pending.erase(pending.begin(), pending.begin() + per_tick);
        }
        delta.samples.assign(train_samples.begin() + cursor,
                             train_samples.begin() + cursor + 8);
        cursor = (cursor + 8) % (train_samples.size() - 8);
        engine->update(delta);
        for (Index u = 0; u < per_tick; ++u)
          pending.push_back(first_new + u);
        ++ticks;
      }
      std::printf("  churn ticks: %d (%lld labels added+retired per tick)\n",
                  ticks, static_cast<long long>(per_tick));
    });
    churn = closed_loop(*engine, data.test, clients, phase_seconds);
    churning.store(false);
    churner.join();
    churn_stats = engine->stats();
    engine->stop();
  }
  std::printf("churn:    qps %.0f | P@1 %.4f | completed %llu | failed %llu "
              "| updates %llu | publishes %llu | +%llu/-%llu labels\n",
              churn.qps(), churn.p_at_1(),
              static_cast<unsigned long long>(churn.completed),
              static_cast<unsigned long long>(churn.failed),
              static_cast<unsigned long long>(churn_stats.online_update_calls),
              static_cast<unsigned long long>(churn_stats.online_publishes),
              static_cast<unsigned long long>(churn_stats.labels_added),
              static_cast<unsigned long long>(churn_stats.labels_retired));

  MarkdownTable table({"phase", "qps", "P@1", "completed", "retried",
                       "publishes"});
  table.add_row({"no churn", fmt(base.qps(), 0), fmt(base.p_at_1(), 4),
                 fmt_int(static_cast<long long>(base.completed)),
                 fmt_int(static_cast<long long>(base.retried)), "0"});
  table.add_row(
      {"1%/min churn", fmt(churn.qps(), 0), fmt(churn.p_at_1(), 4),
       fmt_int(static_cast<long long>(churn.completed)),
       fmt_int(static_cast<long long>(churn.retried)),
       fmt_int(static_cast<long long>(churn_stats.online_publishes))});
  table.print(std::cout);

  bench::Json json;
  json.begin_object();
  json.key("bench").string("label_churn");
  json.key("scale").string(bench::scale_name(scale));
  json.key("threads").number(static_cast<long long>(max_threads));
  json.key("clients").number(static_cast<long long>(clients));
  json.key("phase_seconds").number(phase_seconds);
  json.key("label_dim").number(static_cast<long long>(label_dim));
  json.key("churn_per_tick").number(static_cast<long long>(per_tick));
  json.key("baseline").begin_object();
  json.key("qps").number(base.qps());
  json.key("p_at_1").number(base.p_at_1());
  json.key("completed").number(static_cast<long long>(base.completed));
  json.end_object();
  json.key("churn").begin_object();
  json.key("qps").number(churn.qps());
  json.key("p_at_1").number(churn.p_at_1());
  json.key("completed").number(static_cast<long long>(churn.completed));
  json.key("updates").number(
      static_cast<long long>(churn_stats.online_update_calls));
  json.key("publishes").number(
      static_cast<long long>(churn_stats.online_publishes));
  json.key("labels_added").number(
      static_cast<long long>(churn_stats.labels_added));
  json.key("labels_retired").number(
      static_cast<long long>(churn_stats.labels_retired));
  json.end_object();
  json.end_object();
  json.write_file(bench::json_path("BENCH_churn.json"));

  // ---- Acceptance gates (correctness properties, gated here rather than
  // in bench_compare.py: they compare within-run, so machine speed cancels).
  bool ok = base.failed == 0 && churn.failed == 0;
  if (!ok)
    std::printf("FAILED: %llu failed requests\n",
                static_cast<unsigned long long>(base.failed + churn.failed));
  if (churn_stats.online_publishes == 0) {
    std::printf("FAILED: churn thread never published — online-update path "
                "not exercised\n");
    ok = false;
  }
  if (churn.p_at_1() < base.p_at_1() - 0.02) {
    std::printf("FAILED: P@1 under churn %.4f dropped more than 2 points "
                "below baseline %.4f\n",
                churn.p_at_1(), base.p_at_1());
    ok = false;
  }
  if (churn.qps() < 0.85 * base.qps()) {
    std::printf("FAILED: qps under churn %.0f fell below 85%% of baseline "
                "%.0f\n",
                churn.qps(), base.qps());
    ok = false;
  }
  if (ok)
    std::printf("churn gates: OK (P@1 within 2 points, qps within 15%%)\n");
  return ok ? 0 : 1;
}
