// Shared setup for the table/figure reproduction benches.
//
// Every bench binary runs argument-free on two cores in minutes. Two
// environment variables widen the workloads toward paper scale on bigger
// machines:
//   SLIDE_BENCH_SCALE   = tiny | small | medium | paper   (default: small)
//   SLIDE_BENCH_THREADS = N (default: all hardware threads)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "slide/slide.h"

namespace slide::bench {

inline Scale env_scale(Scale fallback = Scale::kSmall) {
  const char* env = std::getenv("SLIDE_BENCH_SCALE");
  return env == nullptr ? fallback : parse_scale(env);
}

inline int env_threads() {
  const char* env = std::getenv("SLIDE_BENCH_THREADS");
  const int n = env == nullptr ? 0 : std::atoi(env);
  return n > 0 ? n : hardware_threads();
}

inline const char* scale_name(Scale scale) {
  switch (scale) {
    case Scale::kTiny:
      return "tiny";
    case Scale::kSmall:
      return "small";
    case Scale::kMedium:
      return "medium";
    case Scale::kPaper:
      return "paper";
  }
  return "?";
}

/// Paper-architecture SLIDE config for a dataset: Simhash K=9 L=50
/// (delicious role) or DWTA K=8 L=50 (amazon role), tables on the output
/// layer, ~2% target active neurons (>=32). The paper reaches ~0.5% at
/// 200K-670K classes; at the scaled-down label widths used here a slightly
/// larger fraction keeps the absolute active count (and thus the softmax
/// negative coverage) comparable.
inline NetworkConfig slide_config_for(const Dataset& train,
                                      HashFamilyKind kind,
                                      Index hidden = 128,
                                      int max_batch = 256) {
  HashFamilyConfig family;
  family.kind = kind;
  family.k = kind == HashFamilyKind::kSimhash ? 9 : 8;
  family.l = 50;
  family.bin_size = 8;
  const Index target = std::max<Index>(32, train.label_dim() / 50);
  NetworkConfig cfg = make_paper_network(train.feature_dim(),
                                         train.label_dim(), family, target,
                                         hidden);
  cfg.max_batch_size = max_batch;
  cfg.layers[0].table.range_pow = 12;
  cfg.layers[0].table.bucket_size = 128;
  cfg.layers[0].rebuild.initial_period = 50;
  return cfg;
}

/// Trains SLIDE, recording (iteration, seconds, accuracy) every eval_every
/// iterations. Evaluation time is excluded from the recorded clock.
inline void run_slide_convergence(Network& network, const Dataset& train,
                                  const Dataset& test,
                                  const TrainerConfig& tcfg, long iterations,
                                  long eval_every, ConvergenceRecorder& rec,
                                  std::size_t eval_samples = 1'000) {
  Trainer trainer(network, tcfg);
  Batcher batcher(train, static_cast<std::size_t>(tcfg.batch_size),
                  tcfg.shuffle, tcfg.seed + 1);
  double train_seconds = 0.0;
  for (long i = 1; i <= iterations; ++i) {
    WallTimer step_timer;
    trainer.step(train, batcher.next());
    train_seconds += step_timer.seconds();
    if (i % eval_every == 0 || i == iterations) {
      const double acc =
          evaluate_p_at_1(network, test, trainer.pool(),
                          {.exact = true, .max_samples = eval_samples});
      rec.add({.iteration = i,
               .seconds = train_seconds,
               .accuracy = acc,
               .active_fraction =
                   network.output_layer().average_active_fraction()});
    }
  }
}

/// Same for the dense full-softmax baseline (TF-CPU role).
inline void run_dense_convergence(DenseNetwork& network, const Dataset& train,
                                  const Dataset& test, int batch_size,
                                  int threads, float lr, long iterations,
                                  long eval_every, ConvergenceRecorder& rec,
                                  std::size_t eval_samples = 1'000) {
  ThreadPool pool(threads);
  Batcher batcher(train, static_cast<std::size_t>(batch_size), true, 11);
  double train_seconds = 0.0;
  for (long i = 1; i <= iterations; ++i) {
    WallTimer step_timer;
    network.step(train, batcher.next(), lr, pool);
    train_seconds += step_timer.seconds();
    if (i % eval_every == 0 || i == iterations) {
      const double acc = evaluate_p_at_1(
          network, test, pool, {.max_samples = eval_samples});
      rec.add({.iteration = i, .seconds = train_seconds, .accuracy = acc});
    }
  }
}

/// Minimal streaming JSON writer for machine-readable bench artifacts
/// (BENCH_*.json), so the perf trajectory is trackable across PRs without
/// scraping stdout tables. Strings are escaped, and write_file() is atomic
/// (temp file + rename): the CI regression gate parses these artifacts, and
/// a bench killed mid-write must not leave a truncated document behind.
class Json {
 public:
  Json& begin_object() { return open('{'); }
  Json& end_object() { return close('}'); }
  Json& begin_array() { return open('['); }
  Json& end_array() { return close(']'); }
  Json& key(const char* name) {
    comma();
    append_quoted(name);
    out_ += ':';
    pending_value_ = true;
    return *this;
  }
  Json& number(double v) {
    comma();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out_ += buf;
    return *this;
  }
  Json& number(long long v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  Json& string(const char* v) {
    comma();
    append_quoted(v);
    return *this;
  }
  const std::string& str() const { return out_; }

  /// Writes the document to `path` atomically (and says so on stdout):
  /// the bytes land in `path + ".tmp"` first and only a complete, flushed
  /// file is renamed into place — rename(2) within a directory is atomic,
  /// so readers see either the old artifact or the new one, never a
  /// truncated mix.
  void write_file(const std::string& path) const {
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      std::printf("[json] cannot open %s\n", tmp.c_str());
      return;
    }
    const std::size_t written = std::fwrite(out_.data(), 1, out_.size(), f);
    const bool ok = written == out_.size() && std::fputc('\n', f) != EOF &&
                    std::fflush(f) == 0;
    std::fclose(f);
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::printf("[json] failed to write %s\n", path.c_str());
      std::remove(tmp.c_str());
      return;
    }
    std::printf("[json] wrote %s (%zu bytes)\n", path.c_str(), out_.size());
  }

 private:
  Json& open(char c) {
    comma();
    out_ += c;
    need_comma_ = false;
    return *this;
  }
  Json& close(char c) {
    out_ += c;
    need_comma_ = true;
    return *this;
  }
  void comma() {
    if (pending_value_) {
      pending_value_ = false;  // value right after a key: no comma
      need_comma_ = true;
      return;
    }
    if (need_comma_) out_ += ',';
    need_comma_ = true;
  }
  void append_quoted(const char* s) {
    out_ += '"';
    for (; s != nullptr && *s != '\0'; ++s) {
      const unsigned char c = static_cast<unsigned char>(*s);
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\t':
          out_ += "\\t";
          break;
        case '\r':
          out_ += "\\r";
          break;
        default:
          if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += static_cast<char>(c);
          }
      }
    }
    out_ += '"';
  }
  std::string out_;
  bool need_comma_ = false;
  bool pending_value_ = false;
};

/// Output path for a bench's JSON artifact: $SLIDE_BENCH_JSON_DIR/<name>
/// (default: current directory).
inline std::string json_path(const char* name) {
  const char* dir = std::getenv("SLIDE_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return name;
  std::string path(dir);
  if (path.back() != '/') path += '/';
  return path + name;
}

inline void print_header(const char* artifact, const char* paper_summary) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", artifact);
  std::printf("Paper: %s\n", paper_summary);
  std::printf("================================================================\n");
}

inline void print_env(Scale scale, int threads) {
  std::printf("[env] scale=%s threads=%d simd=%s (detected %s) thp=%s\n",
              scale_name(scale), threads,
              simd::to_string(simd::active_level()),
              simd::to_string(simd::detected_level()), thp_mode().c_str());
}

}  // namespace slide::bench
