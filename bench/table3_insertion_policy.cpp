// Table 3 — "Time taken by hash table insertion schemes": Reservoir
// Sampling vs FIFO, separated into pure table insertion ("Insertion to
// HT") and the full pipeline including hash-code computation ("Full
// Insertion"), for the Delicious output layer's 205,443 neurons.
//
// Paper values: Reservoir 0.371s vs FIFO 0.762s insertion-only; both ~18s
// full insertion — i.e. hashing dominates and the policy choice is nearly
// free, which is why the paper uses FIFO in its experiments.
#include "bench_common.h"

using namespace slide;

int main() {
  const Scale scale = bench::env_scale();
  const int threads = bench::env_threads();
  bench::print_header(
      "Table 3: hash-table insertion policy timing",
      "Reservoir 0.371s vs FIFO 0.762s (insert-only); ~18s full (hashing "
      "dominates)");
  bench::print_env(scale, threads);

  // The paper inserts the full Delicious label layer; smaller scales shrink
  // the neuron count but keep K=9, L=50 and bucket size 128.
  const Index neurons = scale == Scale::kPaper    ? 205'443
                        : scale == Scale::kMedium ? 100'000
                        : scale == Scale::kSmall  ? 50'000
                                                  : 10'000;
  const Index fan_in = 128;
  Rng rng(3);
  std::vector<float> rows(static_cast<std::size_t>(neurons) * fan_in);
  for (auto& w : rows) w = 0.2f * rng.normal();

  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 9;
  family.l = 50;
  family.dim = fan_in;
  const auto hasher = make_hash_family(family);

  // Precompute all keys once so "Insertion to HT" excludes hashing.
  WallTimer hash_timer;
  std::vector<std::uint32_t> keys(static_cast<std::size_t>(neurons) * 50);
  {
    ThreadPool pool(threads);
    pool.parallel_range(neurons, [&](std::size_t b, std::size_t e, int) {
      for (std::size_t i = b; i < e; ++i) {
        hasher->hash_dense(rows.data() + i * fan_in,
                           {keys.data() + i * 50, 50});
      }
    });
  }
  const double hashing_seconds = hash_timer.seconds();

  MarkdownTable table({"policy", "insertion to HT (s)", "full insertion (s)",
                       "hash-code share"});
  for (auto policy : {InsertionPolicy::kReservoir, InsertionPolicy::kFifo}) {
    LshTableGroup tables(make_hash_family(family),
                         {.range_pow = 12, .bucket_size = 128,
                          .policy = policy});
    // Insertion-only: keys precomputed.
    Rng ins_rng(7);
    WallTimer insert_timer;
    for (Index i = 0; i < neurons; ++i) {
      tables.insert(i, {keys.data() + static_cast<std::size_t>(i) * 50, 50},
                    ins_rng);
    }
    const double insert_seconds = insert_timer.seconds();

    // Full insertion: hash + insert (single-threaded like the paper table).
    tables.clear();
    Rng full_rng(9);
    WallTimer full_timer;
    for (Index i = 0; i < neurons; ++i) {
      tables.insert_dense(i, rows.data() + static_cast<std::size_t>(i) * fan_in,
                          full_rng);
    }
    const double full_seconds = full_timer.seconds();

    table.add_row({policy == InsertionPolicy::kReservoir ? "Reservoir"
                                                         : "FIFO",
                   fmt(insert_seconds, 3), fmt(full_seconds, 3),
                   fmt_pct(1.0 - insert_seconds / full_seconds, 1)});
  }
  std::printf("%s", table.str().c_str());
  std::printf("\n(parallel hashing of all %u neurons for reference: %.3fs "
              "on %d threads)\n", neurons, hashing_seconds, threads);
  std::printf("Reading: hashing dominates full insertion, so either policy "
              "is viable — the paper picks FIFO.\n");
  return 0;
}
