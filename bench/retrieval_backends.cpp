// Retrieval backend shoot-out: recall@10 and queries/sec for each
// src/retrieval/ backend (exact scan, (K, L) LSH tables, HNSW graph) over
// the same clustered vector collection.
//
// Not a paper figure — the paper fixes the LSH sampler; this tracks the
// candidate-generation tradeoff surface the retrieval subsystem opens up.
// Clustered data (points = cluster center + noise, unit-normalized) is the
// regime ANN indexes are built for; uniform random vectors in high
// dimension have no neighborhood structure to exploit and every backend
// degenerates to a scan.
//
// Gate (CI enforces via bench_compare.py on BENCH_retrieval.json): HNSW
// must hold recall@10 >= 0.9 while beating the exact scan's qps.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"

using namespace slide;

namespace {

std::vector<Index> exact_topk(const retrieval::RowView& rows, const float* q,
                              int k) {
  std::vector<std::pair<float, Index>> scored(rows.count);
  for (Index i = 0; i < rows.count; ++i)
    scored[i] = {simd::dot(q, rows.row(i), rows.dim), i};
  const auto mid = scored.begin() + std::min<std::ptrdiff_t>(k, scored.size());
  std::partial_sort(scored.begin(), mid, scored.end(), std::greater<>());
  std::vector<Index> top;
  for (auto it = scored.begin(); it != mid; ++it) top.push_back(it->second);
  return top;
}

}  // namespace

int main() {
  const Scale scale = bench::env_scale(Scale::kTiny);
  const int max_threads = bench::env_threads();
  bench::print_header(
      "retrieval_backends: recall@10 and qps per retrieval backend",
      "candidate generation beyond the paper's fixed LSH sampler (§2 MIPS "
      "framing)");
  bench::print_env(scale, max_threads);

  const Index n = scale == Scale::kTiny     ? 8'000
                  : scale == Scale::kSmall  ? 20'000
                  : scale == Scale::kMedium ? 50'000
                                            : 100'000;
  const Index dim = 128;
  const int queries = scale == Scale::kTiny ? 100 : 200;
  constexpr int kTopK = 10;
  constexpr Index kLshBudget = 512;

  // Clustered collection: ~100 points per cluster, unit-normalized.
  const Index clusters = std::max<Index>(n / 100, 1);
  Rng rng(2024);
  std::vector<float> centers(static_cast<std::size_t>(clusters) * dim);
  for (float& v : centers) v = rng.normal();
  std::vector<float> storage(static_cast<std::size_t>(n) * dim);
  for (Index r = 0; r < n; ++r) {
    const float* center =
        centers.data() + static_cast<std::size_t>(r % clusters) * dim;
    float* row = storage.data() + static_cast<std::size_t>(r) * dim;
    float norm = 0.0f;
    for (Index d = 0; d < dim; ++d) {
      row[d] = center[d] + 0.35f * rng.normal();
      norm += row[d] * row[d];
    }
    norm = std::sqrt(norm);
    for (Index d = 0; d < dim; ++d) row[d] /= norm;
  }
  const retrieval::RowView rows{storage.data(), dim, n};

  // Queries: perturbed stored vectors; oracle answers computed up front.
  Rng qrng(7);
  std::vector<std::vector<float>> query_set;
  std::vector<std::vector<Index>> truth;
  for (int q = 0; q < queries; ++q) {
    const Index base = qrng.uniform(n);
    std::vector<float> query(rows.row(base), rows.row(base) + dim);
    for (auto& v : query) v += 0.1f * qrng.normal();
    truth.push_back(exact_topk(rows, query.data(), kTopK));
    query_set.push_back(std::move(query));
  }

  ThreadPool pool(max_threads);

  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 7;
  family.l = 32;
  family.dim = dim;
  SamplingConfig sampling;
  sampling.strategy = SamplingStrategy::kTopK;
  sampling.target = kLshBudget;
  retrieval::LshRetriever lsh(make_hash_family(family),
                              {.range_pow = 14, .bucket_size = 64}, sampling,
                              rows, /*seed=*/42);
  retrieval::ExactRetriever exact(rows);
  const retrieval::HnswConfig hnsw_cfg;  // library defaults
  retrieval::HnswRetriever hnsw(rows, hnsw_cfg, /*seed=*/42);

  struct Backend {
    const char* name;
    retrieval::Retriever* index;
    Index budget;
  };
  const Backend backends[] = {
      {"exact", &exact, n},
      {"lsh", &lsh, kLshBudget},
      {"hnsw", &hnsw, static_cast<Index>(hnsw_cfg.ef_search)}};

  bench::Json json;
  json.begin_object();
  json.key("bench").string("retrieval_backends");
  json.key("scale").string(bench::scale_name(scale));
  json.key("n").number(static_cast<long long>(n));
  json.key("dim").number(static_cast<long long>(dim));
  json.key("queries").number(static_cast<long long>(queries));
  json.key("backends").begin_array();

  MarkdownTable table(
      {"backend", "build(s)", "recall@10", "qps", "index MB"});
  VisitedSet visited(n);
  std::vector<Index> candidates;
  double exact_qps = 0.0, hnsw_qps = 0.0, hnsw_recall = 0.0;
  for (const Backend& b : backends) {
    WallTimer build_timer;
    b.index->rebuild(&pool);
    const double build_s = build_timer.seconds();

    Rng srng(99);
    double recall = 0.0;
    WallTimer query_timer;
    for (std::size_t q = 0; q < query_set.size(); ++q) {
      const float* query = query_set[q].data();
      candidates.clear();
      b.index->retrieve({}, std::span<const float>(query, dim), b.budget,
                        srng, visited, candidates);
      // Re-rank candidates by exact dot product, keep the best k.
      std::vector<std::pair<float, Index>> scored;
      scored.reserve(candidates.size());
      for (Index c : candidates)
        scored.emplace_back(simd::dot(query, rows.row(c), dim), c);
      const std::size_t take =
          std::min<std::size_t>(kTopK, scored.size());
      std::partial_sort(scored.begin(),
                        scored.begin() + static_cast<std::ptrdiff_t>(take),
                        scored.end(), std::greater<>());
      std::vector<Index> top(take);
      for (std::size_t i = 0; i < take; ++i) top[i] = scored[i].second;
      recall += recall_at_k(top, truth[q]);
    }
    const double seconds = query_timer.seconds();
    const double qps = static_cast<double>(query_set.size()) / seconds;
    recall /= static_cast<double>(query_set.size());
    const double index_mb =
        static_cast<double>(b.index->memory_bytes()) / (1 << 20);
    table.add_row({b.name, fmt(build_s, 2), fmt(recall, 3), fmt(qps, 0),
                   fmt(index_mb, 1)});
    json.begin_object();
    json.key("name").string(b.name);
    json.key("build_seconds").number(build_s);
    json.key("recall_at_10").number(recall);
    json.key("qps").number(qps);
    json.key("index_mb").number(index_mb);
    json.end_object();
    if (b.index == &exact) exact_qps = qps;
    if (b.index == &hnsw) {
      hnsw_qps = qps;
      hnsw_recall = recall;
    }
  }
  json.end_array();
  // Scale-invariant ratio: survives machine-speed changes under
  // bench_compare.py --relative.
  json.key("speedup_hnsw_vs_exact_qps").number(hnsw_qps / exact_qps);
  json.end_object();
  table.print(std::cout);
  std::printf("hnsw vs exact: %.2fx qps at recall@10 %.3f\n",
              hnsw_qps / exact_qps, hnsw_recall);
  json.write_file(bench::json_path("BENCH_retrieval.json"));

  if (hnsw_recall < 0.9) {
    std::printf("FAILED: hnsw recall@10 %.3f < 0.9\n", hnsw_recall);
    return 1;
  }
  if (hnsw_qps <= exact_qps) {
    std::printf("FAILED: hnsw qps %.0f <= exact qps %.0f\n", hnsw_qps,
                exact_qps);
    return 1;
  }
  return 0;
}
