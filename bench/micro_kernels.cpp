// Micro-benchmarks (google-benchmark) for the SIMD math kernels: the
// dispatched vector paths against their scalar references at the fan-in
// sizes the engine actually uses (128 = hidden width; 4096 = wide-embedding
// column strips). Drives the dispatch through the deprecated on/off shim
// (arg 1 = best detected level, 0 = scalar) so the historical BENCH
// metric names stay stable; bench/micro_backend sweeps the explicit
// per-level tables.
#include <benchmark/benchmark.h>

#include <vector>

#include "simd/kernels.h"
#include "sys/rng.h"

namespace slide {
namespace {

std::vector<float> vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

void BM_Dot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  simd::set_simd_level(state.range(1) != 0 ? simd::detected_level()
                                           : simd::SimdLevel::kScalar);
  const auto a = vec(n, 1), b = vec(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::dot(a.data(), b.data(), n));
  }
  state.SetLabel(simd::to_string(simd::active_level()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          2 * sizeof(float));
  simd::set_simd_level(simd::detected_level());
}
BENCHMARK(BM_Dot)->Args({128, 1})->Args({128, 0})->Args({4096, 1})->Args({4096, 0});

void BM_Axpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  simd::set_simd_level(state.range(1) != 0 ? simd::detected_level()
                                           : simd::SimdLevel::kScalar);
  const auto x = vec(n, 3);
  auto y = vec(n, 4);
  for (auto _ : state) {
    simd::axpy(0.37f, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetLabel(simd::to_string(simd::active_level()));
  simd::set_simd_level(simd::detected_level());
}
BENCHMARK(BM_Axpy)->Args({128, 1})->Args({128, 0})->Args({4096, 1})->Args({4096, 0});

void BM_SparseDotGather(benchmark::State& state) {
  const auto nnz = static_cast<std::size_t>(state.range(0));
  simd::set_simd_level(state.range(1) != 0 ? simd::detected_level()
                                           : simd::SimdLevel::kScalar);
  const auto dense = vec(100'000, 5);
  Rng rng(6);
  std::vector<Index> idx(nnz);
  std::vector<float> val(nnz);
  for (std::size_t i = 0; i < nnz; ++i) {
    idx[i] = rng.uniform(100'000);
    val[i] = rng.uniform_float();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simd::sparse_dot(idx.data(), val.data(), nnz, dense.data()));
  }
  state.SetLabel(simd::to_string(simd::active_level()));
  simd::set_simd_level(simd::detected_level());
}
BENCHMARK(BM_SparseDotGather)->Args({75, 1})->Args({75, 0});

void BM_Softmax(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = vec(n, 7);
  std::vector<float> work(n);
  for (auto _ : state) {
    work = x;
    simd::softmax_inplace(work.data(), n);
    benchmark::DoNotOptimize(work.data());
  }
}
BENCHMARK(BM_Softmax)->Arg(1000)->Arg(16'000);

void BM_AdamStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  simd::set_simd_level(state.range(1) != 0 ? simd::detected_level()
                                           : simd::SimdLevel::kScalar);
  auto w = vec(n, 8), m = vec(n, 9), v = vec(n, 10);
  for (auto& x : v) x = x * x;  // second moment must be non-negative
  const auto g = vec(n, 11);
  for (auto _ : state) {
    simd::adam_step(w.data(), m.data(), v.data(), g.data(), n, 1e-3f, 0.9f,
                    0.999f, 1e-8f, 0.1f, 0.001f);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetLabel(simd::to_string(simd::active_level()));
  simd::set_simd_level(simd::detected_level());
}
BENCHMARK(BM_AdamStep)->Args({128, 1})->Args({128, 0});

}  // namespace
}  // namespace slide
