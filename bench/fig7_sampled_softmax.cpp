// Figure 7 — SLIDE vs Sampled Softmax (static uniform sampling), time-wise
// and iteration-wise.
//
// Paper shape: with a *comparable* sample budget, sampled softmax's
// uninformative static sampling saturates at much lower accuracy; it needs
// ~20% of all classes to be competitive while SLIDE uses ~0.5%. On
// Amazon-670K, SSM rises faster early (cheaper sampling) then flattens
// below SLIDE.
#include "bench_common.h"

using namespace slide;

int main() {
  const Scale scale = bench::env_scale();
  const int threads = bench::env_threads();
  bench::print_header(
      "Figure 7: SLIDE vs Sampled Softmax (static sampling baseline)",
      "equal-budget SSM saturates below SLIDE; SSM needs ~20% of classes "
      "for decent accuracy vs SLIDE's ~0.5%");
  bench::print_env(scale, threads);

  const auto data = make_synthetic_xc(delicious_like(scale));
  const long iterations = scale == Scale::kTiny ? 250 : 150;
  const long eval_every = std::max<long>(1, iterations / 8);
  const Index label_dim = data.train.label_dim();
  const Index slide_budget = std::max<Index>(32, label_dim / 100);  // ~1%

  // SLIDE with its ~1% adaptive budget.
  ConvergenceRecorder slide_rec("SLIDE(1%)");
  {
    NetworkConfig cfg =
        bench::slide_config_for(data.train, HashFamilyKind::kSimhash);
    Network network(cfg, threads);
    TrainerConfig tcfg;
    tcfg.batch_size = 128;
    tcfg.num_threads = threads;
    tcfg.learning_rate = 1e-3f;
    bench::run_slide_convergence(network, data.train, data.test, tcfg,
                                 iterations, eval_every, slide_rec);
  }

  // Sampled softmax at the SAME budget (the unfair-to-SSM comparison the
  // paper highlights) and at 20x the budget (what SSM actually needs).
  auto run_ssm = [&](Index budget, const char* name) {
    NetworkConfig cfg = make_sampled_softmax_network(
        data.train.feature_dim(), label_dim, budget);
    cfg.max_batch_size = 128;
    Network network(cfg, threads);
    TrainerConfig tcfg;
    tcfg.batch_size = 128;
    tcfg.num_threads = threads;
    tcfg.learning_rate = 1e-3f;
    ConvergenceRecorder rec(name);
    bench::run_slide_convergence(network, data.train, data.test, tcfg,
                                 iterations, eval_every, rec);
    return rec;
  };
  const ConvergenceRecorder ssm_equal =
      run_ssm(slide_budget, "SSM(equal-budget)");
  const ConvergenceRecorder ssm_large = run_ssm(
      std::min<Index>(label_dim, slide_budget * 20), "SSM(20x-budget)");

  std::printf("%s\n",
              merge_to_markdown({&slide_rec, &ssm_equal, &ssm_large})
                  .c_str());

  MarkdownTable summary({"engine", "sampled classes", "final P@1",
                         "best P@1"});
  summary.add_row({"SLIDE adaptive", fmt_int(slide_budget),
                   fmt(slide_rec.points().back().accuracy, 3),
                   fmt(slide_rec.best_accuracy(), 3)});
  summary.add_row({"SSM static", fmt_int(slide_budget),
                   fmt(ssm_equal.points().back().accuracy, 3),
                   fmt(ssm_equal.best_accuracy(), 3)});
  summary.add_row({"SSM static", fmt_int(std::min<Index>(label_dim,
                                                         slide_budget * 20)),
                   fmt(ssm_large.points().back().accuracy, 3),
                   fmt(ssm_large.best_accuracy(), 3)});
  std::printf("%s", summary.str().c_str());
  std::printf("\nReading: at equal budget, input-adaptive LSH sampling "
              "dominates static sampling —\nthe paper's core argument for "
              "LSH-driven selection.\n");
  return 0;
}
