// Ablations of the design choices called out in DESIGN.md §5 (the paper's
// §4 "Reducing Overhead" heuristics and §3 data-structure choices):
//   1. sampling strategy (vanilla / topk / hard-threshold) — accuracy cost
//   2. bucket replacement policy (reservoir / fifo) — end-to-end effect
//   3. hash family (simhash / wta / dwta / doph) on the same workload
//   4. rebuild schedule (exponential decay / fixed period / never)
//   5. HOGWILD vs mutex-locked gradient accumulation
//   6. incremental Simhash re-hash vs full re-hash — rebuild cost
#include "bench_common.h"

using namespace slide;

namespace {

struct Arm {
  std::string name;
  double seconds = 0.0;
  double accuracy = 0.0;
  long rebuilds = 0;
};

Arm run_arm(const std::string& name, const SyntheticDataset& data,
            NetworkConfig cfg, int threads, long iterations,
            bool hogwild = true) {
  Arm arm{name};
  Network network(cfg, threads);
  TrainerConfig tcfg;
  tcfg.batch_size = 128;
  tcfg.num_threads = threads;
  tcfg.learning_rate = 1e-3f;
  tcfg.hogwild = hogwild;
  Trainer trainer(network, tcfg);
  WallTimer timer;
  trainer.train(data.train, iterations);
  arm.seconds = timer.seconds();
  arm.accuracy = evaluate_p_at_1(network, data.test, trainer.pool(),
                                 {.exact = true, .max_samples = 1'000});
  arm.rebuilds = network.output_layer().rebuild_count();
  return arm;
}

void print_arms(const char* title, const std::vector<Arm>& arms) {
  std::printf("\n-- %s --\n", title);
  MarkdownTable table({"variant", "train time (s)", "P@1", "rebuilds"});
  for (const Arm& a : arms) {
    table.add_row({a.name, fmt(a.seconds, 2), fmt(a.accuracy, 3),
                   fmt_int(a.rebuilds)});
  }
  std::printf("%s", table.str().c_str());
}

}  // namespace

int main() {
  const Scale scale = bench::env_scale(Scale::kTiny);  // many arms: keep small
  const int threads = bench::env_threads();
  bench::print_header(
      "Ablations: the design choices of paper §3-§4",
      "vanilla sampling, FIFO buckets, per-dataset hash family, exp-decay "
      "rebuilds, HOGWILD updates");
  bench::print_env(scale, threads);

  const auto data = make_synthetic_xc(delicious_like(scale));
  const long iterations = 150;
  const auto base = [&] {
    return bench::slide_config_for(data.train, HashFamilyKind::kSimhash);
  };

  // 1. Sampling strategies.
  {
    std::vector<Arm> arms;
    for (auto strategy :
         {SamplingStrategy::kVanilla, SamplingStrategy::kTopK,
          SamplingStrategy::kHardThreshold}) {
      NetworkConfig cfg = base();
      cfg.layers[0].sampling.strategy = strategy;
      cfg.layers[0].sampling.hard_threshold_m = 2;
      arms.push_back(run_arm(to_string(strategy), data, cfg, threads,
                             iterations));
    }
    print_arms("sampling strategy (paper §4.1 / appendix C.1)", arms);
    std::printf("expectation: near-equal accuracy; vanilla cheapest "
                "(paper uses vanilla)\n");
  }

  // 2. Bucket replacement policy.
  {
    std::vector<Arm> arms;
    for (auto policy : {InsertionPolicy::kReservoir, InsertionPolicy::kFifo}) {
      NetworkConfig cfg = base();
      cfg.layers[0].table.policy = policy;
      arms.push_back(run_arm(policy == InsertionPolicy::kReservoir
                                 ? "reservoir"
                                 : "fifo",
                             data, cfg, threads, iterations));
    }
    print_arms("bucket replacement policy (paper §4.2 / Table 3)", arms);
    std::printf("expectation: near-identical — policy cost is negligible\n");
  }

  // 3. Hash family.
  {
    std::vector<Arm> arms;
    for (auto kind : {HashFamilyKind::kSimhash, HashFamilyKind::kWta,
                      HashFamilyKind::kDwta, HashFamilyKind::kDoph}) {
      NetworkConfig cfg = bench::slide_config_for(data.train, kind);
      arms.push_back(run_arm(to_string(kind), data, cfg, threads,
                             iterations));
    }
    print_arms("hash family (paper §3.2 / appendix A)", arms);
    std::printf("expectation: all train; simhash fits this cosine-shaped "
                "hidden space best\n");
  }

  // 4. Rebuild schedule.
  {
    std::vector<Arm> arms;
    {
      NetworkConfig cfg = base();  // exponential decay (default)
      arms.push_back(
          run_arm("exp-decay (N0=50)", data, cfg, threads, iterations));
    }
    {
      NetworkConfig cfg = base();
      cfg.layers[0].rebuild.decay = 0.0;  // fixed period
      arms.push_back(
          run_arm("fixed period 50", data, cfg, threads, iterations));
    }
    {
      NetworkConfig cfg = base();
      cfg.layers[0].rebuild.enabled = false;  // never refresh
      arms.push_back(run_arm("never rebuild", data, cfg, threads,
                             iterations));
    }
    print_arms("hash-table rebuild schedule (paper §4.2 heuristic 1)", arms);
    std::printf("expectation: stale tables degrade adaptivity; decay saves "
                "rebuild time late in training\n");
  }

  // 5. HOGWILD vs locked accumulation.
  {
    std::vector<Arm> arms;
    arms.push_back(
        run_arm("hogwild (lock-free)", data, base(), threads, iterations));
    arms.push_back(run_arm("mutex-locked", data, base(), threads, iterations,
                           /*hogwild=*/false));
    print_arms("gradient accumulation (paper §3.1, HOGWILD)", arms);
    std::printf("expectation: same accuracy; locking adds serialization "
                "cost that grows with threads\n");
  }

  // 6. Incremental Simhash re-hash: isolate the rebuild cost.
  {
    std::vector<Arm> arms;
    {
      NetworkConfig cfg = base();
      cfg.layers[0].rebuild.initial_period = 10;  // rebuild often
      cfg.layers[0].rebuild.decay = 0.0;
      arms.push_back(run_arm("full re-hash, period 10", data, cfg, threads,
                             iterations));
    }
    {
      NetworkConfig cfg = base();
      cfg.layers[0].rebuild.initial_period = 10;
      cfg.layers[0].rebuild.decay = 0.0;
      cfg.layers[0].incremental_rehash = true;
      arms.push_back(run_arm("incremental re-hash, period 10", data, cfg,
                             threads, iterations));
    }
    print_arms("incremental Simhash re-hash (paper §4.2 heuristic 3)", arms);
    std::printf(
        "expectation: same accuracy; incremental shifts cost from rebuild "
        "(O(K*L*d/3) per neuron)\nto update time (O(d') per changed weight) "
        "— it wins when upstream activations are sparse,\nand is ~neutral "
        "here where every fan-in weight of a touched neuron changes\n");
  }
  return 0;
}
