// Table 4 — CPU-counter metrics with and without Transparent Hugepages.
//
// Paper values (VTune/PMU): dTLB load miss rate 5.12% -> 0.25%, page-table-
// walk cycle share 7.74% -> 0.72%, page faults 32,548/s -> 26,527/s.
//
// Substitution (DESIGN.md §3): this container exposes no PMU (TLB/PTW
// counters) and its kernel reports getrusage fault counts as zero, so we
// report what is observable — AnonHugePages mapped, resident set, context
// switches, fault counters where available — plus the end-to-end time
// delta, for an identical training run under THP on/off.
#include "bench_common.h"

using namespace slide;

namespace {

struct RunResult {
  double seconds = 0.0;
  PerfSnapshot delta;
  std::uint64_t anon_huge_bytes = 0;
};

RunResult run(const SyntheticDataset& data, int threads, long iterations,
              bool thp) {
  set_hugepages_enabled(thp);
  NetworkConfig cfg =
      bench::slide_config_for(data.train, HashFamilyKind::kSimhash);
  Network network(cfg, threads);
  TrainerConfig tcfg;
  tcfg.batch_size = 128;
  tcfg.num_threads = threads;
  Trainer trainer(network, tcfg);
  const PerfSnapshot before = PerfSnapshot::now();
  WallTimer timer;
  trainer.train(data.train, iterations);
  RunResult r;
  r.seconds = timer.seconds();
  r.delta = PerfSnapshot::now() - before;
  r.anon_huge_bytes = anon_hugepage_bytes();
  set_hugepages_enabled(true);
  return r;
}

std::string per_second(std::uint64_t count, double seconds) {
  return fmt(static_cast<double>(count) / std::max(seconds, 1e-9), 0) + "/s";
}

}  // namespace

int main() {
  const Scale scale = bench::env_scale();
  const int threads = bench::env_threads();
  bench::print_header(
      "Table 4: CPU-counter metrics with/without Transparent Hugepages",
      "paper: dTLB miss 5.12%->0.25%, PTW cycles 7.74%->0.72%, page faults "
      "32548/s->26527/s");
  bench::print_env(scale, threads);
  std::printf("[thp] kernel mode=%s, madvise %s\n", thp_mode().c_str(),
              hugepages_supported() ? "available" : "unavailable");

  const auto data = make_synthetic_xc(delicious_like(scale));
  const long iterations = scale == Scale::kTiny ? 120 : 60;

  const RunResult without = run(data, threads, iterations, false);
  const RunResult with = run(data, threads, iterations, true);

  MarkdownTable table({"metric", "without hugepages", "with hugepages"});
  table.add_row({"train time (s)", fmt(without.seconds, 2),
                 fmt(with.seconds, 2)});
  table.add_row({"AnonHugePages mapped (MB)",
                 fmt(static_cast<double>(without.anon_huge_bytes) / (1 << 20), 1),
                 fmt(static_cast<double>(with.anon_huge_bytes) / (1 << 20), 1)});
  table.add_row({"resident set (MB)",
                 fmt(static_cast<double>(without.delta.resident_set_bytes) /
                         (1 << 20), 1),
                 fmt(static_cast<double>(with.delta.resident_set_bytes) /
                         (1 << 20), 1)});
  table.add_row({"minor page faults",
                 per_second(without.delta.minor_page_faults, without.seconds),
                 per_second(with.delta.minor_page_faults, with.seconds)});
  table.add_row({"major page faults",
                 per_second(without.delta.major_page_faults, without.seconds),
                 per_second(with.delta.major_page_faults, with.seconds)});
  table.add_row({"involuntary ctx switches",
                 per_second(without.delta.involuntary_ctx_switches,
                            without.seconds),
                 per_second(with.delta.involuntary_ctx_switches,
                            with.seconds)});
  table.add_row({"user CPU (s)", fmt(without.delta.user_cpu_seconds, 2),
                 fmt(with.delta.user_cpu_seconds, 2)});
  table.add_row({"system CPU (s)", fmt(without.delta.system_cpu_seconds, 2),
                 fmt(with.delta.system_cpu_seconds, 2)});
  std::printf("%s", table.str().c_str());

  std::printf(
      "\nNotes: PMU counters (dTLB/iTLB miss rates, page-table-walk cycles) "
      "are not exposed in this\ncontainer, and some sandboxed kernels "
      "report getrusage fault counts as zero — the paper's\nTLB-reach "
      "mechanism is then visible through AnonHugePages adoption and the "
      "time delta.\nTHP speedup here: %.2fx (paper: ~1.3x at 200K-670K-"
      "class scale; grows with footprint).\n",
      without.seconds / with.seconds);

  // The quantized inference mirrors share the hugepage allocator: report
  // how many mirror bytes THP actually backs per precision tier (the
  // all-or-nothing madvise verdict surfaced through memory_footprint).
  std::printf("\nInference-mirror THP adoption:\n");
  bench::Json json;
  json.begin_object();
  json.key("bench").string("table4_hugepages");
  json.key("thp_mode").string(thp_mode().c_str());
  json.key("madvise_available").number(
      static_cast<long long>(hugepages_supported() ? 1 : 0));
  json.key("iterations").number(static_cast<long long>(iterations));
  json.key("threads").number(static_cast<long long>(threads));
  auto emit_run = [&json](const char* name, const RunResult& r) {
    json.key(name).begin_object();
    json.key("train_seconds").number(r.seconds);
    json.key("anon_huge_bytes").number(
        static_cast<long long>(r.anon_huge_bytes));
    json.key("resident_set_bytes").number(
        static_cast<long long>(r.delta.resident_set_bytes));
    json.key("minor_page_faults").number(
        static_cast<long long>(r.delta.minor_page_faults));
    json.key("major_page_faults").number(
        static_cast<long long>(r.delta.major_page_faults));
    json.key("user_cpu_seconds").number(r.delta.user_cpu_seconds);
    json.key("system_cpu_seconds").number(r.delta.system_cpu_seconds);
    json.end_object();
  };
  emit_run("without_thp", without);
  emit_run("with_thp", with);
  json.key("thp_speedup").number(without.seconds /
                                 std::max(with.seconds, 1e-9));
  json.key("mirrors").begin_array();
  for (const Precision p :
       {Precision::kBF16, Precision::kFP16, Precision::kInt8}) {
    NetworkConfig cfg =
        bench::slide_config_for(data.train, HashFamilyKind::kSimhash);
    cfg.precision = p;
    Network net(cfg, threads);
    const MemoryFootprint f = net.memory_footprint();
    std::printf("  %s: %.1f MB mirrors, %.1f MB THP-backed\n", to_string(p),
                static_cast<double>(f.mirror_bytes) / (1 << 20),
                static_cast<double>(f.mirror_hugepage_bytes) / (1 << 20));
    json.begin_object();
    json.key("precision").string(to_string(p));
    json.key("mirror_bytes").number(static_cast<long long>(f.mirror_bytes));
    json.key("mirror_hugepage_bytes")
        .number(static_cast<long long>(f.mirror_hugepage_bytes));
    json.key("inference_weight_bytes")
        .number(static_cast<long long>(f.inference_weight_bytes));
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.write_file(bench::json_path("BENCH_hugepages.json"));
  return 0;
}
