// Table 4 — CPU-counter metrics with and without Transparent Hugepages.
//
// Paper values (VTune/PMU): dTLB load miss rate 5.12% -> 0.25%, page-table-
// walk cycle share 7.74% -> 0.72%, page faults 32,548/s -> 26,527/s.
//
// Substitution (DESIGN.md §3): this container exposes no PMU (TLB/PTW
// counters) and its kernel reports getrusage fault counts as zero, so we
// report what is observable — AnonHugePages mapped, resident set, context
// switches, fault counters where available — plus the end-to-end time
// delta, for an identical training run under THP on/off.
#include "bench_common.h"

using namespace slide;

namespace {

struct RunResult {
  double seconds = 0.0;
  PerfSnapshot delta;
  std::uint64_t anon_huge_bytes = 0;
};

RunResult run(const SyntheticDataset& data, int threads, long iterations,
              bool thp) {
  set_hugepages_enabled(thp);
  NetworkConfig cfg =
      bench::slide_config_for(data.train, HashFamilyKind::kSimhash);
  Network network(cfg, threads);
  TrainerConfig tcfg;
  tcfg.batch_size = 128;
  tcfg.num_threads = threads;
  Trainer trainer(network, tcfg);
  const PerfSnapshot before = PerfSnapshot::now();
  WallTimer timer;
  trainer.train(data.train, iterations);
  RunResult r;
  r.seconds = timer.seconds();
  r.delta = PerfSnapshot::now() - before;
  r.anon_huge_bytes = anon_hugepage_bytes();
  set_hugepages_enabled(true);
  return r;
}

std::string per_second(std::uint64_t count, double seconds) {
  return fmt(static_cast<double>(count) / std::max(seconds, 1e-9), 0) + "/s";
}

}  // namespace

int main() {
  const Scale scale = bench::env_scale();
  const int threads = bench::env_threads();
  bench::print_header(
      "Table 4: CPU-counter metrics with/without Transparent Hugepages",
      "paper: dTLB miss 5.12%->0.25%, PTW cycles 7.74%->0.72%, page faults "
      "32548/s->26527/s");
  bench::print_env(scale, threads);
  std::printf("[thp] kernel mode=%s, madvise %s\n", thp_mode().c_str(),
              hugepages_supported() ? "available" : "unavailable");

  const auto data = make_synthetic_xc(delicious_like(scale));
  const long iterations = scale == Scale::kTiny ? 120 : 60;

  const RunResult without = run(data, threads, iterations, false);
  const RunResult with = run(data, threads, iterations, true);

  MarkdownTable table({"metric", "without hugepages", "with hugepages"});
  table.add_row({"train time (s)", fmt(without.seconds, 2),
                 fmt(with.seconds, 2)});
  table.add_row({"AnonHugePages mapped (MB)",
                 fmt(static_cast<double>(without.anon_huge_bytes) / (1 << 20), 1),
                 fmt(static_cast<double>(with.anon_huge_bytes) / (1 << 20), 1)});
  table.add_row({"resident set (MB)",
                 fmt(static_cast<double>(without.delta.resident_set_bytes) /
                         (1 << 20), 1),
                 fmt(static_cast<double>(with.delta.resident_set_bytes) /
                         (1 << 20), 1)});
  table.add_row({"minor page faults",
                 per_second(without.delta.minor_page_faults, without.seconds),
                 per_second(with.delta.minor_page_faults, with.seconds)});
  table.add_row({"major page faults",
                 per_second(without.delta.major_page_faults, without.seconds),
                 per_second(with.delta.major_page_faults, with.seconds)});
  table.add_row({"involuntary ctx switches",
                 per_second(without.delta.involuntary_ctx_switches,
                            without.seconds),
                 per_second(with.delta.involuntary_ctx_switches,
                            with.seconds)});
  table.add_row({"user CPU (s)", fmt(without.delta.user_cpu_seconds, 2),
                 fmt(with.delta.user_cpu_seconds, 2)});
  table.add_row({"system CPU (s)", fmt(without.delta.system_cpu_seconds, 2),
                 fmt(with.delta.system_cpu_seconds, 2)});
  std::printf("%s", table.str().c_str());

  std::printf(
      "\nNotes: PMU counters (dTLB/iTLB miss rates, page-table-walk cycles) "
      "are not exposed in this\ncontainer, and some sandboxed kernels "
      "report getrusage fault counts as zero — the paper's\nTLB-reach "
      "mechanism is then visible through AnonHugePages adoption and the "
      "time delta.\nTHP speedup here: %.2fx (paper: ~1.3x at 200K-670K-"
      "class scale; grows with footprint).\n",
      without.seconds / with.seconds);
  return 0;
}
