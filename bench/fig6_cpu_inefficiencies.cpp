// Figure 6 — "Inefficiencies in CPU usage": where training time goes for
// SLIDE vs the dense baseline as the thread count grows.
//
// Paper shape (VTune top-down): both are memory-bound; TF-CPU's memory-
// bound share *rises* with more cores while SLIDE's *falls* (sparse
// accesses shrink per-thread working sets).
//
// VTune substitution (DESIGN.md §3): we decompose wall time into the
// engine's phases (batch compute / optimizer update / table rebuild), split
// the hashed layer's time into LSH sampling vs activation math, and report
// OS memory counters. The memory-bound *trend* shows up as the utilization
// gap (1 - utilization = stall share) moving with thread count.
#include "bench_common.h"

using namespace slide;

int main() {
  const Scale scale = bench::env_scale();
  const int max_threads = bench::env_threads();
  bench::print_header(
      "Figure 6: CPU inefficiency breakdown vs thread count",
      "memory-bound share rises with cores for TF-CPU, falls for SLIDE");
  bench::print_env(scale, max_threads);

  const auto data = make_synthetic_xc(delicious_like(scale));
  const long iterations = scale == Scale::kTiny ? 60 : 40;
  std::vector<int> sweep = {1, 2, 2 * max_threads};
  if (max_threads > 2) sweep = {1, max_threads / 2, max_threads};

  std::printf("%s\n", CpuEfficiencyReport::markdown_header().c_str());
  for (int threads : sweep) {
    NetworkConfig cfg =
        bench::slide_config_for(data.train, HashFamilyKind::kSimhash);
    Network network(cfg, threads);
    TrainerConfig tcfg;
    tcfg.batch_size = 128;
    tcfg.num_threads = threads;
    Trainer trainer(network, tcfg);
    EfficiencyProbe probe(trainer);
    trainer.train(data.train, iterations);
    const CpuEfficiencyReport report = probe.finish();
    std::printf("%s\n",
                report
                    .to_markdown_row("SLIDE t=" + std::to_string(threads))
                    .c_str());
  }

  std::printf(
      "\nStall share (1 - utilization) by engine and thread count:\n");
  MarkdownTable stalls({"engine", "threads", "stall share",
                        "lsh-sample share of layer time"});
  for (int threads : sweep) {
    {
      NetworkConfig cfg =
          bench::slide_config_for(data.train, HashFamilyKind::kSimhash);
      Network network(cfg, threads);
      TrainerConfig tcfg;
      tcfg.batch_size = 128;
      tcfg.num_threads = threads;
      Trainer trainer(network, tcfg);
      trainer.train(data.train, iterations);
      const double util = trainer.core_utilization();
      const double sample_s = network.output_layer().sampling_seconds();
      const double math_s = network.output_layer().compute_seconds();
      stalls.add_row({"SLIDE", fmt_int(threads), fmt_pct(1.0 - util, 1),
                      fmt_pct(sample_s / std::max(1e-9, sample_s + math_s),
                              1)});
    }
    {
      DenseNetwork::Config dcfg;
      dcfg.input_dim = data.train.feature_dim();
      dcfg.output_units = data.train.label_dim();
      dcfg.max_batch_size = 128;
      DenseNetwork dense(dcfg, threads);
      ThreadPool pool(threads);
      Batcher batcher(data.train, 128, true, 3);
      WallTimer timer;
      for (long i = 0; i < iterations; ++i)
        dense.step(data.train, batcher.next(), 1e-3f, pool);
      double busy = 0.0;
      for (double b : pool.busy_seconds()) busy += b;
      stalls.add_row({"Dense(TF-role)", fmt_int(threads),
                      fmt_pct(1.0 - busy / (timer.seconds() * threads), 1),
                      "-"});
    }
  }
  std::printf("%s", stalls.str().c_str());
  std::printf(
      "\nNote: per-pipeline-slot VTune categories (front-end/retiring/core) "
      "need PMU access that\nthis container does not expose; the stall-share "
      "trend above is the reproducible signal.\n");
  return 0;
}
