// Figure 5 — the headline result: time-vs-accuracy AND iteration-vs-
// accuracy for SLIDE vs the dense full-softmax baseline, on both workloads.
//
// Paper shape: (a) per *iteration*, SLIDE's convergence is nearly identical
// to the dense model — adaptive sampling + asynchronous SGD do not hurt
// optimization; (b) per *wall-clock second*, SLIDE reaches any accuracy
// level several times faster because each iteration touches <1% of the
// output layer.
//
// Baseline roles (DESIGN.md §3): our DenseNetwork plays TF-CPU. No GPU
// exists in this environment, so the TF-GPU column is reported as the
// dense baseline with a FLOP-projection note instead of a measurement.
#include "bench_common.h"

using namespace slide;

namespace {

void run_workload(const char* name, const SyntheticDataset& data,
                  HashFamilyKind kind, int batch, long iterations,
                  int threads) {
  std::printf("\n---- %s (%s) ----\n", name,
              describe(data.train.stats(), "train").c_str());

  // SLIDE.
  NetworkConfig cfg = bench::slide_config_for(data.train, kind, 128, batch);
  Network network(cfg, threads);
  TrainerConfig tcfg;
  tcfg.batch_size = batch;
  tcfg.num_threads = threads;
  tcfg.learning_rate = 1e-3f;
  ConvergenceRecorder slide_rec("SLIDE-CPU");
  bench::run_slide_convergence(network, data.train, data.test, tcfg,
                               iterations, std::max<long>(1, iterations / 8),
                               slide_rec);

  // Dense baseline (TF-CPU role).
  DenseNetwork::Config dcfg;
  dcfg.input_dim = data.train.feature_dim();
  dcfg.output_units = data.train.label_dim();
  dcfg.max_batch_size = batch;
  DenseNetwork dense(dcfg, threads);
  ConvergenceRecorder dense_rec("Dense-CPU(TF-role)");
  bench::run_dense_convergence(dense, data.train, data.test, batch, threads,
                               1e-3f, iterations,
                               std::max<long>(1, iterations / 8), dense_rec);

  std::printf("%s\n",
              merge_to_markdown({&slide_rec, &dense_rec}).c_str());

  // Paper-style summary: time to reach accuracy thresholds.
  const double best =
      std::min(slide_rec.best_accuracy(), dense_rec.best_accuracy());
  MarkdownTable summary({"accuracy target", "SLIDE (s)", "Dense (s)",
                         "speedup", "SLIDE iters", "Dense iters"});
  for (double frac : {0.5, 0.8, 0.95}) {
    const double target = best * frac;
    const double st = slide_rec.seconds_to_accuracy(target);
    const double dt = dense_rec.seconds_to_accuracy(target);
    summary.add_row(
        {fmt(target, 3), st < 0 ? "-" : fmt(st, 1),
         dt < 0 ? "-" : fmt(dt, 1),
         (st > 0 && dt > 0) ? fmt(dt / st, 2) + "x" : "-",
         fmt_int(slide_rec.iterations_to_accuracy(target)),
         fmt_int(dense_rec.iterations_to_accuracy(target))});
  }
  std::printf("%s", summary.str().c_str());
  std::printf("active fraction in output layer: %.2f%% (paper: <0.5%% at "
              "200K-670K classes)\n",
              100.0 * network.output_layer().average_active_fraction());
}

}  // namespace

int main() {
  const Scale scale = bench::env_scale();
  const int threads = bench::env_threads();
  bench::print_header(
      "Figure 5: SLIDE vs dense — time- and iteration-wise convergence",
      "SLIDE converges identically per iteration and 2.7x faster than "
      "TF-GPU / ~8x faster than TF-CPU per wall-clock at 44 cores");
  bench::print_env(scale, threads);
  std::printf(
      "[role] Dense-CPU(TF-role) is this repo's AVX2 full-softmax trainer "
      "(no GPU in container;\n       see DESIGN.md §3 and EXPERIMENTS.md "
      "for the TF-GPU projection note)\n");

  const long iters = scale == Scale::kTiny ? 200 : 150;
  {
    const auto data = make_synthetic_xc(delicious_like(scale));
    run_workload("delicious-like, Simhash K=9 L=50, batch 128", data,
                 HashFamilyKind::kSimhash, 128, iters, threads);
  }
  {
    const auto data = make_synthetic_xc(amazon_like(scale));
    run_workload("amazon-like, DWTA K=8 L=50, batch 256", data,
                 HashFamilyKind::kDwta, 256, iters, threads);
  }
  return 0;
}
