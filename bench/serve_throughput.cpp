// Serving throughput/latency: queries/sec and p50/p95/p99 end-to-end
// latency as a function of engine worker count and micro-batch window,
// plus a hot-swap-under-sustained-load run that must complete with zero
// failed requests.
//
// Not a paper artifact — this measures the serving subsystem the repo
// grows on top of the paper's training engine, in the spirit of
// "Accelerating SLIDE Deep Learning on Modern CPUs" (2021): on CPUs,
// batching policy is a first-order term for inference throughput.
#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"

using namespace slide;

namespace {

struct LoadStats {
  std::uint64_t completed = 0;
  std::uint64_t retried = 0;
  std::uint64_t failed = 0;  // invalid result or broken future
  double wall_seconds = 0.0;
};

LoadStats closed_loop(InferenceEngine& engine, const Dataset& queries,
                      int clients, double seconds, Index output_dim) {
  std::atomic<bool> running{true};
  std::atomic<std::uint64_t> completed{0}, retried{0}, failed{0};
  std::vector<std::thread> threads;
  WallTimer timer;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::size_t i = static_cast<std::size_t>(c) * 31;
      while (running.load(std::memory_order_relaxed)) {
        auto f = engine.submit(queries[i % queries.size()].features, 5);
        ++i;
        if (!f.has_value()) {
          retried.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        try {
          const Prediction p = f->get();
          const bool ok = !p.labels.empty() && p.labels[0] < output_dim;
          (ok ? completed : failed).fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception&) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  while (timer.seconds() < seconds)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  running.store(false);
  for (auto& t : threads) t.join();
  return {completed.load(), retried.load(), failed.load(), timer.seconds()};
}

}  // namespace

int main() {
  const Scale scale = bench::env_scale(Scale::kTiny);
  const int max_threads = bench::env_threads();
  bench::print_header(
      "serve_throughput: qps and latency percentiles vs workers/batch window",
      "serving subsystem (beyond the paper); CPU batching per Daghaghi et "
      "al. 2021");
  bench::print_env(scale, max_threads);

  const SyntheticDataset data = make_synthetic_xc(delicious_like(scale));
  NetworkConfig net_cfg =
      bench::slide_config_for(data.train, HashFamilyKind::kSimhash,
                              /*hidden=*/64, /*max_batch=*/128);
  auto network = std::make_shared<Network>(net_cfg, max_threads);
  TrainerConfig tcfg;
  tcfg.batch_size = 128;
  tcfg.num_threads = max_threads;
  tcfg.learning_rate = 1e-3f;
  {
    Trainer trainer(*network, tcfg);
    trainer.train(data.train, 100);
    network->rebuild_all(&trainer.pool());
  }
  std::shared_ptr<const Network> model = network;

  const double phase_seconds =
      scale == Scale::kTiny ? 1.0 : (scale == Scale::kSmall ? 2.0 : 4.0);
  const int clients = 4;

  // ---- Sweep: workers x micro-batch window -------------------------------
  // Human-readable table on stdout; machine-readable BENCH_serve.json on
  // disk so the perf trajectory is tracked across PRs.
  bench::Json json;
  json.begin_object();
  json.key("bench").string("serve_throughput");
  json.key("scale").string(bench::scale_name(scale));
  json.key("threads").number(static_cast<long long>(max_threads));
  json.key("clients").number(static_cast<long long>(clients));
  json.key("phase_seconds").number(phase_seconds);
  json.key("sweep").begin_array();

  MarkdownTable table({"workers", "max_batch", "max_wait_us", "qps",
                       "mean batch", "p50", "p95", "p99", "retried"});
  const int worker_counts[] = {1, 2, std::max(4, max_threads)};
  const long wait_windows[] = {50, 500};
  for (int workers : worker_counts) {
    for (long wait_us : wait_windows) {
      auto store = std::make_shared<ModelStore>(model);
      ServeConfig cfg;
      cfg.num_workers = workers;
      cfg.max_batch = 16;
      cfg.max_wait_us = wait_us;
      cfg.queue_capacity = 1 << 14;
      InferenceEngine engine(store, cfg);
      const LoadStats load = closed_loop(engine, data.test, clients,
                                         phase_seconds, model->output_dim());
      const ServeStats stats = engine.stats();
      const double qps =
          static_cast<double>(load.completed) / load.wall_seconds;
      table.add_row({fmt_int(workers), fmt_int(cfg.max_batch),
                     fmt_int(wait_us), fmt(qps, 0),
                     fmt(stats.mean_batch_size, 2),
                     fmt_latency_us(stats.latency.p50_us),
                     fmt_latency_us(stats.latency.p95_us),
                     fmt_latency_us(stats.latency.p99_us),
                     fmt_int(static_cast<long long>(load.retried))});
      json.begin_object();
      json.key("workers").number(static_cast<long long>(workers));
      json.key("max_batch").number(static_cast<long long>(cfg.max_batch));
      json.key("max_wait_us").number(static_cast<long long>(wait_us));
      json.key("qps").number(qps);
      json.key("mean_batch").number(stats.mean_batch_size);
      json.key("p50_us").number(stats.latency.p50_us);
      json.key("p95_us").number(stats.latency.p95_us);
      json.key("p99_us").number(stats.latency.p99_us);
      json.key("completed").number(
          static_cast<long long>(load.completed));
      json.key("retried").number(static_cast<long long>(load.retried));
      json.end_object();
      engine.stop();
      if (load.failed != 0) {
        std::printf("FAILED: %llu failed requests in sweep\n",
                    static_cast<unsigned long long>(load.failed));
        return 1;
      }
    }
  }
  json.end_array();
  table.print(std::cout);

  // ---- Hot-swap under sustained load -------------------------------------
  std::printf("\nhot-swap under sustained load (%d clients, %.1fs, swap "
              "every ~%.0fms):\n",
              clients, 2 * phase_seconds, 1000 * phase_seconds / 3);
  auto store = std::make_shared<ModelStore>(model);
  ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = 16;
  cfg.max_wait_us = 200;
  cfg.queue_capacity = 1 << 14;
  InferenceEngine engine(store, cfg);
  std::atomic<bool> swapping{true};
  std::thread swapper([&] {
    int swaps = 0;
    while (swapping.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          static_cast<long>(1000 * phase_seconds / 3)));
      if (!swapping.load()) break;
      publish_clone(*store, *model, /*rebuild_threads=*/1);
      ++swaps;
    }
    std::printf("  swaps published: %d\n", swaps);
  });
  const LoadStats load = closed_loop(engine, data.test, clients,
                                     2 * phase_seconds, model->output_dim());
  swapping.store(false);
  swapper.join();
  const ServeStats stats = engine.stats();
  std::printf("  qps %.0f | completed %llu | failed %llu | swaps observed "
              "by workers %llu | final snapshot v%llu\n",
              static_cast<double>(load.completed) / load.wall_seconds,
              static_cast<unsigned long long>(load.completed),
              static_cast<unsigned long long>(load.failed),
              static_cast<unsigned long long>(stats.swaps_observed),
              static_cast<unsigned long long>(stats.snapshot_version));
  std::printf("  latency p50 %s | p95 %s | p99 %s\n",
              fmt_latency_us(stats.latency.p50_us).c_str(),
              fmt_latency_us(stats.latency.p95_us).c_str(),
              fmt_latency_us(stats.latency.p99_us).c_str());
  engine.stop();
  json.key("hot_swap").begin_object();
  json.key("workers").number(static_cast<long long>(cfg.num_workers));
  json.key("max_batch").number(static_cast<long long>(cfg.max_batch));
  json.key("max_wait_us").number(static_cast<long long>(cfg.max_wait_us));
  json.key("qps").number(static_cast<double>(load.completed) /
                         load.wall_seconds);
  json.key("mean_batch").number(stats.mean_batch_size);
  json.key("p50_us").number(stats.latency.p50_us);
  json.key("p95_us").number(stats.latency.p95_us);
  json.key("p99_us").number(stats.latency.p99_us);
  json.key("completed").number(static_cast<long long>(load.completed));
  json.key("failed").number(static_cast<long long>(load.failed));
  json.key("swaps_observed").number(
      static_cast<long long>(stats.swaps_observed));
  json.end_object();
  json.end_object();
  json.write_file(bench::json_path("BENCH_serve.json"));
  if (load.failed != 0) {
    std::printf("FAILED: hot swap dropped %llu requests\n",
                static_cast<unsigned long long>(load.failed));
    return 1;
  }
  std::printf("  zero failed requests across swaps: OK\n");
  return 0;
}
