// Serving throughput/latency: queries/sec and p50/p95/p99 end-to-end
// latency as a function of engine worker count and micro-batch window,
// plus a hot-swap-under-sustained-load run that must complete with zero
// failed requests.
//
// Not a paper artifact — this measures the serving subsystem the repo
// grows on top of the paper's training engine, in the spirit of
// "Accelerating SLIDE Deep Learning on Modern CPUs" (2021): on CPUs,
// batching policy is a first-order term for inference throughput.
#include <atomic>
#include <deque>
#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"

using namespace slide;

namespace {

struct LoadStats {
  std::uint64_t completed = 0;
  std::uint64_t retried = 0;
  std::uint64_t failed = 0;  // invalid result or broken future
  double wall_seconds = 0.0;
};

LoadStats closed_loop(InferenceEngine& engine, const Dataset& queries,
                      int clients, double seconds, Index output_dim) {
  std::atomic<bool> running{true};
  std::atomic<std::uint64_t> completed{0}, retried{0}, failed{0};
  std::vector<std::thread> threads;
  WallTimer timer;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::size_t i = static_cast<std::size_t>(c) * 31;
      while (running.load(std::memory_order_relaxed)) {
        auto f = engine.submit(queries[i % queries.size()].features, {.top_k = 5});
        ++i;
        if (!f.has_value()) {
          retried.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        try {
          const Prediction p = f->get();
          const bool ok = !p.labels.empty() && p.labels[0] < output_dim;
          (ok ? completed : failed).fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception&) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  while (timer.seconds() < seconds)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  running.store(false);
  for (auto& t : threads) t.join();
  return {completed.load(), retried.load(), failed.load(), timer.seconds()};
}

}  // namespace

int main() {
  const Scale scale = bench::env_scale(Scale::kTiny);
  const int max_threads = bench::env_threads();
  bench::print_header(
      "serve_throughput: qps and latency percentiles vs workers/batch window",
      "serving subsystem (beyond the paper); CPU batching per Daghaghi et "
      "al. 2021");
  bench::print_env(scale, max_threads);

  const SyntheticDataset data = make_synthetic_xc(delicious_like(scale));
  NetworkConfig net_cfg =
      bench::slide_config_for(data.train, HashFamilyKind::kSimhash,
                              /*hidden=*/64, /*max_batch=*/128);
  auto network = std::make_shared<Network>(net_cfg, max_threads);
  TrainerConfig tcfg;
  tcfg.batch_size = 128;
  tcfg.num_threads = max_threads;
  tcfg.learning_rate = 1e-3f;
  {
    Trainer trainer(*network, tcfg);
    trainer.train(data.train, 100);
    network->rebuild_all(&trainer.pool());
  }
  std::shared_ptr<const Network> model = network;

  const double phase_seconds =
      scale == Scale::kTiny ? 1.0 : (scale == Scale::kSmall ? 2.0 : 4.0);
  const int clients = 4;

  // ---- Sweep: workers x micro-batch window -------------------------------
  // Human-readable table on stdout; machine-readable BENCH_serve.json on
  // disk so the perf trajectory is tracked across PRs.
  bench::Json json;
  json.begin_object();
  json.key("bench").string("serve_throughput");
  json.key("scale").string(bench::scale_name(scale));
  json.key("threads").number(static_cast<long long>(max_threads));
  json.key("clients").number(static_cast<long long>(clients));
  json.key("phase_seconds").number(phase_seconds);
  json.key("sweep").begin_array();

  MarkdownTable table({"workers", "max_batch", "max_wait_us", "qps",
                       "mean batch", "p50", "p95", "p99", "retried"});
  const int worker_counts[] = {1, 2, std::max(4, max_threads)};
  const long wait_windows[] = {50, 500};
  for (int workers : worker_counts) {
    for (long wait_us : wait_windows) {
      auto store = std::make_shared<ModelStore>(model);
      ServeConfig cfg;
      cfg.num_workers = workers;
      cfg.max_batch = 16;
      cfg.max_wait_us = wait_us;
      cfg.queue_capacity = 1 << 14;
      InferenceEngine engine(store, cfg);
      const LoadStats load = closed_loop(engine, data.test, clients,
                                         phase_seconds, model->output_dim());
      const ServeStats stats = engine.stats();
      const double qps =
          static_cast<double>(load.completed) / load.wall_seconds;
      table.add_row({fmt_int(workers), fmt_int(cfg.max_batch),
                     fmt_int(wait_us), fmt(qps, 0),
                     fmt(stats.mean_batch_size, 2),
                     fmt_latency_us(stats.latency.p50_us),
                     fmt_latency_us(stats.latency.p95_us),
                     fmt_latency_us(stats.latency.p99_us),
                     fmt_int(static_cast<long long>(load.retried))});
      json.begin_object();
      json.key("workers").number(static_cast<long long>(workers));
      json.key("max_batch").number(static_cast<long long>(cfg.max_batch));
      json.key("max_wait_us").number(static_cast<long long>(wait_us));
      json.key("qps").number(qps);
      json.key("mean_batch").number(stats.mean_batch_size);
      json.key("p50_us").number(stats.latency.p50_us);
      json.key("p95_us").number(stats.latency.p95_us);
      json.key("p99_us").number(stats.latency.p99_us);
      json.key("completed").number(
          static_cast<long long>(load.completed));
      json.key("retried").number(static_cast<long long>(load.retried));
      json.end_object();
      engine.stop();
      if (load.failed != 0) {
        std::printf("FAILED: %llu failed requests in sweep\n",
                    static_cast<unsigned long long>(load.failed));
        return 1;
      }
    }
  }
  json.end_array();
  table.print(std::cout);

  // ---- Hot-swap under sustained load -------------------------------------
  std::printf("\nhot-swap under sustained load (%d clients, %.1fs, swap "
              "every ~%.0fms):\n",
              clients, 2 * phase_seconds, 1000 * phase_seconds / 3);
  auto store = std::make_shared<ModelStore>(model);
  ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = 16;
  cfg.max_wait_us = 200;
  cfg.queue_capacity = 1 << 14;
  InferenceEngine engine(store, cfg);
  std::atomic<bool> swapping{true};
  std::thread swapper([&] {
    int swaps = 0;
    while (swapping.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          static_cast<long>(1000 * phase_seconds / 3)));
      if (!swapping.load()) break;
      publish_clone(*store, *model, /*rebuild_threads=*/1);
      ++swaps;
    }
    std::printf("  swaps published: %d\n", swaps);
  });
  const LoadStats load = closed_loop(engine, data.test, clients,
                                     2 * phase_seconds, model->output_dim());
  swapping.store(false);
  swapper.join();
  const ServeStats stats = engine.stats();
  std::printf("  qps %.0f | completed %llu | failed %llu | swaps observed "
              "by workers %llu | final snapshot v%llu\n",
              static_cast<double>(load.completed) / load.wall_seconds,
              static_cast<unsigned long long>(load.completed),
              static_cast<unsigned long long>(load.failed),
              static_cast<unsigned long long>(stats.swaps_observed),
              static_cast<unsigned long long>(stats.snapshot_version));
  std::printf("  latency p50 %s | p95 %s | p99 %s\n",
              fmt_latency_us(stats.latency.p50_us).c_str(),
              fmt_latency_us(stats.latency.p95_us).c_str(),
              fmt_latency_us(stats.latency.p99_us).c_str());
  engine.stop();
  json.key("hot_swap").begin_object();
  json.key("workers").number(static_cast<long long>(cfg.num_workers));
  json.key("max_batch").number(static_cast<long long>(cfg.max_batch));
  json.key("max_wait_us").number(static_cast<long long>(cfg.max_wait_us));
  json.key("qps").number(static_cast<double>(load.completed) /
                         load.wall_seconds);
  json.key("mean_batch").number(stats.mean_batch_size);
  json.key("p50_us").number(stats.latency.p50_us);
  json.key("p95_us").number(stats.latency.p95_us);
  json.key("p99_us").number(stats.latency.p99_us);
  json.key("completed").number(static_cast<long long>(load.completed));
  json.key("failed").number(static_cast<long long>(load.failed));
  json.key("swaps_observed").number(
      static_cast<long long>(stats.swaps_observed));
  json.end_object();

  // ---- SLO phase: lane isolation + load shedding under batch overload ----
  // 2 interactive closed-loop clients (no deadline) share the engine with
  // windowed kBatch clients carrying a tight deadline. Strict-priority
  // lanes must keep the interactive p99 near its uncontended baseline
  // while the batch lane absorbs the shedding. This is the PR's SLO
  // acceptance criterion, gated here (hard exit 1) rather than in
  // bench_compare.py: the shed/latency split is a correctness property of
  // the policy, not a machine-speed metric.
  const long slo_deadline_us = 3000;
  const int slo_window = 48;  // outstanding requests per batch client
  std::printf("\nSLO phase: 2 interactive clients vs windowed batch "
              "overload (batch deadline %ldms, window %d)\n",
              slo_deadline_us / 1000, slo_window);

  struct SloResult {
    double interactive_p99_us = 0.0;
    double batch_p99_us = 0.0;
    std::uint64_t completed = 0;
    std::uint64_t shed_interactive = 0;
    std::uint64_t shed_batch = 0;
    std::uint64_t deadline_miss = 0;
    std::uint64_t failed = 0;
  };
  auto slo_run = [&](int batch_clients) {
    auto slo_store = std::make_shared<ModelStore>(model);
    ServeConfig slo_cfg;
    slo_cfg.num_workers = 2;
    slo_cfg.max_batch = 8;  // bounds head-of-line blocking of interactive
    slo_cfg.max_wait_us = 200;
    slo_cfg.queue_capacity = 1 << 10;
    InferenceEngine eng(slo_store, slo_cfg);
    std::atomic<bool> running{true};
    std::atomic<std::uint64_t> failed{0};
    std::vector<std::thread> threads;
    // Interactive: closed loop, latency read from the engine's per-lane
    // histogram afterwards.
    for (int c = 0; c < 2; ++c) {
      threads.emplace_back([&, c] {
        std::size_t i = static_cast<std::size_t>(c) * 31;
        while (running.load(std::memory_order_relaxed)) {
          auto f = eng.submit(data.test[i++ % data.test.size()].features,
                              {.top_k = 5, .priority = Priority::kInteractive});
          if (!f.has_value()) continue;
          try {
            (void)f->get();
          } catch (const ShedError&) {
          } catch (const std::exception&) {
            failed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    // Batch: windowed semi-open loop so the queue actually backs up.
    for (int c = 0; c < batch_clients; ++c) {
      threads.emplace_back([&, c] {
        std::size_t i = static_cast<std::size_t>(c) * 977 + 7;
        std::deque<std::future<Prediction>> window;
        // A shed is the engine telling this client to slow down; honor it
        // with a short backoff. Without it the shed->resubmit loop spins,
        // and 8 spinning clients starve the worker threads of CPU --
        // which shows up as an interactive p99 SLO violation.
        auto harvest = [&](std::future<Prediction>& f) {
          try {
            (void)f.get();
          } catch (const ShedError&) {
            return true;
          } catch (const std::exception&) {
            failed.fetch_add(1, std::memory_order_relaxed);
          }
          return false;
        };
        while (running.load(std::memory_order_relaxed)) {
          while (window.size() < static_cast<std::size_t>(slo_window) &&
                 running.load(std::memory_order_relaxed)) {
            auto f = eng.submit(
                data.test[i++ % data.test.size()].features,
                ServeOptions{.top_k = 5, .priority = Priority::kBatch}
                    .with_deadline_in(
                        std::chrono::microseconds(slo_deadline_us)));
            if (!f.has_value()) break;  // backpressure: drain first
            window.push_back(std::move(*f));
          }
          if (window.empty()) {
            std::this_thread::yield();
            continue;
          }
          const bool was_shed = harvest(window.front());
          window.pop_front();
          if (was_shed)
            std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
        for (auto& f : window) harvest(f);
      });
    }
    WallTimer slo_timer;
    while (slo_timer.seconds() < phase_seconds)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    running.store(false);
    for (auto& t : threads) t.join();
    const ServeStats s = eng.stats();
    eng.stop();
    SloResult r;
    const auto& inter = s.lanes[lane_index(Priority::kInteractive)];
    const auto& batch = s.lanes[lane_index(Priority::kBatch)];
    r.interactive_p99_us = inter.latency.p99_us;
    r.batch_p99_us = batch.latency.p99_us;
    r.completed = s.completed;
    r.shed_interactive =
        inter.shed_admission + inter.shed_evicted + inter.shed_expired;
    r.shed_batch =
        batch.shed_admission + batch.shed_evicted + batch.shed_expired;
    r.deadline_miss = s.deadline_misses;
    r.failed = failed.load();
    return r;
  };

  const SloResult baseline = slo_run(/*batch_clients=*/0);
  MarkdownTable slo_table({"load", "batch clients", "interactive p99",
                           "batch p99", "shed batch", "shed interactive",
                           "deadline miss", "completed"});
  slo_table.add_row({"baseline", "0",
                     fmt_latency_us(baseline.interactive_p99_us), "-", "0",
                     "0", "0",
                     fmt_int(static_cast<long long>(baseline.completed))});
  json.key("slo").begin_object();
  json.key("deadline_micros").number(
      static_cast<long long>(slo_deadline_us));
  json.key("window").number(static_cast<long long>(slo_window));
  json.key("baseline_interactive_p99_micros")
      .number(baseline.interactive_p99_us);
  json.key("levels").begin_array();

  bool slo_ok = baseline.failed == 0;
  std::uint64_t shed_at_top_level = 0;
  for (int level : {1, 2}) {
    const int batch_clients = 4 * level;
    const SloResult r = slo_run(batch_clients);
    const double denom =
        static_cast<double>(r.completed + r.shed_batch + r.shed_interactive);
    const double shed_rate =
        denom > 0 ? static_cast<double>(r.shed_batch + r.shed_interactive) /
                        denom
                  : 0.0;
    const double miss_rate =
        r.completed > 0
            ? static_cast<double>(r.deadline_miss) / r.completed
            : 0.0;
    slo_table.add_row(
        {fmt_int(level) + "x", fmt_int(batch_clients),
         fmt_latency_us(r.interactive_p99_us),
         fmt_latency_us(r.batch_p99_us),
         fmt_int(static_cast<long long>(r.shed_batch)),
         fmt_int(static_cast<long long>(r.shed_interactive)),
         fmt_int(static_cast<long long>(r.deadline_miss)),
         fmt_int(static_cast<long long>(r.completed))});
    json.begin_object();
    json.key("level").number(static_cast<long long>(level));
    json.key("batch_clients").number(static_cast<long long>(batch_clients));
    json.key("interactive_p99_micros").number(r.interactive_p99_us);
    json.key("batch_p99_micros").number(r.batch_p99_us);
    json.key("completed").number(static_cast<long long>(r.completed));
    json.key("shed_batch").number(static_cast<long long>(r.shed_batch));
    json.key("shed_interactive")
        .number(static_cast<long long>(r.shed_interactive));
    json.key("deadline_miss").number(
        static_cast<long long>(r.deadline_miss));
    json.key("shed_rate").number(shed_rate);
    json.key("deadline_miss_rate").number(miss_rate);
    json.end_object();

    // Hard SLO gate. 5ms slack absorbs scheduler jitter on shared CI
    // runners; the 1.5x factor is the real criterion.
    const double p99_budget_us = 1.5 * baseline.interactive_p99_us + 5000.0;
    if (r.failed != 0) {
      std::printf("SLO FAILED: %llu failed requests at load %dx\n",
                  static_cast<unsigned long long>(r.failed), level);
      slo_ok = false;
    }
    if (r.interactive_p99_us > p99_budget_us) {
      std::printf("SLO FAILED: interactive p99 %.0fus exceeds budget %.0fus "
                  "(1.5x baseline %.0fus + 5ms) at load %dx\n",
                  r.interactive_p99_us, p99_budget_us,
                  baseline.interactive_p99_us, level);
      slo_ok = false;
    }
    if (r.shed_interactive > r.shed_batch) {
      std::printf("SLO FAILED: interactive lane shed more than batch "
                  "(%llu > %llu) at load %dx\n",
                  static_cast<unsigned long long>(r.shed_interactive),
                  static_cast<unsigned long long>(r.shed_batch), level);
      slo_ok = false;
    }
    if (level == 2) shed_at_top_level = r.shed_batch + r.shed_interactive;
  }
  json.end_array();
  json.end_object();
  slo_table.print(std::cout);
  if (shed_at_top_level == 0) {
    std::printf("SLO FAILED: no shedding observed at 2x overload — "
                "admission control is not engaging\n");
    slo_ok = false;
  }

  json.end_object();
  json.write_file(bench::json_path("BENCH_serve.json"));
  if (load.failed != 0) {
    std::printf("FAILED: hot swap dropped %llu requests\n",
                static_cast<unsigned long long>(load.failed));
    return 1;
  }
  std::printf("  zero failed requests across swaps: OK\n");
  if (!slo_ok) return 1;
  std::printf("SLO gates: OK (interactive p99 protected, batch lane "
              "absorbed shedding)\n");
  return 0;
}
