// Figure 11 — theoretical selection probability of Hard Thresholding:
// Pr(selected) vs per-function collision probability p, for frequency
// thresholds m in {1, 3, 5, 7, 9} at L = 10 tables (paper eq. 3).
//
// Paper shape: m = 9 admits only p > 0.8 neurons (few false positives,
// many misses); m = 1 admits nearly everything (recall-heavy). The curves
// form a sweep of increasingly sharp sigmoids.
#include "bench_common.h"

#include "lsh/collision.h"

using namespace slide;

int main() {
  bench::print_header(
      "Figure 11: hard-thresholding selection probability (eq. 3)",
      "sigmoid sweep: high m filters false positives, low m maximizes "
      "recall");

  constexpr int kL = 10;
  constexpr int kK = 1;  // the figure plots against p^K directly
  MarkdownTable table({"p", "m=1", "m=3", "m=5", "m=7", "m=9"});
  for (double p = 0.1; p <= 0.901; p += 0.1) {
    std::vector<std::string> row = {fmt(p, 1)};
    for (int m : {1, 3, 5, 7, 9}) {
      row.push_back(
          fmt(hard_threshold_selection_probability(p, kK, kL, m), 4));
    }
    table.add_row(row);
  }
  std::printf("%s", table.str().c_str());

  // Sanity anchors quoted in the paper's appendix B discussion.
  std::printf("\nAnchors: m=9 needs p>0.8 for Pr>0.5 -> Pr(p=0.8,m=9)=%.3f, "
              "Pr(p=0.85,m=9)=%.3f;\n         m=1 admits p<0.2 with Pr>0.8 "
              "-> Pr(p=0.2,m=1)=%.3f\n",
              hard_threshold_selection_probability(0.8, kK, kL, 9),
              hard_threshold_selection_probability(0.85, kK, kL, 9),
              hard_threshold_selection_probability(0.2, kK, kL, 1));

  // Bonus: the same closed form drives the vanilla-sampling curve (eq. 2).
  std::printf("\nEq. 2 (vanilla, tau tables probed, K=2, L=10): selection "
              "probability for tau=1..4 at p=0.9:\n");
  for (int tau = 1; tau <= 4; ++tau) {
    std::printf("  tau=%d: %.4e\n", tau,
                vanilla_selection_probability(0.9, 2, 10, tau));
  }
  return 0;
}
