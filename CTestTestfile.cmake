# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/test_baseline[1]_include.cmake")
include("/root/repo/test_builder[1]_include.cmake")
include("/root/repo/test_data[1]_include.cmake")
include("/root/repo/test_dist[1]_include.cmake")
include("/root/repo/test_inference[1]_include.cmake")
include("/root/repo/test_integration[1]_include.cmake")
include("/root/repo/test_layer[1]_include.cmake")
include("/root/repo/test_lsh_hashes[1]_include.cmake")
include("/root/repo/test_lsh_tables[1]_include.cmake")
include("/root/repo/test_maintenance[1]_include.cmake")
include("/root/repo/test_metrics[1]_include.cmake")
include("/root/repo/test_mips[1]_include.cmake")
include("/root/repo/test_network[1]_include.cmake")
include("/root/repo/test_optim[1]_include.cmake")
include("/root/repo/test_precision[1]_include.cmake")
include("/root/repo/test_retrieval[1]_include.cmake")
include("/root/repo/test_sampling[1]_include.cmake")
include("/root/repo/test_serialize[1]_include.cmake")
include("/root/repo/test_serve[1]_include.cmake")
include("/root/repo/test_sharded_layer[1]_include.cmake")
include("/root/repo/test_sharded_layer[2]_include.cmake")
include("/root/repo/test_simd[1]_include.cmake")
include("/root/repo/test_simd[2]_include.cmake")
include("/root/repo/test_stress[1]_include.cmake")
include("/root/repo/test_sys[1]_include.cmake")
include("/root/repo/test_trainer[1]_include.cmake")
