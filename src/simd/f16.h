// IEEE 754 binary16 ("fp16") storage type + scalar conversions.
//
// The FP16 inference tier stores weight mirrors as binary16 (1 sign, 5
// exponent, 10 mantissa bits) and converts to fp32 on load inside the dot
// kernels — on F16C hardware with a single `vcvtph2ps`, otherwise with the
// scalar routines below. Unlike bf16 (bf16.h), fp16 keeps 3 extra mantissa
// bits at the price of range: |x| > 65504 overflows to infinity and
// |x| < 2^-14 goes subnormal. Trained SLIDE weights live comfortably inside
// that range, so fp16 mirrors track fp32 tighter than bf16 ones.
//
// Conversion contract (must match the hardware instructions bit-for-bit so
// the scalar oracle and the F16C kernels agree exactly):
//   float_to_fp16: round-to-nearest-even, like vcvtps2ph with imm8=0.
//                  Overflow saturates to +/-inf; NaN becomes the canonical
//                  quiet NaN (sign | 0x7E00).
//   fp16_to_float: exact (every binary16 value is representable in fp32),
//                  like vcvtph2ps; NaN payloads shift left by 13.
#pragma once

#include <cstdint>
#include <cstring>

namespace slide::simd {

/// Storage type for binary16 weights. A plain integer, not _Float16: the
/// portable TUs must compile on toolchains without native half support,
/// and all arithmetic happens in fp32 anyway.
using Fp16 = std::uint16_t;

namespace f16_detail {
inline std::uint32_t bits_of(float f) noexcept {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}
inline float float_of(std::uint32_t u) noexcept {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}
}  // namespace f16_detail

/// fp32 -> fp16 with round-to-nearest-even (vcvtps2ph semantics).
inline Fp16 float_to_fp16(float f) noexcept {
  const std::uint32_t u = f16_detail::bits_of(f);
  const std::uint32_t sign = (u >> 16) & 0x8000u;
  const std::uint32_t abs = u & 0x7FFFFFFFu;
  if (abs >= 0x7F800000u) {  // inf or NaN
    if (abs > 0x7F800000u) return static_cast<Fp16>(sign | 0x7E00u);
    return static_cast<Fp16>(sign | 0x7C00u);
  }
  if (abs >= 0x38800000u) {  // normal half range: |x| >= 2^-14
    // Re-bias the exponent by subtracting (127-15)<<23, then round the
    // 13 dropped mantissa bits to nearest-even. A mantissa carry that
    // overflows into the exponent is exactly the right rounding (e.g.
    // 65520 -> +inf); values >= 0x7C00 after rounding saturate to inf.
    const std::uint32_t adjusted = abs - 0x38000000u;
    const std::uint32_t rounded =
        (adjusted + 0xFFFu + ((adjusted >> 13) & 1u)) >> 13;
    return static_cast<Fp16>(sign | (rounded >= 0x7C00u ? 0x7C00u : rounded));
  }
  if (abs <= 0x33000000u) {  // |x| <= 2^-25: underflows to signed zero
    return static_cast<Fp16>(sign);
  }
  // Subnormal half: value = mant * 2^-24 with mant in [1, 1023].
  const std::uint32_t shift = 126u - (abs >> 23);  // 14..24 dropped bits
  const std::uint32_t mant = (abs & 0x7FFFFFu) | 0x800000u;
  std::uint32_t half = mant >> shift;
  const std::uint32_t rem = mant & ((1u << shift) - 1u);
  const std::uint32_t half_bit = 1u << (shift - 1u);
  if (rem > half_bit || (rem == half_bit && (half & 1u) != 0)) ++half;
  // A carry out of mant>>shift lands on 0x0400 = the smallest normal:
  // exactly the right encoding, no special case needed.
  return static_cast<Fp16>(sign | half);
}

/// fp16 -> fp32, exact (vcvtph2ps semantics).
inline float fp16_to_float(Fp16 h) noexcept {
  const std::uint32_t sign32 = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t em = h & 0x7FFFu;
  if (em >= 0x7C00u) {  // inf or NaN; payload shifts left by 13 like the ISA
    return f16_detail::float_of(sign32 | 0x7F800000u | ((em & 0x3FFu) << 13));
  }
  if (em >= 0x0400u) {  // normal: re-bias exponent (15 -> 127)
    return f16_detail::float_of(sign32 | ((em + 0x1C000u) << 13));
  }
  if (em == 0) return f16_detail::float_of(sign32);  // signed zero
  const float v = static_cast<float>(em) * 0x1p-24f;  // subnormal
  return sign32 != 0 ? -v : v;
}

}  // namespace slide::simd
