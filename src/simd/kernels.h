// Vectorized math kernels behind the runtime dispatch (simd/backend.h).
//
// The paper's appendix D attributes ~1.3x of SLIDE's final speedup to
// platform micro-optimization: AVX SIMD for the dense inner loops
// (activation dot products, weight updates) plus software prefetching, and
// the follow-up "Accelerating SLIDE on Modern CPUs" adds AVX-512 and BF16
// on the same loops. Every call below lands in the kernel table the
// dispatch bound at startup (scalar / AVX2+FMA / AVX-512F+BW), so one
// binary runs at full width on every machine; see backend.h for level
// selection and overrides. Every vector kernel has a scalar twin in
// simd::scalar used both as the dispatch fallback and as the oracle in the
// test suite.
//
// All pointers may be unaligned; kernels handle the tail per-element (or
// with masked loads on AVX-512).
#pragma once

#include <cstddef>
#include <cstdint>

#include "simd/backend.h"
#include "simd/bf16.h"
#include "simd/f16.h"
#include "simd/int8.h"
#include "sys/common.h"

namespace slide::simd {

/// DEPRECATED compile-time-era toggles, kept as shims over the dispatch:
///   compiled_with_avx2()   -> level_compiled(SimdLevel::kAVX2)
///   set_simd_enabled(b)    -> set_simd_level(b ? detected_level() : scalar)
///   simd_enabled()         -> active_level() != scalar
/// Prefer backend.h's set_simd_level / active_level in new code: they are
/// explicit about *which* vector level runs, not just "on/off".
[[deprecated("use simd::level_compiled(SimdLevel::kAVX2)")]]
bool compiled_with_avx2() noexcept;
[[deprecated(
    "use simd::set_simd_level(enabled ? detected_level() : kScalar)")]]
void set_simd_enabled(bool enabled) noexcept;
[[deprecated("use simd::active_level() != SimdLevel::kScalar")]]
bool simd_enabled() noexcept;

/// Dense dot product <a, b> over n floats.
float dot(const float* a, const float* b, std::size_t n) noexcept;

/// y[i] += alpha * x[i] for i in [0, n).
void axpy(float alpha, const float* x, float* y, std::size_t n) noexcept;

/// x[i] *= alpha.
void scale(float* x, float alpha, std::size_t n) noexcept;

/// Sum of x[0..n).
float sum(const float* x, std::size_t n) noexcept;

/// Max of x[0..n); returns -inf for n == 0.
float max(const float* x, std::size_t n) noexcept;

/// x[i] = max(x[i], 0).
void relu(float* x, std::size_t n) noexcept;

/// Dot product of a sparse vector (idx/val pairs, nnz entries) with a dense
/// vector. Indices must be < the dense vector's length.
float sparse_dot(const Index* idx, const float* val, std::size_t nnz,
                 const float* dense) noexcept;

/// dense[idx[i]] += alpha * val[i] — scatter-accumulate of a sparse vector.
void sparse_axpy(float alpha, const Index* idx, const float* val,
                 std::size_t nnz, float* dense) noexcept;

/// Numerically-stable in-place softmax over x[0..n).
void softmax_inplace(float* x, std::size_t n) noexcept;

/// One Adam step over a contiguous span of n weights:
///   m = beta1*m + (1-beta1)*g;  v = beta2*v + (1-beta2)*g^2
///   w -= lr * (m/bias1) / (sqrt(v/bias2) + eps)
/// bias1/bias2 are the bias-correction denominators (1 - beta^t).
void adam_step(float* w, float* m, float* v, const float* g, std::size_t n,
               float lr, float beta1, float beta2, float eps, float bias1,
               float bias2) noexcept;

// ---- BF16 mixed-precision kernels (quantized inference path) -------------
// Weights are stored bf16 (see simd/bf16.h); activations and accumulation
// stay fp32, so error is bounded by the weight rounding alone (~2^-8
// relative per weight).

/// <bf16 w, fp32 x> over n entries, fp32 accumulation.
float dot_bf16(const Bf16* w, const float* x, std::size_t n) noexcept;

/// Sparse fp32 vector (idx/val) against a dense bf16 vector.
float sparse_dot_bf16(const Index* idx, const float* val, std::size_t nnz,
                      const Bf16* dense) noexcept;

/// y[i] += alpha * widen(x[i]) — bf16 source, fp32 destination.
void axpy_bf16(float alpha, const Bf16* x, float* y, std::size_t n) noexcept;

/// dst[i] = bf16(src[i]), round-to-nearest-even (the quantize-on-publish
/// step building a layer's weight mirror).
void quantize_bf16(const float* src, Bf16* dst, std::size_t n) noexcept;

/// dst[i] = widen(src[i]) — exact (bf16 is a float subset).
void dequantize_bf16(const Bf16* src, float* dst, std::size_t n) noexcept;

// ---- Int8 quantized kernels (see simd/int8.h for the format) -------------
// Weights s8 with a per-row symmetric scale, activations u8 in [0,127] with
// a per-query scale. The raw dot stays in int32 and is exact on every path
// (no vpmaddubsw saturation is reachable), so parity tests use equality.

/// Raw integer MAC: sum_i w[i] * x[i] (s8 x u8, int32 accumulation).
/// Callers rescale: score = bias + scale_row * scale_act * dot_i8(...).
std::int32_t dot_i8(const I8* w, const U8* x, std::size_t n) noexcept;

/// Sparse fp32 vector (idx/val) against a dense s8 row; the s8 weight is
/// widened per element, fp32 accumulation. Callers multiply by scale_row.
float sparse_dot_i8(const Index* idx, const float* val, std::size_t nnz,
                    const I8* dense) noexcept;

/// y[i] += alpha * widen(x[i]) — s8 source, fp32 destination. alpha folds
/// the row scale (and any activation value) in.
void axpy_i8(float alpha, const I8* x, float* y, std::size_t n) noexcept;

/// Quantizes one fp32 row to s8 (symmetric, RNE, clamp to +/-127); returns
/// the row scale, 0 for an all-zero row (dst then holds zeros).
float quantize_i8(const float* src, I8* dst, std::size_t n) noexcept;

/// Quantizes a non-negative activation vector to u8 in [0,127]; negative
/// inputs clamp to 0. Returns the per-query scale (0 when max(x) <= 0).
float quantize_act_u8(const float* src, U8* dst, std::size_t n) noexcept;

// ---- FP16 mixed-precision kernels (see simd/f16.h for the format) --------
// Same contract as the bf16 set with binary16 storage: weights fp16,
// activations and accumulation fp32. F16C `vcvtph2ps` load-convert where
// the CPU has it, bit-identical scalar conversion otherwise.

/// <fp16 w, fp32 x> over n entries, fp32 accumulation.
float dot_f16(const Fp16* w, const float* x, std::size_t n) noexcept;

/// Sparse fp32 vector (idx/val) against a dense fp16 vector.
float sparse_dot_f16(const Index* idx, const float* val, std::size_t nnz,
                     const Fp16* dense) noexcept;

/// y[i] += alpha * widen(x[i]) — fp16 source, fp32 destination.
void axpy_f16(float alpha, const Fp16* x, float* y, std::size_t n) noexcept;

/// dst[i] = fp16(src[i]), round-to-nearest-even (vcvtps2ph semantics).
void quantize_f16(const float* src, Fp16* dst, std::size_t n) noexcept;

/// dst[i] = widen(src[i]) — exact (every fp16 value is an fp32 value).
void dequantize_f16(const Fp16* src, float* dst, std::size_t n) noexcept;

/// Scalar reference implementations (always available; used as the oracle
/// in tests and as the table entries of the scalar dispatch level).
namespace scalar {
float dot(const float* a, const float* b, std::size_t n) noexcept;
void axpy(float alpha, const float* x, float* y, std::size_t n) noexcept;
void scale(float* x, float alpha, std::size_t n) noexcept;
float sum(const float* x, std::size_t n) noexcept;
float max(const float* x, std::size_t n) noexcept;
void relu(float* x, std::size_t n) noexcept;
float sparse_dot(const Index* idx, const float* val, std::size_t nnz,
                 const float* dense) noexcept;
void sparse_axpy(float alpha, const Index* idx, const float* val,
                 std::size_t nnz, float* dense) noexcept;
void softmax_inplace(float* x, std::size_t n) noexcept;
void adam_step(float* w, float* m, float* v, const float* g, std::size_t n,
               float lr, float beta1, float beta2, float eps, float bias1,
               float bias2) noexcept;
float dot_bf16(const Bf16* w, const float* x, std::size_t n) noexcept;
float sparse_dot_bf16(const Index* idx, const float* val, std::size_t nnz,
                      const Bf16* dense) noexcept;
void axpy_bf16(float alpha, const Bf16* x, float* y, std::size_t n) noexcept;
void quantize_bf16(const float* src, Bf16* dst, std::size_t n) noexcept;
void dequantize_bf16(const Bf16* src, float* dst, std::size_t n) noexcept;
std::int32_t dot_i8(const I8* w, const U8* x, std::size_t n) noexcept;
float sparse_dot_i8(const Index* idx, const float* val, std::size_t nnz,
                    const I8* dense) noexcept;
void axpy_i8(float alpha, const I8* x, float* y, std::size_t n) noexcept;
float quantize_i8(const float* src, I8* dst, std::size_t n) noexcept;
float quantize_act_u8(const float* src, U8* dst, std::size_t n) noexcept;
float dot_f16(const Fp16* w, const float* x, std::size_t n) noexcept;
float sparse_dot_f16(const Index* idx, const float* val, std::size_t nnz,
                     const Fp16* dense) noexcept;
void axpy_f16(float alpha, const Fp16* x, float* y, std::size_t n) noexcept;
void quantize_f16(const float* src, Fp16* dst, std::size_t n) noexcept;
void dequantize_f16(const Fp16* src, float* dst, std::size_t n) noexcept;
}  // namespace scalar

}  // namespace slide::simd
