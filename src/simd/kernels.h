// Vectorized math kernels with scalar reference implementations.
//
// The paper's appendix D attributes ~1.3x of SLIDE's final speedup to
// platform micro-optimization: AVX SIMD for the dense inner loops
// (activation dot products, weight updates) plus software prefetching.
// This module provides those kernels behind a process-wide toggle so the
// Figure-10 bench can A/B "plain SLIDE" (scalar) against "optimized SLIDE"
// (AVX2/FMA). Every vector kernel has a scalar twin in simd::scalar used
// both as the fallback and as the oracle in the test suite.
//
// All pointers may be unaligned; kernels handle the tail scalar-wise.
#pragma once

#include <cstddef>

#include "sys/common.h"

namespace slide::simd {

/// True when the AVX2+FMA paths were compiled in (requires -march with AVX2).
bool compiled_with_avx2() noexcept;

/// Process-wide dispatch switch. When false, all kernels use the scalar
/// path. Defaults to true. Used by bench/fig10_optimizations.
void set_simd_enabled(bool enabled) noexcept;
bool simd_enabled() noexcept;

/// Dense dot product <a, b> over n floats.
float dot(const float* a, const float* b, std::size_t n) noexcept;

/// y[i] += alpha * x[i] for i in [0, n).
void axpy(float alpha, const float* x, float* y, std::size_t n) noexcept;

/// x[i] *= alpha.
void scale(float* x, float alpha, std::size_t n) noexcept;

/// Sum of x[0..n).
float sum(const float* x, std::size_t n) noexcept;

/// Max of x[0..n); returns -inf for n == 0.
float max(const float* x, std::size_t n) noexcept;

/// x[i] = max(x[i], 0).
void relu(float* x, std::size_t n) noexcept;

/// Dot product of a sparse vector (idx/val pairs, nnz entries) with a dense
/// vector. Indices must be < the dense vector's length.
float sparse_dot(const Index* idx, const float* val, std::size_t nnz,
                 const float* dense) noexcept;

/// dense[idx[i]] += alpha * val[i] — scatter-accumulate of a sparse vector.
void sparse_axpy(float alpha, const Index* idx, const float* val,
                 std::size_t nnz, float* dense) noexcept;

/// Numerically-stable in-place softmax over x[0..n).
void softmax_inplace(float* x, std::size_t n) noexcept;

/// One Adam step over a contiguous span of n weights:
///   m = beta1*m + (1-beta1)*g;  v = beta2*v + (1-beta2)*g^2
///   w -= lr * (m/bias1) / (sqrt(v/bias2) + eps)
/// bias1/bias2 are the bias-correction denominators (1 - beta^t).
void adam_step(float* w, float* m, float* v, const float* g, std::size_t n,
               float lr, float beta1, float beta2, float eps, float bias1,
               float bias2) noexcept;

/// Scalar reference implementations (always available; used as the oracle in
/// tests and as the dispatch target when SIMD is disabled).
namespace scalar {
float dot(const float* a, const float* b, std::size_t n) noexcept;
void axpy(float alpha, const float* x, float* y, std::size_t n) noexcept;
void scale(float* x, float alpha, std::size_t n) noexcept;
float sum(const float* x, std::size_t n) noexcept;
float max(const float* x, std::size_t n) noexcept;
void relu(float* x, std::size_t n) noexcept;
float sparse_dot(const Index* idx, const float* val, std::size_t nnz,
                 const float* dense) noexcept;
void sparse_axpy(float alpha, const Index* idx, const float* val,
                 std::size_t nnz, float* dense) noexcept;
void softmax_inplace(float* x, std::size_t n) noexcept;
void adam_step(float* w, float* m, float* v, const float* g, std::size_t n,
               float lr, float beta1, float beta2, float eps, float bias1,
               float bias2) noexcept;
}  // namespace scalar

}  // namespace slide::simd
