// Vectorized math kernels behind the runtime dispatch (simd/backend.h).
//
// The paper's appendix D attributes ~1.3x of SLIDE's final speedup to
// platform micro-optimization: AVX SIMD for the dense inner loops
// (activation dot products, weight updates) plus software prefetching, and
// the follow-up "Accelerating SLIDE on Modern CPUs" adds AVX-512 and BF16
// on the same loops. Every call below lands in the kernel table the
// dispatch bound at startup (scalar / AVX2+FMA / AVX-512F+BW), so one
// binary runs at full width on every machine; see backend.h for level
// selection and overrides. Every vector kernel has a scalar twin in
// simd::scalar used both as the dispatch fallback and as the oracle in the
// test suite.
//
// All pointers may be unaligned; kernels handle the tail per-element (or
// with masked loads on AVX-512).
#pragma once

#include <cstddef>

#include "simd/backend.h"
#include "simd/bf16.h"
#include "sys/common.h"

namespace slide::simd {

/// DEPRECATED compile-time-era toggles, kept as shims over the dispatch:
///   compiled_with_avx2()   -> level_compiled(SimdLevel::kAVX2)
///   set_simd_enabled(b)    -> set_simd_level(b ? detected_level() : scalar)
///   simd_enabled()         -> active_level() != scalar
/// Prefer backend.h's set_simd_level / active_level in new code: they are
/// explicit about *which* vector level runs, not just "on/off".
[[deprecated("use simd::level_compiled(SimdLevel::kAVX2)")]]
bool compiled_with_avx2() noexcept;
[[deprecated(
    "use simd::set_simd_level(enabled ? detected_level() : kScalar)")]]
void set_simd_enabled(bool enabled) noexcept;
[[deprecated("use simd::active_level() != SimdLevel::kScalar")]]
bool simd_enabled() noexcept;

/// Dense dot product <a, b> over n floats.
float dot(const float* a, const float* b, std::size_t n) noexcept;

/// y[i] += alpha * x[i] for i in [0, n).
void axpy(float alpha, const float* x, float* y, std::size_t n) noexcept;

/// x[i] *= alpha.
void scale(float* x, float alpha, std::size_t n) noexcept;

/// Sum of x[0..n).
float sum(const float* x, std::size_t n) noexcept;

/// Max of x[0..n); returns -inf for n == 0.
float max(const float* x, std::size_t n) noexcept;

/// x[i] = max(x[i], 0).
void relu(float* x, std::size_t n) noexcept;

/// Dot product of a sparse vector (idx/val pairs, nnz entries) with a dense
/// vector. Indices must be < the dense vector's length.
float sparse_dot(const Index* idx, const float* val, std::size_t nnz,
                 const float* dense) noexcept;

/// dense[idx[i]] += alpha * val[i] — scatter-accumulate of a sparse vector.
void sparse_axpy(float alpha, const Index* idx, const float* val,
                 std::size_t nnz, float* dense) noexcept;

/// Numerically-stable in-place softmax over x[0..n).
void softmax_inplace(float* x, std::size_t n) noexcept;

/// One Adam step over a contiguous span of n weights:
///   m = beta1*m + (1-beta1)*g;  v = beta2*v + (1-beta2)*g^2
///   w -= lr * (m/bias1) / (sqrt(v/bias2) + eps)
/// bias1/bias2 are the bias-correction denominators (1 - beta^t).
void adam_step(float* w, float* m, float* v, const float* g, std::size_t n,
               float lr, float beta1, float beta2, float eps, float bias1,
               float bias2) noexcept;

// ---- BF16 mixed-precision kernels (quantized inference path) -------------
// Weights are stored bf16 (see simd/bf16.h); activations and accumulation
// stay fp32, so error is bounded by the weight rounding alone (~2^-8
// relative per weight).

/// <bf16 w, fp32 x> over n entries, fp32 accumulation.
float dot_bf16(const Bf16* w, const float* x, std::size_t n) noexcept;

/// Sparse fp32 vector (idx/val) against a dense bf16 vector.
float sparse_dot_bf16(const Index* idx, const float* val, std::size_t nnz,
                      const Bf16* dense) noexcept;

/// y[i] += alpha * widen(x[i]) — bf16 source, fp32 destination.
void axpy_bf16(float alpha, const Bf16* x, float* y, std::size_t n) noexcept;

/// dst[i] = bf16(src[i]), round-to-nearest-even (the quantize-on-publish
/// step building a layer's weight mirror).
void quantize_bf16(const float* src, Bf16* dst, std::size_t n) noexcept;

/// dst[i] = widen(src[i]) — exact (bf16 is a float subset).
void dequantize_bf16(const Bf16* src, float* dst, std::size_t n) noexcept;

/// Scalar reference implementations (always available; used as the oracle
/// in tests and as the table entries of the scalar dispatch level).
namespace scalar {
float dot(const float* a, const float* b, std::size_t n) noexcept;
void axpy(float alpha, const float* x, float* y, std::size_t n) noexcept;
void scale(float* x, float alpha, std::size_t n) noexcept;
float sum(const float* x, std::size_t n) noexcept;
float max(const float* x, std::size_t n) noexcept;
void relu(float* x, std::size_t n) noexcept;
float sparse_dot(const Index* idx, const float* val, std::size_t nnz,
                 const float* dense) noexcept;
void sparse_axpy(float alpha, const Index* idx, const float* val,
                 std::size_t nnz, float* dense) noexcept;
void softmax_inplace(float* x, std::size_t n) noexcept;
void adam_step(float* w, float* m, float* v, const float* g, std::size_t n,
               float lr, float beta1, float beta2, float eps, float bias1,
               float bias2) noexcept;
float dot_bf16(const Bf16* w, const float* x, std::size_t n) noexcept;
float sparse_dot_bf16(const Index* idx, const float* val, std::size_t nnz,
                      const Bf16* dense) noexcept;
void axpy_bf16(float alpha, const Bf16* x, float* y, std::size_t n) noexcept;
void quantize_bf16(const float* src, Bf16* dst, std::size_t n) noexcept;
void dequantize_bf16(const Bf16* src, float* dst, std::size_t n) noexcept;
}  // namespace scalar

}  // namespace slide::simd
