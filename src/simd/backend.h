// Runtime-dispatched compute backend: one binary, every machine.
//
// The kernels in simd/kernels.h used to be a compile-time choice (the
// binary either had AVX2 or it didn't, behind a process-wide bool). This
// module replaces that with a *dispatch table* bound at startup:
//
//   kernels_scalar.cpp   portable C++        (always compiled)
//   kernels_avx2.cpp     -mavx2 -mfma        (own -march flags)
//   kernels_avx512.cpp   -mavx512f -mavx512bw -mfma
//
// Each per-ISA translation unit compiles with exactly its own flags and
// exports a `Backend` table of function pointers; cpuid (sys/cpu_features)
// picks the widest table the running CPU supports on first use. The public
// kernels.h entry points are one atomic pointer load + indirect call away
// from the bound table, so every future kernel improvement is a new table
// entry, not an #ifdef.
//
// Level selection, in priority order:
//   1. set_simd_level()            — thread-safe programmatic override
//   2. SLIDE_SIMD_LEVEL env        — "scalar" | "avx2" | "avx512"; sets the
//                                    initial level (testing/CI); clamped to
//                                    what the host supports, with a one-time
//                                    stderr note on clamp or typo
//   3. cpuid                       — widest compiled-in level the CPU has
//
// The table also carries the BF16 mixed-precision kernels (bf16 weights x
// fp32 activations) used by the quantized inference path; see simd/bf16.h
// for the format and core/layer.h for the weight-mirror contract.
#pragma once

#include <cstddef>

#include "simd/bf16.h"
#include "simd/f16.h"
#include "simd/int8.h"
#include "sys/common.h"

namespace slide::simd {

enum class SimdLevel : int { kScalar = 0, kAVX2 = 1, kAVX512 = 2 };

const char* to_string(SimdLevel level) noexcept;
/// Parses "scalar" | "avx2" | "avx512" (slide::Error otherwise).
SimdLevel parse_simd_level(const char* name);

/// One ISA's kernel set. Entries an ISA does not specialize point at the
/// scalar reference implementation (e.g. sparse_axpy, where scatter does
/// not pay), so a table is always total.
struct Backend {
  SimdLevel level = SimdLevel::kScalar;
  const char* name = "scalar";

  float (*dot)(const float*, const float*, std::size_t) noexcept = nullptr;
  void (*axpy)(float, const float*, float*, std::size_t) noexcept = nullptr;
  void (*scale)(float*, float, std::size_t) noexcept = nullptr;
  float (*sum)(const float*, std::size_t) noexcept = nullptr;
  float (*max)(const float*, std::size_t) noexcept = nullptr;
  void (*relu)(float*, std::size_t) noexcept = nullptr;
  float (*sparse_dot)(const Index*, const float*, std::size_t,
                      const float*) noexcept = nullptr;
  void (*sparse_axpy)(float, const Index*, const float*, std::size_t,
                      float*) noexcept = nullptr;
  void (*softmax_inplace)(float*, std::size_t) noexcept = nullptr;
  void (*adam_step)(float*, float*, float*, const float*, std::size_t, float,
                    float, float, float, float, float) noexcept = nullptr;

  // Mixed-precision kernels: bf16 weights, fp32 activations/accumulation.
  float (*dot_bf16)(const Bf16*, const float*, std::size_t) noexcept = nullptr;
  float (*sparse_dot_bf16)(const Index*, const float*, std::size_t,
                           const Bf16*) noexcept = nullptr;
  void (*axpy_bf16)(float, const Bf16*, float*, std::size_t) noexcept =
      nullptr;
  // Quantization runs on the publish path (cold); scalar in every table.
  void (*quantize_bf16)(const float*, Bf16*, std::size_t) noexcept = nullptr;
  void (*dequantize_bf16)(const Bf16*, float*, std::size_t) noexcept = nullptr;

  // Int8 tier: s8 weights (per-row symmetric scale) x u8 activations in
  // [0,127]; see simd/int8.h for the full contract. dot_i8 returns the raw
  // int32 MAC — identical across all paths by construction, so parity is
  // exact. The AVX-512 table uses VNNI `vpdpbusd` when cpuid reports it
  // (kAvx512BackendNoVnni otherwise); AVX2 uses `vpmaddubsw`. The active
  // path's name is recorded in i8_path for benches/banners.
  std::int32_t (*dot_i8)(const I8*, const U8*, std::size_t) noexcept = nullptr;
  float (*sparse_dot_i8)(const Index*, const float*, std::size_t,
                         const I8*) noexcept = nullptr;
  void (*axpy_i8)(float, const I8*, float*, std::size_t) noexcept = nullptr;
  /// Quantizes one row; returns its scale (0 for an all-zero row). Publish
  /// path (cold): scalar in every table.
  float (*quantize_i8)(const float*, I8*, std::size_t) noexcept = nullptr;
  /// Quantizes a (non-negative) activation vector to u8 in [0,127];
  /// returns the per-query scale. Once per query (cold-ish): scalar.
  float (*quantize_act_u8)(const float*, U8*, std::size_t) noexcept = nullptr;

  // FP16 tier: binary16 weights x fp32 activations, load-converted via
  // F16C `vcvtph2ps` where available (kAvx2BackendNoF16c falls back to
  // scalar conversion). Same shape as the bf16 slots.
  float (*dot_f16)(const Fp16*, const float*, std::size_t) noexcept = nullptr;
  float (*sparse_dot_f16)(const Index*, const float*, std::size_t,
                          const Fp16*) noexcept = nullptr;
  void (*axpy_f16)(float, const Fp16*, float*, std::size_t) noexcept = nullptr;
  void (*quantize_f16)(const float*, Fp16*, std::size_t) noexcept = nullptr;
  void (*dequantize_f16)(const Fp16*, float*, std::size_t) noexcept = nullptr;

  // Human-readable names of the int8/fp16 code paths this table binds
  // ("vnni", "maddubs-512", "maddubs-256", "f16c-256", "scalar", ...).
  // BENCH_backend.json rows carry these so baselines compare like-for-like
  // across machines with and without the optional ISA extensions.
  const char* i8_path = "scalar";
  const char* f16_path = "scalar";
};

/// True when this binary contains a kernel table for `level` (a build-time
/// property: the compiler supported the ISA flags).
bool level_compiled(SimdLevel level) noexcept;

/// True when `level` is compiled in AND the running CPU supports it —
/// i.e. set_simd_level(level) would succeed. kScalar is always supported.
bool level_supported(SimdLevel level) noexcept;

/// The widest supported level (what the dispatch binds by default; the
/// SLIDE_SIMD_LEVEL env only caps the initial *active* level, not this).
SimdLevel detected_level() noexcept;

/// The level the dispatch is currently bound to.
SimdLevel active_level() noexcept;

/// Rebinds the dispatch to `level` for the whole process (atomic pointer
/// swap; safe against concurrent kernel callers, who see either the old or
/// the new table). Throws slide::Error if the level is not supported on
/// this host — check level_supported() first when probing.
void set_simd_level(SimdLevel level);

/// The active kernel table. Hot-path accessor: one acquire atomic load
/// (free on x86; the acquire edge makes a freshly bound table's contents
/// visible to kernel callers on weaker architectures).
const Backend& backend() noexcept;

/// The table for a specific level, or nullptr when unsupported. Lets the
/// parity tests and micro benches call a fixed level without touching the
/// process-wide binding.
const Backend* backend_for(SimdLevel level) noexcept;

}  // namespace slide::simd
