// Public kernel entry points: thin trampolines into the bound dispatch
// table (simd/backend.h). Each call is one acquire atomic pointer load
// plus an indirect call — the per-ISA implementations live in
// kernels_scalar.cpp / kernels_avx2.cpp / kernels_avx512.cpp.
#include "simd/kernels.h"

namespace slide::simd {

// ---- deprecated compile-time-era shims ------------------------------------
// Defining the [[deprecated]] trio must not warn on itself.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

bool compiled_with_avx2() noexcept {
  return level_compiled(SimdLevel::kAVX2);
}

void set_simd_enabled(bool enabled) noexcept {
  // detected_level() and kScalar are supported by construction, so the
  // underlying set_simd_level cannot throw here.
  set_simd_level(enabled ? detected_level() : SimdLevel::kScalar);
}

bool simd_enabled() noexcept {
  return active_level() != SimdLevel::kScalar;
}

#pragma GCC diagnostic pop

// ---- dispatchers ----------------------------------------------------------

float dot(const float* a, const float* b, std::size_t n) noexcept {
  return backend().dot(a, b, n);
}
void axpy(float alpha, const float* x, float* y, std::size_t n) noexcept {
  backend().axpy(alpha, x, y, n);
}
void scale(float* x, float alpha, std::size_t n) noexcept {
  backend().scale(x, alpha, n);
}
float sum(const float* x, std::size_t n) noexcept {
  return backend().sum(x, n);
}
float max(const float* x, std::size_t n) noexcept {
  return backend().max(x, n);
}
void relu(float* x, std::size_t n) noexcept { backend().relu(x, n); }
float sparse_dot(const Index* idx, const float* val, std::size_t nnz,
                 const float* dense) noexcept {
  return backend().sparse_dot(idx, val, nnz, dense);
}
void sparse_axpy(float alpha, const Index* idx, const float* val,
                 std::size_t nnz, float* dense) noexcept {
  backend().sparse_axpy(alpha, idx, val, nnz, dense);
}
void softmax_inplace(float* x, std::size_t n) noexcept {
  backend().softmax_inplace(x, n);
}
void adam_step(float* w, float* m, float* v, const float* g, std::size_t n,
               float lr, float beta1, float beta2, float eps, float bias1,
               float bias2) noexcept {
  backend().adam_step(w, m, v, g, n, lr, beta1, beta2, eps, bias1, bias2);
}

float dot_bf16(const Bf16* w, const float* x, std::size_t n) noexcept {
  return backend().dot_bf16(w, x, n);
}
float sparse_dot_bf16(const Index* idx, const float* val, std::size_t nnz,
                      const Bf16* dense) noexcept {
  return backend().sparse_dot_bf16(idx, val, nnz, dense);
}
void axpy_bf16(float alpha, const Bf16* x, float* y, std::size_t n) noexcept {
  backend().axpy_bf16(alpha, x, y, n);
}
void quantize_bf16(const float* src, Bf16* dst, std::size_t n) noexcept {
  backend().quantize_bf16(src, dst, n);
}
void dequantize_bf16(const Bf16* src, float* dst, std::size_t n) noexcept {
  backend().dequantize_bf16(src, dst, n);
}

std::int32_t dot_i8(const I8* w, const U8* x, std::size_t n) noexcept {
  return backend().dot_i8(w, x, n);
}
float sparse_dot_i8(const Index* idx, const float* val, std::size_t nnz,
                    const I8* dense) noexcept {
  return backend().sparse_dot_i8(idx, val, nnz, dense);
}
void axpy_i8(float alpha, const I8* x, float* y, std::size_t n) noexcept {
  backend().axpy_i8(alpha, x, y, n);
}
float quantize_i8(const float* src, I8* dst, std::size_t n) noexcept {
  return backend().quantize_i8(src, dst, n);
}
float quantize_act_u8(const float* src, U8* dst, std::size_t n) noexcept {
  return backend().quantize_act_u8(src, dst, n);
}

float dot_f16(const Fp16* w, const float* x, std::size_t n) noexcept {
  return backend().dot_f16(w, x, n);
}
float sparse_dot_f16(const Index* idx, const float* val, std::size_t nnz,
                     const Fp16* dense) noexcept {
  return backend().sparse_dot_f16(idx, val, nnz, dense);
}
void axpy_f16(float alpha, const Fp16* x, float* y, std::size_t n) noexcept {
  backend().axpy_f16(alpha, x, y, n);
}
void quantize_f16(const float* src, Fp16* dst, std::size_t n) noexcept {
  backend().quantize_f16(src, dst, n);
}
void dequantize_f16(const Fp16* src, float* dst, std::size_t n) noexcept {
  backend().dequantize_f16(src, dst, n);
}

}  // namespace slide::simd
