#include "simd/kernels.h"

#include <atomic>
#include <cmath>
#include <limits>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define SLIDE_AVX2 1
#else
#define SLIDE_AVX2 0
#endif

namespace slide::simd {

namespace {
std::atomic<bool> g_simd_enabled{true};

bool use_simd() noexcept {
  return SLIDE_AVX2 && g_simd_enabled.load(std::memory_order_relaxed);
}
}  // namespace

bool compiled_with_avx2() noexcept { return SLIDE_AVX2 != 0; }
void set_simd_enabled(bool enabled) noexcept { g_simd_enabled.store(enabled); }
bool simd_enabled() noexcept { return use_simd(); }

// ---------------------------------------------------------------------------
// Scalar reference implementations.
// ---------------------------------------------------------------------------
namespace scalar {

float dot(const float* a, const float* b, std::size_t n) noexcept {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(float alpha, const float* x, float* y, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(float* x, float alpha, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

float sum(const float* x, std::size_t n) noexcept {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += x[i];
  return acc;
}

float max(const float* x, std::size_t n) noexcept {
  float m = -std::numeric_limits<float>::infinity();
  for (std::size_t i = 0; i < n; ++i) m = x[i] > m ? x[i] : m;
  return m;
}

void relu(float* x, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) x[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

float sparse_dot(const Index* idx, const float* val, std::size_t nnz,
                 const float* dense) noexcept {
  float acc = 0.0f;
  for (std::size_t i = 0; i < nnz; ++i) acc += val[i] * dense[idx[i]];
  return acc;
}

void sparse_axpy(float alpha, const Index* idx, const float* val,
                 std::size_t nnz, float* dense) noexcept {
  for (std::size_t i = 0; i < nnz; ++i) dense[idx[i]] += alpha * val[i];
}

void softmax_inplace(float* x, std::size_t n) noexcept {
  if (n == 0) return;
  const float m = scalar::max(x, n);
  float z = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - m);
    z += x[i];
  }
  const float inv = 1.0f / z;
  for (std::size_t i = 0; i < n; ++i) x[i] *= inv;
}

void adam_step(float* w, float* m, float* v, const float* g, std::size_t n,
               float lr, float beta1, float beta2, float eps, float bias1,
               float bias2) noexcept {
  const float inv_b1 = 1.0f / bias1;
  const float inv_b2 = 1.0f / bias2;
  for (std::size_t i = 0; i < n; ++i) {
    m[i] = beta1 * m[i] + (1.0f - beta1) * g[i];
    v[i] = beta2 * v[i] + (1.0f - beta2) * g[i] * g[i];
    const float mhat = m[i] * inv_b1;
    const float vhat = v[i] * inv_b2;
    w[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// AVX2 + FMA implementations.
// ---------------------------------------------------------------------------
#if SLIDE_AVX2
namespace avx2 {

inline float hsum256(__m256 v) noexcept {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  return _mm_cvtss_f32(lo);
}

float dot(const float* a, const float* b, std::size_t n) noexcept {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  float acc = hsum256(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(float alpha, const float* x, float* y, std::size_t n) noexcept {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 vy = _mm256_loadu_ps(y + i);
    vy = _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), vy);
    _mm256_storeu_ps(y + i, vy);
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void scale(float* x, float alpha, std::size_t n) noexcept {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

float sum(const float* x, std::size_t n) noexcept {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) acc = _mm256_add_ps(acc, _mm256_loadu_ps(x + i));
  float s = hsum256(acc);
  for (; i < n; ++i) s += x[i];
  return s;
}

float max(const float* x, std::size_t n) noexcept {
  if (n < 8) return scalar::max(x, n);
  __m256 vm = _mm256_loadu_ps(x);
  std::size_t i = 8;
  for (; i + 8 <= n; i += 8) vm = _mm256_max_ps(vm, _mm256_loadu_ps(x + i));
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, vm);
  float m = lanes[0];
  for (int k = 1; k < 8; ++k) m = lanes[k] > m ? lanes[k] : m;
  for (; i < n; ++i) m = x[i] > m ? x[i] : m;
  return m;
}

void relu(float* x, std::size_t n) noexcept {
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) x[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

float sparse_dot(const Index* idx, const float* val, std::size_t nnz,
                 const float* dense) noexcept {
  // Gather-based: profitable on sparse inputs with tens of nonzeros.
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= nnz; i += 8) {
    const __m256i vi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(idx + i));
    const __m256 vd = _mm256_i32gather_ps(dense, vi, 4);
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(val + i), vd, acc);
  }
  float s = hsum256(acc);
  for (; i < nnz; ++i) s += val[i] * dense[idx[i]];
  return s;
}

void sparse_axpy(float alpha, const Index* idx, const float* val,
                 std::size_t nnz, float* dense) noexcept {
  // Scatter has no AVX2 instruction; the scalar loop with unrolling is the
  // fast path here.
  scalar::sparse_axpy(alpha, idx, val, nnz, dense);
}

void softmax_inplace(float* x, std::size_t n) noexcept {
  // exp() dominates; vectorizing max + normalization still helps.
  if (n == 0) return;
  const float m = avx2::max(x, n);
  float z = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - m);
    z += x[i];
  }
  avx2::scale(x, 1.0f / z, n);
}

void adam_step(float* w, float* m, float* v, const float* g, std::size_t n,
               float lr, float beta1, float beta2, float eps, float bias1,
               float bias2) noexcept {
  const __m256 vb1 = _mm256_set1_ps(beta1);
  const __m256 vb2 = _mm256_set1_ps(beta2);
  const __m256 vib1 = _mm256_set1_ps(1.0f - beta1);
  const __m256 vib2 = _mm256_set1_ps(1.0f - beta2);
  const __m256 vinvc1 = _mm256_set1_ps(1.0f / bias1);
  const __m256 vinvc2 = _mm256_set1_ps(1.0f / bias2);
  const __m256 veps = _mm256_set1_ps(eps);
  const __m256 vlr = _mm256_set1_ps(lr);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vg = _mm256_loadu_ps(g + i);
    __m256 vm = _mm256_loadu_ps(m + i);
    __m256 vv = _mm256_loadu_ps(v + i);
    vm = _mm256_fmadd_ps(vb1, vm, _mm256_mul_ps(vib1, vg));
    vv = _mm256_fmadd_ps(vb2, vv, _mm256_mul_ps(vib2, _mm256_mul_ps(vg, vg)));
    _mm256_storeu_ps(m + i, vm);
    _mm256_storeu_ps(v + i, vv);
    const __m256 mhat = _mm256_mul_ps(vm, vinvc1);
    const __m256 vhat = _mm256_mul_ps(vv, vinvc2);
    const __m256 denom = _mm256_add_ps(_mm256_sqrt_ps(vhat), veps);
    const __m256 step = _mm256_div_ps(_mm256_mul_ps(vlr, mhat), denom);
    _mm256_storeu_ps(w + i, _mm256_sub_ps(_mm256_loadu_ps(w + i), step));
  }
  if (i < n) {
    scalar::adam_step(w + i, m + i, v + i, g + i, n - i, lr, beta1, beta2,
                      eps, bias1, bias2);
  }
}

}  // namespace avx2
#endif  // SLIDE_AVX2

// ---------------------------------------------------------------------------
// Public dispatchers.
// ---------------------------------------------------------------------------
#if SLIDE_AVX2
#define SLIDE_DISPATCH(fn, ...) \
  return use_simd() ? avx2::fn(__VA_ARGS__) : scalar::fn(__VA_ARGS__)
#else
#define SLIDE_DISPATCH(fn, ...) return scalar::fn(__VA_ARGS__)
#endif

float dot(const float* a, const float* b, std::size_t n) noexcept {
  SLIDE_DISPATCH(dot, a, b, n);
}
void axpy(float alpha, const float* x, float* y, std::size_t n) noexcept {
  SLIDE_DISPATCH(axpy, alpha, x, y, n);
}
void scale(float* x, float alpha, std::size_t n) noexcept {
  SLIDE_DISPATCH(scale, x, alpha, n);
}
float sum(const float* x, std::size_t n) noexcept {
  SLIDE_DISPATCH(sum, x, n);
}
float max(const float* x, std::size_t n) noexcept {
  SLIDE_DISPATCH(max, x, n);
}
void relu(float* x, std::size_t n) noexcept { SLIDE_DISPATCH(relu, x, n); }
float sparse_dot(const Index* idx, const float* val, std::size_t nnz,
                 const float* dense) noexcept {
  SLIDE_DISPATCH(sparse_dot, idx, val, nnz, dense);
}
void sparse_axpy(float alpha, const Index* idx, const float* val,
                 std::size_t nnz, float* dense) noexcept {
  SLIDE_DISPATCH(sparse_axpy, alpha, idx, val, nnz, dense);
}
void softmax_inplace(float* x, std::size_t n) noexcept {
  SLIDE_DISPATCH(softmax_inplace, x, n);
}
void adam_step(float* w, float* m, float* v, const float* g, std::size_t n,
               float lr, float beta1, float beta2, float eps, float bias1,
               float bias2) noexcept {
  SLIDE_DISPATCH(adam_step, w, m, v, g, n, lr, beta1, beta2, eps, bias1,
                 bias2);
}

#undef SLIDE_DISPATCH

}  // namespace slide::simd
