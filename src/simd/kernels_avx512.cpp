// AVX-512F+BW kernel table.
//
// Compiled with -mavx512f -mavx512bw -mfma (its own flags, independent of
// the project-wide -march; see CMakeLists.txt) and bound by the dispatch
// only after cpuid confirms both features. 16-lane fp32 arithmetic with
// fully masked tails — no scalar remainder loops on the dense kernels —
// plus the bf16 widening loads the quantized inference path uses. The
// table pointer is constant-initialized, so nothing here executes on a
// host without AVX-512.
#include "simd/backend_registry.h"
#include "simd/kernels.h"

#if defined(SLIDE_COMPILE_AVX512) || \
    (defined(__AVX512F__) && defined(__AVX512BW__))
#define SLIDE_HAVE_AVX512_TU 1
#include <immintrin.h>

#include <cmath>
#include <limits>
#else
#define SLIDE_HAVE_AVX512_TU 0
#endif

namespace slide::simd {

#if SLIDE_HAVE_AVX512_TU
namespace avx512 {

inline __mmask16 tail_mask(std::size_t rem) noexcept {
  return static_cast<__mmask16>((1u << rem) - 1u);
}

float dot(const float* a, const float* b, std::size_t n) noexcept {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
  }
  if (i < n) {
    const __mmask16 k = tail_mask(n - i);
    acc1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(k, a + i),
                           _mm512_maskz_loadu_ps(k, b + i), acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

void axpy(float alpha, const float* x, float* y, std::size_t n) noexcept {
  const __m512 va = _mm512_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512 vy = _mm512_loadu_ps(y + i);
    vy = _mm512_fmadd_ps(va, _mm512_loadu_ps(x + i), vy);
    _mm512_storeu_ps(y + i, vy);
  }
  if (i < n) {
    const __mmask16 k = tail_mask(n - i);
    __m512 vy = _mm512_maskz_loadu_ps(k, y + i);
    vy = _mm512_fmadd_ps(va, _mm512_maskz_loadu_ps(k, x + i), vy);
    _mm512_mask_storeu_ps(y + i, k, vy);
  }
}

void scale(float* x, float alpha, std::size_t n) noexcept {
  const __m512 va = _mm512_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(x + i, _mm512_mul_ps(_mm512_loadu_ps(x + i), va));
  }
  if (i < n) {
    const __mmask16 k = tail_mask(n - i);
    _mm512_mask_storeu_ps(
        x + i, k, _mm512_mul_ps(_mm512_maskz_loadu_ps(k, x + i), va));
  }
}

float sum(const float* x, std::size_t n) noexcept {
  __m512 acc = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc = _mm512_add_ps(acc, _mm512_loadu_ps(x + i));
  }
  if (i < n) {
    acc = _mm512_add_ps(acc, _mm512_maskz_loadu_ps(tail_mask(n - i), x + i));
  }
  return _mm512_reduce_add_ps(acc);
}

float max(const float* x, std::size_t n) noexcept {
  const __m512 vminf = _mm512_set1_ps(-std::numeric_limits<float>::infinity());
  __m512 vm = vminf;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vm = _mm512_max_ps(vm, _mm512_loadu_ps(x + i));
  }
  if (i < n) {
    // Masked-out lanes keep -inf so they never win the reduction.
    vm = _mm512_max_ps(vm,
                       _mm512_mask_loadu_ps(vminf, tail_mask(n - i), x + i));
  }
  return _mm512_reduce_max_ps(vm);
}

void relu(float* x, std::size_t n) noexcept {
  const __m512 zero = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(x + i, _mm512_max_ps(_mm512_loadu_ps(x + i), zero));
  }
  if (i < n) {
    const __mmask16 k = tail_mask(n - i);
    _mm512_mask_storeu_ps(
        x + i, k, _mm512_max_ps(_mm512_maskz_loadu_ps(k, x + i), zero));
  }
}

float sparse_dot(const Index* idx, const float* val, std::size_t nnz,
                 const float* dense) noexcept {
  __m512 acc = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= nnz; i += 16) {
    const __m512i vi = _mm512_loadu_si512(idx + i);
    const __m512 vd = _mm512_i32gather_ps(vi, dense, 4);
    acc = _mm512_fmadd_ps(_mm512_loadu_ps(val + i), vd, acc);
  }
  float s = _mm512_reduce_add_ps(acc);
  for (; i < nnz; ++i) s += val[i] * dense[idx[i]];
  return s;
}

void softmax_inplace(float* x, std::size_t n) noexcept {
  // exp() dominates; vectorizing max + normalization still helps.
  if (n == 0) return;
  const float m = avx512::max(x, n);
  float z = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - m);
    z += x[i];
  }
  avx512::scale(x, 1.0f / z, n);
}

void adam_step(float* w, float* m, float* v, const float* g, std::size_t n,
               float lr, float beta1, float beta2, float eps, float bias1,
               float bias2) noexcept {
  const __m512 vb1 = _mm512_set1_ps(beta1);
  const __m512 vb2 = _mm512_set1_ps(beta2);
  const __m512 vib1 = _mm512_set1_ps(1.0f - beta1);
  const __m512 vib2 = _mm512_set1_ps(1.0f - beta2);
  const __m512 vinvc1 = _mm512_set1_ps(1.0f / bias1);
  const __m512 vinvc2 = _mm512_set1_ps(1.0f / bias2);
  const __m512 veps = _mm512_set1_ps(eps);
  const __m512 vlr = _mm512_set1_ps(lr);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 vg = _mm512_loadu_ps(g + i);
    __m512 vm = _mm512_loadu_ps(m + i);
    __m512 vv = _mm512_loadu_ps(v + i);
    vm = _mm512_fmadd_ps(vb1, vm, _mm512_mul_ps(vib1, vg));
    vv = _mm512_fmadd_ps(vb2, vv, _mm512_mul_ps(vib2, _mm512_mul_ps(vg, vg)));
    _mm512_storeu_ps(m + i, vm);
    _mm512_storeu_ps(v + i, vv);
    const __m512 mhat = _mm512_mul_ps(vm, vinvc1);
    const __m512 vhat = _mm512_mul_ps(vv, vinvc2);
    const __m512 denom = _mm512_add_ps(_mm512_sqrt_ps(vhat), veps);
    const __m512 step = _mm512_div_ps(_mm512_mul_ps(vlr, mhat), denom);
    _mm512_storeu_ps(w + i, _mm512_sub_ps(_mm512_loadu_ps(w + i), step));
  }
  if (i < n) {
    scalar::adam_step(w + i, m + i, v + i, g + i, n - i, lr, beta1, beta2,
                      eps, bias1, bias2);
  }
}

/// Widens 16 bf16 values (256-bit load) to 16 fp32 lanes.
inline __m512 load_bf16x16(const Bf16* p) noexcept {
  const __m256i raw = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m512i wide = _mm512_cvtepu16_epi32(raw);
  return _mm512_castsi512_ps(_mm512_slli_epi32(wide, 16));
}

float dot_bf16(const Bf16* w, const float* x, std::size_t n) noexcept {
  __m512 acc = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc = _mm512_fmadd_ps(load_bf16x16(w + i), _mm512_loadu_ps(x + i), acc);
  }
  float s = _mm512_reduce_add_ps(acc);
  // Masked 256-bit bf16 loads need AVX512VL, which this TU deliberately
  // does not require — the tail stays scalar.
  for (; i < n; ++i) s += bf16_to_float(w[i]) * x[i];
  return s;
}

void axpy_bf16(float alpha, const Bf16* x, float* y, std::size_t n) noexcept {
  const __m512 va = _mm512_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512 vy = _mm512_loadu_ps(y + i);
    vy = _mm512_fmadd_ps(va, load_bf16x16(x + i), vy);
    _mm512_storeu_ps(y + i, vy);
  }
  for (; i < n; ++i) y[i] += alpha * bf16_to_float(x[i]);
}

// ---- int8 ----------------------------------------------------------------

/// BW-baseline int8 dot: vpmaddubsw pairs u8 x s8 into int16 (exact — the
/// [0,127] activation cap rules out saturation), vpmaddwd widens to int32.
std::int32_t dot_i8_maddubs(const I8* w, const U8* x, std::size_t n) noexcept {
  __m512i acc = _mm512_setzero_si512();
  const __m512i ones = _mm512_set1_epi16(1);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i vx = _mm512_loadu_si512(x + i);
    const __m512i vw = _mm512_loadu_si512(w + i);
    const __m512i pairs = _mm512_maddubs_epi16(vx, vw);
    acc = _mm512_add_epi32(acc, _mm512_madd_epi16(pairs, ones));
  }
  std::int32_t s = _mm512_reduce_add_epi32(acc);
  for (; i < n; ++i) {
    s += static_cast<std::int32_t>(w[i]) * static_cast<std::int32_t>(x[i]);
  }
  return s;
}

// AVX512-VNNI is not implied by F+BW, so the vpdpbusd kernel carries its
// own target attribute and lands only in the full kAvx512Table — the
// NoVnni variant binds dot_i8_maddubs and no VNNI instruction ever runs on
// a host without the cpuid bit. Clang and GCC >= 8 both compile the
// intrinsic under a target attribute; older GCC falls back to maddubs
// everywhere.
#if defined(__clang__) || (defined(__GNUC__) && __GNUC__ >= 8)
#define SLIDE_HAVE_VNNI_COMPILE 1
__attribute__((target("avx512f,avx512bw,avx512vnni")))
std::int32_t dot_i8_vnni(const I8* w, const U8* x, std::size_t n) noexcept {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i vx = _mm512_loadu_si512(x + i);
    const __m512i vw = _mm512_loadu_si512(w + i);
    acc = _mm512_dpbusd_epi32(acc, vx, vw);  // u8 x s8 -> int32, one op
  }
  std::int32_t s = _mm512_reduce_add_epi32(acc);
  for (; i < n; ++i) {
    s += static_cast<std::int32_t>(w[i]) * static_cast<std::int32_t>(x[i]);
  }
  return s;
}
#else
#define SLIDE_HAVE_VNNI_COMPILE 0
#endif

void axpy_i8(float alpha, const I8* x, float* y, std::size_t n) noexcept {
  const __m512 va = _mm512_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
    const __m512 vx = _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(raw));
    __m512 vy = _mm512_loadu_ps(y + i);
    vy = _mm512_fmadd_ps(va, vx, vy);
    _mm512_storeu_ps(y + i, vy);
  }
  for (; i < n; ++i) y[i] += alpha * static_cast<float>(x[i]);
}

// ---- fp16 ----------------------------------------------------------------
// EVEX vcvtph2ps on zmm is plain AVX512F — no extra cpuid bit or target
// attribute needed at this level (unlike F16C at AVX2).

/// Widens 16 fp16 values (256-bit load) to 16 fp32 lanes.
inline __m512 load_f16x16(const Fp16* p) noexcept {
  return _mm512_cvtph_ps(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
}

float dot_f16(const Fp16* w, const float* x, std::size_t n) noexcept {
  __m512 acc = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc = _mm512_fmadd_ps(load_f16x16(w + i), _mm512_loadu_ps(x + i), acc);
  }
  float s = _mm512_reduce_add_ps(acc);
  for (; i < n; ++i) s += fp16_to_float(w[i]) * x[i];
  return s;
}

void axpy_f16(float alpha, const Fp16* x, float* y, std::size_t n) noexcept {
  const __m512 va = _mm512_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512 vy = _mm512_loadu_ps(y + i);
    vy = _mm512_fmadd_ps(va, load_f16x16(x + i), vy);
    _mm512_storeu_ps(y + i, vy);
  }
  for (; i < n; ++i) y[i] += alpha * fp16_to_float(x[i]);
}

}  // namespace avx512

namespace {
constexpr Backend kAvx512Table = {
    .level = SimdLevel::kAVX512,
    .name = "avx512",
    .dot = avx512::dot,
    .axpy = avx512::axpy,
    .scale = avx512::scale,
    .sum = avx512::sum,
    .max = avx512::max,
    .relu = avx512::relu,
    .sparse_dot = avx512::sparse_dot,
    // Scatter exists in AVX-512 but is unsafe for repeated indices
    // (read-modify-write batches would drop duplicate accumulations), and
    // the kernel contract allows them — the scalar loop stays.
    .sparse_axpy = scalar::sparse_axpy,
    .softmax_inplace = avx512::softmax_inplace,
    .adam_step = avx512::adam_step,
    .dot_bf16 = avx512::dot_bf16,
    .sparse_dot_bf16 = scalar::sparse_dot_bf16,
    .axpy_bf16 = avx512::axpy_bf16,
    .quantize_bf16 = scalar::quantize_bf16,
    .dequantize_bf16 = scalar::dequantize_bf16,
#if SLIDE_HAVE_VNNI_COMPILE
    .dot_i8 = avx512::dot_i8_vnni,
#else
    .dot_i8 = avx512::dot_i8_maddubs,
#endif
    .sparse_dot_i8 = scalar::sparse_dot_i8,
    .axpy_i8 = avx512::axpy_i8,
    .quantize_i8 = scalar::quantize_i8,
    .quantize_act_u8 = scalar::quantize_act_u8,
    .dot_f16 = avx512::dot_f16,
    .sparse_dot_f16 = scalar::sparse_dot_f16,
    .axpy_f16 = avx512::axpy_f16,
    .quantize_f16 = scalar::quantize_f16,
    .dequantize_f16 = scalar::dequantize_f16,
#if SLIDE_HAVE_VNNI_COMPILE
    .i8_path = "vnni",
#else
    .i8_path = "maddubs-512",
#endif
    .f16_path = "cvtph2ps-512",
};

// Variant bound when cpuid lacks AVX512-VNNI: same table with the int8
// dot on the BW-baseline vpmaddubsw path.
constexpr Backend kAvx512TableNoVnni = {
    .level = SimdLevel::kAVX512,
    .name = "avx512",
    .dot = avx512::dot,
    .axpy = avx512::axpy,
    .scale = avx512::scale,
    .sum = avx512::sum,
    .max = avx512::max,
    .relu = avx512::relu,
    .sparse_dot = avx512::sparse_dot,
    .sparse_axpy = scalar::sparse_axpy,
    .softmax_inplace = avx512::softmax_inplace,
    .adam_step = avx512::adam_step,
    .dot_bf16 = avx512::dot_bf16,
    .sparse_dot_bf16 = scalar::sparse_dot_bf16,
    .axpy_bf16 = avx512::axpy_bf16,
    .quantize_bf16 = scalar::quantize_bf16,
    .dequantize_bf16 = scalar::dequantize_bf16,
    .dot_i8 = avx512::dot_i8_maddubs,
    .sparse_dot_i8 = scalar::sparse_dot_i8,
    .axpy_i8 = avx512::axpy_i8,
    .quantize_i8 = scalar::quantize_i8,
    .quantize_act_u8 = scalar::quantize_act_u8,
    .dot_f16 = avx512::dot_f16,
    .sparse_dot_f16 = scalar::sparse_dot_f16,
    .axpy_f16 = avx512::axpy_f16,
    .quantize_f16 = scalar::quantize_f16,
    .dequantize_f16 = scalar::dequantize_f16,
    .i8_path = "maddubs-512",
    .f16_path = "cvtph2ps-512",
};
}  // namespace

namespace detail {
const Backend* const kAvx512Backend = &kAvx512Table;
const Backend* const kAvx512BackendNoVnni = &kAvx512TableNoVnni;
}  // namespace detail

#else  // !SLIDE_HAVE_AVX512_TU

namespace detail {
const Backend* const kAvx512Backend = nullptr;
const Backend* const kAvx512BackendNoVnni = nullptr;
}  // namespace detail

#endif  // SLIDE_HAVE_AVX512_TU

}  // namespace slide::simd
