// Internal: the per-ISA translation units export their tables through
// these constants. A table pointer is null when the compiler lacked the
// ISA flags (the TU then compiles to a stub). Constant-initialized, so no
// code from an unsupported ISA's TU ever executes — dereferencing happens
// only after cpuid approves the level.
#pragma once

#include "simd/backend.h"

namespace slide::simd::detail {

extern const Backend kScalarBackend;        // kernels_scalar.cpp, always
extern const Backend* const kAvx2Backend;   // kernels_avx2.cpp or null
extern const Backend* const kAvx512Backend; // kernels_avx512.cpp or null

}  // namespace slide::simd::detail
