// Internal: the per-ISA translation units export their tables through
// these constants. A table pointer is null when the compiler lacked the
// ISA flags (the TU then compiles to a stub). Constant-initialized, so no
// code from an unsupported ISA's TU ever executes — dereferencing happens
// only after cpuid approves the level.
#pragma once

#include "simd/backend.h"

namespace slide::simd::detail {

// Sub-feature variants: the optional ISA extensions (F16C at AVX2,
// AVX512-VNNI at AVX-512) are compiled with per-function target attributes
// inside the same TU, so each vector TU exports TWO const tables — the
// full one (used when cpuid reports the extension) and a ...No* variant
// whose affected slots point at in-level or scalar fallbacks. backend.cpp
// picks between them at bind time; the tables themselves stay const.
extern const Backend kScalarBackend;        // kernels_scalar.cpp, always
extern const Backend* const kAvx2Backend;         // kernels_avx2.cpp or null
extern const Backend* const kAvx2BackendNoF16c;   //   dot_f16 et al scalar
extern const Backend* const kAvx512Backend;       // kernels_avx512.cpp or null
extern const Backend* const kAvx512BackendNoVnni; //   dot_i8 via vpmaddubsw

}  // namespace slide::simd::detail
