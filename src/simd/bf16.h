// Scalar bfloat16 conversion primitives.
//
// BF16 is the top 16 bits of an IEEE-754 float: same exponent range, 8
// significand bits (~2-3 decimal digits). That makes conversion a shift —
// no lookup tables, no range rescaling — which is why it is the quantized
// format of choice for CPU inference ("Accelerating SLIDE Deep Learning on
// Modern CPUs", Daghaghi et al.): weights shrink 2x, and mixed bf16xfp32
// dot products stay within ~0.4% relative error of fp32 scoring.
//
// These are the one-value reference conversions; the vectorized bulk
// kernels live in the backend tables (simd/backend.h). Rounding is
// round-to-nearest-even, matching hardware VCVTNEPS2BF16 semantics for
// finite values; NaNs are quieted (payload dropped) rather than allowed to
// truncate into infinities.
#pragma once

#include <bit>
#include <cstdint>

namespace slide::simd {

/// Storage type of a bfloat16 value (the top half of a float's bits).
using Bf16 = std::uint16_t;

inline float bf16_to_float(Bf16 b) noexcept {
  return std::bit_cast<float>(static_cast<std::uint32_t>(b) << 16);
}

inline Bf16 float_to_bf16(float f) noexcept {
  const std::uint32_t u = std::bit_cast<std::uint32_t>(f);
  if ((u & 0x7FFFFFFFu) > 0x7F800000u) {
    // NaN: truncation could clear every mantissa bit and produce an
    // infinity; keep the sign and force the quiet bit instead.
    return static_cast<Bf16>((u >> 16) | 0x0040u);
  }
  // Round to nearest, ties to even: add 0x7FFF plus the lowest kept bit.
  return static_cast<Bf16>((u + 0x7FFFu + ((u >> 16) & 1u)) >> 16);
}

}  // namespace slide::simd
