// Scalar reference kernels + the scalar dispatch table.
//
// Compiled with the project's base flags (no per-ISA -m options), these are
// the semantics every vector table is tested against, and the fallback the
// dispatch binds on machines without AVX2. Keep them boring: the parity
// suite treats this file as ground truth.
#include <cmath>
#include <limits>

#include "simd/backend_registry.h"
#include "simd/kernels.h"

namespace slide::simd {

namespace scalar {

float dot(const float* a, const float* b, std::size_t n) noexcept {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(float alpha, const float* x, float* y, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(float* x, float alpha, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

float sum(const float* x, std::size_t n) noexcept {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += x[i];
  return acc;
}

float max(const float* x, std::size_t n) noexcept {
  float m = -std::numeric_limits<float>::infinity();
  for (std::size_t i = 0; i < n; ++i) m = x[i] > m ? x[i] : m;
  return m;
}

void relu(float* x, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) x[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

float sparse_dot(const Index* idx, const float* val, std::size_t nnz,
                 const float* dense) noexcept {
  float acc = 0.0f;
  for (std::size_t i = 0; i < nnz; ++i) acc += val[i] * dense[idx[i]];
  return acc;
}

void sparse_axpy(float alpha, const Index* idx, const float* val,
                 std::size_t nnz, float* dense) noexcept {
  for (std::size_t i = 0; i < nnz; ++i) dense[idx[i]] += alpha * val[i];
}

void softmax_inplace(float* x, std::size_t n) noexcept {
  if (n == 0) return;
  const float m = scalar::max(x, n);
  float z = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - m);
    z += x[i];
  }
  const float inv = 1.0f / z;
  for (std::size_t i = 0; i < n; ++i) x[i] *= inv;
}

void adam_step(float* w, float* m, float* v, const float* g, std::size_t n,
               float lr, float beta1, float beta2, float eps, float bias1,
               float bias2) noexcept {
  const float inv_b1 = 1.0f / bias1;
  const float inv_b2 = 1.0f / bias2;
  for (std::size_t i = 0; i < n; ++i) {
    m[i] = beta1 * m[i] + (1.0f - beta1) * g[i];
    v[i] = beta2 * v[i] + (1.0f - beta2) * g[i] * g[i];
    const float mhat = m[i] * inv_b1;
    const float vhat = v[i] * inv_b2;
    w[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

float dot_bf16(const Bf16* w, const float* x, std::size_t n) noexcept {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += bf16_to_float(w[i]) * x[i];
  return acc;
}

float sparse_dot_bf16(const Index* idx, const float* val, std::size_t nnz,
                      const Bf16* dense) noexcept {
  float acc = 0.0f;
  for (std::size_t i = 0; i < nnz; ++i)
    acc += val[i] * bf16_to_float(dense[idx[i]]);
  return acc;
}

void axpy_bf16(float alpha, const Bf16* x, float* y, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * bf16_to_float(x[i]);
}

void quantize_bf16(const float* src, Bf16* dst, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = float_to_bf16(src[i]);
}

void dequantize_bf16(const Bf16* src, float* dst, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = bf16_to_float(src[i]);
}

std::int32_t dot_i8(const I8* w, const U8* x, std::size_t n) noexcept {
  std::int32_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<std::int32_t>(w[i]) * static_cast<std::int32_t>(x[i]);
  }
  return acc;
}

float sparse_dot_i8(const Index* idx, const float* val, std::size_t nnz,
                    const I8* dense) noexcept {
  float acc = 0.0f;
  for (std::size_t i = 0; i < nnz; ++i) {
    acc += val[i] * static_cast<float>(dense[idx[i]]);
  }
  return acc;
}

void axpy_i8(float alpha, const I8* x, float* y, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * static_cast<float>(x[i]);
}

float quantize_i8(const float* src, I8* dst, std::size_t n) noexcept {
  float amax = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float a = std::fabs(src[i]);
    if (a > amax) amax = a;
  }
  if (!(amax > 0.0f)) {  // all-zero row: scale 0 so callers skip the rescale
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
    return 0.0f;
  }
  const float inv = 127.0f / amax;
  for (std::size_t i = 0; i < n; ++i) {
    // Ties round to even (nearbyint under the default FE_TONEAREST mode);
    // the clamp guards the one-ULP overshoot src[i]*inv can produce when
    // |src[i]| == amax and inv rounded up.
    float q = std::nearbyintf(src[i] * inv);
    if (q > 127.0f) q = 127.0f;
    if (q < -127.0f) q = -127.0f;
    dst[i] = static_cast<I8>(q);
  }
  return amax / 127.0f;
}

float quantize_act_u8(const float* src, U8* dst, std::size_t n) noexcept {
  float amax = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    if (src[i] > amax) amax = src[i];
  }
  if (!(amax > 0.0f)) {  // nothing positive to score against
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
    return 0.0f;
  }
  const float inv = 127.0f / amax;
  for (std::size_t i = 0; i < n; ++i) {
    const float v = src[i] > 0.0f ? src[i] : 0.0f;  // post-ReLU contract
    float q = std::nearbyintf(v * inv);
    if (q > 127.0f) q = 127.0f;
    dst[i] = static_cast<U8>(q);
  }
  return amax / 127.0f;
}

float dot_f16(const Fp16* w, const float* x, std::size_t n) noexcept {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += fp16_to_float(w[i]) * x[i];
  return acc;
}

float sparse_dot_f16(const Index* idx, const float* val, std::size_t nnz,
                     const Fp16* dense) noexcept {
  float acc = 0.0f;
  for (std::size_t i = 0; i < nnz; ++i) {
    acc += val[i] * fp16_to_float(dense[idx[i]]);
  }
  return acc;
}

void axpy_f16(float alpha, const Fp16* x, float* y, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * fp16_to_float(x[i]);
}

void quantize_f16(const float* src, Fp16* dst, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = float_to_fp16(src[i]);
}

void dequantize_f16(const Fp16* src, float* dst, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = fp16_to_float(src[i]);
}

}  // namespace scalar

namespace detail {

const Backend kScalarBackend = {
    .level = SimdLevel::kScalar,
    .name = "scalar",
    .dot = scalar::dot,
    .axpy = scalar::axpy,
    .scale = scalar::scale,
    .sum = scalar::sum,
    .max = scalar::max,
    .relu = scalar::relu,
    .sparse_dot = scalar::sparse_dot,
    .sparse_axpy = scalar::sparse_axpy,
    .softmax_inplace = scalar::softmax_inplace,
    .adam_step = scalar::adam_step,
    .dot_bf16 = scalar::dot_bf16,
    .sparse_dot_bf16 = scalar::sparse_dot_bf16,
    .axpy_bf16 = scalar::axpy_bf16,
    .quantize_bf16 = scalar::quantize_bf16,
    .dequantize_bf16 = scalar::dequantize_bf16,
    .dot_i8 = scalar::dot_i8,
    .sparse_dot_i8 = scalar::sparse_dot_i8,
    .axpy_i8 = scalar::axpy_i8,
    .quantize_i8 = scalar::quantize_i8,
    .quantize_act_u8 = scalar::quantize_act_u8,
    .dot_f16 = scalar::dot_f16,
    .sparse_dot_f16 = scalar::sparse_dot_f16,
    .axpy_f16 = scalar::axpy_f16,
    .quantize_f16 = scalar::quantize_f16,
    .dequantize_f16 = scalar::dequantize_f16,
    .i8_path = "scalar",
    .f16_path = "scalar",
};

}  // namespace detail

}  // namespace slide::simd
