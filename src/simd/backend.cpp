// Dispatch-level selection: cpuid + SLIDE_SIMD_LEVEL env + API override.
//
// Compiled with the project's base flags only — this file must run on
// every machine the binary reaches, so it contains no vector code. The
// per-ISA tables it binds are constant-initialized in their own TUs
// (backend_registry.h) and dereferenced only after cpuid approves them.
#include "simd/backend.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "simd/backend_registry.h"
#include "sys/cpu_features.h"

namespace slide::simd {

namespace {

std::atomic<const Backend*> g_active{nullptr};

const Backend* table_for(SimdLevel level) noexcept {
  // Each vector level has a sub-feature variant pair (backend_registry.h):
  // the optional extensions (F16C, AVX512-VNNI) are not implied by the
  // level's baseline cpuid bits, so the variant is picked here, at bind
  // time, from the live feature flags. Both variants of a level are
  // compiled (or neither), hence one null check per pair.
  switch (level) {
    case SimdLevel::kScalar:
      return &detail::kScalarBackend;
    case SimdLevel::kAVX2:
      if (detail::kAvx2Backend == nullptr) return nullptr;
      return cpu_features().f16c ? detail::kAvx2Backend
                                 : detail::kAvx2BackendNoF16c;
    case SimdLevel::kAVX512:
      if (detail::kAvx512Backend == nullptr) return nullptr;
      return cpu_features().avx512vnni ? detail::kAvx512Backend
                                       : detail::kAvx512BackendNoVnni;
  }
  return nullptr;
}

bool cpu_supports(SimdLevel level) noexcept {
  const CpuFeatures& f = cpu_features();
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAVX2:
      return f.avx2 && f.fma;
    case SimdLevel::kAVX512:
      return f.avx512f && f.avx512bw;
  }
  return false;
}

SimdLevel best_level() noexcept {
  for (SimdLevel level : {SimdLevel::kAVX512, SimdLevel::kAVX2}) {
    if (table_for(level) != nullptr && cpu_supports(level)) return level;
  }
  return SimdLevel::kScalar;
}

/// Initial binding: SLIDE_SIMD_LEVEL if set (clamped to what the host
/// supports, with a one-time stderr note on clamp/typo — aborting at
/// static-init over an env var would be worse), else the detected best.
/// Idempotent and benign under a racy first call: every caller computes
/// the same table.
const Backend* init_active() noexcept {
  SimdLevel level = best_level();
  if (const char* env = std::getenv("SLIDE_SIMD_LEVEL")) {
    bool parsed = false;
    SimdLevel requested = level;
    for (SimdLevel candidate :
         {SimdLevel::kScalar, SimdLevel::kAVX2, SimdLevel::kAVX512}) {
      if (std::string_view(env) == to_string(candidate)) {
        requested = candidate;
        parsed = true;
        break;
      }
    }
    if (!parsed) {
      std::fprintf(stderr,
                   "[slide::simd] ignoring SLIDE_SIMD_LEVEL=%s (expected "
                   "scalar | avx2 | avx512); using %s\n",
                   env, to_string(level));
    } else if (!level_supported(requested)) {
      std::fprintf(stderr,
                   "[slide::simd] SLIDE_SIMD_LEVEL=%s not supported on this "
                   "host; clamping to %s\n",
                   env, to_string(level));
    } else {
      level = requested;
    }
  }
  const Backend* table = table_for(level);
  const Backend* expected = nullptr;
  g_active.compare_exchange_strong(expected, table,
                                   std::memory_order_acq_rel);
  return g_active.load(std::memory_order_acquire);
}

}  // namespace

const char* to_string(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAVX2:
      return "avx2";
    case SimdLevel::kAVX512:
      return "avx512";
  }
  return "?";
}

SimdLevel parse_simd_level(const char* name) {
  const std::string_view s(name == nullptr ? "" : name);
  if (s == "scalar") return SimdLevel::kScalar;
  if (s == "avx2") return SimdLevel::kAVX2;
  if (s == "avx512") return SimdLevel::kAVX512;
  throw Error("unknown SIMD level: " + std::string(s) +
              " (expected scalar | avx2 | avx512)");
}

bool level_compiled(SimdLevel level) noexcept {
  return table_for(level) != nullptr;
}

bool level_supported(SimdLevel level) noexcept {
  return table_for(level) != nullptr && cpu_supports(level);
}

SimdLevel detected_level() noexcept { return best_level(); }

SimdLevel active_level() noexcept { return backend().level; }

void set_simd_level(SimdLevel level) {
  SLIDE_CHECK(level_supported(level),
              std::string("set_simd_level: ") + to_string(level) +
                  (level_compiled(level)
                       ? " is not supported by this CPU"
                       : " was not compiled into this binary"));
  g_active.store(table_for(level), std::memory_order_release);
}

const Backend& backend() noexcept {
  const Backend* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) table = init_active();
  return *table;
}

const Backend* backend_for(SimdLevel level) noexcept {
  return level_supported(level) ? table_for(level) : nullptr;
}

}  // namespace slide::simd
