// AVX2+FMA kernel table.
//
// This translation unit is compiled with its own ISA flags (-mavx2 -mfma,
// see the simd section of CMakeLists.txt) regardless of the project-wide
// -march, and is entered only after cpuid confirms the CPU has AVX2+FMA —
// the table pointer below is constant-initialized, so no AVX2 instruction
// runs on a machine that lacks them. When the compiler cannot build AVX2
// at all, the TU degrades to a null table and the dispatch skips the level.
#include "simd/backend_registry.h"
#include "simd/kernels.h"

#if defined(SLIDE_COMPILE_AVX2) || (defined(__AVX2__) && defined(__FMA__))
#define SLIDE_HAVE_AVX2_TU 1
#include <immintrin.h>

#include <cmath>
#else
#define SLIDE_HAVE_AVX2_TU 0
#endif

namespace slide::simd {

#if SLIDE_HAVE_AVX2_TU
namespace avx2 {

inline float hsum256(__m256 v) noexcept {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  return _mm_cvtss_f32(lo);
}

float dot(const float* a, const float* b, std::size_t n) noexcept {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  float acc = hsum256(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(float alpha, const float* x, float* y, std::size_t n) noexcept {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 vy = _mm256_loadu_ps(y + i);
    vy = _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), vy);
    _mm256_storeu_ps(y + i, vy);
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void scale(float* x, float alpha, std::size_t n) noexcept {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

float sum(const float* x, std::size_t n) noexcept {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) acc = _mm256_add_ps(acc, _mm256_loadu_ps(x + i));
  float s = hsum256(acc);
  for (; i < n; ++i) s += x[i];
  return s;
}

float max(const float* x, std::size_t n) noexcept {
  if (n < 8) return scalar::max(x, n);
  __m256 vm = _mm256_loadu_ps(x);
  std::size_t i = 8;
  for (; i + 8 <= n; i += 8) vm = _mm256_max_ps(vm, _mm256_loadu_ps(x + i));
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, vm);
  float m = lanes[0];
  for (int k = 1; k < 8; ++k) m = lanes[k] > m ? lanes[k] : m;
  for (; i < n; ++i) m = x[i] > m ? x[i] : m;
  return m;
}

void relu(float* x, std::size_t n) noexcept {
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) x[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

float sparse_dot(const Index* idx, const float* val, std::size_t nnz,
                 const float* dense) noexcept {
  // Gather-based: profitable on sparse inputs with tens of nonzeros.
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= nnz; i += 8) {
    const __m256i vi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(idx + i));
    const __m256 vd = _mm256_i32gather_ps(dense, vi, 4);
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(val + i), vd, acc);
  }
  float s = hsum256(acc);
  for (; i < nnz; ++i) s += val[i] * dense[idx[i]];
  return s;
}

void softmax_inplace(float* x, std::size_t n) noexcept {
  // exp() dominates; vectorizing max + normalization still helps.
  if (n == 0) return;
  const float m = avx2::max(x, n);
  float z = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - m);
    z += x[i];
  }
  avx2::scale(x, 1.0f / z, n);
}

void adam_step(float* w, float* m, float* v, const float* g, std::size_t n,
               float lr, float beta1, float beta2, float eps, float bias1,
               float bias2) noexcept {
  const __m256 vb1 = _mm256_set1_ps(beta1);
  const __m256 vb2 = _mm256_set1_ps(beta2);
  const __m256 vib1 = _mm256_set1_ps(1.0f - beta1);
  const __m256 vib2 = _mm256_set1_ps(1.0f - beta2);
  const __m256 vinvc1 = _mm256_set1_ps(1.0f / bias1);
  const __m256 vinvc2 = _mm256_set1_ps(1.0f / bias2);
  const __m256 veps = _mm256_set1_ps(eps);
  const __m256 vlr = _mm256_set1_ps(lr);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vg = _mm256_loadu_ps(g + i);
    __m256 vm = _mm256_loadu_ps(m + i);
    __m256 vv = _mm256_loadu_ps(v + i);
    vm = _mm256_fmadd_ps(vb1, vm, _mm256_mul_ps(vib1, vg));
    vv = _mm256_fmadd_ps(vb2, vv, _mm256_mul_ps(vib2, _mm256_mul_ps(vg, vg)));
    _mm256_storeu_ps(m + i, vm);
    _mm256_storeu_ps(v + i, vv);
    const __m256 mhat = _mm256_mul_ps(vm, vinvc1);
    const __m256 vhat = _mm256_mul_ps(vv, vinvc2);
    const __m256 denom = _mm256_add_ps(_mm256_sqrt_ps(vhat), veps);
    const __m256 step = _mm256_div_ps(_mm256_mul_ps(vlr, mhat), denom);
    _mm256_storeu_ps(w + i, _mm256_sub_ps(_mm256_loadu_ps(w + i), step));
  }
  if (i < n) {
    scalar::adam_step(w + i, m + i, v + i, g + i, n - i, lr, beta1, beta2,
                      eps, bias1, bias2);
  }
}

/// Widens 8 bf16 values (128-bit lane) to 8 fp32 lanes: zero-extend each
/// 16-bit value into the high half of a 32-bit lane.
inline __m256 load_bf16x8(const Bf16* p) noexcept {
  const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m256i wide = _mm256_cvtepu16_epi32(raw);
  return _mm256_castsi256_ps(_mm256_slli_epi32(wide, 16));
}

float dot_bf16(const Bf16* w, const float* x, std::size_t n) noexcept {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_fmadd_ps(load_bf16x8(w + i), _mm256_loadu_ps(x + i), acc);
  }
  float s = hsum256(acc);
  for (; i < n; ++i) s += bf16_to_float(w[i]) * x[i];
  return s;
}

void axpy_bf16(float alpha, const Bf16* x, float* y, std::size_t n) noexcept {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 vy = _mm256_loadu_ps(y + i);
    vy = _mm256_fmadd_ps(va, load_bf16x8(x + i), vy);
    _mm256_storeu_ps(y + i, vy);
  }
  for (; i < n; ++i) y[i] += alpha * bf16_to_float(x[i]);
}

inline std::int32_t hsum256_epi32(__m256i v) noexcept {
  __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  lo = _mm_add_epi32(lo, hi);
  lo = _mm_hadd_epi32(lo, lo);
  lo = _mm_hadd_epi32(lo, lo);
  return _mm_cvtsi128_si32(lo);
}

std::int32_t dot_i8(const I8* w, const U8* x, std::size_t n) noexcept {
  // vpmaddubsw multiplies u8 (first operand) by s8 (second) into int16
  // pairs; with activations capped at 127 (int8.h contract) the pair sum
  // cannot saturate, so widening with madd(.., 1) keeps the result exact.
  __m256i acc = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi16(1);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i vw =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    const __m256i pairs = _mm256_maddubs_epi16(vx, vw);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(pairs, ones));
  }
  std::int32_t s = hsum256_epi32(acc);
  for (; i < n; ++i) {
    s += static_cast<std::int32_t>(w[i]) * static_cast<std::int32_t>(x[i]);
  }
  return s;
}

void axpy_i8(float alpha, const I8* x, float* y, std::size_t n) noexcept {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i raw =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(x + i));
    const __m256 vx = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
    __m256 vy = _mm256_loadu_ps(y + i);
    vy = _mm256_fmadd_ps(va, vx, vy);
    _mm256_storeu_ps(y + i, vy);
  }
  for (; i < n; ++i) y[i] += alpha * static_cast<float>(x[i]);
}

// F16C is not implied by AVX2, so the fp16 kernels carry their own target
// attribute and land only in the full kAvx2Table variant — backend.cpp
// binds kAvx2TableNoF16c (scalar fp16 slots) when cpuid lacks f16c, and no
// vcvtph2ps instruction ever executes there.
#define SLIDE_TARGET_F16C __attribute__((target("avx2,fma,f16c")))

SLIDE_TARGET_F16C
float dot_f16(const Fp16* w, const float* x, std::size_t n) noexcept {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i));
    acc = _mm256_fmadd_ps(_mm256_cvtph_ps(raw), _mm256_loadu_ps(x + i), acc);
  }
  float s = hsum256(acc);
  for (; i < n; ++i) s += fp16_to_float(w[i]) * x[i];
  return s;
}

SLIDE_TARGET_F16C
void axpy_f16(float alpha, const Fp16* x, float* y, std::size_t n) noexcept {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
    __m256 vy = _mm256_loadu_ps(y + i);
    vy = _mm256_fmadd_ps(va, _mm256_cvtph_ps(raw), vy);
    _mm256_storeu_ps(y + i, vy);
  }
  for (; i < n; ++i) y[i] += alpha * fp16_to_float(x[i]);
}

#undef SLIDE_TARGET_F16C

}  // namespace avx2

namespace {
// sparse_axpy stays scalar (no AVX2 scatter instruction exists), the
// quantize/dequantize family runs only on the cold publish path, and the
// sparse i8/f16 dots stay scalar too (no byte/word gather exists).
constexpr Backend kAvx2Table = {
    .level = SimdLevel::kAVX2,
    .name = "avx2",
    .dot = avx2::dot,
    .axpy = avx2::axpy,
    .scale = avx2::scale,
    .sum = avx2::sum,
    .max = avx2::max,
    .relu = avx2::relu,
    .sparse_dot = avx2::sparse_dot,
    .sparse_axpy = scalar::sparse_axpy,
    .softmax_inplace = avx2::softmax_inplace,
    .adam_step = avx2::adam_step,
    .dot_bf16 = avx2::dot_bf16,
    .sparse_dot_bf16 = scalar::sparse_dot_bf16,
    .axpy_bf16 = avx2::axpy_bf16,
    .quantize_bf16 = scalar::quantize_bf16,
    .dequantize_bf16 = scalar::dequantize_bf16,
    .dot_i8 = avx2::dot_i8,
    .sparse_dot_i8 = scalar::sparse_dot_i8,
    .axpy_i8 = avx2::axpy_i8,
    .quantize_i8 = scalar::quantize_i8,
    .quantize_act_u8 = scalar::quantize_act_u8,
    .dot_f16 = avx2::dot_f16,
    .sparse_dot_f16 = scalar::sparse_dot_f16,
    .axpy_f16 = avx2::axpy_f16,
    .quantize_f16 = scalar::quantize_f16,
    .dequantize_f16 = scalar::dequantize_f16,
    .i8_path = "maddubs-256",
    .f16_path = "f16c-256",
};

// Variant bound when cpuid lacks F16C: identical except the fp16 hot
// kernels fall back to the scalar conversion path.
constexpr Backend kAvx2TableNoF16c = {
    .level = SimdLevel::kAVX2,
    .name = "avx2",
    .dot = avx2::dot,
    .axpy = avx2::axpy,
    .scale = avx2::scale,
    .sum = avx2::sum,
    .max = avx2::max,
    .relu = avx2::relu,
    .sparse_dot = avx2::sparse_dot,
    .sparse_axpy = scalar::sparse_axpy,
    .softmax_inplace = avx2::softmax_inplace,
    .adam_step = avx2::adam_step,
    .dot_bf16 = avx2::dot_bf16,
    .sparse_dot_bf16 = scalar::sparse_dot_bf16,
    .axpy_bf16 = avx2::axpy_bf16,
    .quantize_bf16 = scalar::quantize_bf16,
    .dequantize_bf16 = scalar::dequantize_bf16,
    .dot_i8 = avx2::dot_i8,
    .sparse_dot_i8 = scalar::sparse_dot_i8,
    .axpy_i8 = avx2::axpy_i8,
    .quantize_i8 = scalar::quantize_i8,
    .quantize_act_u8 = scalar::quantize_act_u8,
    .dot_f16 = scalar::dot_f16,
    .sparse_dot_f16 = scalar::sparse_dot_f16,
    .axpy_f16 = scalar::axpy_f16,
    .quantize_f16 = scalar::quantize_f16,
    .dequantize_f16 = scalar::dequantize_f16,
    .i8_path = "maddubs-256",
    .f16_path = "scalar",
};
}  // namespace

namespace detail {
const Backend* const kAvx2Backend = &kAvx2Table;
const Backend* const kAvx2BackendNoF16c = &kAvx2TableNoF16c;
}  // namespace detail

#else  // !SLIDE_HAVE_AVX2_TU

namespace detail {
const Backend* const kAvx2Backend = nullptr;
const Backend* const kAvx2BackendNoF16c = nullptr;
}  // namespace detail

#endif  // SLIDE_HAVE_AVX2_TU

}  // namespace slide::simd
