// Int8 inference tier: storage conventions shared by the kernels
// (simd/kernels_*.cpp), the weight mirrors (core/layer.h), and the tests.
//
// Weights are quantized per row, symmetric signed 8-bit:
//
//   scale_r = max_i |w_r[i]| / 127        (0 for an all-zero row)
//   q_r[i]  = clamp(round_to_nearest_even(w_r[i] / scale_r), -127, 127)
//
// so w_r[i] ~= scale_r * q_r[i]. Symmetric quantization (zero-point 0)
// keeps the dot product a single integer MAC with one fp32 rescale at the
// end — no row-sum correction term.
//
// Activations are quantized per query, unsigned 8-bit in [0, 127]:
//
//   sx   = max_i x[i] / 127               (0 when all activations are <= 0)
//   qx[i] = clamp(round_to_nearest_even(x[i] / sx), 0, 127)
//
// Restricting activations to [0, 127] is free — SLIDE hidden activations
// are post-ReLU, hence non-negative — and it is what makes every SIMD path
// exact: vpmaddubsw pairs one u8 with one s8 into int16, and
// 2 * 127 * 127 = 32258 < 32767 never saturates, so AVX2, AVX-512 VNNI
// (`vpdpbusd`, which accumulates u8 x s8 into int32 directly) and the
// scalar oracle all produce the *same* int32 dot. Parity tests therefore
// assert exact equality on dot_i8, not a tolerance.
//
// A scored unit recovers fp32 as:
//
//   score = bias + scale_r * sx * dot_i8(q_r, qx, n)       (dense prev)
//   score = bias + scale_r * sparse_dot_i8(idx, val, nnz, q_r)  (sparse prev)
//
// where the sparse form keeps fp32 activation values and widens the s8
// weight per element (no u8 requantization of a sparse active set).
#pragma once

#include <cstdint>

namespace slide::simd {

/// Quantized weight element (symmetric, per-row scale).
using I8 = std::int8_t;
/// Quantized activation element (non-negative, per-query scale).
using U8 = std::uint8_t;

/// Largest magnitude representable on both sides of the u8 x s8 MAC.
inline constexpr int kInt8Max = 127;

}  // namespace slide::simd
