// In-memory multi-label dataset (the extreme-classification workload shape
// of paper Table 1: sparse features, a set of true labels per sample).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "data/sparse_vector.h"
#include "sys/common.h"

namespace slide {

struct Sample {
  SparseVector features;
  std::vector<Index> labels;  // sorted, unique
};

/// Summary statistics in the shape of paper Table 1.
struct DatasetStats {
  Index feature_dim = 0;
  Index label_dim = 0;
  std::size_t num_samples = 0;
  double avg_nnz_per_sample = 0.0;
  double feature_density = 0.0;  // avg_nnz / feature_dim ("Feature Sparsity")
  double avg_labels_per_sample = 0.0;
};

class Dataset {
 public:
  Dataset() = default;
  Dataset(Index feature_dim, Index label_dim)
      : feature_dim_(feature_dim), label_dim_(label_dim) {}

  Index feature_dim() const noexcept { return feature_dim_; }
  Index label_dim() const noexcept { return label_dim_; }
  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  const Sample& operator[](std::size_t i) const noexcept {
    SLIDE_ASSERT(i < samples_.size());
    return samples_[i];
  }
  std::span<const Sample> samples() const noexcept { return samples_; }

  /// Appends a sample. Labels are sorted/deduplicated; throws if any feature
  /// index or label is out of range.
  void add(Sample sample);

  void reserve(std::size_t n) { samples_.reserve(n); }

  DatasetStats stats() const;

 private:
  Index feature_dim_ = 0;
  Index label_dim_ = 0;
  std::vector<Sample> samples_;
};

/// Human-readable one-line summary ("N samples, D features, ...").
std::string describe(const DatasetStats& stats, const std::string& name);

}  // namespace slide
