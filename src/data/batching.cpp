#include "data/batching.h"

#include <algorithm>
#include <numeric>

namespace slide {

Batcher::Batcher(const Dataset& dataset, std::size_t batch_size, bool shuffle,
                 std::uint64_t seed)
    : batch_size_(batch_size), shuffle_(shuffle), rng_(seed) {
  SLIDE_CHECK(batch_size_ > 0, "Batcher: batch_size must be positive");
  SLIDE_CHECK(!dataset.empty(), "Batcher: dataset is empty");
  order_.resize(dataset.size());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  if (shuffle_) reshuffle();
  current_.reserve(batch_size_);
}

void Batcher::reshuffle() { std::shuffle(order_.begin(), order_.end(), rng_); }

std::span<const std::size_t> Batcher::next() {
  if (cursor_ >= order_.size()) {
    cursor_ = 0;
    ++epoch_;
    if (shuffle_) reshuffle();
  }
  const std::size_t end = std::min(cursor_ + batch_size_, order_.size());
  current_.assign(order_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                  order_.begin() + static_cast<std::ptrdiff_t>(end));
  cursor_ = end;
  return current_;
}

}  // namespace slide
