// Synthetic extreme-classification dataset generators.
//
// The paper evaluates on Delicious-200K and Amazon-670K from the Extreme
// Classification Repository; those downloads are unavailable offline, so the
// benches run on planted-structure stand-ins that reproduce the workload
// properties SLIDE exploits (see DESIGN.md §3):
//   * extreme output width (hundreds of thousands of labels, configurable),
//   * very sparse inputs (tens of nonzeros out of 10^5-10^6 dims),
//   * Zipf-skewed label frequencies,
//   * learnable structure: each label owns a random set of "characteristic"
//     feature ids; a sample for that label activates a random subset of them
//     plus uniform noise features, so a 1-hidden-layer network's accuracy
//     curves behave like the paper's (rising, then saturating).
//
// Generators are deterministic in the seed, and train/test are drawn from
// the same planted model with disjoint RNG streams.
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace slide {

struct SyntheticConfig {
  std::string name = "synthetic";
  Index feature_dim = 20'000;
  Index label_dim = 10'000;
  std::size_t num_train = 8'000;
  std::size_t num_test = 2'000;

  /// Size of each label's characteristic feature set.
  int features_per_label = 24;
  /// How many characteristic features fire per (sample, label).
  int active_per_label = 12;
  /// Uniformly random distractor features added per sample.
  int noise_features = 6;

  /// Label popularity follows p(rank k) ∝ 1/k^zipf_exponent.
  double zipf_exponent = 1.0;
  int min_labels_per_sample = 1;
  int max_labels_per_sample = 5;

  std::uint64_t seed = 42;
};

struct SyntheticDataset {
  SyntheticConfig config;
  Dataset train;
  Dataset test;
};

/// Generates train/test splits from the planted model described above.
/// Features are L2-normalized per sample (matching XC preprocessing).
SyntheticDataset make_synthetic_xc(const SyntheticConfig& config);

/// Workload scale presets. The benches default to `kSmall` so the full
/// harness completes in minutes on two cores; `kPaper` matches the
/// dimensions of paper Table 1.
enum class Scale { kTiny, kSmall, kMedium, kPaper };

/// Delicious-200K-like: very wide sparse features, ~200K labels at kPaper
/// scale, ~75 nnz per sample.
SyntheticConfig delicious_like(Scale scale);

/// Amazon-670K-like: narrower features, ~670K labels at kPaper scale,
/// product-to-product recommendation shape.
SyntheticConfig amazon_like(Scale scale);

/// Parses "tiny"/"small"/"medium"/"paper" (used with the
/// SLIDE_BENCH_SCALE environment variable); throws on anything else.
Scale parse_scale(const std::string& name);

}  // namespace slide
