#include "data/dataset.h"

#include <algorithm>
#include <sstream>

namespace slide {

void Dataset::add(Sample sample) {
  SLIDE_CHECK(sample.features.min_dim() <= feature_dim_,
              "Dataset::add: feature index out of range");
  std::sort(sample.labels.begin(), sample.labels.end());
  sample.labels.erase(
      std::unique(sample.labels.begin(), sample.labels.end()),
      sample.labels.end());
  SLIDE_CHECK(sample.labels.empty() || sample.labels.back() < label_dim_,
              "Dataset::add: label out of range");
  samples_.push_back(std::move(sample));
}

DatasetStats Dataset::stats() const {
  DatasetStats s;
  s.feature_dim = feature_dim_;
  s.label_dim = label_dim_;
  s.num_samples = samples_.size();
  if (samples_.empty()) return s;
  double nnz = 0.0, labels = 0.0;
  for (const auto& sample : samples_) {
    nnz += static_cast<double>(sample.features.nnz());
    labels += static_cast<double>(sample.labels.size());
  }
  s.avg_nnz_per_sample = nnz / static_cast<double>(samples_.size());
  s.avg_labels_per_sample = labels / static_cast<double>(samples_.size());
  if (feature_dim_ > 0)
    s.feature_density = s.avg_nnz_per_sample / feature_dim_;
  return s;
}

std::string describe(const DatasetStats& stats, const std::string& name) {
  std::ostringstream os;
  os << name << ": " << stats.num_samples << " samples, "
     << stats.feature_dim << " features (" << stats.avg_nnz_per_sample
     << " avg nnz, density " << stats.feature_density * 100.0 << "%), "
     << stats.label_dim << " labels (" << stats.avg_labels_per_sample
     << " avg per sample)";
  return os.str();
}

}  // namespace slide
