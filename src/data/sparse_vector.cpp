#include "data/sparse_vector.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "simd/kernels.h"

namespace slide {

SparseVector::SparseVector(std::vector<Index> indices,
                           std::vector<float> values)
    : indices_(std::move(indices)), values_(std::move(values)) {
  SLIDE_CHECK(indices_.size() == values_.size(),
              "SparseVector: index/value length mismatch");
  compact();
}

void SparseVector::compact() {
  const std::size_t n = indices_.size();
  SLIDE_ASSERT(n == values_.size());
  if (n == 0) return;
  const bool sorted_unique = [&] {
    for (std::size_t i = 1; i < n; ++i)
      if (indices_[i] <= indices_[i - 1]) return false;
    return true;
  }();
  if (sorted_unique) return;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return indices_[a] < indices_[b];
  });
  std::vector<Index> new_idx;
  std::vector<float> new_val;
  new_idx.reserve(n);
  new_val.reserve(n);
  for (std::size_t k : order) {
    if (!new_idx.empty() && new_idx.back() == indices_[k]) {
      new_val.back() += values_[k];  // merge duplicates
    } else {
      new_idx.push_back(indices_[k]);
      new_val.push_back(values_[k]);
    }
  }
  indices_ = std::move(new_idx);
  values_ = std::move(new_val);
}

float SparseVector::l2_norm() const noexcept {
  return std::sqrt(simd::dot(values_.data(), values_.data(), values_.size()));
}

void SparseVector::l2_normalize() noexcept {
  const float norm = l2_norm();
  if (norm > 0.0f) simd::scale(values_.data(), 1.0f / norm, values_.size());
}

float SparseVector::dot_dense(const float* dense) const noexcept {
  return simd::sparse_dot(indices_.data(), values_.data(), indices_.size(),
                          dense);
}

std::vector<float> to_dense(const SparseVector& v, Index dim) {
  SLIDE_CHECK(v.min_dim() <= dim, "to_dense: dimension too small");
  std::vector<float> out(dim, 0.0f);
  for (std::size_t i = 0; i < v.nnz(); ++i)
    out[v.indices()[i]] = v.values()[i];
  return out;
}

SparseVector from_dense(std::span<const float> dense, float threshold) {
  SparseVector out;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (std::fabs(dense[i]) > threshold)
      out.push_back(static_cast<Index>(i), dense[i]);
  }
  // Entries were appended in index order, so the invariant already holds;
  // compact() fast-paths this.
  out.compact();
  return out;
}

}  // namespace slide
