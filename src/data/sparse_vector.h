// Sparse vector representation used throughout the library.
//
// Inputs in extreme classification are extremely sparse (paper Table 1:
// 0.038-0.055 % density, ~75 nonzeros per sample), so features, layer
// inputs and LSH queries are all index/value pair lists. Indices are kept
// sorted and unique — several hash functions (DWTA, DOPH) and the readers
// rely on that invariant.
#pragma once

#include <span>
#include <vector>

#include "sys/common.h"

namespace slide {

class SparseVector {
 public:
  SparseVector() = default;

  /// Takes ownership of parallel index/value arrays. Sorts by index and
  /// merges duplicates (summing their values) to establish the invariant.
  SparseVector(std::vector<Index> indices, std::vector<float> values);

  std::size_t nnz() const noexcept { return indices_.size(); }
  bool empty() const noexcept { return indices_.empty(); }

  std::span<const Index> indices() const noexcept { return indices_; }
  std::span<const float> values() const noexcept { return values_; }

  const Index* index_data() const noexcept { return indices_.data(); }
  const float* value_data() const noexcept { return values_.data(); }

  /// Largest index + 1, or 0 when empty (indices are sorted).
  Index min_dim() const noexcept {
    return indices_.empty() ? 0 : indices_.back() + 1;
  }

  /// Appends an entry; caller must finish with compact() before reads if
  /// insertion order is not sorted/unique.
  void push_back(Index index, float value) {
    indices_.push_back(index);
    values_.push_back(value);
  }

  /// Restores the sorted-unique invariant after push_back streams.
  void compact();

  void clear() noexcept {
    indices_.clear();
    values_.clear();
  }
  void reserve(std::size_t n) {
    indices_.reserve(n);
    values_.reserve(n);
  }

  float l2_norm() const noexcept;

  /// Scales values so the L2 norm is 1 (no-op on zero vectors).
  void l2_normalize() noexcept;

  /// Dot product with a dense vector of dimension > max index.
  float dot_dense(const float* dense) const noexcept;

  friend bool operator==(const SparseVector&, const SparseVector&) = default;

 private:
  std::vector<Index> indices_;
  std::vector<float> values_;
};

/// Converts to a dense float vector of the given dimension.
std::vector<float> to_dense(const SparseVector& v, Index dim);

/// Builds a SparseVector from a dense array, keeping entries with
/// |x| > threshold.
SparseVector from_dense(std::span<const float> dense, float threshold = 0.0f);

}  // namespace slide
