// Reader/writer for the Extreme Classification Repository text format
// (Bhatia et al.), the distribution format of Delicious-200K and
// Amazon-670K used in the paper:
//
//   line 0:  <num_samples> <feature_dim> <label_dim>
//   line i:  l1,l2,...,lk  f1:v1 f2:v2 ... fm:vm
//
// A sample may have zero labels (the label field is then empty and the line
// starts with a space). The reader is tolerant of \r\n endings and blank
// trailing lines. With this module, the real datasets can be dropped into
// the benches in place of the synthetic stand-ins (see DESIGN.md §3).
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.h"

namespace slide {

/// Parses a dataset in XC repository format. Throws slide::Error on
/// malformed input — truncated index:value pairs, out-of-range label or
/// feature indices, non-finite (NaN/Inf) feature values, integer overflow,
/// and missing lines are all rejected with the offending 1-based line
/// number in the message. `l2_normalize` applies per-sample feature
/// normalization (the preprocessing used by the reference implementation).
Dataset read_xc(std::istream& in, bool l2_normalize = true);
Dataset read_xc_file(const std::string& path, bool l2_normalize = true);

/// Writes a dataset in the same format (inverse of read_xc, modulo float
/// formatting).
void write_xc(std::ostream& out, const Dataset& dataset);
void write_xc_file(const std::string& path, const Dataset& dataset);

}  // namespace slide
