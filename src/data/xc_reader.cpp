#include "data/xc_reader.h"

#include <charconv>
#include <fstream>
#include <sstream>

namespace slide {

namespace {

// Parses an unsigned integer from [p, end); advances p. Throws on failure.
Index parse_index(const char*& p, const char* end, const char* what) {
  Index value = 0;
  auto [next, ec] = std::from_chars(p, end, value);
  if (ec != std::errc{} || next == p)
    throw Error(std::string("read_xc: expected integer in ") + what);
  p = next;
  return value;
}

float parse_float(const char*& p, const char* end) {
  float value = 0.0f;
  auto [next, ec] = std::from_chars(p, end, value);
  if (ec != std::errc{} || next == p)
    throw Error("read_xc: expected float feature value");
  p = next;
  return value;
}

void skip_spaces(const char*& p, const char* end) {
  while (p < end && (*p == ' ' || *p == '\t')) ++p;
}

}  // namespace

Dataset read_xc(std::istream& in, bool l2_normalize) {
  std::string header;
  if (!std::getline(in, header)) throw Error("read_xc: empty input");
  std::istringstream hs(header);
  std::size_t num_samples = 0;
  Index feature_dim = 0, label_dim = 0;
  if (!(hs >> num_samples >> feature_dim >> label_dim))
    throw Error("read_xc: malformed header line");

  Dataset dataset(feature_dim, label_dim);
  dataset.reserve(num_samples);

  std::string line;
  for (std::size_t i = 0; i < num_samples; ++i) {
    if (!std::getline(in, line))
      throw Error("read_xc: fewer data lines than the header declares");
    if (!line.empty() && line.back() == '\r') line.pop_back();

    const char* p = line.data();
    const char* end = p + line.size();
    Sample sample;

    // Label list: comma-separated indices up to the first space. Empty when
    // the line starts with a space (unlabeled sample).
    if (p < end && *p != ' ') {
      for (;;) {
        sample.labels.push_back(parse_index(p, end, "label list"));
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        break;
      }
    }
    // Feature list: space-separated index:value pairs.
    for (;;) {
      skip_spaces(p, end);
      if (p >= end) break;
      const Index idx = parse_index(p, end, "feature index");
      if (p >= end || *p != ':')
        throw Error("read_xc: expected ':' after feature index");
      ++p;
      const float val = parse_float(p, end);
      sample.features.push_back(idx, val);
    }
    sample.features.compact();
    if (l2_normalize) sample.features.l2_normalize();
    dataset.add(std::move(sample));
  }
  return dataset;
}

Dataset read_xc_file(const std::string& path, bool l2_normalize) {
  std::ifstream in(path);
  if (!in) throw Error("read_xc_file: cannot open " + path);
  return read_xc(in, l2_normalize);
}

void write_xc(std::ostream& out, const Dataset& dataset) {
  out << dataset.size() << ' ' << dataset.feature_dim() << ' '
      << dataset.label_dim() << '\n';
  for (const auto& sample : dataset.samples()) {
    for (std::size_t i = 0; i < sample.labels.size(); ++i) {
      if (i) out << ',';
      out << sample.labels[i];
    }
    for (std::size_t i = 0; i < sample.features.nnz(); ++i) {
      out << ' ' << sample.features.indices()[i] << ':'
          << sample.features.values()[i];
    }
    out << '\n';
  }
}

void write_xc_file(const std::string& path, const Dataset& dataset) {
  std::ofstream out(path);
  if (!out) throw Error("write_xc_file: cannot open " + path);
  write_xc(out, dataset);
}

}  // namespace slide
