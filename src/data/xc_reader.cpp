#include "data/xc_reader.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

namespace slide {

namespace {

/// Malformed-input error with the 1-based line number attached — feeding a
/// multi-gigabyte XC file through a pipeline without being told *where* it
/// broke is not actionable.
[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw Error("read_xc: line " + std::to_string(line_no) + ": " + what);
}

// Parses an unsigned integer from [p, end); advances p. Throws (with the
// line number) on garbage, overflow, or an empty token.
Index parse_index(const char*& p, const char* end, const char* what,
                  std::size_t line_no) {
  Index value = 0;
  auto [next, ec] = std::from_chars(p, end, value);
  if (ec == std::errc::result_out_of_range)
    fail(line_no, std::string("integer out of range in ") + what);
  if (ec != std::errc{} || next == p)
    fail(line_no, std::string("expected integer in ") + what);
  p = next;
  return value;
}

float parse_float(const char*& p, const char* end, std::size_t line_no) {
  float value = 0.0f;
  auto [next, ec] = std::from_chars(p, end, value);
  // result_out_of_range leaves `value` unmodified (so 1e40 would silently
  // read as 0): reject it outright rather than guessing.
  if (ec == std::errc::result_out_of_range)
    fail(line_no, "feature value out of float range");
  if (ec != std::errc{} || next == p)
    fail(line_no, "expected float feature value");
  if (!std::isfinite(value))
    fail(line_no, "non-finite feature value (NaN/Inf rejected)");
  p = next;
  return value;
}

void skip_spaces(const char*& p, const char* end) {
  while (p < end && (*p == ' ' || *p == '\t')) ++p;
}

}  // namespace

Dataset read_xc(std::istream& in, bool l2_normalize) {
  std::string header;
  if (!std::getline(in, header)) throw Error("read_xc: empty input");
  std::istringstream hs(header);
  std::size_t num_samples = 0;
  Index feature_dim = 0, label_dim = 0;
  if (!(hs >> num_samples >> feature_dim >> label_dim))
    fail(1, "malformed header (expected <samples> <features> <labels>)");
  if (feature_dim == 0 || label_dim == 0)
    fail(1, "header dimensions must be positive");

  Dataset dataset(feature_dim, label_dim);
  dataset.reserve(num_samples);

  std::string line;
  for (std::size_t i = 0; i < num_samples; ++i) {
    const std::size_t line_no = i + 2;  // 1-based; line 1 is the header
    if (!std::getline(in, line))
      throw Error("read_xc: line " + std::to_string(line_no) +
                  ": fewer data lines than the header declares");
    if (!line.empty() && line.back() == '\r') line.pop_back();

    const char* p = line.data();
    const char* end = p + line.size();
    Sample sample;

    // Label list: comma-separated indices up to the first space. Empty when
    // the line starts with a space (unlabeled sample).
    if (p < end && *p != ' ') {
      for (;;) {
        const Index label = parse_index(p, end, "label list", line_no);
        if (label >= label_dim)
          fail(line_no, "label " + std::to_string(label) +
                            " out of range (label_dim " +
                            std::to_string(label_dim) + ")");
        sample.labels.push_back(label);
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        break;
      }
    }
    // Feature list: space-separated index:value pairs.
    for (;;) {
      skip_spaces(p, end);
      if (p >= end) break;
      const Index idx = parse_index(p, end, "feature index", line_no);
      if (idx >= feature_dim)
        fail(line_no, "feature index " + std::to_string(idx) +
                          " out of range (feature_dim " +
                          std::to_string(feature_dim) + ")");
      if (p >= end || *p != ':')
        fail(line_no, "expected ':' after feature index (truncated pair?)");
      ++p;
      const float val = parse_float(p, end, line_no);
      sample.features.push_back(idx, val);
    }
    sample.features.compact();
    if (l2_normalize) sample.features.l2_normalize();
    dataset.add(std::move(sample));
  }
  return dataset;
}

Dataset read_xc_file(const std::string& path, bool l2_normalize) {
  std::ifstream in(path);
  if (!in) throw Error("read_xc_file: cannot open " + path);
  return read_xc(in, l2_normalize);
}

void write_xc(std::ostream& out, const Dataset& dataset) {
  out << dataset.size() << ' ' << dataset.feature_dim() << ' '
      << dataset.label_dim() << '\n';
  for (const auto& sample : dataset.samples()) {
    for (std::size_t i = 0; i < sample.labels.size(); ++i) {
      if (i) out << ',';
      out << sample.labels[i];
    }
    for (std::size_t i = 0; i < sample.features.nnz(); ++i) {
      out << ' ' << sample.features.indices()[i] << ':'
          << sample.features.values()[i];
    }
    out << '\n';
  }
}

void write_xc_file(const std::string& path, const Dataset& dataset) {
  std::ofstream out(path);
  if (!out) throw Error("write_xc_file: cannot open " + path);
  write_xc(out, dataset);
}

}  // namespace slide
