#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "sys/rng.h"

namespace slide {

namespace {

/// Draws label ids with p(rank k) ∝ 1/(k+1)^s via inverse-CDF lookup.
class ZipfSampler {
 public:
  ZipfSampler(Index n, double exponent) : cdf_(n) {
    double total = 0.0;
    for (Index k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k) + 1.0, exponent);
      cdf_[k] = total;
    }
    total_ = total;
  }

  Index operator()(Rng& rng) const {
    const double u = rng.uniform_double() * total_;
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<Index>(std::min<std::ptrdiff_t>(
        it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
  }

 private:
  std::vector<double> cdf_;
  double total_ = 0.0;
};

/// The characteristic feature ids of a label, derived deterministically from
/// (seed, label) so they never need to be stored.
void label_features(std::uint64_t seed, Index label, int count,
                    Index feature_dim, std::vector<Index>& out) {
  out.clear();
  Rng rng(seed ^ (0xA24BAED4963EE407ull + label * 0x9E3779B97F4A7C15ull));
  for (int i = 0; i < count; ++i) out.push_back(rng.uniform(feature_dim));
}

Sample make_sample(const SyntheticConfig& cfg, const ZipfSampler& zipf,
                   Rng& rng, std::vector<Index>& scratch) {
  Sample sample;

  const int span = cfg.max_labels_per_sample - cfg.min_labels_per_sample + 1;
  const int num_labels =
      cfg.min_labels_per_sample + static_cast<int>(rng.uniform(span));
  // Draw distinct labels; with 10^4+ labels collisions are rare, so a small
  // retry loop suffices.
  for (int attempts = 0;
       static_cast<int>(sample.labels.size()) < num_labels && attempts < 64;
       ++attempts) {
    const Index label = zipf(rng);
    if (std::find(sample.labels.begin(), sample.labels.end(), label) ==
        sample.labels.end()) {
      sample.labels.push_back(label);
    }
  }

  sample.features.reserve(sample.labels.size() * cfg.active_per_label +
                          cfg.noise_features);
  for (Index label : sample.labels) {
    label_features(cfg.seed, label, cfg.features_per_label, cfg.feature_dim,
                   scratch);
    // Partial Fisher-Yates: the first active_per_label entries become the
    // fired subset for this sample.
    const int active = std::min<int>(cfg.active_per_label,
                                     static_cast<int>(scratch.size()));
    for (int i = 0; i < active; ++i) {
      const std::uint32_t j =
          i + rng.uniform(static_cast<std::uint32_t>(scratch.size()) - i);
      std::swap(scratch[i], scratch[j]);
      sample.features.push_back(scratch[i], 0.5f + rng.uniform_float());
    }
  }
  for (int i = 0; i < cfg.noise_features; ++i) {
    sample.features.push_back(rng.uniform(cfg.feature_dim),
                              0.25f + 0.5f * rng.uniform_float());
  }
  sample.features.compact();
  sample.features.l2_normalize();
  return sample;
}

}  // namespace

SyntheticDataset make_synthetic_xc(const SyntheticConfig& cfg) {
  SLIDE_CHECK(cfg.feature_dim > 0 && cfg.label_dim > 0,
              "make_synthetic_xc: dimensions must be positive");
  SLIDE_CHECK(cfg.min_labels_per_sample >= 1 &&
                  cfg.max_labels_per_sample >= cfg.min_labels_per_sample,
              "make_synthetic_xc: invalid labels-per-sample range");
  SLIDE_CHECK(cfg.active_per_label <= cfg.features_per_label,
              "make_synthetic_xc: active_per_label > features_per_label");

  SyntheticDataset out;
  out.config = cfg;
  out.train = Dataset(cfg.feature_dim, cfg.label_dim);
  out.test = Dataset(cfg.feature_dim, cfg.label_dim);
  out.train.reserve(cfg.num_train);
  out.test.reserve(cfg.num_test);

  const ZipfSampler zipf(cfg.label_dim, cfg.zipf_exponent);
  std::vector<Index> scratch;

  Rng train_rng(cfg.seed * 2 + 1);
  for (std::size_t i = 0; i < cfg.num_train; ++i)
    out.train.add(make_sample(cfg, zipf, train_rng, scratch));

  Rng test_rng(cfg.seed * 2 + 7'919);
  for (std::size_t i = 0; i < cfg.num_test; ++i)
    out.test.add(make_sample(cfg, zipf, test_rng, scratch));

  return out;
}

SyntheticConfig delicious_like(Scale scale) {
  SyntheticConfig cfg;
  cfg.name = "delicious-like";
  cfg.zipf_exponent = 1.0;
  cfg.features_per_label = 40;
  cfg.active_per_label = 20;
  cfg.noise_features = 15;
  switch (scale) {
    case Scale::kTiny:
      cfg.feature_dim = 2'000;
      cfg.label_dim = 500;
      cfg.num_train = 1'500;
      cfg.num_test = 500;
      cfg.features_per_label = 12;
      cfg.active_per_label = 6;
      cfg.noise_features = 3;
      break;
    case Scale::kSmall:
      cfg.feature_dim = 40'000;
      cfg.label_dim = 16'000;
      cfg.num_train = 10'000;
      cfg.num_test = 2'000;
      break;
    case Scale::kMedium:
      cfg.feature_dim = 150'000;
      cfg.label_dim = 50'000;
      cfg.num_train = 40'000;
      cfg.num_test = 8'000;
      break;
    case Scale::kPaper:  // paper Table 1 dimensions
      cfg.feature_dim = 782'585;
      cfg.label_dim = 205'443;
      cfg.num_train = 196'606;
      cfg.num_test = 100'095;
      break;
  }
  cfg.seed = 1'234;
  return cfg;
}

SyntheticConfig amazon_like(Scale scale) {
  SyntheticConfig cfg;
  cfg.name = "amazon-like";
  cfg.zipf_exponent = 1.2;
  cfg.features_per_label = 30;
  cfg.active_per_label = 15;
  cfg.noise_features = 10;
  switch (scale) {
    case Scale::kTiny:
      cfg.feature_dim = 1'500;
      cfg.label_dim = 800;
      cfg.num_train = 1'500;
      cfg.num_test = 500;
      cfg.features_per_label = 12;
      cfg.active_per_label = 6;
      cfg.noise_features = 3;
      break;
    case Scale::kSmall:
      cfg.feature_dim = 24'000;
      cfg.label_dim = 24'000;
      cfg.num_train = 10'000;
      cfg.num_test = 2'000;
      break;
    case Scale::kMedium:
      cfg.feature_dim = 80'000;
      cfg.label_dim = 100'000;
      cfg.num_train = 40'000;
      cfg.num_test = 8'000;
      break;
    case Scale::kPaper:  // paper Table 1 dimensions
      cfg.feature_dim = 135'909;
      cfg.label_dim = 670'091;
      cfg.num_train = 490'449;
      cfg.num_test = 153'025;
      break;
  }
  cfg.seed = 5'678;
  return cfg;
}

Scale parse_scale(const std::string& name) {
  if (name == "tiny") return Scale::kTiny;
  if (name == "small") return Scale::kSmall;
  if (name == "medium") return Scale::kMedium;
  if (name == "paper") return Scale::kPaper;
  throw Error("parse_scale: unknown scale '" + name +
              "' (expected tiny|small|medium|paper)");
}

}  // namespace slide
