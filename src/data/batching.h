// Mini-batch iteration with per-epoch shuffling.
//
// SLIDE trains with batch gradient descent (paper §3.1); each batch is a
// list of sample indices that the trainer fans out across threads, one
// training instance per thread.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "sys/rng.h"

namespace slide {

class Batcher {
 public:
  /// Iterates `dataset` in batches of `batch_size` (last batch of an epoch
  /// may be smaller). When `shuffle` is set, the order is re-drawn each
  /// epoch from the seeded RNG.
  Batcher(const Dataset& dataset, std::size_t batch_size, bool shuffle,
          std::uint64_t seed = 7);

  /// Returns the next batch as sample indices into the dataset. Rolls over
  /// to a new epoch automatically.
  std::span<const std::size_t> next();

  std::size_t batch_size() const noexcept { return batch_size_; }
  std::size_t batches_per_epoch() const noexcept {
    return (order_.size() + batch_size_ - 1) / batch_size_;
  }
  /// Number of completed epochs.
  std::size_t epoch() const noexcept { return epoch_; }

 private:
  void reshuffle();

  std::size_t batch_size_;
  bool shuffle_;
  Rng rng_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
  std::size_t epoch_ = 0;
  std::vector<std::size_t> current_;
};

}  // namespace slide
