// Full-softmax dense baseline — the role the paper's TF-CPU / TF-GPU
// comparators play (see DESIGN.md §3).
//
// DEPRECATED (kept as a thin alias for one release): since the unified
// Layer/Network redesign the dense baseline is just a builder stack,
//
//   Network net = NetworkBuilder(input_dim)
//                     .dense(hidden_units)
//                     .dense(output_units, Activation::kSoftmax)
//                     .build(max_threads);
//
// trained by the ordinary Trainer and served by serve/ like any other
// model. This wrapper holds exactly that Network and preserves the old
// step()/predict API so existing callers compile unchanged; new code
// should use NetworkBuilder directly (network() exposes the inner model
// for incremental migration). Gradient accumulation runs with per-layer
// locks instead of HOGWILD so the dense step stays deterministic across
// thread counts, matching the old phase-structured implementation — the
// honest-comparison property the baseline exists for.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/builder.h"
#include "core/network.h"
#include "data/dataset.h"
#include "optim/adam.h"
#include "sys/thread_pool.h"

namespace slide {

class DenseNetwork {
 public:
  struct Config {
    Index input_dim = 0;
    Index hidden_units = 128;
    Index output_units = 0;
    float hidden_init_stddev = 0.5f;
    float output_init_stddev = 0.0f;  // 0 -> 2/sqrt(hidden)
    AdamConfig adam;
    int max_batch_size = 256;
    std::uint64_t seed = 321;
  };

  DenseNetwork(const Config& config, int max_threads);

  Index input_dim() const noexcept { return network_.input_dim(); }
  Index output_dim() const noexcept { return network_.output_dim(); }

  /// One full-softmax training batch; returns the mean loss.
  float step(const Dataset& data, std::span<const std::size_t> indices,
             float lr, ThreadPool& pool);

  /// Argmax over all output logits. Thread-safe for concurrent callers
  /// (one scratch vector each) while no step() is running.
  Index predict_top1(const SparseVector& x, std::vector<float>& scratch) const;

  /// Top-k labels by logit, descending.
  std::vector<Index> predict_topk(const SparseVector& x,
                                  std::vector<float>& scratch, int k) const;

  std::size_t num_parameters() const noexcept {
    return network_.num_parameters();
  }

  /// The unified model backing this wrapper — the migration path off the
  /// deprecated API (train it with Trainer, serve it with serve/).
  Network& network() noexcept { return network_; }
  const Network& network() const noexcept { return network_; }

  EmbeddingLayer& embedding() noexcept { return network_.embedding(); }
  const EmbeddingLayer& embedding() const noexcept {
    return network_.embedding();
  }

  /// Whole-parameter views of the output layer (serialization).
  std::span<float> output_weights_span() noexcept {
    return network_.output_layer().weights_span();
  }
  std::span<const float> output_weights_span() const noexcept {
    return network_.output_layer().weights_span();
  }
  std::span<float> output_bias_span() noexcept {
    return network_.output_layer().bias_span();
  }
  std::span<const float> output_bias_span() const noexcept {
    return network_.output_layer().bias_span();
  }

 private:
  Network network_;
  std::vector<Rng> slot_rngs_;                        // one per batch slot
  std::vector<std::unique_ptr<VisitedSet>> visited_;  // one per thread
};

}  // namespace slide
