// Full-softmax dense baseline — the role the paper's TF-CPU / TF-GPU
// comparators play (see DESIGN.md §3). Identical architecture (sparse input
// -> dense hidden -> softmax over ALL classes), identical Adam optimizer,
// identical initialization; the only difference from SLIDE is that every
// output neuron computes on every sample, the honest O(B x classes x
// hidden) cost of dense training.
//
// The implementation is deliberately optimized (AVX2 kernels, batch
// parallelism restructured to avoid write races: sample-parallel forward,
// then unit-parallel gradient+Adam) so the SLIDE-vs-dense comparison is not
// strawmanned.
#pragma once

#include <span>
#include <vector>

#include "core/layer.h"
#include "data/dataset.h"
#include "optim/adam.h"
#include "sys/aligned.h"
#include "sys/thread_pool.h"

namespace slide {

class DenseNetwork {
 public:
  struct Config {
    Index input_dim = 0;
    Index hidden_units = 128;
    Index output_units = 0;
    float hidden_init_stddev = 0.5f;
    float output_init_stddev = 0.0f;  // 0 -> 2/sqrt(hidden)
    AdamConfig adam;
    int max_batch_size = 256;
    std::uint64_t seed = 321;
  };

  DenseNetwork(const Config& config, int max_threads);

  Index input_dim() const noexcept { return config_.input_dim; }
  Index output_dim() const noexcept { return config_.output_units; }

  /// One full-softmax training batch; returns the mean loss.
  float step(const Dataset& data, std::span<const std::size_t> indices,
             float lr, ThreadPool& pool);

  /// Argmax over all output logits.
  Index predict_top1(const SparseVector& x, std::vector<float>& scratch) const;

  /// Top-k labels by logit, descending.
  std::vector<Index> predict_topk(const SparseVector& x,
                                  std::vector<float>& scratch, int k) const;

  std::size_t num_parameters() const noexcept;

  EmbeddingLayer& embedding() noexcept { return embedding_; }
  const EmbeddingLayer& embedding() const noexcept { return embedding_; }

  /// Whole-parameter views of the output layer (serialization).
  std::span<float> output_weights_span() noexcept {
    return {weights_.data(), weights_.size()};
  }
  std::span<const float> output_weights_span() const noexcept {
    return {weights_.data(), weights_.size()};
  }
  std::span<float> output_bias_span() noexcept {
    return {bias_.data(), bias_.size()};
  }
  std::span<const float> output_bias_span() const noexcept {
    return {bias_.data(), bias_.size()};
  }

 private:
  const float* weight_row_ptr(Index u) const noexcept {
    return weights_.data() + static_cast<std::size_t>(u) * fan_in_;
  }
  float* weight_row_ptr(Index u) noexcept {
    return weights_.data() + static_cast<std::size_t>(u) * fan_in_;
  }

  Config config_;
  EmbeddingLayer embedding_;
  Index units_;
  Index fan_in_;
  HugeArray weights_;  // [units x fan_in]
  AlignedVector<float> bias_;
  Adam adam_;
  std::vector<AlignedVector<float>> delta_;  // per slot: logits then deltas
};

}  // namespace slide
