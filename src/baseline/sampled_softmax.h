// Sampled Softmax baseline (paper §5.1): the TF `sampled_softmax` proxy —
// the output layer computes only over the true labels plus a *statically*
// (uniformly) sampled set of classes. It reuses the SLIDE engine with the
// output layer in random_sampled mode, so the only difference measured
// against SLIDE is the sampling distribution: static/uniform vs. LSH-driven
// input-adaptive — exactly the comparison of paper Figure 7.
//
// Note on the estimator: TF subtracts log-expected-counts from sampled
// logits. Under uniform sampling that correction is a constant shared by
// all non-label classes, which leaves the softmax (and its gradient
// direction across sampled classes) unchanged, so it is omitted here.
#pragma once

#include "core/config.h"

namespace slide {

/// Builds a network identical to make_paper_network but with static uniform
/// output sampling of `num_sampled` classes (paper: ~20% of classes is
/// needed for decent accuracy, vs ~0.5% for SLIDE's adaptive sampling).
NetworkConfig make_sampled_softmax_network(Index input_dim, Index label_dim,
                                           Index num_sampled,
                                           Index hidden_units = 128);

}  // namespace slide
