#include "baseline/sampled_softmax.h"

namespace slide {

NetworkConfig make_sampled_softmax_network(Index input_dim, Index label_dim,
                                           Index num_sampled,
                                           Index hidden_units) {
  NetworkConfig cfg;
  cfg.input_dim = input_dim;
  cfg.hidden_units = hidden_units;
  LayerSpec output;
  output.units = label_dim;
  output.activation = Activation::kSoftmax;
  output.hashed = false;
  output.random_sampled = true;
  output.sampling.target = num_sampled;
  output.fill_random_to_target = true;
  cfg.layers.push_back(output);
  return cfg;
}

}  // namespace slide
