#include "baseline/sampled_softmax.h"

#include "core/builder.h"

namespace slide {

NetworkConfig make_sampled_softmax_network(Index input_dim, Index label_dim,
                                           Index num_sampled,
                                           Index hidden_units) {
  return NetworkBuilder(input_dim)
      .dense(hidden_units)
      .random_sampled(label_dim, num_sampled)
      .to_config();
}

}  // namespace slide
