#include "baseline/dense_network.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "simd/kernels.h"

namespace slide {

DenseNetwork::DenseNetwork(const Config& config, int max_threads)
    : config_(config),
      embedding_(config.input_dim, config.hidden_units,
                 config.hidden_init_stddev, config.max_batch_size,
                 max_threads, config.adam, config.seed),
      units_(config.output_units),
      fan_in_(config.hidden_units),
      weights_(static_cast<std::size_t>(config.output_units) *
               config.hidden_units),
      bias_(config.output_units, 0.0f),
      adam_(config.adam,
            static_cast<std::size_t>(config.output_units) *
                    config.hidden_units +
                config.output_units) {
  SLIDE_CHECK(units_ > 0, "DenseNetwork: output_units must be positive");
  Rng rng(config.seed + 1);
  const float stddev =
      config.output_init_stddev > 0.0f
          ? config.output_init_stddev
          : 2.0f / std::sqrt(static_cast<float>(fan_in_));
  for (std::size_t i = 0; i < weights_.size(); ++i)
    weights_.data()[i] = stddev * rng.normal();
  delta_.resize(static_cast<std::size_t>(config.max_batch_size));
}

float DenseNetwork::step(const Dataset& data,
                         std::span<const std::size_t> indices, float lr,
                         ThreadPool& pool) {
  SLIDE_CHECK(!indices.empty(), "DenseNetwork::step: empty batch");
  SLIDE_CHECK(static_cast<int>(indices.size()) <= config_.max_batch_size,
              "DenseNetwork::step: batch exceeds max_batch_size");
  const std::size_t batch = indices.size();
  const float inv_batch = 1.0f / static_cast<float>(batch);
  std::atomic<float> loss_sum{0.0f};

  // Phase 1 — sample-parallel forward: hidden activations, full logits,
  // softmax over ALL classes, deltas (p - y)/B stored per slot.
  pool.parallel_range(batch, [&](std::size_t begin, std::size_t end, int) {
    float local_loss = 0.0f;
    for (std::size_t s = begin; s < end; ++s) {
      const Sample& sample = data[indices[s]];
      embedding_.forward(static_cast<int>(s), sample.features);
      const float* h = embedding_.slot(static_cast<int>(s)).act.data();
      auto& logits = delta_[s];
      logits.resize(units_);
      for (Index u = 0; u < units_; ++u)
        logits[u] = bias_[u] + simd::dot(weight_row_ptr(u), h, fan_in_);
      simd::softmax_inplace(logits.data(), units_);
      const float y = sample.labels.empty()
                          ? 0.0f
                          : 1.0f / static_cast<float>(sample.labels.size());
      for (Index label : sample.labels) {
        local_loss -= y * std::log(std::max(logits[label], 1e-30f));
      }
      simd::scale(logits.data(), inv_batch, units_);
      for (Index label : sample.labels) logits[label] -= y * inv_batch;
    }
    float expected = loss_sum.load(std::memory_order_relaxed);
    while (!loss_sum.compare_exchange_weak(expected, expected + local_loss,
                                           std::memory_order_relaxed)) {
    }
  });

  // Phase 2 — sample-parallel backprop into the hidden layer (must read the
  // pre-update output weights) and embedding gradient accumulation.
  pool.parallel_range(batch, [&](std::size_t begin, std::size_t end, int tid) {
    for (std::size_t s = begin; s < end; ++s) {
      const Sample& sample = data[indices[s]];
      float* h_err = embedding_.slot(static_cast<int>(s)).err.data();
      const auto& deltas = delta_[s];
      for (Index u = 0; u < units_; ++u) {
        const float d = deltas[u];
        if (d != 0.0f) simd::axpy(d, weight_row_ptr(u), h_err, fan_in_);
      }
      embedding_.backward(static_cast<int>(s), sample.features, tid);
    }
  });

  // Phase 3 — unit-parallel gradient computation + Adam (no write races:
  // each unit's weight row belongs to exactly one thread).
  adam_.step_begin();
  const std::size_t bias_base = static_cast<std::size_t>(units_) * fan_in_;
  pool.parallel_range(units_, [&](std::size_t begin, std::size_t end, int) {
    AlignedVector<float> grad(fan_in_);
    for (std::size_t u = begin; u < end; ++u) {
      std::fill(grad.begin(), grad.end(), 0.0f);
      float bias_grad = 0.0f;
      for (std::size_t s = 0; s < batch; ++s) {
        const float d = delta_[s][u];
        if (d == 0.0f) continue;
        bias_grad += d;
        simd::axpy(d, embedding_.slot(static_cast<int>(s)).act.data(),
                   grad.data(), fan_in_);
      }
      float* w = weights_.data() + u * fan_in_;
      adam_.update_span(w, grad.data(), u * fan_in_, fan_in_, lr);
      adam_.update_at(&bias_[u], bias_grad, bias_base + u, lr);
    }
  });

  embedding_.apply_updates(lr, &pool);
  return loss_sum.load() * inv_batch;
}

Index DenseNetwork::predict_top1(const SparseVector& x,
                                 std::vector<float>& scratch) const {
  scratch.resize(fan_in_);
  embedding_.forward_inference(x, scratch.data());
  Index best = 0;
  float best_score = -std::numeric_limits<float>::infinity();
  for (Index u = 0; u < units_; ++u) {
    const float score =
        bias_[u] + simd::dot(weight_row_ptr(u), scratch.data(), fan_in_);
    if (score > best_score) {
      best_score = score;
      best = u;
    }
  }
  return best;
}

std::vector<Index> DenseNetwork::predict_topk(const SparseVector& x,
                                              std::vector<float>& scratch,
                                              int k) const {
  SLIDE_CHECK(k >= 1, "predict_topk: k must be >= 1");
  scratch.resize(fan_in_);
  embedding_.forward_inference(x, scratch.data());
  std::vector<std::pair<float, Index>> scored(units_);
  for (Index u = 0; u < units_; ++u) {
    scored[u] = {bias_[u] + simd::dot(weight_row_ptr(u), scratch.data(),
                                      fan_in_),
                 u};
  }
  const std::size_t take =
      std::min<std::size_t>(static_cast<std::size_t>(k), scored.size());
  // Ties break toward the lower label id, matching predict_top1.
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(take),
                    scored.end(), [](const auto& a, const auto& b) {
                      return a.first > b.first ||
                             (a.first == b.first && a.second < b.second);
                    });
  std::vector<Index> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

std::size_t DenseNetwork::num_parameters() const noexcept {
  return embedding_.num_parameters() +
         static_cast<std::size_t>(units_) * fan_in_ + units_;
}

}  // namespace slide
