#include "baseline/dense_network.h"

#include <algorithm>
#include <atomic>
#include <limits>

#include "simd/kernels.h"

namespace slide {

DenseNetwork::DenseNetwork(const Config& config, int max_threads)
    : network_(NetworkBuilder(config.input_dim)
                   .dense(config.hidden_units, Activation::kReLU,
                          config.hidden_init_stddev)
                   .dense(config.output_units, Activation::kSoftmax,
                          config.output_init_stddev)
                   .max_batch(config.max_batch_size)
                   .adam(config.adam)
                   .seed(config.seed)
                   .build(max_threads)) {
  // Deterministic across thread counts: the dense output layer touches
  // every weight on every sample, where HOGWILD's lost updates would no
  // longer be a negligible fraction — serialize accumulation instead.
  network_.set_use_locks(true);
  Rng seeder(config.seed + 0xD5);
  slot_rngs_.reserve(static_cast<std::size_t>(config.max_batch_size));
  for (int s = 0; s < config.max_batch_size; ++s)
    slot_rngs_.push_back(seeder.fork());
  visited_.reserve(static_cast<std::size_t>(max_threads));
  for (int t = 0; t < max_threads; ++t)
    visited_.push_back(std::make_unique<VisitedSet>(
        std::max<Index>(network_.max_sampled_units(), 1)));
}

float DenseNetwork::step(const Dataset& data,
                         std::span<const std::size_t> indices, float lr,
                         ThreadPool& pool) {
  SLIDE_CHECK(!indices.empty(), "DenseNetwork::step: empty batch");
  SLIDE_CHECK(static_cast<int>(indices.size()) <= network_.max_batch_size(),
              "DenseNetwork::step: batch exceeds max_batch_size");
  const float inv_batch = 1.0f / static_cast<float>(indices.size());
  std::atomic<float> loss_sum{0.0f};
  pool.parallel_range(
      indices.size(), [&](std::size_t begin, std::size_t end, int tid) {
        SLIDE_ASSERT(static_cast<std::size_t>(tid) < visited_.size());
        VisitedSet& visited = *visited_[static_cast<std::size_t>(tid)];
        float local_loss = 0.0f;
        for (std::size_t s = begin; s < end; ++s) {
          local_loss += network_.train_sample(static_cast<int>(s),
                                              data[indices[s]], inv_batch,
                                              slot_rngs_[s], visited, tid);
        }
        float expected = loss_sum.load(std::memory_order_relaxed);
        while (!loss_sum.compare_exchange_weak(
            expected, expected + local_loss, std::memory_order_relaxed)) {
        }
      });
  network_.apply_updates(lr, &pool);
  return loss_sum.load() * inv_batch;
}

Index DenseNetwork::predict_top1(const SparseVector& x,
                                 std::vector<float>& scratch) const {
  const SampledLayer& output = network_.output_layer();
  const Index fan_in = output.fan_in();
  scratch.resize(fan_in);
  network_.embedding().forward_inference(x, scratch.data());
  Index best = 0;
  float best_score = -std::numeric_limits<float>::infinity();
  for (Index u = 0; u < output.units(); ++u) {
    const float score =
        output.bias(u) + simd::dot(output.weight_row(u), scratch.data(),
                                   fan_in);
    if (score > best_score) {
      best_score = score;
      best = u;
    }
  }
  return best;
}

std::vector<Index> DenseNetwork::predict_topk(const SparseVector& x,
                                              std::vector<float>& scratch,
                                              int k) const {
  SLIDE_CHECK(k >= 1, "predict_topk: k must be >= 1");
  const SampledLayer& output = network_.output_layer();
  const Index fan_in = output.fan_in();
  scratch.resize(fan_in);
  network_.embedding().forward_inference(x, scratch.data());
  std::vector<std::pair<float, Index>> scored(output.units());
  for (Index u = 0; u < output.units(); ++u) {
    scored[u] = {output.bias(u) + simd::dot(output.weight_row(u),
                                            scratch.data(), fan_in),
                 u};
  }
  const std::size_t take =
      std::min<std::size_t>(static_cast<std::size_t>(k), scored.size());
  // Ties break toward the lower label id, matching predict_top1.
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(take),
                    scored.end(), [](const auto& a, const auto& b) {
                      return a.first > b.first ||
                             (a.first == b.first && a.second < b.second);
                    });
  std::vector<Index> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

}  // namespace slide
