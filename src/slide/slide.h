// Umbrella header: the full public API of the SLIDE library.
//
//   #include "slide/slide.h"
//   using namespace slide;
//
// See README.md for a quickstart and DESIGN.md for the module inventory.
#pragma once

#include "baseline/dense_network.h"    // IWYU pragma: export
#include "baseline/sampled_softmax.h"  // IWYU pragma: export
#include "core/activation.h"           // IWYU pragma: export
#include "core/builder.h"              // IWYU pragma: export
#include "core/config.h"               // IWYU pragma: export
#include "core/layer.h"                // IWYU pragma: export
#include "core/network.h"              // IWYU pragma: export
#include "core/serialize.h"            // IWYU pragma: export
#include "core/sharded_layer.h"        // IWYU pragma: export
#include "core/trainer.h"              // IWYU pragma: export
#include "data/batching.h"             // IWYU pragma: export
#include "data/dataset.h"              // IWYU pragma: export
#include "data/sparse_vector.h"        // IWYU pragma: export
#include "data/synthetic.h"            // IWYU pragma: export
#include "data/xc_reader.h"            // IWYU pragma: export
#include "dist/distributed_layer.h"    // IWYU pragma: export
#include "dist/transport.h"            // IWYU pragma: export
#include "dist/worker.h"               // IWYU pragma: export
#include "lsh/collision.h"             // IWYU pragma: export
#include "lsh/factory.h"               // IWYU pragma: export
#include "lsh/sampling.h"              // IWYU pragma: export
#include "lsh/table_group.h"           // IWYU pragma: export
#include "metrics/convergence.h"       // IWYU pragma: export
#include "metrics/instrumentation.h"   // IWYU pragma: export
#include "metrics/latency.h"           // IWYU pragma: export
#include "metrics/metrics.h"           // IWYU pragma: export
#include "metrics/prometheus.h"        // IWYU pragma: export
#include "metrics/table_printer.h"     // IWYU pragma: export
#include "optim/adam.h"                // IWYU pragma: export
#include "optim/sgd.h"                 // IWYU pragma: export
#include "retrieval/exact_retriever.h"  // IWYU pragma: export
#include "retrieval/hnsw_retriever.h"   // IWYU pragma: export
#include "retrieval/lsh_retriever.h"    // IWYU pragma: export
#include "retrieval/retriever.h"        // IWYU pragma: export
#include "serve/engine.h"              // IWYU pragma: export
#include "serve/request_queue.h"       // IWYU pragma: export
#include "serve/snapshot.h"            // IWYU pragma: export
#include "simd/kernels.h"              // IWYU pragma: export
#include "sys/hugepages.h"             // IWYU pragma: export
#include "sys/perf_counters.h"         // IWYU pragma: export
#include "sys/rng.h"                   // IWYU pragma: export
#include "sys/thread_pool.h"           // IWYU pragma: export
#include "sys/timer.h"                 // IWYU pragma: export
