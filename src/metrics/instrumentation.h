// CPU-efficiency instrumentation — the in-container stand-in for the
// paper's Intel VTune analysis (Table 2 core utilization, Figure 6
// inefficiency breakdown). See DESIGN.md §3 for the substitution rationale.
#pragma once

#include <string>

#include "core/trainer.h"
#include "sys/perf_counters.h"

namespace slide {

/// A per-run efficiency report assembled from the thread pool's busy-time
/// accounting, the trainer's phase breakdown, the layers' sampling/compute
/// timers and OS counters.
struct CpuEfficiencyReport {
  int threads = 0;
  double wall_seconds = 0.0;
  /// busy/(threads x wall): the Table-2 "core utilization" analogue.
  double core_utilization = 0.0;
  /// Share of training wall time per phase.
  double compute_fraction = 0.0;   // forward+backward fan-out
  double update_fraction = 0.0;    // lazy Adam
  double rebuild_fraction = 0.0;   // hash-table refresh
  /// Within the hashed layers: LSH sampling vs activation math seconds.
  double lsh_sampling_seconds = 0.0;
  double layer_compute_seconds = 0.0;
  /// OS counters over the run (memory-pressure proxies).
  PerfSnapshot counters;

  std::string to_markdown_row(const std::string& label) const;
  static std::string markdown_header();
};

/// Snapshots everything needed before a measured run.
struct EfficiencyProbe {
  explicit EfficiencyProbe(Trainer& trainer);

  /// Finishes the measurement and assembles the report.
  CpuEfficiencyReport finish();

 private:
  Trainer& trainer_;
  PerfSnapshot start_counters_;
  TrainTimeBreakdown start_breakdown_;
  std::vector<double> start_busy_;
  double start_sampling_ = 0.0;
  double start_compute_ = 0.0;
  WallTimer timer_;
};

}  // namespace slide
