// Small markdown-table builder shared by the bench harness so every
// reproduced table/figure prints in one consistent format.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace slide {

class MarkdownTable {
 public:
  explicit MarkdownTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  std::string str() const;
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting helpers for table cells.
std::string fmt(double value, int precision = 3);
std::string fmt_pct(double fraction, int precision = 1);
std::string fmt_int(long long value);

}  // namespace slide
