// Accuracy evaluation. The paper's "accuracy" for these multi-label extreme
// classification tasks is precision@1: the fraction of test samples whose
// top-1 predicted class is among the true labels.
#pragma once

#include <cstdint>

#include "baseline/dense_network.h"
#include "core/network.h"
#include "data/dataset.h"
#include "sys/thread_pool.h"

namespace slide {

struct EvalOptions {
  /// Score every output neuron instead of LSH-sampled inference.
  bool exact = false;
  /// Cap on evaluated samples (0 = all); the paper-scale test sets are large
  /// and a few thousand samples give a stable estimate.
  std::size_t max_samples = 0;
  std::uint64_t seed = 7'001;
};

/// P@1 of the SLIDE network on a dataset, parallelized over samples.
double evaluate_p_at_1(const Network& network, const Dataset& data,
                       ThreadPool& pool, const EvalOptions& options = {});

/// P@1 of the dense baseline (always exact — it has no sampled mode).
double evaluate_p_at_1(const DenseNetwork& network, const Dataset& data,
                       ThreadPool& pool, const EvalOptions& options = {});

/// Precision@k (the standard XC metric family): mean over samples of
/// |top-k predictions ∩ true labels| / k.
double evaluate_p_at_k(const Network& network, const Dataset& data,
                       ThreadPool& pool, int k,
                       const EvalOptions& options = {});
double evaluate_p_at_k(const DenseNetwork& network, const Dataset& data,
                       ThreadPool& pool, int k,
                       const EvalOptions& options = {});

/// Recall@k of one retrieval result against the exact oracle:
/// |retrieved ∩ exact_topk| / |exact_topk| (1.0 for an empty oracle —
/// nothing to recall). Pure set overlap: `retrieved` may be any size (the
/// caller picks its own k by truncating), duplicates in either span count
/// once. The ANN-search example, the retrieval bench, and the serve-side
/// adaptive-retrieval stats all report this number.
double recall_at_k(std::span<const Index> retrieved,
                   std::span<const Index> exact_topk);

}  // namespace slide
