// Convergence recording: (iteration, wall-seconds, accuracy) series — the
// raw material of the paper's time-vs-accuracy and iteration-vs-accuracy
// plots (Figures 5, 7, 8) and of the convergence-time scalability sweeps
// (Figures 9, 13).
#pragma once

#include <string>
#include <vector>

namespace slide {

struct ConvergencePoint {
  long iteration = 0;
  double seconds = 0.0;   // training wall time, excluding evaluation
  double accuracy = 0.0;  // P@1
  double active_fraction = 0.0;  // output-layer active share (SLIDE only)
};

class ConvergenceRecorder {
 public:
  explicit ConvergenceRecorder(std::string name = "") : name_(std::move(name)) {}

  void add(const ConvergencePoint& point) { points_.push_back(point); }
  const std::vector<ConvergencePoint>& points() const noexcept {
    return points_;
  }
  const std::string& name() const noexcept { return name_; }
  bool empty() const noexcept { return points_.empty(); }

  double best_accuracy() const;

  /// Wall seconds of the first recorded point with accuracy >= target;
  /// negative if never reached.
  double seconds_to_accuracy(double target) const;
  /// Iteration count of the first point with accuracy >= target; -1 if
  /// never reached.
  long iterations_to_accuracy(double target) const;

  /// One-series markdown table: | iteration | seconds | accuracy |.
  std::string to_markdown() const;
  /// CSV with a `series` column so several recorders can be concatenated.
  std::string to_csv() const;

 private:
  std::string name_;
  std::vector<ConvergencePoint> points_;
};

/// Joint markdown table of several series aligned by row index (the shape
/// in which the benches print a figure's multiple curves).
std::string merge_to_markdown(const std::vector<const ConvergenceRecorder*>&
                                  recorders);

}  // namespace slide
