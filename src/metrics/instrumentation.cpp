#include "metrics/instrumentation.h"

#include <iomanip>
#include <sstream>

namespace slide {

namespace {

double sampled_layers_sampling_seconds(Network& network) {
  double total = 0.0;
  for (int i = 0; i < network.stack_depth(); ++i)
    total += network.stack(i).sampling_seconds();
  return total;
}

double sampled_layers_compute_seconds(Network& network) {
  double total = 0.0;
  for (int i = 0; i < network.stack_depth(); ++i)
    total += network.stack(i).compute_seconds();
  return total;
}

}  // namespace

EfficiencyProbe::EfficiencyProbe(Trainer& trainer)
    : trainer_(trainer),
      start_counters_(PerfSnapshot::now()),
      start_breakdown_(trainer.time_breakdown()),
      start_busy_(trainer.pool().busy_seconds()),
      start_sampling_(sampled_layers_sampling_seconds(trainer.network())),
      start_compute_(sampled_layers_compute_seconds(trainer.network())) {}

CpuEfficiencyReport EfficiencyProbe::finish() {
  CpuEfficiencyReport r;
  r.threads = trainer_.pool().num_threads();
  r.wall_seconds = timer_.seconds();
  r.counters = PerfSnapshot::now() - start_counters_;

  const TrainTimeBreakdown d =
      trainer_.time_breakdown() - start_breakdown_;
  const auto busy_now = trainer_.pool().busy_seconds();
  double busy = 0.0;
  for (std::size_t t = 0; t < busy_now.size(); ++t)
    busy += busy_now[t] - (t < start_busy_.size() ? start_busy_[t] : 0.0);

  const double denom = d.total_seconds * r.threads;
  r.core_utilization = denom > 0.0 ? busy / denom : 0.0;
  if (d.total_seconds > 0.0) {
    r.compute_fraction = d.batch_compute_seconds / d.total_seconds;
    r.update_fraction = d.update_seconds / d.total_seconds;
    r.rebuild_fraction = d.rebuild_seconds / d.total_seconds;
  }
  r.lsh_sampling_seconds =
      sampled_layers_sampling_seconds(trainer_.network()) - start_sampling_;
  r.layer_compute_seconds =
      sampled_layers_compute_seconds(trainer_.network()) - start_compute_;
  return r;
}

std::string CpuEfficiencyReport::markdown_header() {
  return "| run | threads | utilization | compute | update | rebuild | "
         "lsh-sample s | layer-math s | minor-faults | major-faults | "
         "rss MB |\n"
         "|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|";
}

std::string CpuEfficiencyReport::to_markdown_row(
    const std::string& label) const {
  std::ostringstream os;
  os << std::fixed;
  os << "| " << label << " | " << threads << " | " << std::setprecision(1)
     << core_utilization * 100.0 << "% | " << compute_fraction * 100.0
     << "% | " << update_fraction * 100.0 << "% | "
     << rebuild_fraction * 100.0 << "% | " << std::setprecision(3)
     << lsh_sampling_seconds << " | " << layer_compute_seconds << " | "
     << counters.minor_page_faults << " | " << counters.major_page_faults
     << " | " << std::setprecision(0)
     << static_cast<double>(counters.resident_set_bytes) / (1024.0 * 1024.0)
     << " |";
  return os.str();
}

}  // namespace slide
