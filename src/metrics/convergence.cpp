#include "metrics/convergence.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace slide {

double ConvergenceRecorder::best_accuracy() const {
  double best = 0.0;
  for (const auto& p : points_) best = std::max(best, p.accuracy);
  return best;
}

double ConvergenceRecorder::seconds_to_accuracy(double target) const {
  for (const auto& p : points_) {
    if (p.accuracy >= target) return p.seconds;
  }
  return -1.0;
}

long ConvergenceRecorder::iterations_to_accuracy(double target) const {
  for (const auto& p : points_) {
    if (p.accuracy >= target) return p.iteration;
  }
  return -1;
}

std::string ConvergenceRecorder::to_markdown() const {
  std::ostringstream os;
  os << "| iteration | seconds | accuracy (P@1) | active fraction |\n";
  os << "|---:|---:|---:|---:|\n";
  os << std::fixed;
  for (const auto& p : points_) {
    os << "| " << p.iteration << " | " << std::setprecision(2) << p.seconds
       << " | " << std::setprecision(4) << p.accuracy << " | "
       << std::setprecision(4) << p.active_fraction << " |\n";
  }
  return os.str();
}

std::string ConvergenceRecorder::to_csv() const {
  std::ostringstream os;
  os << "series,iteration,seconds,accuracy,active_fraction\n";
  os << std::fixed << std::setprecision(6);
  for (const auto& p : points_) {
    os << name_ << ',' << p.iteration << ',' << p.seconds << ','
       << p.accuracy << ',' << p.active_fraction << '\n';
  }
  return os.str();
}

std::string merge_to_markdown(
    const std::vector<const ConvergenceRecorder*>& recorders) {
  std::ostringstream os;
  os << "|";
  for (const auto* r : recorders)
    os << " " << r->name() << " iter | " << r->name() << " sec | "
       << r->name() << " P@1 |";
  os << "\n|";
  for (std::size_t i = 0; i < recorders.size(); ++i) os << "---:|---:|---:|";
  os << "\n";
  std::size_t rows = 0;
  for (const auto* r : recorders) rows = std::max(rows, r->points().size());
  os << std::fixed;
  for (std::size_t row = 0; row < rows; ++row) {
    os << "|";
    for (const auto* r : recorders) {
      if (row < r->points().size()) {
        const auto& p = r->points()[row];
        os << " " << p.iteration << " | " << std::setprecision(2)
           << p.seconds << " | " << std::setprecision(4) << p.accuracy
           << " |";
      } else {
        os << " | | |";
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace slide
