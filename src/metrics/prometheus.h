// Prometheus text exposition (format 0.0.4) for the serving tier.
//
// Three pieces:
//
//   PromWriter           — low-level escaping/formatting writer producing
//                          well-formed families, samples, and histograms.
//   render_prometheus()  — the serve engine's metric surface: one call
//                          renders a ServeStats reading (lane counters,
//                          shed/deadline-miss counters, latency histograms,
//                          PR 6 wire counters, PR 7 retrieval stats) as a
//                          complete scrape body. Pure function of its
//                          input, so tests can assert on the text without
//                          a socket.
//   MetricsServer        — a minimal blocking HTTP/1.0 listener (reusing
//                          the src/dist tcp plumbing) that answers every
//                          GET with the renderer's current output. One
//                          connection at a time, Connection: close — a
//                          scrape endpoint, not a web server.
//
// Histogram mapping: LatencyHistogram's 4-per-octave geometric buckets
// collapse to octave boundaries on export (le = 2us, 4us, ... in seconds,
// then +Inf) — 31 export buckets instead of 121 keeps scrape size and
// Prometheus cardinality sane while preserving the <~2x relative error an
// octave bound implies. `_count` is derived from the summed bucket counts
// (not the histogram's separate total counter) so a scrape is always
// internally consistent under concurrent record() traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "metrics/latency.h"

namespace slide {

struct ServeStats;

class PromWriter {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  /// Starts a metric family: emits the # HELP and # TYPE header lines.
  /// `type` is one of "counter", "gauge", "histogram", "untyped".
  void family(const std::string& name, const std::string& help,
              const std::string& type);

  /// Emits one sample line `name{labels} value`.
  void sample(const std::string& name, const Labels& labels, double value);

  /// Emits a full histogram (cumulative `le` bucket series + `_sum` +
  /// `_count`) from a LatencyHistogram snapshot, converting microseconds
  /// to base-unit seconds and collapsing to octave bucket boundaries.
  void histogram_us(const std::string& name, const Labels& labels,
                    const LatencyHistogram::Snapshot& snapshot);

  const std::string& str() const noexcept { return out_; }

  /// Escapes a label value per the exposition format: backslash, double
  /// quote, and newline.
  static std::string escape_label_value(const std::string& value);
  /// Escapes HELP text: backslash and newline (quotes are legal there).
  static std::string escape_help(const std::string& text);
  /// Shortest round-trip decimal for a sample value; integral values
  /// render without an exponent or trailing zeros.
  static std::string format_value(double value);

 private:
  std::string out_;
};

/// Renders one ServeStats reading as a complete Prometheus scrape body.
std::string render_prometheus(const ServeStats& stats);

/// Minimal blocking HTTP listener for `serve_cli --metrics-port`: answers
/// every GET on the port with `renderer()` as text/plain; version=0.0.4.
/// Runs a single background thread; stop() (or destruction) closes the
/// listener and joins.
class MetricsServer {
 public:
  /// Binds immediately (port 0 = ephemeral; see port()). Throws
  /// slide::dist::TransportError when the port is taken.
  MetricsServer(int port, std::function<std::string()> renderer);
  ~MetricsServer();

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// The bound port (kernel-assigned when constructed with 0).
  int port() const noexcept { return port_; }

  /// Closes the listener and joins the serving thread. Idempotent.
  void stop();

 private:
  void serve_loop();

  std::function<std::string()> renderer_;
  std::unique_ptr<class MetricsServerImpl> impl_;  // owns the dist listener
  std::thread thread_;
  int port_ = 0;
};

}  // namespace slide
