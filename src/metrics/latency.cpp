#include "metrics/latency.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace slide {

LatencyHistogram::LatencyHistogram() { reset(); }

int LatencyHistogram::bucket_of(double us) noexcept {
  if (!(us > 1.0)) return 0;
  const int b = static_cast<int>(std::log2(us) * kSubBuckets);
  return std::min(b, kNumBuckets - 1);
}

double LatencyHistogram::bucket_lower_us(int bucket) noexcept {
  return std::exp2(static_cast<double>(bucket) / kSubBuckets);
}

double LatencyHistogram::bucket_upper_us(int bucket) noexcept {
  return std::exp2(static_cast<double>(bucket + 1) / kSubBuckets);
}

void LatencyHistogram::record(double us) noexcept {
  if (us < 0.0) us = 0.0;
  buckets_[bucket_of(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us, std::memory_order_relaxed);
  // min/max via CAS races: losing a race re-checks against the new value.
  // min_us_ starts at +inf (not 0, which is a valid observation).
  double seen = min_us_.load(std::memory_order_relaxed);
  while (us < seen &&
         !min_us_.compare_exchange_weak(seen, us, std::memory_order_relaxed)) {
  }
  seen = max_us_.load(std::memory_order_relaxed);
  while (us > seen &&
         !max_us_.compare_exchange_weak(seen, us, std::memory_order_relaxed)) {
  }
}

std::uint64_t LatencyHistogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

double LatencyHistogram::mean_us() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum_us_.load(std::memory_order_relaxed) /
                            static_cast<double>(n);
}

double LatencyHistogram::min_us() const noexcept {
  return count() == 0 ? 0.0 : min_us_.load(std::memory_order_relaxed);
}

double LatencyHistogram::max_us() const noexcept {
  return max_us_.load(std::memory_order_relaxed);
}

double LatencyHistogram::percentile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t counts[kNumBuckets];
  std::uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total - 1);
  std::uint64_t below = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (rank < static_cast<double>(below + counts[i])) {
      // Interpolate inside the bucket, clamped to the observed extremes so
      // p0/p100 match min/max exactly.
      const double frac =
          (rank - static_cast<double>(below)) / static_cast<double>(counts[i]);
      const double lo = std::max(bucket_lower_us(i), min_us());
      const double hi = std::min(bucket_upper_us(i), max_us());
      // Clamp into the observed range: sub-microsecond observations land
      // in bucket 0 whose lower bound (1us) can exceed the true max.
      return std::clamp(lo + frac * std::max(0.0, hi - lo), min_us(),
                        max_us());
    }
    below += counts[i];
  }
  return max_us();
}

void LatencyHistogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_us_.store(0.0, std::memory_order_relaxed);
  min_us_.store(std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
  max_us_.store(0.0, std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot s;
  for (int i = 0; i < kNumBuckets; ++i) {
    s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.count = count();
  s.sum_us = sum_us_.load(std::memory_order_relaxed);
  return s;
}

double LatencyHistogram::bucket_upper_bound_us(int bucket) noexcept {
  return bucket_upper_us(bucket);
}

LatencyHistogram::Summary LatencyHistogram::summary() const {
  Summary s;
  s.count = count();
  s.mean_us = mean_us();
  s.min_us = min_us();
  s.max_us = max_us();
  s.p50_us = percentile(0.50);
  s.p95_us = percentile(0.95);
  s.p99_us = percentile(0.99);
  return s;
}

std::string fmt_latency_us(double us) {
  char buf[32];
  if (us < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0fus", us);
  } else if (us < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", us * 1e-3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", us * 1e-6);
  }
  return buf;
}

}  // namespace slide
