#include "metrics/prometheus.h"

#include <atomic>
#include <cmath>
#include <cstdio>

#include "dist/transport.h"
#include "serve/engine.h"

namespace slide {

// ---------------------------------------------------------------------------
// PromWriter
// ---------------------------------------------------------------------------

std::string PromWriter::escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PromWriter::escape_help(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PromWriter::format_value(double value) {
  // Counters and gauges are overwhelmingly integral: render those without
  // scientific notation so the text stays greppable and lint-friendly.
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

void PromWriter::family(const std::string& name, const std::string& help,
                        const std::string& type) {
  out_ += "# HELP " + name + " " + escape_help(help) + "\n";
  out_ += "# TYPE " + name + " " + type + "\n";
}

void PromWriter::sample(const std::string& name, const Labels& labels,
                        double value) {
  out_ += name;
  if (!labels.empty()) {
    out_ += '{';
    bool first = true;
    for (const auto& [key, val] : labels) {
      if (!first) out_ += ',';
      first = false;
      out_ += key + "=\"" + escape_label_value(val) + "\"";
    }
    out_ += '}';
  }
  out_ += ' ';
  out_ += format_value(value);
  out_ += '\n';
}

void PromWriter::histogram_us(const std::string& name, const Labels& labels,
                              const LatencyHistogram::Snapshot& snapshot) {
  // Collapse the 4-per-octave internal buckets to octave boundaries: the
  // upper bound of internal bucket 4o+3 is exactly 2^(o+1) microseconds.
  std::uint64_t cumulative = 0;
  Labels bucket_labels = labels;
  bucket_labels.emplace_back("le", "");
  for (int octave = 0; octave < LatencyHistogram::kOctaves; ++octave) {
    for (int sub = 0; sub < LatencyHistogram::kSubBuckets; ++sub) {
      cumulative += snapshot.counts[static_cast<std::size_t>(
          octave * LatencyHistogram::kSubBuckets + sub)];
    }
    const double upper_s =
        LatencyHistogram::bucket_upper_bound_us(
            octave * LatencyHistogram::kSubBuckets +
            LatencyHistogram::kSubBuckets - 1) *
        1e-6;
    bucket_labels.back().second = format_value(upper_s);
    sample(name + "_bucket", bucket_labels,
           static_cast<double>(cumulative));
  }
  bucket_labels.back().second = "+Inf";
  sample(name + "_bucket", bucket_labels, static_cast<double>(cumulative));
  // _count must equal the +Inf bucket for the scrape to be internally
  // consistent, so it is the summed bucket count — not the histogram's
  // separate total counter, which may be mid-update under concurrent
  // record() calls.
  sample(name + "_sum", labels, snapshot.sum_us * 1e-6);
  sample(name + "_count", labels, static_cast<double>(cumulative));
}

// ---------------------------------------------------------------------------
// render_prometheus
// ---------------------------------------------------------------------------

std::string render_prometheus(const ServeStats& stats) {
  PromWriter w;

  w.family("slide_serve_submitted_total", "Requests admitted to the queue",
           "counter");
  w.sample("slide_serve_submitted_total", {},
           static_cast<double>(stats.submitted));

  w.family("slide_serve_rejected_total",
           "Requests rejected by backpressure at admission", "counter");
  w.sample("slide_serve_rejected_total", {},
           static_cast<double>(stats.rejected));

  w.family("slide_serve_completed_total",
           "Requests served to completion, by priority lane", "counter");
  for (int lane = 0; lane < kNumLanes; ++lane) {
    w.sample("slide_serve_completed_total",
             {{"lane", to_string(static_cast<Priority>(lane))}},
             static_cast<double>(stats.lanes[lane].completed));
  }

  w.family("slide_serve_errors_total",
           "Requests failed with an exception routed into the future",
           "counter");
  w.sample("slide_serve_errors_total", {},
           static_cast<double>(stats.errors));

  w.family("slide_serve_shed_total",
           "Requests shed by deadline/overload policy, by lane and reason",
           "counter");
  for (int lane = 0; lane < kNumLanes; ++lane) {
    const char* lane_name = to_string(static_cast<Priority>(lane));
    const ServeStats::LaneStats& ls = stats.lanes[lane];
    // All lane x reason combinations are always exported (zeros included)
    // so rate() never sees a series appear mid-query.
    w.sample("slide_serve_shed_total",
             {{"lane", lane_name}, {"reason", "admission"}},
             static_cast<double>(ls.shed_admission));
    w.sample("slide_serve_shed_total",
             {{"lane", lane_name}, {"reason", "evicted"}},
             static_cast<double>(ls.shed_evicted));
    w.sample("slide_serve_shed_total",
             {{"lane", lane_name}, {"reason", "expired"}},
             static_cast<double>(ls.shed_expired));
  }

  w.family("slide_serve_deadline_miss_total",
           "Requests served to completion but past their deadline, by lane",
           "counter");
  for (int lane = 0; lane < kNumLanes; ++lane) {
    w.sample("slide_serve_deadline_miss_total",
             {{"lane", to_string(static_cast<Priority>(lane))}},
             static_cast<double>(stats.lanes[lane].deadline_misses));
  }

  w.family("slide_serve_queue_depth",
           "Requests currently queued, by priority lane", "gauge");
  for (int lane = 0; lane < kNumLanes; ++lane) {
    w.sample("slide_serve_queue_depth",
             {{"lane", to_string(static_cast<Priority>(lane))}},
             static_cast<double>(stats.lanes[lane].queue_depth));
  }

  w.family("slide_serve_batches_total", "Micro-batches dispatched",
           "counter");
  w.sample("slide_serve_batches_total", {},
           static_cast<double>(stats.batches));

  w.family("slide_serve_mean_batch_size",
           "Mean requests per dispatched micro-batch", "gauge");
  w.sample("slide_serve_mean_batch_size", {}, stats.mean_batch_size);

  w.family("slide_serve_snapshot_version",
           "Version of the currently published model snapshot", "gauge");
  w.sample("slide_serve_snapshot_version", {},
           static_cast<double>(stats.snapshot_version));

  w.family("slide_serve_swaps_observed_total",
           "Model hot-swaps observed by serving workers", "counter");
  w.sample("slide_serve_swaps_observed_total", {},
           static_cast<double>(stats.swaps_observed));

  w.family("slide_serve_ewma_service_seconds",
           "EWMA of per-request service time feeding deadline admission "
           "control",
           "gauge");
  w.sample("slide_serve_ewma_service_seconds", {},
           stats.ewma_service_us * 1e-6);

  w.family("slide_serve_latency_seconds",
           "End-to-end request latency (submit to completion), by lane",
           "histogram");
  for (int lane = 0; lane < kNumLanes; ++lane) {
    w.histogram_us("slide_serve_latency_seconds",
                   {{"lane", to_string(static_cast<Priority>(lane))}},
                   stats.lanes[lane].buckets);
  }

  if (stats.distributed) {
    w.family("slide_dist_wire_bytes_total",
             "Bytes moved on the distributed shard wire, by direction",
             "counter");
    w.sample("slide_dist_wire_bytes_total", {{"direction", "sent"}},
             static_cast<double>(stats.wire_bytes_sent));
    w.sample("slide_dist_wire_bytes_total", {{"direction", "received"}},
             static_cast<double>(stats.wire_bytes_received));
    w.family("slide_dist_unhealthy_shards",
             "Shards currently skipped in degraded mode", "gauge");
    w.sample("slide_dist_unhealthy_shards", {},
             static_cast<double>(stats.unhealthy_shards));
  }

  // Memory accounting of the served snapshot. Always exported: the
  // retriever component in particular (HNSW graph, LSH buckets) was the
  // historic blind spot of footprint reports.
  w.family("slide_memory_bytes",
           "Resident bytes of the served model, by component", "gauge");
  w.sample("slide_memory_bytes", {{"component", "master_weights"}},
           static_cast<double>(stats.memory.master_weight_bytes));
  w.sample("slide_memory_bytes", {{"component", "mirrors"}},
           static_cast<double>(stats.memory.mirror_bytes));
  w.sample("slide_memory_bytes", {{"component", "optimizer"}},
           static_cast<double>(stats.memory.optimizer_bytes));
  w.sample("slide_memory_bytes", {{"component", "retriever"}},
           static_cast<double>(stats.memory.retriever_bytes));
  w.sample("slide_memory_bytes", {{"component", "inference_weights"}},
           static_cast<double>(stats.memory.inference_weight_bytes));
  w.family("slide_memory_mirror_hugepage_bytes",
           "Quantized-mirror bytes backed by transparent hugepages",
           "gauge");
  w.sample("slide_memory_mirror_hugepage_bytes", {},
           static_cast<double>(stats.memory.mirror_hugepage_bytes));

  if (stats.online_updates) {
    w.family("slide_online_updates_total",
             "Online update() calls absorbed by the fp32 master", "counter");
    w.sample("slide_online_updates_total", {},
             static_cast<double>(stats.online_update_calls));
    w.family("slide_online_publishes_total",
             "Snapshots republished by the online-update cadence",
             "counter");
    w.sample("slide_online_publishes_total", {},
             static_cast<double>(stats.online_publishes));
    w.family("slide_online_labels_total",
             "Output labels changed online, by kind", "counter");
    w.sample("slide_online_labels_total", {{"kind", "added"}},
             static_cast<double>(stats.labels_added));
    w.sample("slide_online_labels_total", {{"kind", "retired"}},
             static_cast<double>(stats.labels_retired));
  }

  if (stats.snapshot_appended_labels > 0 ||
      stats.snapshot_retired_labels > 0) {
    w.family("slide_snapshot_appended_labels",
             "Output units appended since construction in the served "
             "snapshot",
             "gauge");
    w.sample("slide_snapshot_appended_labels", {},
             static_cast<double>(stats.snapshot_appended_labels));
    w.family("slide_snapshot_retired_labels",
             "Output units currently tombstoned in the served snapshot",
             "gauge");
    w.sample("slide_snapshot_retired_labels", {},
             static_cast<double>(stats.snapshot_retired_labels));
  }

  if (stats.adaptive_retrieval) {
    w.family("slide_retrieval_escalations_total",
             "Queries escalated to exact scoring below the recall floor",
             "counter");
    w.sample("slide_retrieval_escalations_total", {},
             static_cast<double>(stats.retrieval_escalations));
    w.family("slide_retrieval_recall",
             "Measured recall@10 of sampled retrieval on escalated queries",
             "gauge");
    w.sample("slide_retrieval_recall", {}, stats.retrieval_recall);
  }

  return w.str();
}

// ---------------------------------------------------------------------------
// MetricsServer
// ---------------------------------------------------------------------------

class MetricsServerImpl {
 public:
  explicit MetricsServerImpl(int port) : listener_("", port) {}

  dist::TcpListener listener_;
  std::atomic<bool> stopping_{false};
};

MetricsServer::MetricsServer(int port, std::function<std::string()> renderer)
    : renderer_(std::move(renderer)),
      impl_(std::make_unique<MetricsServerImpl>(port)) {
  SLIDE_CHECK(renderer_ != nullptr, "MetricsServer: renderer must be set");
  port_ = impl_->listener_.port();
  thread_ = std::thread([this] { serve_loop(); });
}

MetricsServer::~MetricsServer() { stop(); }

void MetricsServer::stop() {
  if (impl_->stopping_.exchange(true)) return;
  impl_->listener_.close();  // unblocks a concurrent accept
  if (thread_.joinable()) thread_.join();
}

void MetricsServer::serve_loop() {
  while (!impl_->stopping_.load(std::memory_order_relaxed)) {
    std::unique_ptr<dist::Transport> conn;
    try {
      conn = impl_->listener_.accept(/*timeout_ms=*/250);
    } catch (const dist::TransportTimeout&) {
      continue;  // periodic stop check
    } catch (const dist::TransportClosed&) {
      return;  // stop() closed the listener
    } catch (const dist::TransportError&) {
      continue;  // transient accept failure; keep serving
    }
    auto* tcp = dynamic_cast<dist::TcpTransport*>(conn.get());
    if (tcp == nullptr) continue;
    try {
      // Read until the end of the request head. The request line and
      // headers are ignored — every path serves the same scrape body.
      std::string head;
      char buf[1024];
      while (head.find("\r\n\r\n") == std::string::npos &&
             head.size() < 16 * 1024) {
        const std::size_t n = tcp->recv_raw(buf, sizeof(buf), 2000);
        head.append(buf, n);
      }
      const std::string body = renderer_();
      std::string response =
          "HTTP/1.0 200 OK\r\n"
          "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
          "Content-Length: " + std::to_string(body.size()) + "\r\n"
          "Connection: close\r\n"
          "\r\n";
      response += body;
      tcp->send_raw(response.data(), response.size());
    } catch (const dist::TransportError&) {
      // Slow, closed, or misbehaving client: drop the connection and keep
      // the scrape endpoint alive.
    } catch (const Error&) {
      // Renderer failure must not kill the listener thread.
    }
  }
}

}  // namespace slide
