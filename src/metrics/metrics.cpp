#include "metrics/metrics.h"

#include <algorithm>
#include <atomic>

namespace slide {

namespace {

bool hits_top1(Index predicted, const std::vector<Index>& labels) {
  return std::find(labels.begin(), labels.end(), predicted) != labels.end();
}

std::size_t eval_count(const Dataset& data, const EvalOptions& options) {
  return options.max_samples == 0
             ? data.size()
             : std::min(options.max_samples, data.size());
}

}  // namespace

double evaluate_p_at_1(const Network& network, const Dataset& data,
                       ThreadPool& pool, const EvalOptions& options) {
  const std::size_t n = eval_count(data, options);
  if (n == 0) return 0.0;
  std::atomic<std::size_t> hits{0};
  pool.parallel_range(n, [&](std::size_t begin, std::size_t end, int tid) {
    InferenceContext ctx(std::max<Index>(network.max_sampled_units(), 1),
                         options.seed + static_cast<std::uint64_t>(tid));
    std::size_t local = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const Sample& sample = data[i];
      const Index pred = network.predict_top1(sample.features, ctx,
                                              options.exact);
      if (hits_top1(pred, sample.labels)) ++local;
    }
    hits.fetch_add(local, std::memory_order_relaxed);
  });
  return static_cast<double>(hits.load()) / static_cast<double>(n);
}

double evaluate_p_at_k(const Network& network, const Dataset& data,
                       ThreadPool& pool, int k, const EvalOptions& options) {
  SLIDE_CHECK(k >= 1, "evaluate_p_at_k: k must be >= 1");
  const std::size_t n = eval_count(data, options);
  if (n == 0) return 0.0;
  std::atomic<double> hits{0.0};
  pool.parallel_range(n, [&](std::size_t begin, std::size_t end, int tid) {
    InferenceContext ctx(std::max<Index>(network.max_sampled_units(), 1),
                         options.seed + static_cast<std::uint64_t>(tid));
    double local = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const Sample& sample = data[i];
      const auto top =
          network.predict_topk(sample.features, ctx, k, options.exact);
      int overlap = 0;
      for (Index p : top) overlap += hits_top1(p, sample.labels) ? 1 : 0;
      local += static_cast<double>(overlap) / k;
    }
    double expected = hits.load(std::memory_order_relaxed);
    while (!hits.compare_exchange_weak(expected, expected + local,
                                       std::memory_order_relaxed)) {
    }
  });
  return hits.load() / static_cast<double>(n);
}

double evaluate_p_at_k(const DenseNetwork& network, const Dataset& data,
                       ThreadPool& pool, int k, const EvalOptions& options) {
  SLIDE_CHECK(k >= 1, "evaluate_p_at_k: k must be >= 1");
  const std::size_t n = eval_count(data, options);
  if (n == 0) return 0.0;
  std::atomic<double> hits{0.0};
  pool.parallel_range(n, [&](std::size_t begin, std::size_t end, int) {
    std::vector<float> scratch;
    double local = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const Sample& sample = data[i];
      const auto top = network.predict_topk(sample.features, scratch, k);
      int overlap = 0;
      for (Index p : top) overlap += hits_top1(p, sample.labels) ? 1 : 0;
      local += static_cast<double>(overlap) / k;
    }
    double expected = hits.load(std::memory_order_relaxed);
    while (!hits.compare_exchange_weak(expected, expected + local,
                                       std::memory_order_relaxed)) {
    }
  });
  return hits.load() / static_cast<double>(n);
}

double evaluate_p_at_1(const DenseNetwork& network, const Dataset& data,
                       ThreadPool& pool, const EvalOptions& options) {
  const std::size_t n = eval_count(data, options);
  if (n == 0) return 0.0;
  std::atomic<std::size_t> hits{0};
  pool.parallel_range(n, [&](std::size_t begin, std::size_t end, int) {
    std::vector<float> scratch;
    std::size_t local = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const Sample& sample = data[i];
      const Index pred = network.predict_top1(sample.features, scratch);
      if (hits_top1(pred, sample.labels)) ++local;
    }
    hits.fetch_add(local, std::memory_order_relaxed);
  });
  return static_cast<double>(hits.load()) / static_cast<double>(n);
}

double recall_at_k(std::span<const Index> retrieved,
                   std::span<const Index> exact_topk) {
  if (exact_topk.empty()) return 1.0;
  // Count distinct oracle ids covered (duplicates in either span count
  // once); sorted copies keep this O(n log n) with no hashing.
  std::vector<Index> oracle(exact_topk.begin(), exact_topk.end());
  std::sort(oracle.begin(), oracle.end());
  oracle.erase(std::unique(oracle.begin(), oracle.end()), oracle.end());
  std::vector<Index> got(retrieved.begin(), retrieved.end());
  std::sort(got.begin(), got.end());
  std::size_t overlap = 0;
  std::size_t j = 0;
  for (Index id : oracle) {
    while (j < got.size() && got[j] < id) ++j;
    if (j < got.size() && got[j] == id) ++overlap;
  }
  return static_cast<double>(overlap) / static_cast<double>(oracle.size());
}

}  // namespace slide
