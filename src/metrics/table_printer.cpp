#include "metrics/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "sys/common.h"

namespace slide {

MarkdownTable::MarkdownTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SLIDE_CHECK(!headers_.empty(), "MarkdownTable: no headers");
}

void MarkdownTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string MarkdownTable::str() const {
  // Column widths for aligned plain-text rendering.
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      os << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  emit(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(width[c] + 1, '-') << ":|";
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void MarkdownTable::print(std::ostream& out) const { out << str(); }

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

std::string fmt_int(long long value) { return std::to_string(value); }

}  // namespace slide
