// Thread-safe latency histogram for the serving path.
//
// Geometric buckets (4 per factor-of-two octave) over microseconds give
// <~19% relative error on any reported percentile while keeping record()
// a single relaxed atomic increment — cheap enough to sit on the
// per-request hot path of the inference engine. Percentiles interpolate
// inside the winning bucket, and exact min/max are tracked separately so
// the tails never read outside the observed range.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace slide {

class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one latency observation, in microseconds. Thread-safe.
  void record(double us) noexcept;

  std::uint64_t count() const noexcept;
  double mean_us() const noexcept;
  double min_us() const noexcept;  // 0 when empty
  double max_us() const noexcept;  // 0 when empty

  /// Approximate quantile (q in [0, 1]); 0 when empty. Thread-safe with
  /// respect to concurrent record() calls (the answer reflects some
  /// near-current state of the histogram).
  double percentile(double q) const;

  void reset() noexcept;

  /// One consistent read of the usual report row.
  struct Summary {
    std::uint64_t count = 0;
    double mean_us = 0.0;
    double min_us = 0.0;
    double max_us = 0.0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
  };
  Summary summary() const;

  // 4 sub-buckets per octave covering [1us, ~2^30us ≈ 18min); everything
  // below/above clamps into the first/last bucket.
  static constexpr int kSubBuckets = 4;
  static constexpr int kOctaves = 30;
  static constexpr int kNumBuckets = kSubBuckets * kOctaves;

  /// One near-consistent read of every bucket, for exporters that need the
  /// full distribution (the Prometheus renderer). `count` and `sum_us` are
  /// read alongside the buckets but not atomically with them; exporters
  /// that need internal consistency (Prometheus histogram `_count` must
  /// equal the +Inf bucket) should re-derive the count by summing
  /// `counts`.
  struct Snapshot {
    std::array<std::uint64_t, kNumBuckets> counts{};
    std::uint64_t count = 0;
    double sum_us = 0.0;
  };
  Snapshot snapshot() const;

  /// Exclusive upper bound of `bucket`, in microseconds. Exposed so
  /// exporters can emit the bucket boundaries without duplicating the
  /// geometric layout.
  static double bucket_upper_bound_us(int bucket) noexcept;

 private:
  static int bucket_of(double us) noexcept;
  static double bucket_lower_us(int bucket) noexcept;
  static double bucket_upper_us(int bucket) noexcept;

  std::atomic<std::uint64_t> buckets_[kNumBuckets];
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_us_{0.0};
  std::atomic<double> min_us_{0.0};
  std::atomic<double> max_us_{0.0};
};

/// "p50 1.23ms" style helper: microseconds to a human unit string.
std::string fmt_latency_us(double us);

}  // namespace slide
