// SGD with classical momentum. Not used in the paper's headline runs (all
// use Adam) but provided for the optimizer ablation and as a simpler
// reference in tests.
#pragma once

#include <cstddef>

#include "sys/hugepages.h"

namespace slide {

struct SgdConfig {
  float momentum = 0.9f;
};

class Sgd {
 public:
  Sgd() = default;
  Sgd(const SgdConfig& config, std::size_t num_params);

  std::size_t num_params() const noexcept { return velocity_.size(); }

  /// No-op (kept API-compatible with Adam so layers can template over the
  /// optimizer if desired).
  void step_begin() {}

  /// v = momentum*v + g;  w -= lr*v  over [offset, offset+n).
  void update_span(float* w, const float* g, std::size_t offset,
                   std::size_t n, float lr);

  void update_at(float* w, float g, std::size_t offset, float lr);

  void reset();

 private:
  SgdConfig config_;
  HugeArray velocity_;
};

}  // namespace slide
