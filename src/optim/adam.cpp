#include "optim/adam.h"

#include <cmath>
#include <cstring>

#include "simd/kernels.h"

namespace slide {

Adam::Adam(const AdamConfig& config, std::size_t num_params)
    : config_(config), m_(num_params), v_(num_params) {
  // HugeArray zero-initializes (fresh kernel pages), so moments start at 0.
}

void Adam::step_begin() {
  ++t_;
  bias1_ = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  bias2_ = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));
}

void Adam::update_span(float* w, const float* g, std::size_t offset,
                       std::size_t n, float lr) {
  SLIDE_ASSERT(offset + n <= m_.size());
  simd::adam_step(w, m_.data() + offset, v_.data() + offset, g, n, lr,
                  config_.beta1, config_.beta2, config_.epsilon, bias1_,
                  bias2_);
}

void Adam::update_at(float* w, float g, std::size_t offset, float lr) {
  SLIDE_ASSERT(offset < m_.size());
  float& m = m_.data()[offset];
  float& v = v_.data()[offset];
  m = config_.beta1 * m + (1.0f - config_.beta1) * g;
  v = config_.beta2 * v + (1.0f - config_.beta2) * g * g;
  const float mhat = m / bias1_;
  const float vhat = v / bias2_;
  *w -= lr * mhat / (std::sqrt(vhat) + config_.epsilon);
}

void Adam::grow(std::size_t old_weight_params, std::size_t new_weight_params,
                std::size_t old_bias_params, std::size_t new_bias_params) {
  SLIDE_CHECK(new_weight_params >= old_weight_params &&
                  new_bias_params >= old_bias_params,
              "Adam::grow: parameter regions cannot shrink");
  SLIDE_CHECK(m_.size() == old_weight_params + old_bias_params,
              "Adam::grow: old layout does not match the state size");
  auto regrow = [&](HugeArray& arr) {
    HugeArray grown(new_weight_params + new_bias_params);
    std::memcpy(grown.data(), arr.data(),
                old_weight_params * sizeof(float));
    std::memcpy(grown.data() + new_weight_params,
                arr.data() + old_weight_params,
                old_bias_params * sizeof(float));
    arr = std::move(grown);
  };
  regrow(m_);
  regrow(v_);
}

void Adam::reset() {
  for (std::size_t i = 0; i < m_.size(); ++i) {
    m_.data()[i] = 0.0f;
    v_.data()[i] = 0.0f;
  }
  t_ = 0;
  bias1_ = 1.0f;
  bias2_ = 1.0f;
}

}  // namespace slide
