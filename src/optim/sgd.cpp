#include "optim/sgd.h"

#include "sys/common.h"

namespace slide {

Sgd::Sgd(const SgdConfig& config, std::size_t num_params)
    : config_(config), velocity_(num_params) {}

void Sgd::update_span(float* w, const float* g, std::size_t offset,
                      std::size_t n, float lr) {
  SLIDE_ASSERT(offset + n <= velocity_.size());
  float* v = velocity_.data() + offset;
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = config_.momentum * v[i] + g[i];
    w[i] -= lr * v[i];
  }
}

void Sgd::update_at(float* w, float g, std::size_t offset, float lr) {
  SLIDE_ASSERT(offset < velocity_.size());
  float& v = velocity_.data()[offset];
  v = config_.momentum * v + g;
  *w -= lr * v;
}

void Sgd::reset() {
  for (std::size_t i = 0; i < velocity_.size(); ++i) velocity_.data()[i] = 0.0f;
}

}  // namespace slide
