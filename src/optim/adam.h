// Adam optimizer state (Kingma & Ba 2014) — the optimizer used by all
// trainers in the paper's experiments.
//
// The state owns the first/second moment arrays for a fixed parameter count
// and supports both dense whole-array steps (baselines) and *lazy* sparse
// steps over arbitrary sub-spans (SLIDE): moments of untouched weights are
// left to decay only when next touched, matching the s² sparse-update cost
// model of paper §3.1. Bias correction uses the global step count.
//
// Thread-safety: update_span / update_at on disjoint parameter ranges may
// run concurrently; step_begin() must be externally ordered (the trainer
// calls it once per batch before fanning out).
#pragma once

#include <cstddef>

#include "sys/hugepages.h"

namespace slide {

struct AdamConfig {
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
};

class Adam {
 public:
  Adam() = default;
  Adam(const AdamConfig& config, std::size_t num_params);

  std::size_t num_params() const noexcept { return m_.size(); }
  long step() const noexcept { return t_; }

  /// Advances the step counter and refreshes the bias corrections. Call
  /// once per optimizer step before any update_* call of that step.
  void step_begin();

  /// Dense/lazy step over params [offset, offset+n): reads grads g[0..n),
  /// updates moments in place and applies the step to w[0..n).
  void update_span(float* w, const float* g, std::size_t offset,
                   std::size_t n, float lr);

  /// Single-parameter lazy step (scattered updates, e.g. embedding columns
  /// under a row-major layout).
  void update_at(float* w, float g, std::size_t offset, float lr);

  /// Clears moments and the step counter.
  void reset();

  /// Grows the state for a layer that appended output rows under the
  /// [weights | bias] parameter layout: the weight region keeps its moments
  /// and extends from old_weight_params to new_weight_params (new entries
  /// zero — appended rows start with fresh moments), and the bias moments
  /// relocate from base offset old_weight_params to new_weight_params,
  /// likewise zero-extended. Step count and bias corrections carry over, so
  /// surviving parameters step exactly as if nothing grew.
  void grow(std::size_t old_weight_params, std::size_t new_weight_params,
            std::size_t old_bias_params, std::size_t new_bias_params);

  const AdamConfig& config() const noexcept { return config_; }

 private:
  AdamConfig config_;
  HugeArray m_;
  HugeArray v_;
  long t_ = 0;
  float bias1_ = 1.0f;  // 1 - beta1^t
  float bias2_ = 1.0f;  // 1 - beta2^t
};

}  // namespace slide
