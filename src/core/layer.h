// The layer stack of the engine.
//
// The paper's core observation is that adaptive sparsity is a *per-layer
// policy*, not a fixed topology: any layer past the input-facing one can
// run dense, LSH-sampled, or statically sampled. The stack is therefore
// polymorphic:
//
//   Layer (abstract)        — forward/backward/apply_updates/rebuild/
//                             serialize hooks; what Network, Trainer and
//                             core/serialize program against.
//   ├── SampledLayer        — the workhorse: neuron-major weights
//   │   │                     ([units x fan_in]), per-slot active sets,
//   │   │                     HOGWILD gradient accumulators, and (when
//   │   │                     hashed) LSH tables over its neurons — the s²
//   │   │                     cost model of paper §3.1.
//   │   ├── DenseLayer      — every unit active on every input (the honest
//   │   │                     dense baseline and ReLU mid-stack layers).
//   │   └── RandomSampledLayer — labels + static uniform classes (the
//   │                         Sampled Softmax baseline of paper §5.1).
//   EmbeddingLayer          — the input adapter, NOT part of the stack: it
//                             consumes the SparseVector input with weights
//                             stored *input-major* ([input_dim x units]) so
//                             forward and gradient accumulation touch one
//                             contiguous units-length row per input nonzero.
//
// All layers keep per-batch-slot activation/error arrays (the paper's
// per-neuron batch arrays, stored struct-of-arrays) so every training
// instance in a batch runs on its own thread without synchronization, and
// accumulate gradients HOGWILD-style into shared per-weight accumulators.
#pragma once

#include <atomic>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <span>
#include <vector>

#include "core/activation.h"
#include "core/config.h"
#include "data/sparse_vector.h"
#include "lsh/table_group.h"
#include "optim/adam.h"
#include "simd/bf16.h"
#include "simd/f16.h"
#include "simd/int8.h"
#include "sys/aligned.h"
#include "sys/hugepages.h"
#include "sys/rng.h"
#include "sys/thread_pool.h"

namespace slide {

/// Per-(layer, batch-slot) state: the ids of active neurons with their
/// activations and error accumulators, positionally aligned. An empty `ids`
/// means "dense": all `dense_width` units are active and act/err are
/// indexed by unit id.
struct ActiveSet {
  std::vector<Index> ids;
  AlignedVector<float> act;
  AlignedVector<float> err;
  Index dense_width = 0;

  bool dense() const noexcept { return ids.empty(); }
  std::size_t size() const noexcept {
    return dense() ? dense_width : ids.size();
  }
};

// ---------------------------------------------------------------------------

/// Concrete type of a stack layer (diagnostics, checkpoint tooling).
enum class LayerKind {
  kDense,
  kSampled,
  kRandomSampled,
  kSharded,
  kDistributed,
};

const char* to_string(LayerKind kind);

/// Reusable scratch for the top-k inference hook (owned by
/// InferenceContext). Every vector keeps its capacity across calls, so
/// steady-state top-k queries allocate nothing — this is where the sharded
/// layer's k-way heap merge lives (see Layer::forward_inference_topk).
struct TopKScratch {
  std::vector<Index> ids;    // candidate ids (per-shard run for sharded)
  std::vector<float> act;    // candidate activations
  std::vector<std::size_t> order;  // ranking permutation (default path)
  /// Bounded selection heap: (score, position<<32 | global id). Position
  /// packs above the id so ties resolve toward the earlier candidate with
  /// a single integer compare.
  std::vector<std::pair<float, std::uint64_t>> heap;

  void clear() {
    ids.clear();
    act.clear();
    order.clear();
    heap.clear();
  }
};

/// Per-layer memory accounting (drives Network::memory_footprint and the
/// serve-side footprint report).
struct LayerMemory {
  std::size_t master_bytes = 0;     ///< fp32 weights + biases
  std::size_t mirror_bytes = 0;     ///< quantized inference mirror (0 at fp32)
  std::size_t optimizer_bytes = 0;  ///< gradient accumulators + Adam moments
  /// Candidate-retrieval index (LSH buckets / HNSW graph; 0 for layers
  /// without a retriever). Reported separately because the HNSW graph in
  /// particular is a whole-model-sized structure the weight arrays above
  /// do not account for.
  std::size_t retriever_bytes = 0;
  /// Mirror bytes whose backing pages the kernel accepted THP advice for
  /// (<= mirror_bytes; 0 when THP is unavailable or disabled). Observability
  /// for the hugepage-backed mirror adoption — Table 4 of the paper.
  std::size_t mirror_hugepage_bytes = 0;
};

/// Cumulative adaptive-retrieval diagnostics of one layer (see
/// SamplingConfig::escalation_floor). Only meaningful when the policy is
/// on (`adaptive`); every escalated query contributes its candidate set's
/// overlap with the exact top-k oracle, so recall() is the measured
/// retrieval recall over escalated queries. Surfaced per-snapshot in
/// ServeStats.
struct RetrievalStats {
  bool adaptive = false;  ///< escalation_floor > 0 on some hashed layer
  long escalations = 0;   ///< inference queries escalated to an exact scan
  long overlap = 0;       ///< sum of |candidates ∩ exact top-k|
  long oracle = 0;        ///< sum of |exact top-k|

  double recall() const noexcept {
    return oracle > 0 ? static_cast<double>(overlap) /
                            static_cast<double>(oracle)
                      : 0.0;
  }
};

/// Abstract interface of one stack layer (everything after the input-facing
/// EmbeddingLayer). Network, Trainer, and core/serialize drive the stack
/// exclusively through this interface, so dense, LSH-sampled, and
/// random-sampled layers mix freely at any depth.
class Layer {
 public:
  virtual ~Layer() = default;

  // ---- Identity ----
  virtual LayerKind kind() const noexcept = 0;
  virtual Index units() const noexcept = 0;
  virtual Index fan_in() const noexcept = 0;
  virtual Activation activation() const noexcept = 0;

  // ---- Training hooks ----
  /// Selects the slot's active set (policy-specific) and computes
  /// activations from the previous layer's active set. `forced` ids (true
  /// labels on the output layer) come first in the active set.
  virtual void forward(int slot, const ActiveSet& prev,
                       std::span<const Index> forced, Rng& rng,
                       VisitedSet& visited, int tid) = 0;
  /// Softmax + cross-entropy deltas over the slot's active neurons.
  virtual float compute_softmax_ce_deltas(int slot,
                                          std::span<const Index> labels,
                                          float inv_batch) = 0;
  /// Hidden-layer path: err *= ReLU'(act), in place.
  virtual void compute_relu_deltas(int slot) = 0;
  /// Propagates err to prev.err and accumulates gradients (HOGWILD).
  virtual void backward(int slot, ActiveSet& prev, int tid) = 0;
  /// Applies lazy Adam to touched units. Single caller at a time.
  virtual void apply_updates(float lr, ThreadPool* pool) = 0;

  // ---- LSH lifecycle (no-ops for layers without tables) ----
  virtual bool maybe_rebuild(long iteration, ThreadPool* pool) = 0;
  virtual void rebuild_tables(ThreadPool* pool) = 0;
  /// Blocks until the layer's background maintenance (async table rebuilds,
  /// delta re-inserts) is idle. No-op for layers without async maintenance.
  /// Logically const: waiting mutates nothing the caller can observe.
  virtual void quiesce_maintenance() const {}
  /// Drains outstanding maintenance debt and waits for it: any queued
  /// dirty neurons are re-inserted even if no schedule event is due. Call
  /// after training before relying on table freshness (evaluation,
  /// serialization of a "settled" model). No-op without async maintenance.
  virtual void flush_maintenance() {}

  // ---- Inference hooks ----
  /// Single-sample inference forward into caller buffers. `exact` scores
  /// all units regardless of the layer's sampling policy.
  virtual void forward_inference(std::span<const Index> prev_ids,
                                 std::span<const float> prev_act, bool exact,
                                 Rng& rng, VisitedSet& visited,
                                 std::vector<Index>& ids_out,
                                 std::vector<float>& act_out) const = 0;

  /// Top-k inference: selects candidates exactly as forward_inference and
  /// writes the ids of the k highest-scoring ones into `out`, descending
  /// score, ties toward the earlier candidate position (the lower unit id
  /// in exact mode). Network::predict_topk calls this on the output layer.
  /// The default implementation scores through forward_inference and
  /// partial-sorts in the scratch; the sharded layer overrides it with a
  /// k-way heap merge over its per-shard candidate runs.
  virtual void forward_inference_topk(std::span<const Index> prev_ids,
                                      std::span<const float> prev_act, int k,
                                      bool exact, Rng& rng,
                                      VisitedSet& visited,
                                      TopKScratch& scratch,
                                      std::vector<Index>& out) const;

  // ---- Per-slot state ----
  virtual ActiveSet& slot(int s) = 0;
  virtual const ActiveSet& slot(int s) const = 0;

  // ---- Serialize hooks (checkpoint format: weights block + bias block) ----
  virtual std::span<float> weights_span() noexcept = 0;
  virtual std::span<const float> weights_span() const noexcept = 0;
  virtual std::span<float> bias_span() noexcept = 0;
  virtual std::span<const float> bias_span() const noexcept = 0;
  /// Called after an external writer (checkpoint load) rewrote the spans;
  /// derived state (hash memos, quantized mirrors) must be refreshed.
  virtual void on_weights_loaded() noexcept = 0;
  virtual std::size_t num_parameters() const noexcept = 0;

  // ---- Sharded serialize hooks (checkpoint format v3) ----
  // The logical parameter matrix of a layer is always the [units x fan_in]
  // neuron-major matrix plus a [units] bias vector; a sharded layer stores
  // it as contiguous row-range blocks. Monolithic layers are the
  // single-shard case: the defaults below make core/serialize's
  // per-shard-block reader/writer work for every layer, and let a
  // checkpoint written at one shard count load into a network using
  // another (resharding).
  /// Number of contiguous weight shards (1 for monolithic layers).
  virtual int num_shards() const noexcept { return 1; }
  /// First global neuron row owned by `shard`.
  virtual Index shard_row_offset(int /*shard*/) const noexcept { return 0; }
  /// Weight/bias blocks of one shard (shard 0 == the whole layer for
  /// monolithic layers).
  virtual std::span<float> shard_weights(int /*shard*/) noexcept {
    return weights_span();
  }
  virtual std::span<const float> shard_weights(int /*shard*/) const noexcept {
    return weights_span();
  }
  virtual std::span<float> shard_bias(int /*shard*/) noexcept {
    return bias_span();
  }
  virtual std::span<const float> shard_bias(int /*shard*/) const noexcept {
    return bias_span();
  }

  // ---- Quantized inference (bf16 weight mirrors) ----
  /// The precision the layer's *inference* scoring path reads weights at.
  /// Training always runs on the fp32 masters regardless.
  virtual Precision inference_precision() const noexcept {
    return Precision::kFP32;
  }
  /// Re-quantizes the inference mirror from the current master weights.
  /// No-op for fp32 layers. Mutates only the mirror — callers must hold
  /// the writer role (no concurrent readers), like any weight mutation.
  virtual void refresh_inference_mirror() noexcept {}
  /// Bytes of weight + bias data the inference scoring path reads (the
  /// mirror at bf16, the masters at fp32).
  virtual std::size_t inference_weight_bytes() const noexcept {
    return num_parameters() * sizeof(float);
  }
  /// Memory accounting for this layer (masters, mirror, optimizer state).
  virtual LayerMemory memory() const noexcept = 0;

  /// Serializes gradient accumulation behind a mutex (HOGWILD ablation).
  virtual void set_use_locks(bool locks) noexcept = 0;

  /// Average active fraction since the last reset (1.0 for dense layers).
  virtual double average_active_fraction() const = 0;

  /// Cumulative seconds spent in LSH sampling / activation math since the
  /// last timer reset (the Figure 6 / Table 2 instrumentation). Layers
  /// without phase timers report 0.
  virtual double sampling_seconds() const { return 0.0; }
  virtual double compute_seconds() const { return 0.0; }

  // ---- Dynamic label lifecycle (online growth / retirement) ----
  // The label universe of an extreme-classification service churns while
  // the model serves: new items appear (grow) and dead items must stop
  // being predicted (retire). Only retriever-backed (hashed) layers
  // support the lifecycle; the defaults refuse so dense baselines cannot
  // silently mis-grow.
  /// Appends `n` fresh output units (weights, bias, optimizer state,
  /// quantized mirrors, retrieval index). Returns the global id of the
  /// first appended unit. Caller holds the writer role — no concurrent
  /// forwards or table readers (Network::begin_write).
  virtual Index add_units(Index n) {
    (void)n;
    SLIDE_CHECK(false, "add_units: this layer kind does not support growth");
    return 0;
  }
  /// Tombstones `ids` out of retrieval, top-k, and softmax normalization
  /// WITHOUT compacting rows: surviving unit ids are stable, and a later
  /// add-style re-insert can resurrect a retired id. Writer role required.
  virtual void retire_units(std::span<const Index> ids) {
    (void)ids;
    SLIDE_CHECK(false,
                "retire_units: this layer kind does not support retirement");
  }
  /// Currently tombstoned unit count / ids (checkpoint v5, diagnostics).
  virtual Index retired_count() const noexcept { return 0; }
  virtual std::vector<Index> retired_unit_ids() const { return {}; }
  /// Units appended by add_units since construction (checkpoint v5 records
  /// this so a loader can re-grow a config-sized layer to the file's size).
  virtual Index appended_units() const noexcept { return 0; }

  // ---- Retrieval subsystem hooks (src/retrieval/) ----
  /// Candidate-generation backend of a hashed layer (kLsh for everything
  /// else — dense and random-sampled layers have no retriever).
  virtual retrieval::RetrieverKind retriever_kind() const noexcept {
    return retrieval::RetrieverKind::kLsh;
  }
  /// Adaptive-retrieval counters (see RetrievalStats); zeroes for layers
  /// without the policy.
  virtual RetrievalStats retrieval_stats() const { return {}; }
  /// Serializes the retriever's index state (checkpoint v4 aux block).
  /// Layers whose retriever has no serialized state write nothing.
  virtual void save_retriever_state(std::ostream& out) const { (void)out; }
  /// Restores an aux block written by save_retriever_state. `bytes` is the
  /// block length; implementations must consume exactly that many bytes or
  /// skip them. Returns true if the index is usable without a rebuild.
  virtual bool load_retriever_state(std::istream& in, std::uint64_t bytes) {
    in.ignore(static_cast<std::streamsize>(bytes));
    return false;
  }
};

// ---------------------------------------------------------------------------

class EmbeddingLayer {
 public:
  EmbeddingLayer(Index input_dim, Index units, float init_stddev,
                 int batch_slots, int max_threads, const AdamConfig& adam,
                 std::uint64_t seed,
                 Precision precision = Precision::kFP32);

  Index input_dim() const noexcept { return input_dim_; }
  Index units() const noexcept { return units_; }
  Precision inference_precision() const noexcept { return precision_; }

  /// Computes ReLU(W^T x + b) for the slot; zeroes the slot's error buffer.
  /// Always reads the fp32 master weights (training path).
  void forward(int slot, const SparseVector& x);

  /// Dense single-sample forward into a caller buffer (inference path).
  /// Scores through the bf16 mirror when the layer is quantized.
  void forward_inference(const SparseVector& x, float* out) const;

  /// Consumes the error accumulated in the slot by upper layers: applies
  /// ReLU', accumulates weight/bias gradients, marks touched columns.
  void backward(int slot, const SparseVector& x, int tid);

  /// Applies lazy Adam to all touched columns (+ the bias row) and clears
  /// gradients and touch marks. Single caller at a time.
  void apply_updates(float lr, ThreadPool* pool);

  ActiveSet& slot(int s) { return slots_[static_cast<std::size_t>(s)]; }
  const ActiveSet& slot(int s) const {
    return slots_[static_cast<std::size_t>(s)];
  }

  /// Serializes gradient accumulation behind a mutex (HOGWILD ablation).
  void set_use_locks(bool locks) noexcept { use_locks_ = locks; }

  float* weight_column(Index input_index) noexcept {
    return weights_.data() + static_cast<std::size_t>(input_index) * units_;
  }
  const float* weight_column(Index input_index) const noexcept {
    return weights_.data() + static_cast<std::size_t>(input_index) * units_;
  }
  /// Accumulated (pre-apply) gradient column — diagnostics/tests.
  const float* gradient_column(Index input_index) const noexcept {
    return grads_.data() + static_cast<std::size_t>(input_index) * units_;
  }
  float bias(Index unit) const noexcept { return bias_[unit]; }
  float bias_gradient(Index unit) const noexcept { return bias_grad_[unit]; }

  /// Whole-parameter views (serialization / checkpointing).
  std::span<float> weights_span() noexcept {
    return {weights_.data(), weights_.size()};
  }
  std::span<const float> weights_span() const noexcept {
    return {weights_.data(), weights_.size()};
  }
  std::span<float> bias_span() noexcept { return {bias_.data(), bias_.size()}; }
  std::span<const float> bias_span() const noexcept {
    return {bias_.data(), bias_.size()};
  }

  std::size_t num_parameters() const noexcept {
    return static_cast<std::size_t>(input_dim_) * units_ + units_;
  }

  /// Re-quantizes the bf16 mirror from the masters (no-op at fp32); see
  /// Layer::refresh_inference_mirror for the writer-role contract.
  void refresh_inference_mirror() noexcept;
  std::size_t inference_weight_bytes() const noexcept;
  LayerMemory memory() const noexcept;

 private:
  /// fp32 forward through the master weights (shared by training and the
  /// unquantized inference path).
  void forward_master(const SparseVector& x, float* out) const;

  bool bf16_inference() const noexcept {
    return precision_ == Precision::kBF16 && !weights_bf16_.empty();
  }
  bool f16_inference() const noexcept {
    return precision_ == Precision::kFP16 && !weights_f16_.empty();
  }
  bool i8_inference() const noexcept {
    return precision_ == Precision::kInt8 && !weights_i8_.empty();
  }

  Index input_dim_;
  Index units_;
  Precision precision_;

  HugeArray weights_;  // [input_dim x units], input-major
  HugeArray grads_;
  AlignedVector<float> bias_;
  AlignedVector<float> bias_grad_;
  // Quantized inference mirrors, same input-major layout as weights_; only
  // the one matching precision_ is ever allocated. Hugepage-backed: the
  // serving path streams these rows, the TLB-bound pattern of paper
  // Table 4. i8_scales_ holds the per-input-row symmetric scale.
  HugeArrayT<simd::Bf16> weights_bf16_;
  HugeArrayT<simd::Fp16> weights_f16_;
  HugeArrayT<simd::I8> weights_i8_;
  AlignedVector<float> i8_scales_;  // [input_dim]
  Adam adam_;  // layout: weights then bias

  std::vector<ActiveSet> slots_;

  std::unique_ptr<std::atomic<std::uint8_t>[]> column_touched_;
  std::vector<std::vector<Index>> touched_lists_;  // per thread
  std::vector<Index> apply_scratch_;  // merged touched list (apply_updates)
  bool use_locks_ = false;
  std::mutex accum_mutex_;
};

// ---------------------------------------------------------------------------

class SampledLayer : public Layer {
 public:
  struct Config {
    Index units = 0;
    Index fan_in = 0;
    Activation activation = Activation::kSoftmax;
    bool hashed = true;
    /// Static uniform sampling (Sampled Softmax baseline); see LayerSpec.
    bool random_sampled = false;
    HashFamilyConfig family;
    HashTable::Config table;
    SamplingConfig sampling;
    RebuildSchedule rebuild;
    /// Candidate-generation backend (see LayerSpec::retriever). kLsh is
    /// bit-identical to the pre-subsystem layer.
    retrieval::RetrieverKind retriever = retrieval::RetrieverKind::kLsh;
    retrieval::HnswConfig hnsw;
    MaintenancePolicy maintenance = MaintenancePolicy::kSync;
    bool fill_random_to_target = true;
    bool incremental_rehash = false;
    float init_stddev = 0.0f;  // 0 -> 2/sqrt(fan_in)
    AdamConfig adam;
    /// Inference-scoring precision (network-wide knob; see config.h).
    Precision precision = Precision::kFP32;
    std::uint64_t seed = 31;
  };

  SampledLayer(const Config& config, int batch_slots, int max_threads);

  LayerKind kind() const noexcept override {
    if (config_.hashed) return LayerKind::kSampled;
    return config_.random_sampled ? LayerKind::kRandomSampled
                                  : LayerKind::kDense;
  }
  Index units() const noexcept override { return units_; }
  Index fan_in() const noexcept override { return fan_in_; }
  bool hashed() const noexcept { return config_.hashed; }
  Activation activation() const noexcept override {
    return config_.activation;
  }
  const Config& config() const noexcept { return config_; }

  /// Selects the active set for the slot (forced ids first, then LSH
  /// sampling, then random fill) and computes activations from the previous
  /// layer's active set. Softmax layers defer normalization to
  /// compute_softmax_ce_deltas / the caller. Zeroes the slot's error buffer.
  /// `tid` indexes the per-thread phase timers.
  void forward(int slot, const ActiveSet& prev, std::span<const Index> forced,
               Rng& rng, VisitedSet& visited, int tid) override;

  /// Single-sample inference forward into caller buffers. When `exact` is
  /// set, scores *all* units (ids_out is filled with 0..units-1).
  void forward_inference(std::span<const Index> prev_ids,
                         std::span<const float> prev_act, bool exact,
                         Rng& rng, VisitedSet& visited,
                         std::vector<Index>& ids_out,
                         std::vector<float>& act_out) const override;

  /// forward_inference with a per-query candidate-budget override: when
  /// `budget_override` > 0 it caps the sampling target for this query (the
  /// distributed coordinator's per-shard split of a global budget);
  /// 0 falls back to config().sampling.inference_budget, then the target.
  /// Exact mode ignores the budget (all units are scored by request).
  void forward_inference_budgeted(std::span<const Index> prev_ids,
                                  std::span<const float> prev_act, bool exact,
                                  Rng& rng, VisitedSet& visited,
                                  Index budget_override,
                                  std::vector<Index>& ids_out,
                                  std::vector<float>& act_out) const;

  /// Softmax + cross-entropy over the slot's active neurons with the given
  /// true labels (which must be the first entries of the active set, i.e.
  /// the `forced` ids of forward()). Fills err with deltas scaled by
  /// inv_batch; returns the sample loss.
  float compute_softmax_ce_deltas(int slot, std::span<const Index> labels,
                                  float inv_batch) override;

  /// Hidden-layer path: err *= ReLU'(act), in place.
  void compute_relu_deltas(int slot) override;

  /// Propagates err to prev.err and accumulates weight/bias gradients for
  /// the slot's active neurons; marks them touched.
  void backward(int slot, ActiveSet& prev, int tid) override;

  /// Lazy Adam over touched neurons; keeps the Simhash memo in sync when
  /// incremental rehash is on. Single caller at a time.
  void apply_updates(float lr, ThreadPool* pool) override;

  /// Fires a maintenance event when the schedule (paper §4.2) is due;
  /// returns true if one fired. What the event does depends on
  /// config().maintenance: kSync rebuilds in place on the calling thread
  /// (the caller guarantees no concurrent table readers); the async
  /// policies schedule the work on the layer's background maintenance
  /// thread and return immediately — trainer threads keep sampling from
  /// the active table group throughout (see lsh/table_group.h).
  bool maybe_rebuild(long iteration, ThreadPool* pool) override;
  /// Synchronous full rebuild of the active group. Quiesces background
  /// maintenance first, so it is safe on any policy (checkpoint loads,
  /// rebuild_all). Caller guarantees no concurrent table readers.
  void rebuild_tables(ThreadPool* pool) override;
  /// Completed full rebuilds (sync + async; excludes the initial build).
  long rebuild_count() const noexcept {
    return rebuild_count_.load(std::memory_order_acquire);
  }

  /// Blocks until no background maintenance task is queued or running
  /// (rethrows the first task error, which should never happen).
  void quiesce_maintenance() const override;
  /// Schedules a final delta drain for any queued dirty neurons (bypassing
  /// the rebuild schedule) and waits for the worker to go idle.
  void flush_maintenance() override;

  // ---- Dynamic label lifecycle ----
  /// Appends `n` units: copy-grows the weight/grad arrays (HugeArray
  /// reallocation), zero-extends bias and optimizer moments (Adam::grow),
  /// re-quantizes the mirrors, and re-targets the retriever at the grown
  /// rows (resize_universe + insert per new id; backends without delta
  /// support escalate to a full rebuild). New rows draw from an Rng seeded
  /// by (layer seed, growth base), so the same growth sequence reproduces
  /// identical rows at any shard count. Writer role required.
  Index add_units(Index n) override;
  /// Tombstones `ids` in the retriever mask (the single source of truth the
  /// forward paths and checkpointing read back). Rows are not compacted.
  void retire_units(std::span<const Index> ids) override;
  Index retired_count() const noexcept override;
  std::vector<Index> retired_unit_ids() const override;
  Index appended_units() const noexcept override { return appended_units_; }

  MaintenancePolicy maintenance_policy() const noexcept {
    return config_.maintenance;
  }
  /// Neurons re-inserted by delta maintenance so far (diagnostics).
  long delta_reinserted() const noexcept {
    return delta_reinserted_.load(std::memory_order_acquire);
  }
  /// Dirty neurons currently queued for the next delta re-insert.
  std::size_t dirty_pending() const;

  ActiveSet& slot(int s) override {
    return slots_[static_cast<std::size_t>(s)];
  }
  const ActiveSet& slot(int s) const override {
    return slots_[static_cast<std::size_t>(s)];
  }

  void set_use_locks(bool locks) noexcept override { use_locks_ = locks; }

  float* weight_row(Index unit) noexcept {
    return weights_.data() + static_cast<std::size_t>(unit) * fan_in_;
  }
  const float* weight_row(Index unit) const noexcept {
    return weights_.data() + static_cast<std::size_t>(unit) * fan_in_;
  }
  /// Accumulated (pre-apply) gradient row — diagnostics/tests.
  const float* gradient_row(Index unit) const noexcept {
    return grads_.data() + static_cast<std::size_t>(unit) * fan_in_;
  }
  float bias(Index unit) const noexcept { return bias_[unit]; }
  float bias_gradient(Index unit) const noexcept { return bias_grad_[unit]; }

  /// Whole-parameter views (serialization / checkpointing).
  std::span<float> weights_span() noexcept override {
    return {weights_.data(), weights_.size()};
  }
  std::span<const float> weights_span() const noexcept override {
    return {weights_.data(), weights_.size()};
  }
  std::span<float> bias_span() noexcept override {
    return {bias_.data(), bias_.size()};
  }
  std::span<const float> bias_span() const noexcept override {
    return {bias_.data(), bias_.size()};
  }

  /// Marks the incremental-rehash memo stale (weights changed externally,
  /// e.g. by a checkpoint load); the next rebuild re-projects from weights.
  void invalidate_memo() noexcept { memo_initialized_ = false; }
  void on_weights_loaded() noexcept override {
    invalidate_memo();
    refresh_inference_mirror();
  }

  std::size_t num_parameters() const noexcept override {
    return static_cast<std::size_t>(units_) * fan_in_ + units_;
  }

  Precision inference_precision() const noexcept override {
    return config_.precision;
  }
  void refresh_inference_mirror() noexcept override;
  std::size_t inference_weight_bytes() const noexcept override;
  LayerMemory memory() const noexcept override;

  /// The layer's (double-buffered) tables; null for unhashed layers and
  /// for non-LSH retrievers. Query helpers and diagnostics delegate to the
  /// active group — see MaintainedTables for what is safe under concurrent
  /// maintenance.
  const MaintainedTables* tables() const noexcept { return tables_; }

  /// The layer's candidate retriever; null for unhashed layers.
  const retrieval::Retriever* retriever() const noexcept {
    return retriever_.get();
  }
  retrieval::RetrieverKind retriever_kind() const noexcept override {
    return config_.retriever;
  }
  RetrievalStats retrieval_stats() const override;
  void save_retriever_state(std::ostream& out) const override;
  bool load_retriever_state(std::istream& in, std::uint64_t bytes) override;

  /// Average active fraction over forwards since the last reset (diagnostic;
  /// the paper reports ~0.5% active neurons in the output layer).
  double average_active_fraction() const override;
  void reset_active_stats();

  /// Per-thread time spent in LSH sampling vs activation math since the
  /// last reset (drives the Figure 6 / Table 2 instrumentation).
  double sampling_seconds() const override;
  double compute_seconds() const override;
  void reset_phase_timers();

 private:
  void select_active(int slot, const ActiveSet& prev,
                     std::span<const Index> forced, Rng& rng,
                     VisitedSet& visited, int tid);
  void compute_activations(ActiveSet& set, const ActiveSet& prev) const;
  float activation_of(Index unit, std::span<const Index> prev_ids,
                      std::span<const float> prev_act) const;
  /// Mirror-reading twins of activation_of (quantized inference scoring).
  float activation_of_bf16(Index unit, std::span<const Index> prev_ids,
                           std::span<const float> prev_act) const;
  float activation_of_f16(Index unit, std::span<const Index> prev_ids,
                          std::span<const float> prev_act) const;
  /// Int8 scoring: against a dense prev the caller provides the u8-quantized
  /// activations (qx, one quantize_act_u8 per query) and their scale;
  /// against a sparse prev qx is unused (fp32 values x widened s8 weights).
  float activation_of_i8(Index unit, std::span<const Index> prev_ids,
                         std::span<const float> prev_act, const simd::U8* qx,
                         float act_scale) const;
  /// Scores `ids` against the previous active set into out[0..ids.size())
  /// through whichever precision tier is active, prefetching the candidate
  /// rows kPrefetchDistance ahead (the rows are LSH-sampled, i.e. scattered
  /// — exactly the access pattern the software prefetch pays for). Shared
  /// by forward_inference_budgeted and escalate_to_exact.
  void score_rows(std::span<const Index> ids, std::span<const Index> prev_ids,
                  std::span<const float> prev_act, float* out) const;
  /// Adaptive-policy escalation: scores every unit into act_out (ids_out
  /// becomes 0..units-1), and records the escaped query's candidate recall
  /// against the exact top-k (the candidates are the ids stamped in
  /// `visited`). See SamplingConfig::escalation_floor.
  void escalate_to_exact(std::span<const Index> prev_ids,
                         std::span<const float> prev_act,
                         const VisitedSet& visited,
                         std::vector<Index>& ids_out,
                         std::vector<float>& act_out) const;
  bool bf16_inference() const noexcept {
    return config_.precision == Precision::kBF16 && !weights_bf16_.empty();
  }
  bool f16_inference() const noexcept {
    return config_.precision == Precision::kFP16 && !weights_f16_.empty();
  }
  bool i8_inference() const noexcept {
    return config_.precision == Precision::kInt8 && !weights_i8_.empty();
  }
  /// Row base pointer of whichever storage the inference path reads —
  /// feeds the candidate-row software prefetch in the scoring loop.
  const void* inference_row(Index unit) const noexcept {
    const std::size_t off = static_cast<std::size_t>(unit) * fan_in_;
    if (i8_inference()) return weights_i8_.data() + off;
    if (f16_inference()) return weights_f16_.data() + off;
    if (bf16_inference()) return weights_bf16_.data() + off;
    return weights_.data() + off;
  }

  /// Clears `group` and re-hashes every neuron into it (memoized Simhash
  /// projections when incremental rehash is on). Shared by the sync
  /// in-place path and the async shadow-build path.
  void build_group(LshTableGroup& group, ThreadPool* pool);
  /// Enqueues an async full rebuild (shadow build + publish) unless one is
  /// already pending.
  void schedule_full_rebuild();
  /// Enqueues an async delta re-insert unless one is already pending.
  void schedule_delta_reinsert();
  /// Atomically takes the queued dirty units into `ids` and re-arms their
  /// flags so later updates re-queue them.
  void drain_dirty(std::vector<Index>& ids);
  /// Worker-thread body: drains the dirty queue and re-inserts those
  /// neurons into the live active group under their current keys.
  void run_delta_reinsert();

  Config config_;
  Index units_;
  Index fan_in_;

  HugeArray weights_;  // [units x fan_in], neuron-major
  HugeArray grads_;
  AlignedVector<float> bias_;
  AlignedVector<float> bias_grad_;
  // Quantized inference mirrors, same neuron-major layout as weights_;
  // only the one matching config_.precision is ever allocated (hugepage-
  // backed — see EmbeddingLayer). i8_scales_ is the per-neuron-row scale.
  HugeArrayT<simd::Bf16> weights_bf16_;
  HugeArrayT<simd::Fp16> weights_f16_;
  HugeArrayT<simd::I8> weights_i8_;
  AlignedVector<float> i8_scales_;  // [units]
  Adam adam_;  // layout: weights then bias

  std::vector<ActiveSet> slots_;

  /// Candidate generation (src/retrieval/): owns the index. For kLsh,
  /// `tables_` aliases the LshRetriever's MaintainedTables so the memoized
  /// rebuild / delta-reinsert machinery below drives them directly; for the
  /// other backends `tables_` is null and maintenance dispatches through
  /// the Retriever interface.
  std::unique_ptr<retrieval::Retriever> retriever_;
  MaintainedTables* tables_ = nullptr;
  const Simhash* simhash_ = nullptr;  // set when family is Simhash
  HugeArray projection_memo_;         // [units x K*L] when incremental

  std::unique_ptr<std::atomic<std::uint8_t>[]> touched_;
  std::vector<std::vector<Index>> touched_lists_;
  std::vector<Index> apply_scratch_;  // merged touched list (apply_updates)
  bool use_locks_ = false;
  std::mutex accum_mutex_;

  // Rebuild schedule state (single maintenance-driving thread: the
  // trainer's maybe_rebuild caller).
  long next_rebuild_ = 0;
  long schedule_events_ = 0;  // maintenance events fired (drives the decay)
  std::atomic<long> rebuild_count_{0};
  std::atomic<bool> memo_initialized_{false};

  // Async maintenance state. The dirty queue collects the DISTINCT units
  // touched by apply_updates since the last drain (async_delta only): the
  // per-unit flag keeps a unit queued at most once, so the escalation
  // check in maybe_rebuild compares true dirty coverage, not a
  // duplicate-inflated count.
  mutable std::mutex dirty_mutex_;
  std::vector<Index> dirty_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> dirty_flag_;
  std::atomic<long> delta_reinserted_{0};
  std::atomic<bool> full_pending_{false};
  std::atomic<bool> delta_pending_{false};

  // Diagnostics.
  std::atomic<std::uint64_t> active_sum_{0};
  std::atomic<std::uint64_t> active_events_{0};
  // Adaptive-retrieval counters (escalation_floor > 0 only); mutable:
  // bumped on the const inference path.
  mutable std::atomic<long> escalations_{0};
  mutable std::atomic<long> escalation_overlap_{0};
  mutable std::atomic<long> escalation_oracle_{0};
  struct alignas(kCacheLineSize) PaddedDouble {
    std::atomic<double> value{0.0};
  };
  std::vector<PaddedDouble> sampling_time_;
  std::vector<PaddedDouble> compute_time_;

  std::uint64_t seed_;
  /// Units appended by add_units since construction (checkpoint v5).
  Index appended_units_ = 0;

  // Declared last: its destructor joins the maintenance thread before any
  // state that thread touches (weights, tables, memo) is torn down.
  std::unique_ptr<BackgroundWorker> worker_;
};

// ---------------------------------------------------------------------------

/// A fully dense stack layer: every unit computes on every input. This is
/// the honest baseline path (full softmax when it is the output layer) and
/// the shape of ReLU mid-stack layers in deep configurations.
class DenseLayer final : public SampledLayer {
 public:
  DenseLayer(Index units, Index fan_in, Activation activation,
             float init_stddev, const AdamConfig& adam, std::uint64_t seed,
             int batch_slots, int max_threads,
             Precision precision = Precision::kFP32);
};

/// Static uniform sampling (the Sampled Softmax baseline of paper §5.1):
/// actives = forced labels + uniformly random classes up to `num_sampled`.
/// Unlike the LSH path the choice is input-independent — that is the point
/// of the paper's Figure 7 comparison.
class RandomSampledLayer final : public SampledLayer {
 public:
  RandomSampledLayer(Index units, Index fan_in, Index num_sampled,
                     Activation activation, float init_stddev,
                     const AdamConfig& adam, std::uint64_t seed,
                     int batch_slots, int max_threads,
                     Precision precision = Precision::kFP32);
};

/// Builds the concrete Layer for a LayerSpec (DenseLayer, SampledLayer, or
/// RandomSampledLayer) — the single construction point used by Network.
/// `precision` is the network-wide inference precision (config.h).
std::unique_ptr<Layer> make_layer(const LayerSpec& spec, Index fan_in,
                                  const AdamConfig& adam, std::uint64_t seed,
                                  int batch_slots, int max_threads,
                                  Precision precision = Precision::kFP32);

}  // namespace slide
