#include "core/builder.h"

#include <string>
#include <string_view>

namespace slide {

NetworkBuilder::NetworkBuilder(Index input_dim) {
  SLIDE_CHECK(input_dim > 0, "NetworkBuilder: input_dim must be positive");
  config_.input_dim = input_dim;
  config_.layers.clear();
}

NetworkBuilder& NetworkBuilder::dense(Index units, Activation activation,
                                      float init_stddev) {
  SLIDE_CHECK(units > 0, "NetworkBuilder::dense: units must be positive");
  if (!have_embedding_) {
    SLIDE_CHECK(activation == Activation::kReLU,
                "NetworkBuilder: the input-facing (first) layer is always "
                "ReLU");
    config_.hidden_units = units;
    if (init_stddev > 0.0f) config_.hidden_init_stddev = init_stddev;
    have_embedding_ = true;
    return *this;
  }
  LayerSpec spec;
  spec.units = units;
  spec.activation = activation;
  spec.hashed = false;
  spec.random_sampled = false;
  spec.init_stddev = init_stddev;
  return layer(spec);
}

NetworkBuilder& NetworkBuilder::sampled(Index units,
                                        const HashFamilyConfig& family,
                                        Index sampling_target,
                                        Activation activation) {
  SLIDE_CHECK(units > 0, "NetworkBuilder::sampled: units must be positive");
  SLIDE_CHECK(sampling_target > 0,
              "NetworkBuilder::sampled: sampling_target must be positive");
  LayerSpec spec;
  spec.units = units;
  spec.activation = activation;
  spec.hashed = true;
  spec.family = family;
  spec.sampling.strategy = SamplingStrategy::kVanilla;
  spec.sampling.target = sampling_target;
  return layer(spec);
}

NetworkBuilder& NetworkBuilder::random_sampled(Index units, Index num_sampled,
                                               Activation activation) {
  SLIDE_CHECK(units > 0,
              "NetworkBuilder::random_sampled: units must be positive");
  SLIDE_CHECK(num_sampled > 0,
              "NetworkBuilder::random_sampled: num_sampled must be positive");
  LayerSpec spec;
  spec.units = units;
  spec.activation = activation;
  spec.hashed = false;
  spec.random_sampled = true;
  spec.sampling.target = num_sampled;
  spec.fill_random_to_target = true;
  return layer(spec);
}

NetworkBuilder& NetworkBuilder::layer(const LayerSpec& spec) {
  SLIDE_CHECK(have_embedding_,
              "NetworkBuilder: the first layer must be dense (the "
              "input-facing embedding) — call .dense(units) first");
  SLIDE_CHECK(spec.units > 0, "NetworkBuilder::layer: units must be positive");
  config_.layers.push_back(spec);
  return *this;
}

LayerSpec& NetworkBuilder::last_layer(const char* call) {
  SLIDE_CHECK(!config_.layers.empty(),
              std::string("NetworkBuilder::") + call +
                  ": no stack layer to modify — add one first");
  return config_.layers.back();
}

NetworkBuilder& NetworkBuilder::table(const HashTable::Config& table) {
  last_layer("table").table = table;
  return *this;
}

NetworkBuilder& NetworkBuilder::rebuild_schedule(
    const RebuildSchedule& schedule) {
  last_layer("rebuild_schedule").rebuild = schedule;
  return *this;
}

NetworkBuilder& NetworkBuilder::sampling_config(
    const SamplingConfig& sampling) {
  last_layer("sampling_config").sampling = sampling;
  return *this;
}

NetworkBuilder& NetworkBuilder::retriever(retrieval::RetrieverKind kind) {
  LayerSpec& spec = last_layer("retriever");
  SLIDE_CHECK(spec.hashed || kind == retrieval::RetrieverKind::kLsh,
              "NetworkBuilder::retriever: a non-LSH retriever requires an "
              "LSH-sampled layer (call .sampled(...) first)");
  spec.retriever = kind;
  return *this;
}

NetworkBuilder& NetworkBuilder::hnsw(const retrieval::HnswConfig& config) {
  SLIDE_CHECK(config.m >= 2, "NetworkBuilder::hnsw: m must be >= 2");
  SLIDE_CHECK(config.ef_construction >= config.m,
              "NetworkBuilder::hnsw: ef_construction must be >= m");
  SLIDE_CHECK(config.ef_search >= 1,
              "NetworkBuilder::hnsw: ef_search must be >= 1");
  last_layer("hnsw").hnsw = config;
  return *this;
}

NetworkBuilder& NetworkBuilder::incremental_rehash(bool on) {
  last_layer("incremental_rehash").incremental_rehash = on;
  return *this;
}

NetworkBuilder& NetworkBuilder::fill_random_to_target(bool on) {
  last_layer("fill_random_to_target").fill_random_to_target = on;
  return *this;
}

NetworkBuilder& NetworkBuilder::maintenance(MaintenancePolicy policy) {
  last_layer("maintenance").maintenance = policy;
  return *this;
}

NetworkBuilder& NetworkBuilder::shards(int shards) {
  SLIDE_CHECK(shards >= 1, "NetworkBuilder::shards: must be >= 1");
  LayerSpec& spec = last_layer("shards");
  SLIDE_CHECK(spec.hashed,
              "NetworkBuilder::shards: sharding requires an LSH-sampled "
              "layer (call .sampled(...) first)");
  SLIDE_CHECK(static_cast<Index>(shards) <= spec.units,
              "NetworkBuilder::shards: more shards than units");
  SLIDE_CHECK(spec.endpoints.empty(),
              "NetworkBuilder::shards: mutually exclusive with "
              ".distributed()");
  spec.shards = shards;
  return *this;
}

NetworkBuilder& NetworkBuilder::distributed(
    std::vector<std::string> endpoints, bool wire_bf16) {
  SLIDE_CHECK(!endpoints.empty(),
              "NetworkBuilder::distributed: at least one worker endpoint");
  LayerSpec& spec = last_layer("distributed");
  SLIDE_CHECK(spec.hashed,
              "NetworkBuilder::distributed: requires an LSH-sampled layer "
              "(call .sampled(...) first)");
  SLIDE_CHECK(spec.shards == 0,
              "NetworkBuilder::distributed: mutually exclusive with "
              ".shards()");
  SLIDE_CHECK(static_cast<Index>(endpoints.size()) <= spec.units,
              "NetworkBuilder::distributed: more workers than units");
  spec.endpoints = std::move(endpoints);
  spec.wire_bf16 = wire_bf16;
  return *this;
}

NetworkBuilder& NetworkBuilder::shard_checkpoint(std::string base) {
  LayerSpec& spec = last_layer("shard_checkpoint");
  SLIDE_CHECK(!spec.endpoints.empty(),
              "NetworkBuilder::shard_checkpoint: call .distributed(...) "
              "first");
  spec.shard_checkpoint_base = std::move(base);
  return *this;
}

NetworkBuilder& NetworkBuilder::max_batch(int max_batch_size) {
  SLIDE_CHECK(max_batch_size > 0,
              "NetworkBuilder::max_batch: must be positive");
  config_.max_batch_size = max_batch_size;
  return *this;
}

NetworkBuilder& NetworkBuilder::adam(const AdamConfig& adam) {
  config_.adam = adam;
  return *this;
}

NetworkBuilder& NetworkBuilder::seed(std::uint64_t seed) {
  config_.seed = seed;
  return *this;
}

NetworkBuilder& NetworkBuilder::precision(Precision precision) {
  config_.precision = precision;
  return *this;
}

NetworkConfig NetworkBuilder::to_config() const {
  SLIDE_CHECK(have_embedding_,
              "NetworkBuilder: missing the input-facing dense layer");
  SLIDE_CHECK(!config_.layers.empty(),
              "NetworkBuilder: at least one stack layer (the output layer) "
              "is required");
  SLIDE_CHECK(config_.layers.back().activation == Activation::kSoftmax,
              "NetworkBuilder: the output layer must be softmax (the "
              "Trainer's cross-entropy contract)");
  return config_;
}

Network NetworkBuilder::build(int max_threads) const {
  return Network(to_config(), max_threads);
}

std::shared_ptr<Network> NetworkBuilder::build_shared(int max_threads) const {
  return std::make_shared<Network>(to_config(), max_threads);
}

// ---------------------------------------------------------------------------

const char* to_string(MaintenancePolicy policy) {
  switch (policy) {
    case MaintenancePolicy::kSync:
      return "sync";
    case MaintenancePolicy::kAsyncFull:
      return "async_full";
    case MaintenancePolicy::kAsyncDelta:
      return "async_delta";
  }
  return "?";
}

MaintenancePolicy parse_maintenance_policy(const char* name) {
  const std::string_view s(name == nullptr ? "" : name);
  if (s == "sync") return MaintenancePolicy::kSync;
  if (s == "async_full") return MaintenancePolicy::kAsyncFull;
  if (s == "async_delta") return MaintenancePolicy::kAsyncDelta;
  throw Error("unknown maintenance policy: " + std::string(s) +
              " (expected sync | async_full | async_delta)");
}

const char* to_string(Precision precision) {
  switch (precision) {
    case Precision::kFP32:
      return "fp32";
    case Precision::kBF16:
      return "bf16";
    case Precision::kFP16:
      return "fp16";
    case Precision::kInt8:
      return "int8";
  }
  return "?";
}

Precision parse_precision(const char* name) {
  const std::string_view s(name == nullptr ? "" : name);
  if (s == "fp32") return Precision::kFP32;
  if (s == "bf16") return Precision::kBF16;
  if (s == "fp16") return Precision::kFP16;
  if (s == "int8") return Precision::kInt8;
  throw Error("unknown precision: " + std::string(s) +
              " (expected fp32 | bf16 | fp16 | int8)");
}

// ---------------------------------------------------------------------------

NetworkConfig make_paper_network(Index input_dim, Index label_dim,
                                 const HashFamilyConfig& family,
                                 Index sampling_target, Index hidden_units) {
  return NetworkBuilder(input_dim)
      .dense(hidden_units)
      .sampled(label_dim, family, sampling_target)
      .to_config();
}

}  // namespace slide
