#include "core/trainer.h"

#include <atomic>

namespace slide {

TrainTimeBreakdown TrainTimeBreakdown::operator-(
    const TrainTimeBreakdown& earlier) const {
  TrainTimeBreakdown d;
  d.batch_compute_seconds =
      batch_compute_seconds - earlier.batch_compute_seconds;
  d.update_seconds = update_seconds - earlier.update_seconds;
  d.rebuild_seconds = rebuild_seconds - earlier.rebuild_seconds;
  d.total_seconds = total_seconds - earlier.total_seconds;
  return d;
}

Trainer::Trainer(Network& network, const TrainerConfig& config)
    : network_(network), config_(config) {
  if (config_.num_threads <= 0) config_.num_threads = hardware_threads();
  SLIDE_CHECK(config_.batch_size > 0, "Trainer: batch_size must be positive");
  SLIDE_CHECK(config_.batch_size <= network_.max_batch_size(),
              "Trainer: batch_size exceeds the network's max_batch_size");
  pool_ = std::make_unique<ThreadPool>(config_.num_threads);

  Rng seeder(config_.seed);
  slot_rngs_.reserve(static_cast<std::size_t>(network_.max_batch_size()));
  for (int s = 0; s < network_.max_batch_size(); ++s)
    slot_rngs_.push_back(seeder.fork());

  const Index scratch_size = std::max<Index>(network_.max_sampled_units(), 1);
  visited_.reserve(static_cast<std::size_t>(config_.num_threads));
  for (int t = 0; t < config_.num_threads; ++t)
    visited_.push_back(std::make_unique<VisitedSet>(scratch_size));

  network_.set_use_locks(!config_.hogwild);
}

float Trainer::step(const Dataset& data,
                    std::span<const std::size_t> indices) {
  SLIDE_CHECK(!indices.empty(), "Trainer::step: empty batch");
  SLIDE_CHECK(static_cast<int>(indices.size()) <= network_.max_batch_size(),
              "Trainer::step: batch larger than the network's slot count");
  const float inv_batch = 1.0f / static_cast<float>(indices.size());

  WallTimer total;
  // Fan the batch out: one sample per slot, slots statically partitioned
  // over threads. Loss accumulates per-thread to avoid contention.
  std::atomic<float> loss_sum{0.0f};
  {
    WallTimer compute;
    pool_->parallel_range(
        indices.size(), [&](std::size_t begin, std::size_t end, int tid) {
          float local_loss = 0.0f;
          VisitedSet& visited = *visited_[static_cast<std::size_t>(tid)];
          for (std::size_t s = begin; s < end; ++s) {
            const Sample& sample = data[indices[s]];
            local_loss += network_.train_sample(
                static_cast<int>(s), sample, inv_batch,
                slot_rngs_[s], visited, tid);
          }
          float expected = loss_sum.load(std::memory_order_relaxed);
          while (!loss_sum.compare_exchange_weak(
              expected, expected + local_loss, std::memory_order_relaxed)) {
          }
        });
    breakdown_.batch_compute_seconds += compute.seconds();
  }
  {
    WallTimer update;
    network_.apply_updates(config_.learning_rate, pool_.get());
    breakdown_.update_seconds += update.seconds();
  }
  ++iteration_;
  {
    WallTimer rebuild;
    network_.maybe_rebuild(iteration_, pool_.get());
    breakdown_.rebuild_seconds += rebuild.seconds();
  }
  breakdown_.total_seconds += total.seconds();
  return loss_sum.load() * inv_batch;
}

void Trainer::train(const Dataset& data, long iterations,
                    const std::function<void(long)>& callback,
                    long callback_every) {
  Batcher batcher(data, static_cast<std::size_t>(config_.batch_size),
                  config_.shuffle, config_.seed + 1);
  for (long i = 0; i < iterations; ++i) {
    step(data, batcher.next());
    if (callback && callback_every > 0 &&
        (iteration_ % callback_every == 0 || i + 1 == iterations)) {
      callback(iteration_);
    }
  }
}

double Trainer::core_utilization() const {
  const auto busy = pool_->busy_seconds();
  double busy_total = 0.0;
  for (double b : busy) busy_total += b;
  const double denom =
      breakdown_.total_seconds * static_cast<double>(pool_->num_threads());
  return denom > 0.0 ? busy_total / denom : 0.0;
}

}  // namespace slide
