#include "core/network.h"

#include <algorithm>

namespace slide {

Network::Network(const NetworkConfig& config, int max_threads)
    : config_(config) {
  SLIDE_CHECK(config_.input_dim > 0, "Network: input_dim must be positive");
  SLIDE_CHECK(config_.hidden_units > 0,
              "Network: hidden_units must be positive");
  SLIDE_CHECK(!config_.layers.empty(),
              "Network: at least one layer (the output layer) is required");
  SLIDE_CHECK(config_.max_batch_size > 0,
              "Network: max_batch_size must be positive");
  SLIDE_CHECK(max_threads > 0, "Network: max_threads must be positive");

  Rng seeder(config_.seed);
  embedding_ = std::make_unique<EmbeddingLayer>(
      config_.input_dim, config_.hidden_units, config_.hidden_init_stddev,
      config_.max_batch_size, max_threads, config_.adam, seeder(),
      config_.precision);

  Index fan_in = config_.hidden_units;
  for (const LayerSpec& spec : config_.layers) {
    layers_.push_back(make_layer(spec, fan_in, config_.adam, seeder(),
                                 config_.max_batch_size, max_threads,
                                 config_.precision));
    fan_in = spec.units;
  }
}

void Network::refresh_inference_mirrors() {
  WriteGuard guard(*this);
  embedding_->refresh_inference_mirror();
  for (auto& layer : layers_) layer->refresh_inference_mirror();
}

MemoryFootprint Network::memory_footprint() const noexcept {
  MemoryFootprint f;
  auto add = [&f](const LayerMemory& m, std::size_t inference_bytes) {
    f.master_weight_bytes += m.master_bytes;
    f.mirror_bytes += m.mirror_bytes;
    f.optimizer_bytes += m.optimizer_bytes;
    f.retriever_bytes += m.retriever_bytes;
    f.inference_weight_bytes += inference_bytes;
    f.mirror_hugepage_bytes += m.mirror_hugepage_bytes;
  };
  add(embedding_->memory(), embedding_->inference_weight_bytes());
  for (const auto& layer : layers_)
    add(layer->memory(), layer->inference_weight_bytes());
  return f;
}

float Network::train_sample(int slot, const Sample& sample, float inv_batch,
                            Rng& rng, VisitedSet& visited, int tid) {
  SLIDE_ASSERT(slot >= 0 && slot < config_.max_batch_size);
  WriteGuard guard(*this);

  // ---- Forward ----
  embedding_->forward(slot, sample.features);
  const ActiveSet* prev = &embedding_->slot(slot);
  const int last = stack_depth() - 1;
  for (int i = 0; i < last; ++i) {
    Layer& l = *layers_[static_cast<std::size_t>(i)];
    l.forward(slot, *prev, {}, rng, visited, tid);
    prev = &l.slot(slot);
  }
  // Output layer: force the true labels into the active set so the softmax
  // gradient has signal (paper §3.1).
  layers_.back()->forward(slot, *prev, sample.labels, rng, visited, tid);

  // ---- Loss and deltas ----
  const float loss = layers_.back()->compute_softmax_ce_deltas(
      slot, sample.labels, inv_batch);

  // ---- Backward (active x active only) ----
  for (int i = last; i >= 0; --i) {
    ActiveSet& below =
        i == 0 ? embedding_->slot(slot)
               : layers_[static_cast<std::size_t>(i - 1)]->slot(slot);
    if (i != last)
      layers_[static_cast<std::size_t>(i)]->compute_relu_deltas(slot);
    layers_[static_cast<std::size_t>(i)]->backward(slot, below, tid);
  }
  embedding_->backward(slot, sample.features, tid);
  return loss;
}

void Network::apply_updates(float lr, ThreadPool* pool) {
  WriteGuard guard(*this);
  embedding_->apply_updates(lr, pool);
  for (auto& layer : layers_) layer->apply_updates(lr, pool);
}

void Network::maybe_rebuild(long iteration, ThreadPool* pool) {
  WriteGuard guard(*this);
  for (auto& layer : layers_) layer->maybe_rebuild(iteration, pool);
}

void Network::rebuild_all(ThreadPool* pool) {
  WriteGuard guard(*this);
  for (auto& layer : layers_) layer->rebuild_tables(pool);
}

void Network::quiesce_maintenance() const {
  for (const auto& layer : layers_) layer->quiesce_maintenance();
}

void Network::flush_maintenance() {
  for (auto& layer : layers_) layer->flush_maintenance();
}

void Network::predict_topk(const SparseVector& x, InferenceContext& ctx,
                           int k, bool exact, std::vector<Index>& out) const {
  SLIDE_CHECK(k >= 1, "predict_topk: k must be >= 1");
#ifndef NDEBUG
  SLIDE_ASSERT(writers_active() == 0);
  const std::uint64_t epoch_at_entry = write_epoch();
#endif
  // Run the same inference forward as predict_top1 through the hidden
  // layers, then let the output layer rank its own candidates — the
  // default hook partial-sorts exactly as this function used to, and the
  // sharded layer overrides it with a k-way heap merge over its per-shard
  // candidate runs (both in ctx scratch, allocation-free at steady state).
  ctx.dense.resize(embedding_->units());
  embedding_->forward_inference(x, ctx.dense.data());
  std::vector<Index>* prev_ids = &ctx.ids_a;
  std::vector<float>* prev_act = &ctx.act_a;
  prev_ids->clear();
  prev_act->assign(ctx.dense.begin(), ctx.dense.end());
  std::vector<Index>* next_ids = &ctx.ids_b;
  std::vector<float>* next_act = &ctx.act_b;
  const std::size_t last = layers_.size() - 1;
  for (std::size_t i = 0; i < last; ++i) {
    layers_[i]->forward_inference(*prev_ids, *prev_act, exact, ctx.rng,
                                  ctx.visited, *next_ids, *next_act);
    std::swap(prev_ids, next_ids);
    std::swap(prev_act, next_act);
  }
  layers_[last]->forward_inference_topk(*prev_ids, *prev_act, k, exact,
                                        ctx.rng, ctx.visited, ctx.topk, out);
  // A moved epoch or live writer means a writer overlapped this read — a
  // data race the thread-safety contract (see network.h) forbids.
  SLIDE_ASSERT(write_epoch() == epoch_at_entry && writers_active() == 0);
}

std::vector<Index> Network::predict_topk(const SparseVector& x,
                                         InferenceContext& ctx, int k,
                                         bool exact) const {
  std::vector<Index> out;
  predict_topk(x, ctx, k, exact, out);
  return out;
}

bool TopKIterator::next(int k, std::vector<Index>& out) {
  out.clear();
  if (k < 1) return false;
  TopKScratch& t = *scratch_;
  const std::size_t take =
      std::min<std::size_t>(static_cast<std::size_t>(k),
                            t.order.size() - cursor_);
  if (take == 0) return false;
  // Rank the next `take` of the REMAINING candidates. The comparator (score
  // desc, earlier candidate position first) is a total order independent of
  // how previous pages left the suffix permuted, so page boundaries are
  // invisible: concatenated pages equal the one-shot top-k ranking.
  const std::vector<float>& act = t.act;
  const auto begin = t.order.begin() + static_cast<std::ptrdiff_t>(cursor_);
  std::partial_sort(begin, begin + static_cast<std::ptrdiff_t>(take),
                    t.order.end(), [&](std::size_t a, std::size_t b) {
                      return act[a] > act[b] || (act[a] == act[b] && a < b);
                    });
  out.reserve(take);
  for (std::size_t i = cursor_; i < cursor_ + take; ++i) {
    out.push_back(t.ids.empty() ? static_cast<Index>(t.order[i])
                                : t.ids[t.order[i]]);
  }
  cursor_ += take;
  return true;
}

TopKIterator Network::topk_iterator(const SparseVector& x,
                                    InferenceContext& ctx, bool exact) const {
#ifndef NDEBUG
  SLIDE_ASSERT(writers_active() == 0);
  const std::uint64_t epoch_at_entry = write_epoch();
#endif
  // Same forward as predict_topk, but the output layer's candidates stay in
  // the scratch unranked — the iterator ranks them page by page.
  ctx.dense.resize(embedding_->units());
  embedding_->forward_inference(x, ctx.dense.data());
  std::vector<Index>* prev_ids = &ctx.ids_a;
  std::vector<float>* prev_act = &ctx.act_a;
  prev_ids->clear();
  prev_act->assign(ctx.dense.begin(), ctx.dense.end());
  std::vector<Index>* next_ids = &ctx.ids_b;
  std::vector<float>* next_act = &ctx.act_b;
  const std::size_t last = layers_.size() - 1;
  for (std::size_t i = 0; i < last; ++i) {
    layers_[i]->forward_inference(*prev_ids, *prev_act, exact, ctx.rng,
                                  ctx.visited, *next_ids, *next_act);
    std::swap(prev_ids, next_ids);
    std::swap(prev_act, next_act);
  }
  layers_[last]->forward_inference(*prev_ids, *prev_act, exact, ctx.rng,
                                   ctx.visited, ctx.topk.ids, ctx.topk.act);
  ctx.topk.order.resize(ctx.topk.act.size());
  for (std::size_t i = 0; i < ctx.topk.order.size(); ++i)
    ctx.topk.order[i] = i;
  SLIDE_ASSERT(write_epoch() == epoch_at_entry && writers_active() == 0);
  return TopKIterator(ctx.topk);
}

void Network::predict_topk_page(const SparseVector& x, InferenceContext& ctx,
                                int k, int offset, bool exact,
                                std::vector<Index>& out) const {
  SLIDE_CHECK(k >= 1, "predict_topk_page: k must be >= 1");
  SLIDE_CHECK(offset >= 0, "predict_topk_page: offset must be >= 0");
  TopKIterator it = topk_iterator(x, ctx, exact);
  // Skip whole pages up to the offset — the ranking work is the same as
  // one partial_sort of offset + k elements.
  thread_local std::vector<Index> skipped;
  int remaining = offset;
  while (remaining > 0) {
    const int step = std::min(remaining, k);
    if (!it.next(step, skipped)) {
      out.clear();
      return;
    }
    remaining -= static_cast<int>(skipped.size());
  }
  it.next(k, out);
}

void Network::predict_batch(std::span<const SparseVector> inputs,
                            BatchOutput& out, ThreadPool* pool, int top_k,
                            bool exact) const {
  out.ptrs_.resize(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) out.ptrs_[i] = &inputs[i];
  predict_batch(std::span<const SparseVector* const>(out.ptrs_), out, pool,
                top_k, exact);
}

void Network::predict_batch(std::span<const SparseVector* const> inputs,
                            BatchOutput& out, ThreadPool* pool, int top_k,
                            bool exact) const {
  SLIDE_CHECK(top_k >= 1, "predict_batch: top_k must be >= 1");
  const std::size_t n = inputs.size();
  out.labels_.clear();
  out.offsets_.assign(1, 0);
  if (n == 0) return;

  // (Re)build the per-thread contexts on first use or after an
  // architecture change (the serving engine reuses one BatchOutput across
  // hot-swapped snapshots).
  const Index scratch_units = std::max<Index>(max_sampled_units(), 1);
  const bool parallel = pool != nullptr && pool->num_threads() > 1 && n > 1;
  const std::size_t contexts_needed =
      parallel ? static_cast<std::size_t>(pool->num_threads()) : 1;
  if (out.context_units_ != scratch_units) {
    out.contexts_.clear();
    out.context_units_ = scratch_units;
  }
  while (out.contexts_.size() < contexts_needed) {
    out.contexts_.push_back(std::make_unique<InferenceContext>(
        scratch_units,
        out.seed_ + 0x9E3779B9ull * (out.contexts_.size() + 1)));
  }
  if (out.rows_.size() < n) out.rows_.resize(n);

  auto run = [&](std::size_t begin, std::size_t end, int tid) {
    InferenceContext& ctx = *out.contexts_[static_cast<std::size_t>(tid)];
    for (std::size_t i = begin; i < end; ++i)
      predict_topk(*inputs[i], ctx, top_k, exact, out.rows_[i]);
  };
  if (parallel) {
    pool->parallel_range(n, run);
  } else {
    run(0, n, 0);
  }

  // Pack the per-item rows into the flat result (deterministic order
  // regardless of which thread served which input).
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += out.rows_[i].size();
  out.labels_.reserve(total);
  out.offsets_.reserve(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    out.labels_.insert(out.labels_.end(), out.rows_[i].begin(),
                       out.rows_[i].end());
    out.offsets_.push_back(out.labels_.size());
  }
}

Index Network::predict_top1(const SparseVector& x, InferenceContext& ctx,
                            bool exact) const {
#ifndef NDEBUG
  SLIDE_ASSERT(writers_active() == 0);
  const std::uint64_t epoch_at_entry = write_epoch();
#endif
  ctx.dense.resize(embedding_->units());
  embedding_->forward_inference(x, ctx.dense.data());

  std::vector<Index>* prev_ids = &ctx.ids_a;
  std::vector<float>* prev_act = &ctx.act_a;
  prev_ids->clear();
  prev_act->assign(ctx.dense.begin(), ctx.dense.end());
  std::vector<Index>* next_ids = &ctx.ids_b;
  std::vector<float>* next_act = &ctx.act_b;

  for (const auto& layer : layers_) {
    layer->forward_inference(*prev_ids, *prev_act, exact, ctx.rng,
                             ctx.visited, *next_ids, *next_act);
    std::swap(prev_ids, next_ids);
    std::swap(prev_act, next_act);
  }
  // Top-1 = argmax of output activations (softmax is monotone, so the
  // normalization is unnecessary for prediction).
  SLIDE_ASSERT(!prev_act->empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < prev_act->size(); ++i) {
    if ((*prev_act)[i] > (*prev_act)[best]) best = i;
  }
  SLIDE_ASSERT(write_epoch() == epoch_at_entry && writers_active() == 0);
  return prev_ids->empty() ? static_cast<Index>(best) : (*prev_ids)[best];
}

Index Network::add_output_units(Index n) {
  WriteGuard guard(*this);
  Layer& out = *layers_.back();
  const Index first = out.add_units(n);
  // Keep the stored config in step: clones (publish_clone) and checkpoint
  // writers derive layer widths from it.
  config_.layers.back().units = out.units();
  return first;
}

void Network::retire_output_units(std::span<const Index> ids) {
  WriteGuard guard(*this);
  layers_.back()->retire_units(ids);
}

void Network::set_use_locks(bool locks) noexcept {
  embedding_->set_use_locks(locks);
  for (auto& layer : layers_) layer->set_use_locks(locks);
}

std::size_t Network::num_parameters() const noexcept {
  std::size_t total = embedding_->num_parameters();
  for (const auto& layer : layers_) total += layer->num_parameters();
  return total;
}

Index Network::max_sampled_units() const noexcept {
  Index max_units = 0;
  for (const auto& layer : layers_)
    max_units = std::max(max_units, layer->units());
  return max_units;
}

}  // namespace slide
