#include "core/network.h"

#include <algorithm>

namespace slide {

NetworkConfig make_paper_network(Index input_dim, Index label_dim,
                                 const HashFamilyConfig& family,
                                 Index sampling_target, Index hidden_units) {
  NetworkConfig cfg;
  cfg.input_dim = input_dim;
  cfg.hidden_units = hidden_units;
  LayerSpec output;
  output.units = label_dim;
  output.activation = Activation::kSoftmax;
  output.hashed = true;
  output.family = family;
  output.sampling.strategy = SamplingStrategy::kVanilla;
  output.sampling.target = sampling_target;
  cfg.layers.push_back(output);
  return cfg;
}

Network::Network(const NetworkConfig& config, int max_threads)
    : config_(config) {
  SLIDE_CHECK(config_.input_dim > 0, "Network: input_dim must be positive");
  SLIDE_CHECK(config_.hidden_units > 0,
              "Network: hidden_units must be positive");
  SLIDE_CHECK(!config_.layers.empty(),
              "Network: at least one layer (the output layer) is required");
  SLIDE_CHECK(config_.max_batch_size > 0,
              "Network: max_batch_size must be positive");
  SLIDE_CHECK(max_threads > 0, "Network: max_threads must be positive");

  Rng seeder(config_.seed);
  embedding_ = std::make_unique<EmbeddingLayer>(
      config_.input_dim, config_.hidden_units, config_.hidden_init_stddev,
      config_.max_batch_size, max_threads, config_.adam, seeder());

  Index fan_in = config_.hidden_units;
  for (const LayerSpec& spec : config_.layers) {
    SampledLayer::Config lc;
    lc.units = spec.units;
    lc.fan_in = fan_in;
    lc.activation = spec.activation;
    lc.hashed = spec.hashed;
    lc.random_sampled = spec.random_sampled;
    lc.family = spec.family;
    lc.table = spec.table;
    lc.sampling = spec.sampling;
    lc.rebuild = spec.rebuild;
    lc.fill_random_to_target = spec.fill_random_to_target;
    lc.incremental_rehash = spec.incremental_rehash;
    lc.init_stddev = spec.init_stddev;
    lc.adam = config_.adam;
    lc.seed = seeder();
    layers_.push_back(std::make_unique<SampledLayer>(
        lc, config_.max_batch_size, max_threads));
    fan_in = spec.units;
  }
}

float Network::train_sample(int slot, const Sample& sample, float inv_batch,
                            Rng& rng, VisitedSet& visited, int tid) {
  SLIDE_ASSERT(slot >= 0 && slot < config_.max_batch_size);
  WriteGuard guard(*this);

  // ---- Forward ----
  embedding_->forward(slot, sample.features);
  const ActiveSet* prev = &embedding_->slot(slot);
  const int last = num_sampled_layers() - 1;
  for (int i = 0; i < last; ++i) {
    layers_[static_cast<std::size_t>(i)]->forward(slot, *prev, {}, rng,
                                                  visited, tid);
    prev = &layers_[static_cast<std::size_t>(i)]->slot(slot);
  }
  // Output layer: force the true labels into the active set so the softmax
  // gradient has signal (paper §3.1).
  layers_.back()->forward(slot, *prev, sample.labels, rng, visited, tid);

  // ---- Loss and deltas ----
  const float loss = layers_.back()->compute_softmax_ce_deltas(
      slot, sample.labels, inv_batch);

  // ---- Backward (active x active only) ----
  for (int i = last; i >= 0; --i) {
    ActiveSet& below = i == 0
                           ? embedding_->slot(slot)
                           : layers_[static_cast<std::size_t>(i - 1)]->slot(slot);
    if (i != last)
      layers_[static_cast<std::size_t>(i)]->compute_relu_deltas(slot);
    layers_[static_cast<std::size_t>(i)]->backward(slot, below, tid);
  }
  embedding_->backward(slot, sample.features, tid);
  return loss;
}

void Network::apply_updates(float lr, ThreadPool* pool) {
  WriteGuard guard(*this);
  embedding_->apply_updates(lr, pool);
  for (auto& layer : layers_) layer->apply_updates(lr, pool);
}

void Network::maybe_rebuild(long iteration, ThreadPool* pool) {
  WriteGuard guard(*this);
  for (auto& layer : layers_) layer->maybe_rebuild(iteration, pool);
}

void Network::rebuild_all(ThreadPool* pool) {
  WriteGuard guard(*this);
  for (auto& layer : layers_) layer->rebuild_tables(pool);
}

std::vector<Index> Network::predict_topk(const SparseVector& x,
                                         InferenceContext& ctx, int k,
                                         bool exact) const {
  SLIDE_CHECK(k >= 1, "predict_topk: k must be >= 1");
#ifndef NDEBUG
  SLIDE_ASSERT(writers_active() == 0);
  const std::uint64_t epoch_at_entry = write_epoch();
#endif
  // Run the same inference forward as predict_top1, then partial-sort the
  // output activations.
  ctx.dense.resize(embedding_->units());
  embedding_->forward_inference(x, ctx.dense.data());
  std::vector<Index>* prev_ids = &ctx.ids_a;
  std::vector<float>* prev_act = &ctx.act_a;
  prev_ids->clear();
  prev_act->assign(ctx.dense.begin(), ctx.dense.end());
  std::vector<Index>* next_ids = &ctx.ids_b;
  std::vector<float>* next_act = &ctx.act_b;
  for (const auto& layer : layers_) {
    layer->forward_inference(*prev_ids, *prev_act, exact, ctx.rng,
                             ctx.visited, *next_ids, *next_act);
    std::swap(prev_ids, next_ids);
    std::swap(prev_act, next_act);
  }
  std::vector<std::size_t> order(prev_act->size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const std::size_t take =
      std::min<std::size_t>(static_cast<std::size_t>(k), order.size());
  // Ties break toward the earlier active position (the lower unit id in
  // exact mode), matching predict_top1's first-max rule.
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(take),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return (*prev_act)[a] > (*prev_act)[b] ||
                             ((*prev_act)[a] == (*prev_act)[b] && a < b);
                    });
  std::vector<Index> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(prev_ids->empty() ? static_cast<Index>(order[i])
                                    : (*prev_ids)[order[i]]);
  }
  // A moved epoch or live writer means a writer overlapped this read — a
  // data race the thread-safety contract (see network.h) forbids.
  SLIDE_ASSERT(write_epoch() == epoch_at_entry && writers_active() == 0);
  return out;
}

Index Network::predict_top1(const SparseVector& x, InferenceContext& ctx,
                            bool exact) const {
#ifndef NDEBUG
  SLIDE_ASSERT(writers_active() == 0);
  const std::uint64_t epoch_at_entry = write_epoch();
#endif
  ctx.dense.resize(embedding_->units());
  embedding_->forward_inference(x, ctx.dense.data());

  std::vector<Index>* prev_ids = &ctx.ids_a;
  std::vector<float>* prev_act = &ctx.act_a;
  prev_ids->clear();
  prev_act->assign(ctx.dense.begin(), ctx.dense.end());
  std::vector<Index>* next_ids = &ctx.ids_b;
  std::vector<float>* next_act = &ctx.act_b;

  for (const auto& layer : layers_) {
    layer->forward_inference(*prev_ids, *prev_act, exact, ctx.rng,
                             ctx.visited, *next_ids, *next_act);
    std::swap(prev_ids, next_ids);
    std::swap(prev_act, next_act);
  }
  // Top-1 = argmax of output activations (softmax is monotone, so the
  // normalization is unnecessary for prediction).
  SLIDE_ASSERT(!prev_act->empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < prev_act->size(); ++i) {
    if ((*prev_act)[i] > (*prev_act)[best]) best = i;
  }
  SLIDE_ASSERT(write_epoch() == epoch_at_entry && writers_active() == 0);
  return prev_ids->empty() ? static_cast<Index>(best) : (*prev_ids)[best];
}

void Network::set_use_locks(bool locks) noexcept {
  embedding_->set_use_locks(locks);
  for (auto& layer : layers_) layer->set_use_locks(locks);
}

std::size_t Network::num_parameters() const noexcept {
  std::size_t total = embedding_->num_parameters();
  for (const auto& layer : layers_) total += layer->num_parameters();
  return total;
}

Index Network::max_sampled_units() const noexcept {
  Index max_units = 0;
  for (const auto& layer : layers_)
    max_units = std::max(max_units, layer->units());
  return max_units;
}

}  // namespace slide
