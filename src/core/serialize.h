// Checkpointing: save/load network parameters to a versioned binary format.
//
// The format stores the architecture signature (dims per layer) followed by
// raw float32 parameter blocks, so a checkpoint can only be loaded into a
// network with the same shape — load_weights validates and throws
// slide::Error on mismatch. One format covers every stack a NetworkBuilder
// can produce (dense-only, multi-hashed, random-sampled): the writer and
// loader go through the Layer serialize hooks, so layer policy never
// changes the byte layout. Legacy dense-baseline checkpoints (kind 1,
// written by the pre-unification DenseNetwork) load into a single-layer
// unified stack unchanged. Hash tables are NOT serialized: they are a
// function of the weights and are rebuilt after loading (load_weights does
// this automatically).
//
// Version history:
//   1 — header {magic, version, kind, input_dim, hidden, num_layers}.
//   2 — adds a precision tag word after the header: the Precision the
//       saving network scored inference at (provenance for serving boots;
//       see peek_checkpoint_info). Parameter blocks are ALWAYS the fp32
//       master weights regardless of the tag — bf16 mirrors are derived
//       state and are re-quantized by the loading network when its own
//       config asks for bf16. Version-1 files load unchanged (tag fp32).
//   3 — kind-0 stack layers gain a shard-count word before their parameter
//       blocks, followed by one weights+bias block pair per shard
//       (contiguous global row ranges in order; monolithic layers write a
//       single "shard"). The loader scatters file blocks into the target
//       layer's own shard partition by global row index, so a checkpoint
//       written at one shard count loads into a network using another —
//       including monolithic-to-sharded resharding (serve/snapshot.h,
//       publish_clone). v1/v2 files (and kind-1 legacy dense files, which
//       never carry shard words) load unchanged.
#pragma once

#include <iosfwd>
#include <string>

#include "baseline/dense_network.h"
#include "core/network.h"

namespace slide {

/// Header fields of a checkpoint stream (see the version history above).
struct CheckpointInfo {
  std::uint32_t version = 0;
  std::uint32_t kind = 0;  ///< 0 = unified stack, 1 = legacy dense baseline
  Precision precision = Precision::kFP32;  ///< tag; fp32 for version-1 files
};

/// Reads the checkpoint header without consuming the stream (the stream is
/// rewound to where it was). Lets a serving boot decide its precision from
/// the tag before constructing the network.
CheckpointInfo peek_checkpoint_info(std::istream& in);
CheckpointInfo peek_checkpoint_info_file(const std::string& path);

/// Serializes all weights and biases of the network.
void save_weights(const Network& network, std::ostream& out);
void save_weights_file(const Network& network, const std::string& path);

/// Restores weights into an architecture-compatible network and rebuilds
/// its hash tables (parallelized when a pool is given).
void load_weights(Network& network, std::istream& in,
                  ThreadPool* pool = nullptr);
void load_weights_file(Network& network, const std::string& path,
                       ThreadPool* pool = nullptr);

/// Dense-baseline counterparts (same container format).
void save_weights(const DenseNetwork& network, std::ostream& out);
void load_weights(DenseNetwork& network, std::istream& in);

}  // namespace slide
