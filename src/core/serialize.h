// Checkpointing: save/load network parameters to a versioned binary format.
//
// The format stores the architecture signature (dims per layer) followed by
// raw float32 parameter blocks, so a checkpoint can only be loaded into a
// network with the same shape — load_weights validates and throws
// slide::Error on mismatch. One format covers every stack a NetworkBuilder
// can produce (dense-only, multi-hashed, random-sampled): the writer and
// loader go through the Layer serialize hooks, so layer policy never
// changes the byte layout. Legacy dense-baseline checkpoints (kind 1,
// written by the pre-unification DenseNetwork) load into a single-layer
// unified stack unchanged. Hash tables are NOT serialized: they are a
// function of the weights and are rebuilt after loading (load_weights does
// this automatically).
#pragma once

#include <iosfwd>
#include <string>

#include "baseline/dense_network.h"
#include "core/network.h"

namespace slide {

/// Serializes all weights and biases of the network.
void save_weights(const Network& network, std::ostream& out);
void save_weights_file(const Network& network, const std::string& path);

/// Restores weights into an architecture-compatible network and rebuilds
/// its hash tables (parallelized when a pool is given).
void load_weights(Network& network, std::istream& in,
                  ThreadPool* pool = nullptr);
void load_weights_file(Network& network, const std::string& path,
                       ThreadPool* pool = nullptr);

/// Dense-baseline counterparts (same container format).
void save_weights(const DenseNetwork& network, std::ostream& out);
void load_weights(DenseNetwork& network, std::istream& in);

}  // namespace slide
