// Checkpointing: save/load network parameters to a versioned binary format.
//
// The format stores the architecture signature (dims per layer) followed by
// raw float32 parameter blocks, so a checkpoint can only be loaded into a
// network with the same shape — load_weights validates and throws
// slide::Error on mismatch. One format covers every stack a NetworkBuilder
// can produce (dense-only, multi-hashed, random-sampled): the writer and
// loader go through the Layer serialize hooks, so layer policy never
// changes the byte layout. Legacy dense-baseline checkpoints (kind 1,
// written by the pre-unification DenseNetwork) load into a single-layer
// unified stack unchanged. LSH hash tables are NOT serialized: they are a
// function of the weights and are rebuilt after loading (load_weights does
// this automatically). Retrieval indexes that are expensive to rebuild
// (the HNSW graph) ride along as v4 aux blocks and skip the rebuild.
//
// Version history:
//   1 — header {magic, version, kind, input_dim, hidden, num_layers}.
//   2 — adds a precision tag word after the header: the Precision the
//       saving network scored inference at (provenance for serving boots;
//       see peek_checkpoint_info). Parameter blocks are ALWAYS the fp32
//       master weights regardless of the tag — bf16 mirrors are derived
//       state and are re-quantized by the loading network when its own
//       config asks for bf16. Version-1 files load unchanged (tag fp32).
//   3 — kind-0 stack layers gain a shard-count word before their parameter
//       blocks, followed by one weights+bias block pair per shard
//       (contiguous global row ranges in order; monolithic layers write a
//       single "shard"). The loader scatters file blocks into the target
//       layer's own shard partition by global row index, so a checkpoint
//       written at one shard count loads into a network using another —
//       including monolithic-to-sharded resharding (serve/snapshot.h,
//       publish_clone). v1/v2 files (and kind-1 legacy dense files, which
//       never carry shard words) load unchanged.
//   4 — each layer appends a retriever descriptor after its parameter
//       blocks: a u32 retriever kind (retrieval::RetrieverKind) plus a
//       u64-sized aux payload holding backend state that is expensive to
//       rebuild (the HNSW graph via save_retriever_state; LSH and exact
//       write zero bytes). The loader restores the payload only when the
//       target layer's configured kind matches the file's — otherwise the
//       block is skipped and the layer rebuilds its index from the loaded
//       weights, so checkpoints stay portable across retriever choices.
//       v1–v3 files load unchanged (every layer rebuilds).
//   5 — dynamic-label lifecycle state. Each kind-0 stack layer gains (a) an
//       appended-row count word right after its units/fan_in words — the
//       units the layer grew by online via add_units — and (b) a trailing
//       tombstone block (u64 count + that many u32 global unit ids) after
//       the retriever descriptor. A loader whose target layer is NARROWER
//       than the file re-grows it by the appended count before reading the
//       parameter blocks (so a config-built network loads a grown
//       checkpoint), then re-applies the tombstones through retire_units —
//       retired ids stay retired across save/load instead of resurrecting.
//       v1–v4 files load unchanged (no growth, no tombstones).
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "baseline/dense_network.h"
#include "core/network.h"

namespace slide {

/// Header fields of a checkpoint stream (see the version history above).
struct CheckpointInfo {
  std::uint32_t version = 0;
  std::uint32_t kind = 0;  ///< 0 = unified stack, 1 = legacy dense baseline
  Precision precision = Precision::kFP32;  ///< tag; fp32 for version-1 files
};

/// Reads the checkpoint header without consuming the stream (the stream is
/// rewound to where it was). Lets a serving boot decide its precision from
/// the tag before constructing the network.
CheckpointInfo peek_checkpoint_info(std::istream& in);
CheckpointInfo peek_checkpoint_info_file(const std::string& path);

/// Serializes all weights and biases of the network.
void save_weights(const Network& network, std::ostream& out);
void save_weights_file(const Network& network, const std::string& path);

/// Restores weights into an architecture-compatible network and rebuilds
/// its hash tables (parallelized when a pool is given).
void load_weights(Network& network, std::istream& in,
                  ThreadPool* pool = nullptr);
void load_weights_file(Network& network, const std::string& path,
                       ThreadPool* pool = nullptr);

/// Dense-baseline counterparts (same container format).
void save_weights(const DenseNetwork& network, std::ostream& out);
void load_weights(DenseNetwork& network, std::istream& in);

// ---------------------------------------------------------------------------
// Per-shard checkpoint files (distributed model parallelism, src/dist/)
// ---------------------------------------------------------------------------
//
// A shard file holds exactly one checkpoint-v3 shard block pair — the same
// weights+bias bytes that shard contributes to a whole-network checkpoint —
// plus the topology needed to validate it standalone ("SLSH" magic). A
// distributed worker writes its own file on checkpoint_shard and reads it
// back at boot, so the wide layer's parameters never transit the
// coordinator; serve/snapshot.h boots a serving network from the per-shard
// files plus the coordinator-side checkpoint of the other layers.

/// Identity and shape of one shard block (validated against the owning
/// layer on load).
struct ShardFileInfo {
  std::uint32_t shard_index = 0;
  std::uint32_t num_shards = 1;
  Index row_offset = 0;
  Index rows = 0;
  Index fan_in = 0;
};

/// Writes one shard's weight/bias blocks (`weights` is [rows x fan_in],
/// `bias` is [rows]) with the ShardFileInfo header.
void save_shard_file(const std::string& path, const ShardFileInfo& info,
                     std::span<const float> weights,
                     std::span<const float> bias);

/// Reads a shard file into `weights`/`bias` (resized) and returns its
/// header. Throws slide::Error on corruption or shape inconsistency.
ShardFileInfo load_shard_file(const std::string& path,
                              std::vector<float>& weights,
                              std::vector<float>& bias);

/// Reads only the header (cheap boot-time validation).
ShardFileInfo peek_shard_file(const std::string& path);

/// Canonical shard-file name for shard s of n next to `base`:
/// "<base>.shard<s>of<n>".
std::string shard_file_path(const std::string& base, int shard_index,
                            int num_shards);

}  // namespace slide
