#include "core/layer.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "core/sharded_layer.h"
#include "dist/distributed_layer.h"
#include "retrieval/exact_retriever.h"
#include "retrieval/hnsw_retriever.h"
#include "retrieval/lsh_retriever.h"
#include "simd/kernels.h"
#include "sys/prefetch.h"
#include "sys/timer.h"

namespace slide {

namespace {

void init_normal(float* w, std::size_t n, float stddev, Rng& rng) {
  for (std::size_t i = 0; i < n; ++i) w[i] = stddev * rng.normal();
}

/// Under async_delta, every k-th maintenance event runs a full rebuild
/// instead of a delta pass, flushing the stale bucket entries delta passes
/// leave behind (see SampledLayer::run_delta_reinsert).
constexpr long kDeltaHygienePeriod = 10;

// Weight-element-generic kernel selectors: the fp32 master path and the
// bf16 mirror path share one loop body below, differing only in the weight
// pointer type these resolve on.
inline void axpy_any(float alpha, const float* x, float* y,
                     std::size_t n) noexcept {
  simd::axpy(alpha, x, y, n);
}
inline void axpy_any(float alpha, const simd::Bf16* x, float* y,
                     std::size_t n) noexcept {
  simd::axpy_bf16(alpha, x, y, n);
}
inline float dot_any(const float* w, const float* x, std::size_t n) noexcept {
  return simd::dot(w, x, n);
}
inline float dot_any(const simd::Bf16* w, const float* x,
                     std::size_t n) noexcept {
  return simd::dot_bf16(w, x, n);
}
inline float sparse_dot_any(const Index* idx, const float* val,
                            std::size_t nnz, const float* w) noexcept {
  return simd::sparse_dot(idx, val, nnz, w);
}
inline float sparse_dot_any(const Index* idx, const float* val,
                            std::size_t nnz, const simd::Bf16* w) noexcept {
  return simd::sparse_dot_bf16(idx, val, nnz, w);
}

/// The embedding forward body shared by the fp32 master path and the bf16
/// mirror path: out = ReLU(W^T x + b) with W input-major [input_dim x
/// units].
template <typename W>
void embedding_forward(const AlignedVector<float>& bias, const W* weights,
                       Index units, const SparseVector& x, float* out,
                       [[maybe_unused]] Index input_dim) {
  std::copy(bias.begin(), bias.end(), out);
  const auto idx = x.indices();
  const auto val = x.values();
  for (std::size_t i = 0; i < idx.size(); ++i) {
    SLIDE_ASSERT(idx[i] < input_dim);
    if (i + kPrefetchDistance < idx.size()) {
      prefetch_read(weights + static_cast<std::size_t>(
                                  idx[i + kPrefetchDistance]) *
                                  units);
    }
    axpy_any(val[i], weights + static_cast<std::size_t>(idx[i]) * units, out,
             units);
  }
  simd::relu(out, units);
}

// Fp16 and Bf16 share the storage type (std::uint16_t), so the fp16 mirror
// cannot ride the axpy_any overload set — it gets an explicit twin.
void embedding_forward_f16(const AlignedVector<float>& bias,
                           const simd::Fp16* weights, Index units,
                           const SparseVector& x, float* out,
                           [[maybe_unused]] Index input_dim) {
  std::copy(bias.begin(), bias.end(), out);
  const auto idx = x.indices();
  const auto val = x.values();
  for (std::size_t i = 0; i < idx.size(); ++i) {
    SLIDE_ASSERT(idx[i] < input_dim);
    if (i + kPrefetchDistance < idx.size()) {
      prefetch_read(weights + static_cast<std::size_t>(
                                  idx[i + kPrefetchDistance]) *
                                  units);
    }
    simd::axpy_f16(val[i], weights + static_cast<std::size_t>(idx[i]) * units,
                   out, units);
  }
  simd::relu(out, units);
}

/// Int8 embedding forward: each active input feature contributes one
/// s8 row; its per-row scale folds into the axpy alpha together with the
/// feature value, so accumulation stays fp32.
void embedding_forward_i8(const AlignedVector<float>& bias,
                          const simd::I8* weights, const float* row_scales,
                          Index units, const SparseVector& x, float* out,
                          [[maybe_unused]] Index input_dim) {
  std::copy(bias.begin(), bias.end(), out);
  const auto idx = x.indices();
  const auto val = x.values();
  for (std::size_t i = 0; i < idx.size(); ++i) {
    SLIDE_ASSERT(idx[i] < input_dim);
    if (i + kPrefetchDistance < idx.size()) {
      prefetch_read(weights + static_cast<std::size_t>(
                                  idx[i + kPrefetchDistance]) *
                                  units);
    }
    const float alpha = val[i] * row_scales[idx[i]];
    if (alpha == 0.0f) continue;  // zero row (scale 0) or zero feature
    simd::axpy_i8(alpha, weights + static_cast<std::size_t>(idx[i]) * units,
                  out, units);
  }
  simd::relu(out, units);
}

/// Bytes of one quantized mirror actually backed by THP (all-or-nothing
/// per allocation: HugeBuffer records whether the kernel accepted the
/// madvise for the whole range).
template <typename T>
std::size_t thp_bytes(const HugeArrayT<T>& mirror) noexcept {
  return mirror.uses_thp() ? mirror.size() * sizeof(T) : 0;
}

/// One unit's pre-activation against the previous layer's active set,
/// generic over the weight element type (fp32 masters / bf16 mirror).
template <typename W>
float score_unit(float bias, const W* w, std::span<const Index> prev_ids,
                 std::span<const float> prev_act) noexcept {
  if (prev_ids.empty()) return bias + dot_any(w, prev_act.data(), prev_act.size());
  return bias + sparse_dot_any(prev_ids.data(), prev_act.data(),
                               prev_ids.size(), w);
}

SampledLayer::Config dense_layer_config(Index units, Index fan_in,
                                        Activation activation,
                                        float init_stddev,
                                        const AdamConfig& adam,
                                        std::uint64_t seed,
                                        Precision precision) {
  SampledLayer::Config cfg;
  cfg.units = units;
  cfg.fan_in = fan_in;
  cfg.activation = activation;
  cfg.hashed = false;
  cfg.random_sampled = false;
  cfg.init_stddev = init_stddev;
  cfg.adam = adam;
  cfg.precision = precision;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

const char* to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kDense:
      return "dense";
    case LayerKind::kSampled:
      return "sampled";
    case LayerKind::kRandomSampled:
      return "random_sampled";
    case LayerKind::kSharded:
      return "sharded";
    case LayerKind::kDistributed:
      return "distributed";
  }
  return "?";
}

void Layer::forward_inference_topk(std::span<const Index> prev_ids,
                                   std::span<const float> prev_act, int k,
                                   bool exact, Rng& rng, VisitedSet& visited,
                                   TopKScratch& scratch,
                                   std::vector<Index>& out) const {
  forward_inference(prev_ids, prev_act, exact, rng, visited, scratch.ids,
                    scratch.act);
  std::vector<std::size_t>& order = scratch.order;
  const std::vector<float>& act = scratch.act;
  order.resize(act.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const std::size_t take =
      std::min<std::size_t>(static_cast<std::size_t>(k), order.size());
  // Ties break toward the earlier candidate position (the lower unit id in
  // exact mode), matching predict_top1's first-max rule.
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(take),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return act[a] > act[b] || (act[a] == act[b] && a < b);
                    });
  out.clear();
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(scratch.ids.empty() ? static_cast<Index>(order[i])
                                      : scratch.ids[order[i]]);
  }
}

// ===========================================================================
// EmbeddingLayer
// ===========================================================================

EmbeddingLayer::EmbeddingLayer(Index input_dim, Index units,
                               float init_stddev, int batch_slots,
                               int max_threads, const AdamConfig& adam,
                               std::uint64_t seed, Precision precision)
    : input_dim_(input_dim),
      units_(units),
      precision_(precision),
      weights_(static_cast<std::size_t>(input_dim) * units),
      grads_(static_cast<std::size_t>(input_dim) * units),
      bias_(units, 0.0f),
      bias_grad_(units, 0.0f),
      adam_(adam, static_cast<std::size_t>(input_dim) * units + units) {
  SLIDE_CHECK(input_dim_ > 0 && units_ > 0,
              "EmbeddingLayer: dimensions must be positive");
  SLIDE_CHECK(batch_slots > 0 && max_threads > 0,
              "EmbeddingLayer: slots/threads must be positive");
  Rng rng(seed);
  init_normal(weights_.data(), weights_.size(),
              init_stddev > 0.0f ? init_stddev : 0.5f, rng);

  slots_.resize(static_cast<std::size_t>(batch_slots));
  for (auto& s : slots_) {
    s.dense_width = units_;
    s.act.assign(units_, 0.0f);
    s.err.assign(units_, 0.0f);
  }
  // C++20 value-initializes atomics: the array starts zeroed.
  column_touched_ =
      std::make_unique<std::atomic<std::uint8_t>[]>(input_dim_);
  touched_lists_.resize(static_cast<std::size_t>(max_threads));

  // Allocate the quantized mirror up front so later refreshes are noexcept
  // (re-quantize in place, no reallocation). Exactly one mirror exists,
  // matching the precision; all are hugepage-backed (HugeArrayT).
  switch (precision_) {
    case Precision::kFP32:
      break;
    case Precision::kBF16:
      weights_bf16_.resize(weights_.size());
      break;
    case Precision::kFP16:
      weights_f16_.resize(weights_.size());
      break;
    case Precision::kInt8:
      weights_i8_.resize(weights_.size());
      i8_scales_.assign(static_cast<std::size_t>(input_dim_), 0.0f);
      break;
  }
  refresh_inference_mirror();
}

void EmbeddingLayer::refresh_inference_mirror() noexcept {
  switch (precision_) {
    case Precision::kFP32:
      return;
    case Precision::kBF16:
      simd::quantize_bf16(weights_.data(), weights_bf16_.data(),
                          weights_.size());
      return;
    case Precision::kFP16:
      simd::quantize_f16(weights_.data(), weights_f16_.data(),
                         weights_.size());
      return;
    case Precision::kInt8:
      // Per-input-row symmetric quantization (rows are units_-long here:
      // the layout is input-major).
      for (Index r = 0; r < input_dim_; ++r) {
        const std::size_t off = static_cast<std::size_t>(r) * units_;
        i8_scales_[r] = simd::quantize_i8(weights_.data() + off,
                                          weights_i8_.data() + off, units_);
      }
      return;
  }
}

std::size_t EmbeddingLayer::inference_weight_bytes() const noexcept {
  const std::size_t bias_bytes = bias_.size() * sizeof(float);
  if (bf16_inference())
    return weights_bf16_.size() * sizeof(simd::Bf16) + bias_bytes;
  if (f16_inference())
    return weights_f16_.size() * sizeof(simd::Fp16) + bias_bytes;
  if (i8_inference())
    return weights_i8_.size() * sizeof(simd::I8) +
           i8_scales_.size() * sizeof(float) + bias_bytes;
  return weights_.size() * sizeof(float) + bias_bytes;
}

LayerMemory EmbeddingLayer::memory() const noexcept {
  LayerMemory m;
  m.master_bytes = (weights_.size() + bias_.size()) * sizeof(float);
  m.mirror_bytes = weights_bf16_.size() * sizeof(simd::Bf16) +
                   weights_f16_.size() * sizeof(simd::Fp16) +
                   weights_i8_.size() * sizeof(simd::I8) +
                   i8_scales_.size() * sizeof(float);
  m.mirror_hugepage_bytes = thp_bytes(weights_bf16_) + thp_bytes(weights_f16_) +
                            thp_bytes(weights_i8_);
  m.optimizer_bytes = (grads_.size() + bias_grad_.size()) * sizeof(float) +
                      2 * adam_.num_params() * sizeof(float);
  return m;
}

void EmbeddingLayer::forward(int slot, const SparseVector& x) {
  ActiveSet& s = slots_[static_cast<std::size_t>(slot)];
  forward_master(x, s.act.data());  // training always reads fp32 masters
  std::fill(s.err.begin(), s.err.end(), 0.0f);
}

void EmbeddingLayer::forward_master(const SparseVector& x,
                                    float* out) const {
  embedding_forward(bias_, weights_.data(), units_, x, out, input_dim_);
}

void EmbeddingLayer::forward_inference(const SparseVector& x,
                                       float* out) const {
  if (bf16_inference()) {
    embedding_forward(bias_, weights_bf16_.data(), units_, x, out,
                      input_dim_);
  } else if (f16_inference()) {
    embedding_forward_f16(bias_, weights_f16_.data(), units_, x, out,
                          input_dim_);
  } else if (i8_inference()) {
    embedding_forward_i8(bias_, weights_i8_.data(), i8_scales_.data(), units_,
                         x, out, input_dim_);
  } else {
    forward_master(x, out);
  }
}

void EmbeddingLayer::backward(int slot, const SparseVector& x, int tid) {
  ActiveSet& s = slots_[static_cast<std::size_t>(slot)];
  // ReLU': activations are post-ReLU, so act > 0 <=> pre-activation > 0.
  for (Index j = 0; j < units_; ++j) {
    if (s.act[j] <= 0.0f) s.err[j] = 0.0f;
  }

  std::unique_lock<std::mutex> lock;
  if (use_locks_) lock = std::unique_lock(accum_mutex_);

  // Bias gradient (racy accumulate across slots — HOGWILD).
  simd::axpy(1.0f, s.err.data(), bias_grad_.data(), units_);

  const auto idx = x.indices();
  const auto val = x.values();
  auto& touched = touched_lists_[static_cast<std::size_t>(tid)];
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const Index c = idx[i];
    float* g = grads_.data() + static_cast<std::size_t>(c) * units_;
    if (i + kPrefetchDistance < idx.size()) {
      prefetch_write(grads_.data() +
                     static_cast<std::size_t>(idx[i + kPrefetchDistance]) *
                         units_);
    }
    simd::axpy(val[i], s.err.data(), g, units_);
    if (column_touched_[c].exchange(1, std::memory_order_relaxed) == 0)
      touched.push_back(c);
  }
}

void EmbeddingLayer::apply_updates(float lr, ThreadPool* pool) {
  adam_.step_begin();

  // The bias row is touched by every sample; update it densely.
  const std::size_t bias_base = static_cast<std::size_t>(input_dim_) * units_;
  adam_.update_span(bias_.data(), bias_grad_.data(), bias_base, units_, lr);
  std::fill(bias_grad_.begin(), bias_grad_.end(), 0.0f);

  // Note: must NOT be thread_local — the lambda below runs on pool workers,
  // and thread_locals are not captured (each worker would see its own,
  // empty, instance).
  std::vector<Index>& cols = apply_scratch_;
  cols.clear();
  for (auto& list : touched_lists_) {
    cols.insert(cols.end(), list.begin(), list.end());
    list.clear();
  }

  auto apply_column = [&](std::size_t k, int) {
    const Index c = cols[k];
    float* w = weight_column(c);
    float* g = grads_.data() + static_cast<std::size_t>(c) * units_;
    adam_.update_span(w, g, static_cast<std::size_t>(c) * units_, units_, lr);
    std::fill(g, g + units_, 0.0f);
    column_touched_[c].store(0, std::memory_order_relaxed);
  };
  if (pool != nullptr && pool->num_threads() > 1 && cols.size() > 64) {
    pool->parallel_for(cols.size(), apply_column);
  } else {
    for (std::size_t k = 0; k < cols.size(); ++k) apply_column(k, 0);
  }
}

// ===========================================================================
// SampledLayer
// ===========================================================================

SampledLayer::SampledLayer(const Config& config, int batch_slots,
                           int max_threads)
    : config_(config),
      units_(config.units),
      fan_in_(config.fan_in),
      weights_(static_cast<std::size_t>(config.units) * config.fan_in),
      grads_(static_cast<std::size_t>(config.units) * config.fan_in),
      bias_(config.units, 0.0f),
      bias_grad_(config.units, 0.0f),
      adam_(config.adam,
            static_cast<std::size_t>(config.units) * config.fan_in +
                config.units),
      seed_(config.seed) {
  SLIDE_CHECK(units_ > 0 && fan_in_ > 0,
              "SampledLayer: dimensions must be positive");
  SLIDE_CHECK(batch_slots > 0 && max_threads > 0,
              "SampledLayer: slots/threads must be positive");
  SLIDE_CHECK(!(config_.hashed && config_.random_sampled),
              "SampledLayer: hashed and random_sampled are exclusive");

  Rng rng(config.seed);
  const float stddev = config.init_stddev > 0.0f
                           ? config.init_stddev
                           : 2.0f / std::sqrt(static_cast<float>(fan_in_));
  init_normal(weights_.data(), weights_.size(), stddev, rng);

  slots_.resize(static_cast<std::size_t>(batch_slots));
  touched_ = std::make_unique<std::atomic<std::uint8_t>[]>(units_);
  touched_lists_.resize(static_cast<std::size_t>(max_threads));
  sampling_time_ = std::vector<PaddedDouble>(
      static_cast<std::size_t>(max_threads));
  compute_time_ = std::vector<PaddedDouble>(
      static_cast<std::size_t>(max_threads));

  if (config_.hashed) {
    HashFamilyConfig family = config_.family;
    family.dim = fan_in_;
    if (config_.incremental_rehash) {
      SLIDE_CHECK(family.kind == HashFamilyKind::kSimhash,
                  "incremental_rehash requires the Simhash family");
      SLIDE_CHECK(config_.retriever == retrieval::RetrieverKind::kLsh,
                  "incremental_rehash requires the LSH retriever");
    }
    const retrieval::RowView rows{weights_.data(), fan_in_, units_};
    switch (config_.retriever) {
      case retrieval::RetrieverKind::kLsh: {
        // The retriever owns the tables; the layer keeps a raw alias so
        // the memo-aware rebuild / delta-reinsert machinery below drives
        // them directly (bit-identical to the pre-subsystem layer).
        auto lsh = std::make_unique<retrieval::LshRetriever>(
            make_hash_family(family), config_.table, config_.sampling, rows,
            config.seed + 1);
        tables_ = &lsh->tables();
        retriever_ = std::move(lsh);
        break;
      }
      case retrieval::RetrieverKind::kExact:
        retriever_ = std::make_unique<retrieval::ExactRetriever>(rows);
        break;
      case retrieval::RetrieverKind::kHnsw:
        retriever_ = std::make_unique<retrieval::HnswRetriever>(
            rows, config_.hnsw, config.seed + 1);
        break;
    }
    if (tables_ != nullptr) {
      simhash_ = dynamic_cast<const Simhash*>(&tables_->family());
      if (config_.incremental_rehash) {
        SLIDE_ASSERT(simhash_ != nullptr);
        projection_memo_ = HugeArray(
            static_cast<std::size_t>(units_) *
            static_cast<std::size_t>(simhash_->num_projections()));
      }
    }
    // The worker object is free until its first task spawns the thread, so
    // async layers can construct it eagerly (no lazy-init race to manage).
    if (config_.maintenance != MaintenancePolicy::kSync)
      worker_ = std::make_unique<BackgroundWorker>();
    if (config_.maintenance == MaintenancePolicy::kAsyncDelta)
      dirty_flag_ = std::make_unique<std::atomic<std::uint8_t>[]>(units_);
    next_rebuild_ = config_.rebuild.initial_period;
    if (tables_ != nullptr) {
      build_group(tables_->active_group(), nullptr);  // initial build (§3.1)
    } else {
      retriever_->rebuild(nullptr);  // initial index build
    }
  }

  // Allocate the quantized mirror up front so later refreshes are noexcept
  // (re-quantize in place, no reallocation).
  switch (config_.precision) {
    case Precision::kFP32:
      break;
    case Precision::kBF16:
      weights_bf16_.resize(weights_.size());
      break;
    case Precision::kFP16:
      weights_f16_.resize(weights_.size());
      break;
    case Precision::kInt8:
      weights_i8_.resize(weights_.size());
      i8_scales_.assign(static_cast<std::size_t>(units_), 0.0f);
      break;
  }
  refresh_inference_mirror();
}

void SampledLayer::refresh_inference_mirror() noexcept {
  switch (config_.precision) {
    case Precision::kFP32:
      return;
    case Precision::kBF16:
      simd::quantize_bf16(weights_.data(), weights_bf16_.data(),
                          weights_.size());
      return;
    case Precision::kFP16:
      simd::quantize_f16(weights_.data(), weights_f16_.data(),
                         weights_.size());
      return;
    case Precision::kInt8:
      // Per-neuron-row symmetric quantization (rows are fan_in_-long;
      // neuron-major layout). Row-local and deterministic, so reloading the
      // same masters under any shard partition reproduces identical scales.
      for (Index u = 0; u < units_; ++u) {
        const std::size_t off =
            static_cast<std::size_t>(u) * static_cast<std::size_t>(fan_in_);
        i8_scales_[u] = simd::quantize_i8(weights_.data() + off,
                                          weights_i8_.data() + off,
                                          static_cast<std::size_t>(fan_in_));
      }
      return;
  }
}

std::size_t SampledLayer::inference_weight_bytes() const noexcept {
  const std::size_t bias_bytes = bias_.size() * sizeof(float);
  if (bf16_inference())
    return weights_bf16_.size() * sizeof(simd::Bf16) + bias_bytes;
  if (f16_inference())
    return weights_f16_.size() * sizeof(simd::Fp16) + bias_bytes;
  if (i8_inference())
    return weights_i8_.size() * sizeof(simd::I8) +
           i8_scales_.size() * sizeof(float) + bias_bytes;
  return weights_.size() * sizeof(float) + bias_bytes;
}

LayerMemory SampledLayer::memory() const noexcept {
  LayerMemory m;
  m.master_bytes = (weights_.size() + bias_.size()) * sizeof(float);
  m.mirror_bytes = weights_bf16_.size() * sizeof(simd::Bf16) +
                   weights_f16_.size() * sizeof(simd::Fp16) +
                   weights_i8_.size() * sizeof(simd::I8) +
                   i8_scales_.size() * sizeof(float);
  m.mirror_hugepage_bytes = thp_bytes(weights_bf16_) + thp_bytes(weights_f16_) +
                            thp_bytes(weights_i8_);
  m.optimizer_bytes = (grads_.size() + bias_grad_.size()) * sizeof(float) +
                      2 * adam_.num_params() * sizeof(float);
  m.retriever_bytes =
      retriever_ != nullptr ? retriever_->memory_bytes() : 0;
  return m;
}

float SampledLayer::activation_of_bf16(
    Index unit, std::span<const Index> prev_ids,
    std::span<const float> prev_act) const {
  const simd::Bf16* w =
      weights_bf16_.data() + static_cast<std::size_t>(unit) * fan_in_;
  return score_unit(bias_[unit], w, prev_ids, prev_act);
}

float SampledLayer::activation_of_f16(
    Index unit, std::span<const Index> prev_ids,
    std::span<const float> prev_act) const {
  // Fp16 shares Bf16's storage type (std::uint16_t), so score_unit's
  // overload set cannot dispatch on it — call the f16 kernels directly.
  const simd::Fp16* w =
      weights_f16_.data() + static_cast<std::size_t>(unit) * fan_in_;
  if (prev_ids.empty())
    return bias_[unit] + simd::dot_f16(w, prev_act.data(), prev_act.size());
  return bias_[unit] + simd::sparse_dot_f16(prev_ids.data(), prev_act.data(),
                                            prev_ids.size(), w);
}

float SampledLayer::activation_of_i8(Index unit,
                                     std::span<const Index> prev_ids,
                                     std::span<const float> prev_act,
                                     const simd::U8* qx,
                                     float act_scale) const {
  const simd::I8* w =
      weights_i8_.data() + static_cast<std::size_t>(unit) * fan_in_;
  const float sw = i8_scales_[unit];
  if (sw == 0.0f) return bias_[unit];  // all-zero weight row
  if (prev_ids.empty()) {
    // Dense prev: integer dot against the caller's u8-quantized
    // activations, score recovered as sw * sx * dot (simd/int8.h).
    if (act_scale == 0.0f) return bias_[unit];  // all-zero activations
    return bias_[unit] +
           sw * act_scale *
               static_cast<float>(simd::dot_i8(w, qx, prev_act.size()));
  }
  // Sparse prev: fp32 values against widened s8 weights (a byte gather has
  // no SIMD win at SLIDE's active-set sparsity).
  return bias_[unit] + sw * simd::sparse_dot_i8(prev_ids.data(),
                                                prev_act.data(),
                                                prev_ids.size(), w);
}

float SampledLayer::activation_of(Index unit,
                                  std::span<const Index> prev_ids,
                                  std::span<const float> prev_act) const {
  return score_unit(bias_[unit], weight_row(unit), prev_ids, prev_act);
}

void SampledLayer::score_rows(std::span<const Index> ids,
                              std::span<const Index> prev_ids,
                              std::span<const float> prev_act,
                              float* out) const {
  const std::size_t n = ids.size();
  if (i8_inference()) {
    const simd::U8* qx = nullptr;
    float sx = 0.0f;
    if (prev_ids.empty()) {
      // One activation quantization per query, amortized over every
      // candidate row scored below.
      thread_local std::vector<simd::U8> qx_scratch;
      qx_scratch.resize(prev_act.size());
      sx = simd::quantize_act_u8(prev_act.data(), qx_scratch.data(),
                                 prev_act.size());
      qx = qx_scratch.data();
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (i + kPrefetchDistance < n)
        prefetch_read(inference_row(ids[i + kPrefetchDistance]));
      out[i] = activation_of_i8(ids[i], prev_ids, prev_act, qx, sx);
    }
    return;
  }
  if (f16_inference()) {
    for (std::size_t i = 0; i < n; ++i) {
      if (i + kPrefetchDistance < n)
        prefetch_read(inference_row(ids[i + kPrefetchDistance]));
      out[i] = activation_of_f16(ids[i], prev_ids, prev_act);
    }
    return;
  }
  if (bf16_inference()) {
    for (std::size_t i = 0; i < n; ++i) {
      if (i + kPrefetchDistance < n)
        prefetch_read(inference_row(ids[i + kPrefetchDistance]));
      out[i] = activation_of_bf16(ids[i], prev_ids, prev_act);
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchDistance < n)
      prefetch_read(inference_row(ids[i + kPrefetchDistance]));
    out[i] = activation_of(ids[i], prev_ids, prev_act);
  }
}

void SampledLayer::select_active(int slot, const ActiveSet& prev,
                                 std::span<const Index> forced, Rng& rng,
                                 VisitedSet& visited, int tid) {
  ActiveSet& s = slots_[static_cast<std::size_t>(slot)];
  s.ids.clear();
  const Index target = std::min<Index>(config_.sampling.target, units_);

  visited.begin_epoch();
  for (Index f : forced) {
    SLIDE_ASSERT(f < units_);
    if (visited.insert(f)) s.ids.push_back(f);
  }

  // Tombstone gate: false on the no-churn path, so the loops below stay
  // bit-identical (and consume the same RNG stream) when nothing was ever
  // retired.
  const bool tombstoned =
      retriever_ != nullptr && retriever_->has_removed();

  if (target >= units_) {
    // Degenerate setting: everything (live) is active.
    for (Index u = 0; u < units_; ++u) {
      if (tombstoned && retriever_->is_removed(u)) continue;
      if (visited.insert(u)) s.ids.push_back(u);
    }
    return;
  }

  WallTimer timer;
  // Candidate generation through the retriever (fresh_epoch = false: the
  // forced labels above are pre-stamped so they are never re-retrieved).
  // For the LSH backend this is the historical key → pin → buckets →
  // sample_neurons sequence, bit for bit.
  retriever_->retrieve(prev.ids,
                       std::span<const float>(prev.act.data(), prev.size()),
                       target, rng, visited, s.ids,
                       /*fresh_epoch=*/false);

  if (config_.fill_random_to_target && s.ids.size() < target) {
    // Uniform random top-up (the reference implementation's fill-in). The
    // attempt cap guards against the coupon-collector tail when target is
    // close to the layer width.
    long attempts = 20L * static_cast<long>(target);
    while (s.ids.size() < target && attempts-- > 0) {
      const Index id = rng.uniform(units_);
      if (tombstoned && retriever_->is_removed(id)) continue;
      if (visited.insert(id)) s.ids.push_back(id);
    }
  }
  auto& acc = sampling_time_[static_cast<std::size_t>(tid)].value;
  acc.store(acc.load(std::memory_order_relaxed) + timer.seconds(),
            std::memory_order_relaxed);
}

void SampledLayer::compute_activations(ActiveSet& s,
                                       const ActiveSet& prev) const {
  const std::span<const Index> prev_ids = prev.ids;
  const std::span<const float> prev_act(prev.act.data(), prev.size());
  if (s.dense()) {
    s.act.resize(units_);
    s.err.assign(units_, 0.0f);
    for (Index u = 0; u < units_; ++u)
      s.act[u] = activation_of(u, prev_ids, prev_act);
    if (config_.activation == Activation::kReLU)
      simd::relu(s.act.data(), units_);
    return;
  }
  const std::size_t n = s.ids.size();
  s.act.resize(n);
  s.err.assign(n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchDistance < n)
      prefetch_read(weight_row(s.ids[i + kPrefetchDistance]));
    s.act[i] = activation_of(s.ids[i], prev_ids, prev_act);
  }
  if (config_.activation == Activation::kReLU)
    simd::relu(s.act.data(), n);
}

void SampledLayer::forward(int slot, const ActiveSet& prev,
                           std::span<const Index> forced, Rng& rng,
                           VisitedSet& visited, int tid) {
  ActiveSet& s = slots_[static_cast<std::size_t>(slot)];
  if (config_.hashed) {
    select_active(slot, prev, forced, rng, visited, tid);
    active_sum_.fetch_add(s.ids.size(), std::memory_order_relaxed);
    active_events_.fetch_add(1, std::memory_order_relaxed);
  } else if (config_.random_sampled) {
    // Sampled-Softmax baseline: labels + static uniform classes. Unlike the
    // LSH path the choice is input-independent (that is the point of the
    // paper's Figure 7 comparison).
    s.ids.clear();
    visited.begin_epoch();
    for (Index f : forced) {
      if (visited.insert(f)) s.ids.push_back(f);
    }
    const Index target = std::min<Index>(config_.sampling.target, units_);
    long attempts = 20L * static_cast<long>(target);
    while (s.ids.size() < target && attempts-- > 0) {
      const Index id = rng.uniform(units_);
      if (visited.insert(id)) s.ids.push_back(id);
    }
    active_sum_.fetch_add(s.ids.size(), std::memory_order_relaxed);
    active_events_.fetch_add(1, std::memory_order_relaxed);
  } else {
    s.ids.clear();  // dense mode
    s.dense_width = units_;
  }
  WallTimer timer;
  compute_activations(s, prev);
  auto& acc = compute_time_[static_cast<std::size_t>(tid)].value;
  acc.store(acc.load(std::memory_order_relaxed) + timer.seconds(),
            std::memory_order_relaxed);
}

float SampledLayer::compute_softmax_ce_deltas(int slot,
                                              std::span<const Index> labels,
                                              float inv_batch) {
  SLIDE_CHECK(config_.activation == Activation::kSoftmax,
              "softmax deltas on a non-softmax layer");
  ActiveSet& s = slots_[static_cast<std::size_t>(slot)];
  const std::size_t n = s.size();
  if (n == 0) return 0.0f;

  // Softmax over the *active* neurons only: the normalizing constant is the
  // sum over actives, not over all units (paper §3.1).
  simd::softmax_inplace(s.act.data(), n);

  const float y = labels.empty()
                      ? 0.0f
                      : 1.0f / static_cast<float>(labels.size());
  float loss = 0.0f;
  if (s.dense()) {
    for (std::size_t i = 0; i < n; ++i) s.err[i] = s.act[i] * inv_batch;
    for (Index label : labels) {
      s.err[label] -= y * inv_batch;
      loss -= y * std::log(std::max(s.act[label], 1e-30f));
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) s.err[i] = s.act[i] * inv_batch;
    // Training forwards force the labels to the front of the active set.
    for (std::size_t i = 0; i < labels.size(); ++i) {
      SLIDE_ASSERT(i < s.ids.size() && s.ids[i] == labels[i]);
      s.err[i] -= y * inv_batch;
      loss -= y * std::log(std::max(s.act[i], 1e-30f));
    }
  }
  return loss;
}

void SampledLayer::compute_relu_deltas(int slot) {
  ActiveSet& s = slots_[static_cast<std::size_t>(slot)];
  const std::size_t n = s.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (s.act[i] <= 0.0f) s.err[i] = 0.0f;
  }
}

void SampledLayer::backward(int slot, ActiveSet& prev, int tid) {
  ActiveSet& s = slots_[static_cast<std::size_t>(slot)];
  const std::size_t n = s.size();
  WallTimer timer;

  std::unique_lock<std::mutex> lock;
  if (use_locks_) lock = std::unique_lock(accum_mutex_);

  auto& touched = touched_lists_[static_cast<std::size_t>(tid)];
  const std::size_t prev_n = prev.size();
  for (std::size_t i = 0; i < n; ++i) {
    const float delta = s.err[i];
    if (delta == 0.0f) continue;
    const Index u = s.dense() ? static_cast<Index>(i) : s.ids[i];
    bias_grad_[u] += delta;
    const float* w = weight_row(u);
    float* g = grads_.data() + static_cast<std::size_t>(u) * fan_in_;
    if (prev.dense()) {
      // Error to the previous layer and gradient accumulation are both
      // contiguous fan_in-length AXPYs (SIMD fast path).
      simd::axpy(delta, w, prev.err.data(), prev_n);
      simd::axpy(delta, prev.act.data(), g, prev_n);
    } else {
      for (std::size_t p = 0; p < prev_n; ++p) {
        const Index j = prev.ids[p];
        prev.err[p] += delta * w[j];
        g[j] += delta * prev.act[p];
      }
    }
    if (touched_[u].exchange(1, std::memory_order_relaxed) == 0)
      touched.push_back(u);
  }
  auto& acc = compute_time_[static_cast<std::size_t>(tid)].value;
  acc.store(acc.load(std::memory_order_relaxed) + timer.seconds(),
            std::memory_order_relaxed);
}

void SampledLayer::apply_updates(float lr, ThreadPool* pool) {
  adam_.step_begin();

  // Member scratch, not thread_local: the lambda runs on pool workers and
  // thread_locals are not captured across threads.
  std::vector<Index>& units = apply_scratch_;
  units.clear();
  for (auto& list : touched_lists_) {
    units.insert(units.end(), list.begin(), list.end());
    list.clear();
  }

  const std::size_t bias_base = static_cast<std::size_t>(units_) * fan_in_;
  const bool memo = config_.incremental_rehash && simhash_ != nullptr;

  auto apply_unit = [&](std::size_t k, int) {
    const Index u = units[k];
    float* w = weight_row(u);
    float* g = grads_.data() + static_cast<std::size_t>(u) * fan_in_;
    thread_local std::vector<float> old_row;
    if (memo) old_row.assign(w, w + fan_in_);

    adam_.update_span(w, g, static_cast<std::size_t>(u) * fan_in_, fan_in_,
                      lr);
    std::fill(g, g + fan_in_, 0.0f);
    adam_.update_at(&bias_[u], bias_grad_[u], bias_base + u, lr);
    bias_grad_[u] = 0.0f;
    touched_[u].store(0, std::memory_order_relaxed);

    if (memo) {
      // Paper §4.2 heuristic 3: propagate only the changed coordinates into
      // the memoized projection values.
      float* memo_row = projection_memo_.data() +
                        static_cast<std::size_t>(u) *
                            static_cast<std::size_t>(
                                simhash_->num_projections());
      for (Index d = 0; d < fan_in_; ++d) {
        const float delta = w[d] - old_row[d];
        if (delta != 0.0f) simhash_->update_projections(d, delta, memo_row);
      }
    }
  };

  if (pool != nullptr && pool->num_threads() > 1 && units.size() > 16) {
    pool->parallel_for(units.size(), apply_unit);
  } else {
    for (std::size_t k = 0; k < units.size(); ++k) apply_unit(k, 0);
  }

  // Feed the delta maintenance queue: these units' weight rows (and memo
  // projections) just moved, so their table entries are stale until the
  // next maintenance event re-inserts them (async_delta only). The flag
  // keeps each unit queued once across batches.
  if (config_.hashed &&
      config_.maintenance == MaintenancePolicy::kAsyncDelta &&
      config_.rebuild.enabled && !units.empty() &&
      retriever_->supports_delta()) {
    std::lock_guard lock(dirty_mutex_);
    for (Index u : units) {
      if (dirty_flag_[u].exchange(1, std::memory_order_relaxed) == 0)
        dirty_.push_back(u);
    }
  }
}

bool SampledLayer::maybe_rebuild(long iteration, ThreadPool* pool) {
  if (!config_.hashed || !config_.rebuild.enabled) return false;
  if (iteration < next_rebuild_) return false;

  ++schedule_events_;
  switch (config_.maintenance) {
    case MaintenancePolicy::kSync:
      // In-place rebuild on the calling thread: the trainer's contract says
      // no table reader is active between batches. Non-LSH retrievers
      // rebuild through the generic hook (shadow build + publish, so
      // "in place" is still reader-safe).
      if (tables_ != nullptr) {
        build_group(tables_->active_group(), pool);
      } else {
        retriever_->rebuild(pool);
      }
      rebuild_count_.fetch_add(1, std::memory_order_acq_rel);
      break;
    case MaintenancePolicy::kAsyncFull:
      schedule_full_rebuild();
      break;
    case MaintenancePolicy::kAsyncDelta: {
      if (!retriever_->supports_delta()) {
        // Backend cannot refresh single ids (HNSW, exact): every delta
        // event escalates to a full rebuild.
        schedule_full_rebuild();
        break;
      }
      std::size_t dirty_size;
      {
        std::lock_guard lock(dirty_mutex_);
        dirty_size = dirty_.size();
      }
      // Delta passes leave the moved neurons' stale bucket entries behind;
      // escalate to a full rebuild when the dirty set covers most of the
      // layer (a delta would cost nearly as much anyway) and periodically
      // for hygiene, so staleness cannot accumulate without bound.
      const bool hygiene = schedule_events_ % kDeltaHygienePeriod == 0;
      if (hygiene || 2 * dirty_size >= static_cast<std::size_t>(units_)) {
        schedule_full_rebuild();
      } else {
        schedule_delta_reinsert();
      }
      break;
    }
  }
  // Exponential back-off between maintenance events (paper §4.2 heuristic
  // 1), counted in events fired — identical to the pre-async schedule for
  // the sync policy.
  const double gap = static_cast<double>(config_.rebuild.initial_period) *
                     std::exp(config_.rebuild.decay *
                              static_cast<double>(schedule_events_));
  next_rebuild_ =
      iteration + std::max<long>(1, static_cast<long>(std::llround(gap)));
  return true;
}

void SampledLayer::rebuild_tables(ThreadPool* pool) {
  if (!config_.hashed) return;
  // Serialize against the background worker: the maintenance side of
  // MaintainedTables allows exactly one caller at a time.
  quiesce_maintenance();
  if (tables_ != nullptr) {
    build_group(tables_->active_group(), pool);
  } else {
    retriever_->rebuild(pool);
  }
}

void SampledLayer::build_group(LshTableGroup& group, ThreadPool* pool) {
  const bool memo = config_.incremental_rehash && simhash_ != nullptr;
  if (!memo) {
    group.build_from_rows(weights_.data(), fan_in_, units_, pool);
    return;
  }

  // Incremental mode: (re)fill the memo from the weights on the first
  // build; afterwards the memo is kept in sync by apply_updates, so keys
  // come straight from the memoized projections — O(K*L) per neuron instead
  // of O(K*L*d/3).
  group.clear();
  const int num_proj = simhash_->num_projections();
  const bool have_memo = memo_initialized_.load(std::memory_order_acquire);
  auto build_unit = [&](std::size_t begin, std::size_t end, Rng& rng) {
    std::vector<std::uint32_t> keys(static_cast<std::size_t>(group.l()));
    for (std::size_t u = begin; u < end; ++u) {
      float* memo_row = projection_memo_.data() +
                        u * static_cast<std::size_t>(num_proj);
      if (!have_memo)
        simhash_->project_dense(weight_row(static_cast<Index>(u)), memo_row);
      simhash_->keys_from_projections(memo_row, keys);
      group.insert(static_cast<Index>(u), keys, rng);
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    std::vector<Rng> rngs;
    Rng seeder(seed_ + 77);
    for (int t = 0; t < pool->num_threads(); ++t) rngs.push_back(seeder.fork());
    pool->parallel_range(units_,
                         [&](std::size_t begin, std::size_t end, int tid) {
                           build_unit(begin, end,
                                      rngs[static_cast<std::size_t>(tid)]);
                         });
  } else {
    Rng rng(seed_ + 77);
    build_unit(0, units_, rng);
  }
  memo_initialized_.store(true, std::memory_order_release);
}

void SampledLayer::schedule_full_rebuild() {
  // At most one queued full rebuild: if the worker is still on the
  // previous one, this event's request coalesces into it rather than
  // stacking up. Under a cadence faster than a rebuild takes, the layer
  // therefore degrades table freshness instead of growing a backlog —
  // the same graceful staleness the paper's decay schedule trades on (the
  // completed-rebuild count is visible via rebuild_count()).
  if (full_pending_.exchange(true, std::memory_order_acq_rel)) return;
  worker_->submit([this] {
    // Units queued so far are covered by this build (it hashes current
    // weights); drop them so the next delta pass is not redundant. Units
    // dirtied after this point re-queue via their re-armed flags.
    if (dirty_flag_ != nullptr) {
      thread_local std::vector<Index> discarded;
      drain_dirty(discarded);
    }
    if (tables_ != nullptr) {
      build_group(tables_->shadow_group(), nullptr);
      tables_->publish_shadow();
    } else {
      retriever_->rebuild(nullptr);
    }
    rebuild_count_.fetch_add(1, std::memory_order_acq_rel);
    full_pending_.store(false, std::memory_order_release);
  });
}

void SampledLayer::schedule_delta_reinsert() {
  if (delta_pending_.exchange(true, std::memory_order_acq_rel)) return;
  worker_->submit([this] {
    run_delta_reinsert();
    delta_pending_.store(false, std::memory_order_release);
  });
}

void SampledLayer::drain_dirty(std::vector<Index>& ids) {
  ids.clear();
  {
    std::lock_guard lock(dirty_mutex_);
    ids.swap(dirty_);
  }
  // Re-arm immediately, before the caller hashes: an update landing after
  // this point re-queues the unit, so the window where a moved row could
  // go un-requeued is only the hash-read itself (healed by the next touch
  // or hygiene rebuild). dirty_flag_ exists iff the policy is async_delta;
  // under async_full the queue is always empty and the loop never runs.
  for (Index u : ids) dirty_flag_[u].store(0, std::memory_order_relaxed);
}

void SampledLayer::run_delta_reinsert() {
  std::vector<Index> ids;
  drain_dirty(ids);
  if (ids.empty()) return;
  // Distinct by construction (the dirty flag); sorted for a deterministic
  // insertion order.
  std::sort(ids.begin(), ids.end());

  // Inserts target the LIVE active group: readers sample from it
  // concurrently (see lsh/hash_table.h for why that is sound). The moved
  // neurons' old bucket entries stay behind as stale-but-valid samples
  // until the next full rebuild — the same staleness the paper's
  // between-rebuild windows already accept.
  LshTableGroup& group = tables_->active_group();
  Rng rng(seed_ + 0x5EEDull +
          static_cast<std::uint64_t>(
              delta_reinserted_.load(std::memory_order_relaxed)));
  const bool memo = config_.incremental_rehash && simhash_ != nullptr &&
                    memo_initialized_.load(std::memory_order_acquire);
  const int num_proj = memo ? simhash_->num_projections() : 0;
  std::vector<std::uint32_t> keys(static_cast<std::size_t>(tables_->l()));
  for (Index u : ids) {
    if (memo) {
      const float* memo_row =
          projection_memo_.data() +
          static_cast<std::size_t>(u) * static_cast<std::size_t>(num_proj);
      simhash_->keys_from_projections(memo_row, keys);
      group.insert(u, keys, rng);
    } else {
      group.insert_dense(u, weight_row(u), rng);
    }
  }
  delta_reinserted_.fetch_add(static_cast<long>(ids.size()),
                              std::memory_order_acq_rel);
}

void SampledLayer::quiesce_maintenance() const {
  if (worker_ != nullptr) worker_->wait_idle();
}

void SampledLayer::flush_maintenance() {
  if (worker_ == nullptr) return;
  if (config_.maintenance == MaintenancePolicy::kAsyncDelta &&
      dirty_pending() > 0) {
    // Unconditional submit (no delta_pending_ gate): a pending task may
    // already have swapped the queue out, and FIFO ordering guarantees
    // this drain runs after it — picking up everything left behind.
    worker_->submit([this] { run_delta_reinsert(); });
  }
  worker_->wait_idle();
}

std::size_t SampledLayer::dirty_pending() const {
  std::lock_guard lock(dirty_mutex_);
  return dirty_.size();
}

Index SampledLayer::add_units(Index n) {
  SLIDE_CHECK(config_.hashed,
              "add_units: only hashed (retriever-backed) layers grow");
  SLIDE_CHECK(n > 0, "add_units: unit count must be positive");
  // The maintenance thread reads weights_ and the retriever; park it before
  // the reallocation pulls the storage out from under it.
  quiesce_maintenance();

  const Index old_units = units_;
  const Index new_units = old_units + n;
  const std::size_t old_w = static_cast<std::size_t>(old_units) * fan_in_;
  const std::size_t new_w = static_cast<std::size_t>(new_units) * fan_in_;

  // HugeArray::resize replaces the storage zeroed — copy-grow instead.
  auto copy_grow = [&](HugeArray& arr) {
    HugeArray grown(new_w);
    std::memcpy(grown.data(), arr.data(), old_w * sizeof(float));
    arr = std::move(grown);
  };
  copy_grow(weights_);
  copy_grow(grads_);

  // New rows draw from an Rng keyed on (layer seed, growth base): the same
  // growth sequence reproduces identical rows regardless of when in the
  // serving session it runs.
  Rng rng(seed_ + 0x9E3779B97F4A7C15ull +
          static_cast<std::uint64_t>(old_units));
  const float stddev = config_.init_stddev > 0.0f
                           ? config_.init_stddev
                           : 2.0f / std::sqrt(static_cast<float>(fan_in_));
  init_normal(weights_.data() + old_w, new_w - old_w, stddev, rng);

  bias_.resize(static_cast<std::size_t>(new_units), 0.0f);
  bias_grad_.resize(static_cast<std::size_t>(new_units), 0.0f);
  adam_.grow(old_w, new_w, static_cast<std::size_t>(old_units),
             static_cast<std::size_t>(new_units));

  // Per-unit atomic flag arrays: reallocate and carry the old flags over
  // (a unit queued dirty before the growth stays queued exactly once).
  auto grow_flags = [&](std::unique_ptr<std::atomic<std::uint8_t>[]>& arr) {
    if (arr == nullptr) return;
    auto grown =
        std::make_unique<std::atomic<std::uint8_t>[]>(new_units);
    for (Index u = 0; u < old_units; ++u)
      grown[u].store(arr[u].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    arr = std::move(grown);
  };
  grow_flags(touched_);
  grow_flags(dirty_flag_);

  // Quantized mirrors re-quantize wholesale below, so a plain (zeroing)
  // resize is fine here.
  if (!weights_bf16_.empty()) weights_bf16_.resize(new_w);
  if (!weights_f16_.empty()) weights_f16_.resize(new_w);
  if (!weights_i8_.empty()) {
    weights_i8_.resize(new_w);
    i8_scales_.resize(static_cast<std::size_t>(new_units), 0.0f);
  }

  // The incremental-rehash memo is sized [units x projections]; reallocate
  // and let the next rebuild re-project everything from the grown weights.
  if (!projection_memo_.empty() && simhash_ != nullptr) {
    projection_memo_ = HugeArray(
        static_cast<std::size_t>(new_units) *
        static_cast<std::size_t>(simhash_->num_projections()));
    memo_initialized_.store(false, std::memory_order_release);
  }

  units_ = new_units;
  config_.units = new_units;
  appended_units_ += n;
  refresh_inference_mirror();

  // Re-target the retrieval index at the reallocated rows, then bring the
  // appended ids live. Delta-capable backends (LSH) insert directly into
  // the active tables — and additionally ride the dirty-delta queue so the
  // next maintenance pass re-keys them from their trained weights; the
  // rest (HNSW) escalate to a full rebuild, exactly like their delta
  // maintenance path does.
  retriever_->resize_universe(
      retrieval::RowView{weights_.data(), fan_in_, new_units});
  if (retriever_->supports_delta()) {
    for (Index u = old_units; u < new_units; ++u) retriever_->insert(u);
    if (config_.maintenance == MaintenancePolicy::kAsyncDelta &&
        config_.rebuild.enabled && dirty_flag_ != nullptr) {
      std::lock_guard lock(dirty_mutex_);
      for (Index u = old_units; u < new_units; ++u) {
        if (dirty_flag_[u].exchange(1, std::memory_order_relaxed) == 0)
          dirty_.push_back(u);
      }
    }
  } else {
    retriever_->rebuild(nullptr);
  }
  return old_units;
}

void SampledLayer::retire_units(std::span<const Index> ids) {
  SLIDE_CHECK(config_.hashed,
              "retire_units: only hashed (retriever-backed) layers retire");
  for (Index id : ids) {
    SLIDE_CHECK(id < units_, "retire_units: unit id out of range");
    retriever_->remove(id);
  }
}

Index SampledLayer::retired_count() const noexcept {
  return retriever_ != nullptr ? retriever_->removed_count() : 0;
}

std::vector<Index> SampledLayer::retired_unit_ids() const {
  std::vector<Index> ids;
  if (retriever_ != nullptr) retriever_->append_removed_ids(ids);
  return ids;
}

void SampledLayer::forward_inference(std::span<const Index> prev_ids,
                                     std::span<const float> prev_act,
                                     bool exact, Rng& rng,
                                     VisitedSet& visited,
                                     std::vector<Index>& ids_out,
                                     std::vector<float>& act_out) const {
  forward_inference_budgeted(prev_ids, prev_act, exact, rng, visited,
                             /*budget_override=*/0, ids_out, act_out);
}

void SampledLayer::forward_inference_budgeted(
    std::span<const Index> prev_ids, std::span<const float> prev_act,
    bool exact, Rng& rng, VisitedSet& visited, Index budget_override,
    std::vector<Index>& ids_out, std::vector<float>& act_out) const {
  ids_out.clear();
  bool scored = false;  // escalation fills act_out itself
  const bool tombstoned =
      retriever_ != nullptr && retriever_->has_removed();
  if (exact || !config_.hashed) {
    if (tombstoned) {
      // Exact mode honors the tombstones too: a retired label must not
      // resurface through the oracle scan (or the softmax normalizer).
      ids_out.reserve(static_cast<std::size_t>(units_));
      for (Index u = 0; u < units_; ++u) {
        if (!retriever_->is_removed(u)) ids_out.push_back(u);
      }
    } else {
      ids_out.resize(units_);
      std::iota(ids_out.begin(), ids_out.end(), Index{0});
    }
  } else {
    Index target = std::min<Index>(config_.sampling.target, units_);
    // Candidate budget: the per-query override (distributed coordinator)
    // wins over the configured knob; either caps the sampling target.
    const Index budget = budget_override > 0
                             ? budget_override
                             : config_.sampling.inference_budget;
    if (budget > 0) target = std::min(target, budget);
    retriever_->retrieve(prev_ids, prev_act, target, rng, visited, ids_out);
    const Index floor =
        std::min<Index>(config_.sampling.escalation_floor, units_);
    if (floor > 0 && ids_out.size() < static_cast<std::size_t>(floor)) {
      // Adaptive recall floor (SamplingConfig::escalation_floor): too few
      // candidates to trust the sample — escalate this query to an exact
      // scan instead of padding with random ids, and measure how much the
      // candidate set would have missed (overlap with the exact top-k).
      escalate_to_exact(prev_ids, prev_act, visited, ids_out, act_out);
      scored = true;
    } else if (config_.fill_random_to_target && ids_out.size() < target) {
      long attempts = 20L * static_cast<long>(target);
      while (ids_out.size() < target && attempts-- > 0) {
        const Index id = rng.uniform(units_);
        if (tombstoned && retriever_->is_removed(id)) continue;
        if (visited.insert(id)) ids_out.push_back(id);
      }
    }
  }
  if (!scored) {
    act_out.resize(ids_out.size());
    score_rows(ids_out, prev_ids, prev_act, act_out.data());
  }
  if (config_.activation == Activation::kReLU)
    simd::relu(act_out.data(), act_out.size());
}

void SampledLayer::escalate_to_exact(std::span<const Index> prev_ids,
                                     std::span<const float> prev_act,
                                     const VisitedSet& visited,
                                     std::vector<Index>& ids_out,
                                     std::vector<float>& act_out) const {
  const bool tombstoned =
      retriever_ != nullptr && retriever_->has_removed();
  if (tombstoned) {
    ids_out.clear();
    ids_out.reserve(static_cast<std::size_t>(units_));
    for (Index u = 0; u < units_; ++u) {
      if (!retriever_->is_removed(u)) ids_out.push_back(u);
    }
  } else {
    ids_out.resize(static_cast<std::size_t>(units_));
    std::iota(ids_out.begin(), ids_out.end(), Index{0});
  }
  act_out.resize(ids_out.size());
  score_rows(ids_out, prev_ids, prev_act, act_out.data());

  // Recall accounting: how many of the exact top-k did the (undersized)
  // candidate set cover? The candidates are exactly the ids stamped in
  // `visited` this epoch (the retrieve() post-condition). Indices below are
  // positions into ids_out/act_out; with no tombstones position == id, so
  // the tie-break matches the historical by-id rule bit for bit (and with
  // tombstones, ascending position still means ascending id).
  const Index k = std::min<Index>(10, static_cast<Index>(ids_out.size()));
  thread_local std::vector<Index> order;
  order.resize(ids_out.size());
  std::iota(order.begin(), order.end(), Index{0});
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&](Index a, Index b) {
                      return act_out[a] > act_out[b] ||
                             (act_out[a] == act_out[b] && a < b);
                    });
  long overlap = 0;
  for (Index i = 0; i < k; ++i) {
    if (visited.contains(ids_out[order[static_cast<std::size_t>(i)]]))
      ++overlap;
  }
  escalations_.fetch_add(1, std::memory_order_relaxed);
  escalation_overlap_.fetch_add(overlap, std::memory_order_relaxed);
  escalation_oracle_.fetch_add(k, std::memory_order_relaxed);
}

RetrievalStats SampledLayer::retrieval_stats() const {
  RetrievalStats s;
  s.adaptive = config_.hashed && config_.sampling.escalation_floor > 0;
  s.escalations = escalations_.load(std::memory_order_relaxed);
  s.overlap = escalation_overlap_.load(std::memory_order_relaxed);
  s.oracle = escalation_oracle_.load(std::memory_order_relaxed);
  return s;
}

void SampledLayer::save_retriever_state(std::ostream& out) const {
  if (retriever_ != nullptr && retriever_->has_serialized_state())
    retriever_->save_state(out);
}

bool SampledLayer::load_retriever_state(std::istream& in,
                                        std::uint64_t bytes) {
  if (retriever_ == nullptr || !retriever_->has_serialized_state()) {
    in.ignore(static_cast<std::streamsize>(bytes));
    return false;
  }
  return retriever_->load_state(in);
}

double SampledLayer::average_active_fraction() const {
  const std::uint64_t events = active_events_.load();
  if (events == 0 || units_ == 0) return config_.hashed ? 0.0 : 1.0;
  return static_cast<double>(active_sum_.load()) /
         (static_cast<double>(events) * static_cast<double>(units_));
}

void SampledLayer::reset_active_stats() {
  active_sum_.store(0);
  active_events_.store(0);
}

double SampledLayer::sampling_seconds() const {
  double total = 0.0;
  for (const auto& t : sampling_time_) total += t.value.load();
  return total;
}

double SampledLayer::compute_seconds() const {
  double total = 0.0;
  for (const auto& t : compute_time_) total += t.value.load();
  return total;
}

void SampledLayer::reset_phase_timers() {
  for (auto& t : sampling_time_) t.value.store(0.0);
  for (auto& t : compute_time_) t.value.store(0.0);
}

// ===========================================================================
// DenseLayer / RandomSampledLayer / make_layer
// ===========================================================================

DenseLayer::DenseLayer(Index units, Index fan_in, Activation activation,
                       float init_stddev, const AdamConfig& adam,
                       std::uint64_t seed, int batch_slots, int max_threads,
                       Precision precision)
    : SampledLayer(dense_layer_config(units, fan_in, activation, init_stddev,
                                      adam, seed, precision),
                   batch_slots, max_threads) {}

RandomSampledLayer::RandomSampledLayer(Index units, Index fan_in,
                                       Index num_sampled,
                                       Activation activation,
                                       float init_stddev,
                                       const AdamConfig& adam,
                                       std::uint64_t seed, int batch_slots,
                                       int max_threads, Precision precision)
    : SampledLayer(
          [&] {
            SampledLayer::Config cfg = dense_layer_config(
                units, fan_in, activation, init_stddev, adam, seed,
                precision);
            cfg.random_sampled = true;
            cfg.sampling.target = num_sampled;
            return cfg;
          }(),
          batch_slots, max_threads) {
  SLIDE_CHECK(num_sampled > 0,
              "RandomSampledLayer: num_sampled must be positive");
}

std::unique_ptr<Layer> make_layer(const LayerSpec& spec, Index fan_in,
                                  const AdamConfig& adam, std::uint64_t seed,
                                  int batch_slots, int max_threads,
                                  Precision precision) {
  SLIDE_CHECK(!(spec.hashed && spec.random_sampled),
              "make_layer: hashed and random_sampled are exclusive");
  SLIDE_CHECK(spec.shards == 0 || spec.hashed,
              "make_layer: shards requires an LSH-sampled (hashed) layer");
  SLIDE_CHECK(spec.endpoints.empty() || spec.hashed,
              "make_layer: distributed endpoints require an LSH-sampled "
              "(hashed) layer");
  SLIDE_CHECK(spec.endpoints.empty() || spec.shards == 0,
              "make_layer: endpoints and shards are exclusive");
  SLIDE_CHECK(spec.retriever == retrieval::RetrieverKind::kLsh || spec.hashed,
              "make_layer: a non-LSH retriever requires a hashed layer");
  if (spec.hashed) {
    SampledLayer::Config cfg;
    cfg.units = spec.units;
    cfg.fan_in = fan_in;
    cfg.activation = spec.activation;
    cfg.hashed = true;
    cfg.family = spec.family;
    cfg.table = spec.table;
    cfg.sampling = spec.sampling;
    cfg.rebuild = spec.rebuild;
    cfg.retriever = spec.retriever;
    cfg.hnsw = spec.hnsw;
    cfg.maintenance = spec.maintenance;
    cfg.fill_random_to_target = spec.fill_random_to_target;
    cfg.incremental_rehash = spec.incremental_rehash;
    cfg.init_stddev = spec.init_stddev;
    cfg.adam = adam;
    cfg.precision = precision;
    cfg.seed = seed;
    if (!spec.endpoints.empty()) {
      dist::DistributedOptions options;
      options.wire_bf16 = spec.wire_bf16;
      options.shard_checkpoint_base = spec.shard_checkpoint_base;
      return std::make_unique<dist::DistributedSampledLayer>(
          cfg, spec.endpoints, batch_slots, options);
    }
    if (spec.shards >= 1) {
      return std::make_unique<ShardedSampledLayer>(cfg, spec.shards,
                                                   batch_slots, max_threads);
    }
    return std::make_unique<SampledLayer>(cfg, batch_slots, max_threads);
  }
  if (spec.random_sampled) {
    return std::make_unique<RandomSampledLayer>(
        spec.units, fan_in, spec.sampling.target, spec.activation,
        spec.init_stddev, adam, seed, batch_slots, max_threads, precision);
  }
  return std::make_unique<DenseLayer>(spec.units, fan_in, spec.activation,
                                      spec.init_stddev, adam, seed,
                                      batch_slots, max_threads, precision);
}

}  // namespace slide
