// Activation functions supported by the engine. The paper's architecture
// uses ReLU in hidden layers and a softmax output whose normalizer runs
// over *active* neurons only (paper §3.1).
#pragma once

namespace slide {

enum class Activation { kReLU, kSoftmax, kLinear };

const char* to_string(Activation activation);

}  // namespace slide
