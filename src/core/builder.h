// Fluent model construction — the front door of the library.
//
//   Network net = NetworkBuilder(input_dim)
//                     .dense(128)                          // embedding
//                     .sampled(label_dim, family, target)  // LSH output
//                     .build(num_threads);
//
// The first .dense() call defines the input-facing EmbeddingLayer; every
// later call appends one stack layer, so arbitrary-depth mixed stacks —
// dense-only baselines, multiple hashed layers, the paper's §4.2 ablations
// — all build the same way and run through one Network, one Trainer, one
// checkpoint format, and one serving path:
//
//   dense baseline:   .dense(128).dense(labels, Activation::kSoftmax)
//   sampled softmax:  .dense(128).random_sampled(labels, num_sampled)
//   deep mixed stack: .dense(256).dense(128).sampled(4096, fam, t1,
//                       Activation::kReLU).sampled(labels, fam, t2)
//
// Per-layer knobs (.table(), .rebuild_schedule(), .sampling_config(),
// .incremental_rehash(), ...) apply to the most recently added stack layer.
// to_config() yields the equivalent NetworkConfig (the serializable
// architecture description the serving ModelStore consumes); build() is
// to_config() + Network construction.
//
// The built width is a starting point, not a ceiling: a hashed output
// layer grows and retires labels online after construction
// (Network::add_output_units / retire_output_units — see the dynamic-label
// lifecycle section in DESIGN.md). Growth updates the network's stored
// config, so checkpoints and publish_clone track the live width; a network
// rebuilt from the ORIGINAL builder config still loads a grown checkpoint
// (the v5 loader re-applies the appended rows and tombstones).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/network.h"

namespace slide {

class NetworkBuilder {
 public:
  explicit NetworkBuilder(Index input_dim);

  // ---- Layer-appending calls (order = stack order) ----

  /// A dense layer: every unit computes on every input. The first call
  /// defines the input-facing embedding layer (always ReLU); later calls
  /// append DenseLayers. `init_stddev` 0 selects the per-layer default.
  NetworkBuilder& dense(Index units,
                        Activation activation = Activation::kReLU,
                        float init_stddev = 0.0f);

  /// An LSH-sampled layer (paper §3): hash tables over the layer's neurons,
  /// ~`sampling_target` adaptively chosen active units per input.
  NetworkBuilder& sampled(Index units, const HashFamilyConfig& family,
                          Index sampling_target,
                          Activation activation = Activation::kSoftmax);

  /// A statically sampled layer (Sampled Softmax baseline, paper §5.1):
  /// labels + `num_sampled` uniformly random units per input.
  NetworkBuilder& random_sampled(Index units, Index num_sampled,
                                 Activation activation = Activation::kSoftmax);

  /// Escape hatch: append a fully hand-built stack layer spec.
  NetworkBuilder& layer(const LayerSpec& spec);

  // ---- Knobs for the most recently added stack layer ----

  NetworkBuilder& table(const HashTable::Config& table);
  NetworkBuilder& rebuild_schedule(const RebuildSchedule& schedule);
  NetworkBuilder& sampling_config(const SamplingConfig& sampling);
  /// Candidate-generation backend of the most recently added LSH-sampled
  /// layer (src/retrieval/): RetrieverKind::kLsh (default, the paper's
  /// (K, L) tables — bit-identical to the pre-subsystem layer), kExact
  /// (brute-force oracle), or kHnsw (seeded small-world graph; tune it
  /// with .hnsw()).
  NetworkBuilder& retriever(retrieval::RetrieverKind kind);
  /// HNSW knobs for the most recent layer (implies nothing about the
  /// backend — pair with .retriever(RetrieverKind::kHnsw)).
  NetworkBuilder& hnsw(const retrieval::HnswConfig& config);
  NetworkBuilder& incremental_rehash(bool on = true);
  NetworkBuilder& fill_random_to_target(bool on);
  /// How the layer executes the maintenance events its rebuild schedule
  /// fires: sync (stall-the-trainers full rebuild), async_full (background
  /// shadow rebuild + atomic publish), or async_delta (background re-insert
  /// of dirty neurons between full rebuilds). See MaintenancePolicy.
  NetworkBuilder& maintenance(MaintenancePolicy policy);
  /// Model-parallel sharding of the most recently added LSH-sampled layer
  /// (core/sharded_layer.h): the neuron range splits into `shards`
  /// contiguous shards, each with its own weight block, LSH tables,
  /// dirty-delta queue, and maintenance thread. shards(1) builds a
  /// single-shard ShardedSampledLayer, bit-identical to the monolithic
  /// layer under sync maintenance; leave the knob unset for the monolithic
  /// implementation itself.
  NetworkBuilder& shards(int shards);
  /// Multi-process model parallelism of the most recently added LSH-sampled
  /// layer (src/dist/): one shard worker per endpoint ("tcp:host:port" or
  /// "shm:path"), partitioned exactly like .shards(endpoints.size()) but
  /// with each shard living in a worker process reached over the sparse
  /// active-set RPC protocol. `wire_bf16` compresses activation/error runs
  /// on the wire (off keeps the run bit-identical to the in-process
  /// sharded layer). Mutually exclusive with .shards().
  NetworkBuilder& distributed(std::vector<std::string> endpoints,
                              bool wire_bf16 = false);
  /// Workers of the most recent .distributed() layer boot from per-shard
  /// checkpoint files "<base>.shard<s>of<n>" on their own filesystem (the
  /// cluster restart path; see DistributedSampledLayer::checkpoint_shards).
  NetworkBuilder& shard_checkpoint(std::string base);

  // ---- Network-wide knobs ----

  /// Batch slots to preallocate (max trainable batch size).
  NetworkBuilder& max_batch(int max_batch_size);
  NetworkBuilder& adam(const AdamConfig& adam);
  NetworkBuilder& seed(std::uint64_t seed);
  /// Inference-scoring precision: Precision::kBF16 gives every layer a
  /// bfloat16 weight mirror (half the serving weight bytes) scored through
  /// the dispatch's mixed-precision kernels; training stays fp32. See
  /// core/config.h for the quantize-on-publish contract.
  NetworkBuilder& precision(Precision precision);

  // ---- Terminal calls ----

  /// The equivalent NetworkConfig. Validates the stack: an embedding layer
  /// plus at least one stack layer, softmax on the output layer (the
  /// Trainer's loss contract).
  NetworkConfig to_config() const;

  /// Constructs the Network (see Network's ctor for `max_threads`).
  Network build(int max_threads) const;
  std::shared_ptr<Network> build_shared(int max_threads) const;

 private:
  LayerSpec& last_layer(const char* call);

  NetworkConfig config_;
  bool have_embedding_ = false;
};

}  // namespace slide
