#include "core/sharded_layer.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "simd/kernels.h"

namespace slide {

namespace {

/// Golden-ratio stride between per-shard seed streams. Shard 0 keeps the
/// global seed unchanged — that is what makes shards = 1 reproduce the
/// monolithic layer bit for bit.
constexpr std::uint64_t kShardSeedStride = 0x9E3779B97F4A7C15ull;

}  // namespace

std::vector<Index> shard_partition(Index units, int shards) {
  SLIDE_CHECK(shards >= 1, "shard_partition: shards must be >= 1");
  SLIDE_CHECK(units >= static_cast<Index>(shards),
              "shard_partition: more shards than units");
  // Near-equal contiguous partition: the first units % shards shards own
  // one extra row. Deterministic in (units, shards), which is what lets a
  // checkpoint loader recompute any writer's partition from the block
  // sizes alone.
  const Index base = units / static_cast<Index>(shards);
  const Index rem = units % static_cast<Index>(shards);
  std::vector<Index> offsets;
  offsets.reserve(static_cast<std::size_t>(shards) + 1);
  offsets.push_back(0);
  for (int s = 0; s < shards; ++s)
    offsets.push_back(offsets.back() + base +
                      (s < static_cast<int>(rem) ? 1 : 0));
  return offsets;
}

SampledLayer::Config derive_shard_config(const SampledLayer::Config& global,
                                         Index shard_size, int shard_index) {
  const Index units = global.units;
  SampledLayer::Config sc = global;
  sc.units = shard_size;
  // Proportional share of the global sampling target, rounded up so the
  // merged active count lands at or slightly above the monolithic
  // target. shards = 1 keeps the target exactly.
  const Index global_target = std::min<Index>(global.sampling.target, units);
  sc.sampling.target = static_cast<Index>(
      (static_cast<std::uint64_t>(global_target) * shard_size + units - 1) /
      units);
  // The inference candidate budget is global too: split it the same way so
  // the summed per-shard candidate counts land at ~budget instead of
  // budget x S (the shard oversampling fix; 0 = knob off).
  if (global.sampling.inference_budget > 0) {
    const Index global_budget =
        std::min<Index>(global.sampling.inference_budget, units);
    sc.sampling.inference_budget = static_cast<Index>(
        (static_cast<std::uint64_t>(global_budget) * shard_size + units - 1) /
        units);
  }
  // Keep per-bucket occupancy constant across shard counts: a shard
  // holding 1/S of the rows gets tables with ~1/S of the buckets
  // (floored), so total table memory — and the fixed clear/allocate cost
  // of every rebuild — stays flat as S grows instead of multiplying.
  // shards = 1 keeps the configured range exactly (bit-identity anchor).
  int pow_shrink = 0;
  while ((units >> (pow_shrink + 1)) >= shard_size) ++pow_shrink;
  sc.table.range_pow = std::max(4, global.table.range_pow - pow_shrink);
  sc.seed = global.seed +
            kShardSeedStride * static_cast<std::uint64_t>(shard_index);
  return sc;
}

ShardedSampledLayer::ShardedSampledLayer(const SampledLayer::Config& config,
                                         int shards, int batch_slots,
                                         int max_threads)
    : config_(config), units_(config.units), fan_in_(config.fan_in) {
  SLIDE_CHECK(config.hashed,
              "ShardedSampledLayer: sharding requires an LSH (hashed) layer");
  SLIDE_CHECK(!config.random_sampled,
              "ShardedSampledLayer: random_sampled cannot be sharded");
  offsets_ = shard_partition(units_, shards);
  for (int s = 0; s < shards; ++s) {
    const Index size = offsets_[static_cast<std::size_t>(s) + 1] -
                       offsets_[static_cast<std::size_t>(s)];
    shards_.push_back(std::make_unique<SampledLayer>(
        derive_shard_config(config, size, s), batch_slots, max_threads));
  }
  slots_.resize(static_cast<std::size_t>(batch_slots));
}

int ShardedSampledLayer::shard_of(Index unit) const noexcept {
  SLIDE_ASSERT(unit < units_);
  return static_cast<int>(
             std::upper_bound(offsets_.begin(), offsets_.end(), unit) -
             offsets_.begin()) -
         1;
}

// ---------------------------------------------------------------------------
// Training path
// ---------------------------------------------------------------------------

void ShardedSampledLayer::forward(int slot, const ActiveSet& prev,
                                  std::span<const Index> forced, Rng& rng,
                                  VisitedSet& visited, int tid) {
  // Each shard selects and scores its own candidates (forced labels are
  // routed to their owning shard in shard-local coordinates); the shard
  // slots then merge into this layer's globally-indexed slot. Shard order
  // is fixed, so the RNG consumption order is deterministic — and for a
  // single shard identical to the monolithic layer's.
  thread_local std::vector<Index> forced_local;
  const int num = shards();
  for (int s = 0; s < num; ++s) {
    const Index lo = offsets_[static_cast<std::size_t>(s)];
    const Index hi = offsets_[static_cast<std::size_t>(s) + 1];
    forced_local.clear();
    for (Index f : forced) {
      SLIDE_ASSERT(f < units_);
      if (f >= lo && f < hi) forced_local.push_back(f - lo);
    }
    shards_[static_cast<std::size_t>(s)]->forward(slot, prev, forced_local,
                                                  rng, visited, tid);
  }

  // Merge: concatenate the shard active sets in shard order, globalizing
  // ids by the shard row offset. A shard whose selection came up empty
  // contributes nothing (ActiveSet::size() is 0 for it).
  ActiveSet& ms = slots_[static_cast<std::size_t>(slot)];
  std::size_t total = 0;
  for (int s = 0; s < num; ++s)
    total += shards_[static_cast<std::size_t>(s)]->slot(slot).size();
  ms.ids.clear();
  ms.ids.reserve(total);
  ms.act.resize(total);
  ms.err.assign(total, 0.0f);
  std::size_t pos = 0;
  for (int s = 0; s < num; ++s) {
    const ActiveSet& ss = shards_[static_cast<std::size_t>(s)]->slot(slot);
    const Index off = offsets_[static_cast<std::size_t>(s)];
    const std::size_t n = ss.size();
    for (std::size_t i = 0; i < n; ++i) ms.ids.push_back(off + ss.ids[i]);
    std::copy(ss.act.begin(),
              ss.act.begin() + static_cast<std::ptrdiff_t>(n),
              ms.act.begin() + static_cast<std::ptrdiff_t>(pos));
    pos += n;
  }
}

float ShardedSampledLayer::compute_softmax_ce_deltas(
    int slot, std::span<const Index> labels, float inv_batch) {
  SLIDE_CHECK(config_.activation == Activation::kSoftmax,
              "softmax deltas on a non-softmax layer");
  ActiveSet& ms = slots_[static_cast<std::size_t>(slot)];
  const std::size_t n = ms.ids.size();
  if (n == 0) return 0.0f;

  // Softmax over the merged active set: the normalizing constant spans all
  // shards' candidates, exactly like the monolithic layer's active-set
  // softmax (paper §3.1) — sharding must not change the loss surface.
  simd::softmax_inplace(ms.act.data(), n);
  for (std::size_t i = 0; i < n; ++i) ms.err[i] = ms.act[i] * inv_batch;

  // Label positions in the merged set: each shard's forced labels sit at
  // the head of its segment, in the order forward() routed them. Walk the
  // labels in caller order, keeping one running forced-counter per shard.
  const int num = shards();
  thread_local std::vector<std::size_t> seg_begin;
  thread_local std::vector<Index> forced_seen;
  seg_begin.assign(static_cast<std::size_t>(num), 0);
  forced_seen.assign(static_cast<std::size_t>(num), 0);
  std::size_t pos = 0;
  for (int s = 0; s < num; ++s) {
    seg_begin[static_cast<std::size_t>(s)] = pos;
    pos += shards_[static_cast<std::size_t>(s)]->slot(slot).size();
  }

  const float y =
      labels.empty() ? 0.0f : 1.0f / static_cast<float>(labels.size());
  float loss = 0.0f;
  for (Index label : labels) {
    const int s = shard_of(label);
    const std::size_t i = seg_begin[static_cast<std::size_t>(s)] +
                          forced_seen[static_cast<std::size_t>(s)]++;
    SLIDE_ASSERT(i < n && ms.ids[i] == label);
    ms.err[i] -= y * inv_batch;
    loss -= y * std::log(std::max(ms.act[i], 1e-30f));
  }
  return loss;
}

void ShardedSampledLayer::compute_relu_deltas(int slot) {
  ActiveSet& ms = slots_[static_cast<std::size_t>(slot)];
  const std::size_t n = ms.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (ms.act[i] <= 0.0f) ms.err[i] = 0.0f;
  }
}

void ShardedSampledLayer::scatter_errors(int slot) {
  const ActiveSet& ms = slots_[static_cast<std::size_t>(slot)];
  std::size_t pos = 0;
  for (auto& shard : shards_) {
    ActiveSet& ss = shard->slot(slot);
    const std::size_t n = ss.size();
    std::copy(ms.err.begin() + static_cast<std::ptrdiff_t>(pos),
              ms.err.begin() + static_cast<std::ptrdiff_t>(pos + n),
              ss.err.begin());
    pos += n;
  }
}

void ShardedSampledLayer::backward(int slot, ActiveSet& prev, int tid) {
  // Route the merged deltas back to the shards that produced the active
  // neurons, then let each shard run its own backward (prev-error
  // propagation + HOGWILD gradient accumulation + touched marking). A
  // shard with an empty active set does no work and accumulates nothing.
  scatter_errors(slot);
  for (auto& shard : shards_) shard->backward(slot, prev, tid);
}

void ShardedSampledLayer::apply_updates(float lr, ThreadPool* pool) {
  for (auto& shard : shards_) shard->apply_updates(lr, pool);
}

// ---------------------------------------------------------------------------
// LSH lifecycle
// ---------------------------------------------------------------------------

bool ShardedSampledLayer::maybe_rebuild(long iteration, ThreadPool* pool) {
  // Sync maintenance does the rebuild work inline, so fan the shards out
  // across the pool (each shard builds its own table group on one worker).
  // Async policies only *schedule* here — the work itself already runs on
  // the S per-shard maintenance threads — so the loop stays sequential.
  const bool parallel_sync = config_.maintenance == MaintenancePolicy::kSync &&
                             pool != nullptr && pool->num_threads() > 1 &&
                             shards() > 1;
  if (parallel_sync) {
    std::atomic<bool> fired{false};
    pool->parallel_for(shards_.size(), [&](std::size_t s, int) {
      if (shards_[s]->maybe_rebuild(iteration, nullptr))
        fired.store(true, std::memory_order_relaxed);
    });
    return fired.load(std::memory_order_relaxed);
  }
  bool fired = false;
  for (auto& shard : shards_) fired |= shard->maybe_rebuild(iteration, pool);
  return fired;
}

void ShardedSampledLayer::rebuild_tables(ThreadPool* pool) {
  if (pool != nullptr && pool->num_threads() > 1 && shards() > 1) {
    pool->parallel_for(shards_.size(), [&](std::size_t s, int) {
      shards_[s]->rebuild_tables(nullptr);
    });
    return;
  }
  for (auto& shard : shards_) shard->rebuild_tables(pool);
}

void ShardedSampledLayer::quiesce_maintenance() const {
  for (const auto& shard : shards_) shard->quiesce_maintenance();
}

void ShardedSampledLayer::flush_maintenance() {
  for (auto& shard : shards_) shard->flush_maintenance();
}

// ---------------------------------------------------------------------------
// Dynamic label lifecycle
// ---------------------------------------------------------------------------

Index ShardedSampledLayer::add_units(Index n) {
  SLIDE_CHECK(n > 0, "add_units: unit count must be positive");
  // Growth lands on the last shard: every other shard's global row offset
  // is unchanged, so existing ids — and the per-shard checkpoint blocks of
  // all earlier shards — stay stable.
  const Index first = units_;
  shards_.back()->add_units(n);
  offsets_.back() += n;
  units_ += n;
  config_.units = units_;
  return first;
}

void ShardedSampledLayer::retire_units(std::span<const Index> ids) {
  std::vector<std::vector<Index>> per_shard(shards_.size());
  for (Index id : ids) {
    SLIDE_CHECK(id < units_, "retire_units: unit id out of range");
    const int s = shard_of(id);
    per_shard[static_cast<std::size_t>(s)].push_back(
        id - offsets_[static_cast<std::size_t>(s)]);
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!per_shard[s].empty()) shards_[s]->retire_units(per_shard[s]);
  }
}

Index ShardedSampledLayer::retired_count() const noexcept {
  Index total = 0;
  for (const auto& shard : shards_) total += shard->retired_count();
  return total;
}

std::vector<Index> ShardedSampledLayer::retired_unit_ids() const {
  std::vector<Index> out;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::vector<Index> local = shards_[s]->retired_unit_ids();
    for (Index lid : local) out.push_back(offsets_[s] + lid);
  }
  return out;
}

Index ShardedSampledLayer::appended_units() const noexcept {
  Index total = 0;
  for (const auto& shard : shards_) total += shard->appended_units();
  return total;
}

long ShardedSampledLayer::rebuild_count() const noexcept {
  long total = 0;
  for (const auto& shard : shards_) total += shard->rebuild_count();
  return total;
}

long ShardedSampledLayer::delta_reinserted() const noexcept {
  long total = 0;
  for (const auto& shard : shards_) total += shard->delta_reinserted();
  return total;
}

std::size_t ShardedSampledLayer::dirty_pending() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->dirty_pending();
  return total;
}

double ShardedSampledLayer::sampling_seconds() const {
  double total = 0.0;
  for (const auto& shard : shards_) total += shard->sampling_seconds();
  return total;
}

double ShardedSampledLayer::compute_seconds() const {
  double total = 0.0;
  for (const auto& shard : shards_) total += shard->compute_seconds();
  return total;
}

RetrievalStats ShardedSampledLayer::retrieval_stats() const {
  RetrievalStats total;
  total.adaptive = config_.sampling.escalation_floor > 0;
  for (const auto& shard : shards_) {
    const RetrievalStats s = shard->retrieval_stats();
    total.escalations += s.escalations;
    total.overlap += s.overlap;
    total.oracle += s.oracle;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Inference path
// ---------------------------------------------------------------------------

void ShardedSampledLayer::forward_inference(std::span<const Index> prev_ids,
                                            std::span<const float> prev_act,
                                            bool exact, Rng& rng,
                                            VisitedSet& visited,
                                            std::vector<Index>& ids_out,
                                            std::vector<float>& act_out) const {
  thread_local std::vector<Index> lids;
  thread_local std::vector<float> lact;
  ids_out.clear();
  act_out.clear();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->forward_inference(prev_ids, prev_act, exact, rng, visited,
                                  lids, lact);
    const Index off = offsets_[s];
    for (Index id : lids) ids_out.push_back(off + id);
    act_out.insert(act_out.end(), lact.begin(), lact.end());
  }
}

void ShardedSampledLayer::forward_inference_topk(
    std::span<const Index> prev_ids, std::span<const float> prev_act, int k,
    bool exact, Rng& rng, VisitedSet& visited, TopKScratch& scratch,
    std::vector<Index>& out) const {
  out.clear();
  if (k < 1) return;
  // Bounded selection heap over the per-shard candidate runs: the worst of
  // the current top-k sits at the front, and a candidate enters only by
  // beating it. `better` orders by descending score with ties toward the
  // earlier candidate position (packed above the id), matching the default
  // partial-sort path exactly, so sharded and monolithic top-k agree
  // whenever their candidate sets do.
  auto better = [](const std::pair<float, std::uint64_t>& a,
                   const std::pair<float, std::uint64_t>& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  };
  std::vector<std::pair<float, std::uint64_t>>& heap = scratch.heap;
  heap.clear();
  const std::size_t cap = static_cast<std::size_t>(k);
  std::uint64_t position = 0;
  thread_local std::vector<Index> lids;
  thread_local std::vector<float> lact;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->forward_inference(prev_ids, prev_act, exact, rng, visited,
                                  lids, lact);
    const Index off = offsets_[s];
    for (std::size_t i = 0; i < lids.size(); ++i) {
      const std::pair<float, std::uint64_t> cand{
          lact[i], (position << 32) |
                       static_cast<std::uint64_t>(off + lids[i])};
      ++position;
      if (heap.size() < cap) {
        heap.push_back(cand);
        std::push_heap(heap.begin(), heap.end(), better);
      } else if (better(cand, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), better);
        heap.back() = cand;
        std::push_heap(heap.begin(), heap.end(), better);
      }
    }
  }
  std::sort(heap.begin(), heap.end(), better);  // descending score
  out.reserve(heap.size());
  for (const auto& entry : heap)
    out.push_back(static_cast<Index>(entry.second & 0xFFFFFFFFull));
}

// ---------------------------------------------------------------------------
// Misc hooks
// ---------------------------------------------------------------------------

void ShardedSampledLayer::on_weights_loaded() noexcept {
  for (auto& shard : shards_) shard->on_weights_loaded();
}

std::size_t ShardedSampledLayer::num_parameters() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->num_parameters();
  return total;
}

void ShardedSampledLayer::refresh_inference_mirror() noexcept {
  for (auto& shard : shards_) shard->refresh_inference_mirror();
}

std::size_t ShardedSampledLayer::inference_weight_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->inference_weight_bytes();
  return total;
}

LayerMemory ShardedSampledLayer::memory() const noexcept {
  LayerMemory m;
  for (const auto& shard : shards_) {
    const LayerMemory sm = shard->memory();
    m.master_bytes += sm.master_bytes;
    m.mirror_bytes += sm.mirror_bytes;
    m.optimizer_bytes += sm.optimizer_bytes;
    m.retriever_bytes += sm.retriever_bytes;
    m.mirror_hugepage_bytes += sm.mirror_hugepage_bytes;
  }
  return m;
}

void ShardedSampledLayer::set_use_locks(bool locks) noexcept {
  for (auto& shard : shards_) shard->set_use_locks(locks);
}

double ShardedSampledLayer::average_active_fraction() const {
  // Weighted by shard width so the number reads as "fraction of the whole
  // layer active", same as the monolithic diagnostic.
  double weighted = 0.0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    weighted += shards_[s]->average_active_fraction() *
                static_cast<double>(offsets_[s + 1] - offsets_[s]);
  }
  return weighted / static_cast<double>(units_);
}

}  // namespace slide
