// The SLIDE network (paper Figure 2): an input-facing EmbeddingLayer
// followed by one or more SampledLayers, the last of which is the softmax
// output layer. Owns all layer state; the Trainer drives batches through
// the per-slot forward/backward API.
#pragma once

#include <memory>
#include <vector>

#include "core/config.h"
#include "core/layer.h"
#include "data/dataset.h"

namespace slide {

/// Scratch buffers for single-sample inference; create one per thread.
struct InferenceContext {
  explicit InferenceContext(Index max_units, std::uint64_t seed = 1)
      : visited(max_units), rng(seed) {}

  VisitedSet visited;
  Rng rng;
  std::vector<float> dense;
  std::vector<Index> ids_a, ids_b;
  std::vector<float> act_a, act_b;
};

class Network {
 public:
  /// max_threads sizes the per-thread structures (touched lists, timers);
  /// pass the trainer's thread count (or more).
  Network(const NetworkConfig& config, int max_threads);

  const NetworkConfig& config() const noexcept { return config_; }
  Index input_dim() const noexcept { return config_.input_dim; }
  Index output_dim() const noexcept { return layers_.back()->units(); }
  int max_batch_size() const noexcept { return config_.max_batch_size; }
  int num_layers() const noexcept {
    return 1 + static_cast<int>(layers_.size());
  }

  EmbeddingLayer& embedding() noexcept { return *embedding_; }
  const EmbeddingLayer& embedding() const noexcept { return *embedding_; }
  SampledLayer& layer(int i) noexcept {
    return *layers_[static_cast<std::size_t>(i)];
  }
  const SampledLayer& layer(int i) const noexcept {
    return *layers_[static_cast<std::size_t>(i)];
  }
  SampledLayer& output_layer() noexcept { return *layers_.back(); }
  const SampledLayer& output_layer() const noexcept {
    return *layers_.back();
  }
  int num_sampled_layers() const noexcept {
    return static_cast<int>(layers_.size());
  }

  /// One training sample through forward + backward on a batch slot.
  /// Gradients accumulate into the shared per-layer accumulators; call
  /// apply_updates once per batch afterwards. Returns the sample loss.
  float train_sample(int slot, const Sample& sample, float inv_batch,
                     Rng& rng, VisitedSet& visited, int tid);

  /// Applies lazy Adam on every layer (parallelized over touched units).
  void apply_updates(float lr, ThreadPool* pool);

  /// Triggers the per-layer rebuild schedules (paper §4.2).
  void maybe_rebuild(long iteration, ThreadPool* pool);
  /// Forces a rebuild of every hashed layer.
  void rebuild_all(ThreadPool* pool);

  /// Top-1 prediction. `exact` scores every output neuron (dense forward);
  /// otherwise the output layer is sampled through the hash tables exactly
  /// as in training (without label forcing).
  Index predict_top1(const SparseVector& x, InferenceContext& ctx,
                     bool exact = false) const;

  /// Top-k predictions ordered by descending score (k results, fewer if the
  /// sampled active set is smaller).
  std::vector<Index> predict_topk(const SparseVector& x, InferenceContext& ctx,
                                  int k, bool exact = false) const;

  /// Serializes gradient accumulation (HOGWILD ablation).
  void set_use_locks(bool locks) noexcept;

  std::size_t num_parameters() const noexcept;

  /// Largest unit count across sampled layers (sizes VisitedSet scratch).
  Index max_sampled_units() const noexcept;

 private:
  NetworkConfig config_;
  std::unique_ptr<EmbeddingLayer> embedding_;
  std::vector<std::unique_ptr<SampledLayer>> layers_;
};

}  // namespace slide
