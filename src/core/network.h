// The SLIDE network (paper Figure 2, generalized): an input-facing
// EmbeddingLayer followed by a polymorphic stack of Layers (dense,
// LSH-sampled, random-sampled — freely mixed at any depth), the last of
// which is the softmax output layer. Owns all layer state; the Trainer
// drives batches through the per-slot forward/backward API. Construct
// networks with core/builder.h (NetworkBuilder) or a hand-built
// NetworkConfig.
#pragma once

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "core/config.h"
#include "core/layer.h"
#include "data/dataset.h"

namespace slide {

class Network;

/// Whole-network memory accounting (sums the per-layer LayerMemory plus the
/// embedding). `inference_weight_bytes` is what the serving scoring path
/// actually reads — the bf16 mirrors when quantized, the fp32 masters
/// otherwise — and is the number the "bf16 halves serving weight memory"
/// contract is asserted on.
struct MemoryFootprint {
  std::size_t master_weight_bytes = 0;  ///< fp32 weights + biases
  std::size_t mirror_bytes = 0;  ///< quantized inference mirrors (any tier)
  std::size_t optimizer_bytes = 0;      ///< grad accumulators + Adam moments
  /// Candidate-retrieval indexes (LSH buckets / HNSW graphs) across all
  /// hashed layers. HNSW in particular carries a graph comparable in size
  /// to the weights themselves — a footprint report without this line
  /// under-reports the serving process by that much.
  std::size_t retriever_bytes = 0;
  std::size_t inference_weight_bytes = 0;
  /// Mirror bytes actually backed by transparent hugepages (<= mirror_bytes;
  /// 0 when THP is off or unsupported). The Table 4 observability hook.
  std::size_t mirror_hugepage_bytes = 0;
};

/// Scratch buffers for single-sample inference; create one per thread.
/// The Network-taking constructor sizes everything from the model, so
/// callers need not know max_sampled_units().
struct InferenceContext {
  explicit InferenceContext(Index max_units, std::uint64_t seed = 1)
      : visited(std::max<Index>(max_units, 1)), rng(seed) {}
  /// Sizes the scratch for `network` (see reset(network) for re-targeting).
  explicit InferenceContext(const Network& network, std::uint64_t seed = 1);

  /// Clears all scratch vectors (keeps their capacity and the RNG state).
  void reset();
  /// Re-targets the context at a (possibly different) architecture.
  void reset(Index max_units);
  void reset(const Network& network);

  VisitedSet visited;
  Rng rng;
  std::vector<float> dense;
  std::vector<Index> ids_a, ids_b;
  std::vector<float> act_a, act_b;
  /// Output-layer top-k scratch (candidate buffers, ranking permutation,
  /// and the sharded layer's k-way merge heap) — see
  /// Layer::forward_inference_topk.
  TopKScratch topk;
};

/// Results of Network::predict_batch plus the scratch it reuses across
/// calls (per-thread InferenceContexts, per-item row buffers). Keep one per
/// caller — e.g. one per serving worker — and pass it to every call; the
/// contexts are re-created automatically when the served architecture
/// changes. Not safe for concurrent use by multiple threads.
class BatchOutput {
 public:
  explicit BatchOutput(std::uint64_t seed = 1) : seed_(seed) {}

  /// Number of inputs in the last predict_batch call.
  std::size_t size() const noexcept { return offsets_.size() - 1; }
  /// Top-k labels for input `i`, descending score (fewer than k if the
  /// sampled active set was smaller).
  std::span<const Index> row(std::size_t i) const {
    SLIDE_ASSERT(i + 1 < offsets_.size());
    return {labels_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
  }
  /// All labels, concatenated row after row.
  std::span<const Index> labels() const noexcept {
    return {labels_.data(), labels_.size()};
  }
  void clear() {
    labels_.clear();
    offsets_.assign(1, 0);
  }

 private:
  friend class Network;

  std::vector<Index> labels_;
  std::vector<std::size_t> offsets_{0};  // size() + 1 entries
  // Reused scratch (not part of the result).
  std::vector<std::vector<Index>> rows_;
  std::vector<const SparseVector*> ptrs_;
  std::vector<std::unique_ptr<InferenceContext>> contexts_;
  Index context_units_ = 0;
  std::uint64_t seed_ = 1;
};

/// Resumable pagination over one query's ranked output-layer candidates
/// (Network::topk_iterator). Each next(k) call ranks and emits the next k
/// results in descending score, reusing the InferenceContext's TopKScratch
/// — the candidates are scored ONCE at iterator creation; paging is just
/// incremental partial sorting. Concatenating successive pages yields
/// exactly the one-shot predict_topk ranking (same comparator, same
/// tie-break toward the earlier candidate position), with no overlaps —
/// the page-prefix equivalence the serve pagination path relies on.
///
/// The iterator borrows the context: it is invalidated by any other
/// predict_* / topk_iterator call on the same context.
class TopKIterator {
 public:
  /// Emits the next page of up to `k` result ids into `out` (descending
  /// score). Returns false — with `out` empty — once exhausted.
  bool next(int k, std::vector<Index>& out);

  /// Results emitted so far / total candidates available.
  std::size_t position() const noexcept { return cursor_; }
  std::size_t total() const noexcept { return scratch_->act.size(); }

 private:
  friend class Network;
  explicit TopKIterator(TopKScratch& scratch) : scratch_(&scratch) {}

  TopKScratch* scratch_;
  std::size_t cursor_ = 0;
};

/// Thread-safety contract
/// -----------------------
/// Readers: predict_top1 / predict_topk are const and safe for any number
/// of concurrent callers, each with its own InferenceContext — they touch
/// only immutable layer state (weights, hash tables) plus per-context and
/// thread_local scratch. This is what the serving engine (serve/) relies
/// on: many workers share one const Network with zero locks.
///
/// Writers: train_sample, apply_updates, maybe_rebuild, rebuild_all and
/// checkpoint loads mutate shared state and must never overlap a reader.
/// The supported patterns are (a) a frozen network serving concurrent
/// readers, or (b) RCU-style snapshots (serve/snapshot.h) where writers
/// build a fresh network off to the side and swap it in whole.
///
/// Background LSH maintenance is the one sanctioned exception: a layer
/// with an async MaintenancePolicy republishes its hash tables from a
/// background thread while readers keep sampling — reader safety comes
/// from the pinned double-buffer in lsh/table_group.h, not from this
/// contract, and the write-epoch detector deliberately ignores it. Table
/// swaps never touch weights, so predictions stay valid throughout; call
/// quiesce_maintenance() when a fully quiescent network is required.
///
/// Debug builds enforce the contract with a write-epoch counter plus an
/// active-writer count: every mutating entry point bumps the epoch and
/// holds the writer count for its duration, and predict_* asserts that no
/// writer is active at entry or exit and that the epoch did not move while
/// the read was in flight (see write_epoch()). Release compiles all of it
/// out.
class Network {
 public:
  /// max_threads sizes the per-thread structures (touched lists, timers);
  /// pass the trainer's thread count (or more).
  Network(const NetworkConfig& config, int max_threads);

  /// Movable (the write epoch carries over); not copyable. Moving while
  /// any reader or writer is active is undefined, as for any container.
  Network(Network&& other) noexcept
      : config_(std::move(other.config_)),
        embedding_(std::move(other.embedding_)),
        layers_(std::move(other.layers_)),
        write_epoch_(other.write_epoch_.load(std::memory_order_acquire)),
        writers_active_(
            other.writers_active_.load(std::memory_order_acquire)) {}

  const NetworkConfig& config() const noexcept { return config_; }
  Index input_dim() const noexcept { return config_.input_dim; }
  Index output_dim() const noexcept { return layers_.back()->units(); }
  /// Inference-scoring precision (config.precision; see core/config.h).
  Precision precision() const noexcept { return config_.precision; }
  int max_batch_size() const noexcept { return config_.max_batch_size; }
  int num_layers() const noexcept {
    return 1 + static_cast<int>(layers_.size());
  }

  EmbeddingLayer& embedding() noexcept { return *embedding_; }
  const EmbeddingLayer& embedding() const noexcept { return *embedding_; }

  /// Polymorphic stack accessors — the i-th layer after the embedding.
  Layer& stack(int i) noexcept { return *layers_[static_cast<std::size_t>(i)]; }
  const Layer& stack(int i) const noexcept {
    return *layers_[static_cast<std::size_t>(i)];
  }
  int stack_depth() const noexcept { return static_cast<int>(layers_.size()); }

  /// Concrete accessors, kept for existing callers (instrumentation, tests,
  /// benches). Valid only for stacks of SampledLayer-derived layers (dense,
  /// sampled, random-sampled); a ShardedSampledLayer — or any other Layer
  /// outside that hierarchy — must be reached through stack(), and the
  /// debug assert below fires if it is not.
  SampledLayer& layer(int i) noexcept {
    SLIDE_ASSERT(dynamic_cast<SampledLayer*>(
                     layers_[static_cast<std::size_t>(i)].get()) != nullptr);
    return static_cast<SampledLayer&>(*layers_[static_cast<std::size_t>(i)]);
  }
  const SampledLayer& layer(int i) const noexcept {
    SLIDE_ASSERT(dynamic_cast<const SampledLayer*>(
                     layers_[static_cast<std::size_t>(i)].get()) != nullptr);
    return static_cast<const SampledLayer&>(
        *layers_[static_cast<std::size_t>(i)]);
  }
  SampledLayer& output_layer() noexcept {
    return layer(stack_depth() - 1);
  }
  const SampledLayer& output_layer() const noexcept {
    return layer(stack_depth() - 1);
  }
  int num_sampled_layers() const noexcept {
    return static_cast<int>(layers_.size());
  }

  /// One training sample through forward + backward on a batch slot.
  /// Gradients accumulate into the shared per-layer accumulators; call
  /// apply_updates once per batch afterwards. Returns the sample loss.
  float train_sample(int slot, const Sample& sample, float inv_batch,
                     Rng& rng, VisitedSet& visited, int tid);

  /// Applies lazy Adam on every layer (parallelized over touched units).
  void apply_updates(float lr, ThreadPool* pool);

  /// Triggers the per-layer rebuild schedules (paper §4.2). Layers with an
  /// async MaintenancePolicy schedule the work on their background
  /// maintenance thread and return immediately.
  void maybe_rebuild(long iteration, ThreadPool* pool);
  /// Forces a synchronous rebuild of every hashed layer (quiescing any
  /// background maintenance first).
  void rebuild_all(ThreadPool* pool);

  /// Blocks until every layer's background LSH maintenance is idle. Call
  /// before handing the network to a context that expects fully immutable
  /// state (e.g. publishing it as a serving snapshot). Logically const.
  void quiesce_maintenance() const;

  /// Drains outstanding maintenance debt (queued dirty neurons) and waits:
  /// after this, every hashed layer's tables reflect the current weights of
  /// all updated neurons. Call at the end of training before evaluating
  /// through the sampled path (rebuild_all is the heavier alternative).
  void flush_maintenance();

  /// Top-1 prediction. `exact` scores every output neuron (dense forward);
  /// otherwise the output layer is sampled through the hash tables exactly
  /// as in training (without label forcing). Safe for concurrent callers
  /// (one InferenceContext each) while no writer is active — see the
  /// thread-safety contract above.
  Index predict_top1(const SparseVector& x, InferenceContext& ctx,
                     bool exact = false) const;

  /// Top-k predictions ordered by descending score (k results, fewer if the
  /// sampled active set is smaller). Same thread-safety as predict_top1.
  std::vector<Index> predict_topk(const SparseVector& x, InferenceContext& ctx,
                                  int k, bool exact = false) const;

  /// Allocation-free predict_topk: fills `out` from the context's scratch
  /// (clearing previous contents). The batch path below loops over this.
  void predict_topk(const SparseVector& x, InferenceContext& ctx, int k,
                    bool exact, std::vector<Index>& out) const;

  /// Scores the query once and returns a resumable pager over the ranked
  /// output-layer results (see TopKIterator). Same thread-safety contract
  /// as predict_topk; the iterator borrows `ctx` and is invalidated by any
  /// other inference call on it.
  TopKIterator topk_iterator(const SparseVector& x, InferenceContext& ctx,
                             bool exact = false) const;

  /// One page of the ranked results: ids [offset, offset + k) of the full
  /// predict_topk ordering (fewer at the tail; empty past the end). The
  /// serve engine's pagination path (ServeRequest::page_offset) dispatches
  /// through this.
  void predict_topk_page(const SparseVector& x, InferenceContext& ctx, int k,
                         int offset, bool exact, std::vector<Index>& out) const;

  /// Whole-batch inference: top_k labels per input into `out`, parallelized
  /// over inputs when a pool is given (per-thread contexts live inside
  /// `out` and are reused across calls). This is the path the serving
  /// engine's micro-batcher dispatches through. Same thread-safety contract
  /// as predict_top1: safe for concurrent callers (one BatchOutput each)
  /// while no writer is active.
  void predict_batch(std::span<const SparseVector> inputs, BatchOutput& out,
                     ThreadPool* pool = nullptr, int top_k = 1,
                     bool exact = false) const;
  /// Pointer flavor for callers whose inputs are not contiguous (the serve
  /// engine's request groups).
  void predict_batch(std::span<const SparseVector* const> inputs,
                     BatchOutput& out, ThreadPool* pool = nullptr,
                     int top_k = 1, bool exact = false) const;

  // ---- Dynamic label lifecycle (online growth / retirement) ----
  /// Appends `n` fresh output units to the output layer (weights, bias,
  /// optimizer state, mirrors, retrieval index — see Layer::add_units) and
  /// updates the stored config so clones and checkpoints see the grown
  /// width. Writer-role call; returns the global id of the first new unit.
  Index add_output_units(Index n);
  /// Tombstones output-layer ids out of retrieval/top-k/softmax without
  /// compacting rows (see Layer::retire_units). Writer-role call.
  void retire_output_units(std::span<const Index> ids);

  /// Serializes gradient accumulation (HOGWILD ablation).
  void set_use_locks(bool locks) noexcept;

  /// Re-quantizes every layer's bf16 inference mirror from the current fp32
  /// master weights (no-op at fp32 precision). Writer-role call: run it at
  /// the quantize-on-publish points — after training, before handing the
  /// network to readers. Checkpoint loads do it automatically.
  void refresh_inference_mirrors();

  /// Memory accounting across all layers (see MemoryFootprint).
  MemoryFootprint memory_footprint() const noexcept;

  std::size_t num_parameters() const noexcept;

  /// Largest unit count across sampled layers (sizes VisitedSet scratch).
  Index max_sampled_units() const noexcept;

  /// Number of mutations observed so far (debug builds only; always 0 with
  /// NDEBUG so the hot training path carries no shared-counter traffic).
  /// A stable epoch across a code region with no active writer at either
  /// end proves no writer overlapped it.
  std::uint64_t write_epoch() const noexcept {
    return write_epoch_.load(std::memory_order_acquire);
  }

  /// Brackets an external mutation (e.g. core/serialize writing into the
  /// weight spans): epoch bumps at begin, and the active-writer count
  /// covers the whole bracket so overlapping reads assert even when they
  /// start mid-write. Nestable; no-ops with NDEBUG.
  void begin_write() noexcept {
#ifndef NDEBUG
    writers_active_.fetch_add(1, std::memory_order_acq_rel);
    write_epoch_.fetch_add(1, std::memory_order_release);
#endif
  }
  void end_write() noexcept {
#ifndef NDEBUG
    writers_active_.fetch_sub(1, std::memory_order_acq_rel);
#endif
  }

  /// Active writer count (debug builds only; always 0 with NDEBUG).
  int writers_active() const noexcept {
    return writers_active_.load(std::memory_order_acquire);
  }

  /// RAII form of begin_write()/end_write(): exception-safe, so a throwing
  /// writer cannot leak the active-writer count and poison later reads.
  class WriteGuard {
   public:
    explicit WriteGuard(Network& network) : network_(network) {
      network_.begin_write();
    }
    ~WriteGuard() { network_.end_write(); }
    WriteGuard(const WriteGuard&) = delete;
    WriteGuard& operator=(const WriteGuard&) = delete;

   private:
    Network& network_;
  };

 private:
  NetworkConfig config_;
  std::unique_ptr<EmbeddingLayer> embedding_;
  std::vector<std::unique_ptr<Layer>> layers_;
  std::atomic<std::uint64_t> write_epoch_{0};
  std::atomic<int> writers_active_{0};
};

inline InferenceContext::InferenceContext(const Network& network,
                                          std::uint64_t seed)
    : InferenceContext(network.max_sampled_units(), seed) {}

inline void InferenceContext::reset() {
  dense.clear();
  ids_a.clear();
  ids_b.clear();
  act_a.clear();
  act_b.clear();
  topk.clear();
}

inline void InferenceContext::reset(Index max_units) {
  if (visited.capacity() != std::max<Index>(max_units, 1))
    visited = VisitedSet(std::max<Index>(max_units, 1));
  reset();
}

inline void InferenceContext::reset(const Network& network) {
  reset(network.max_sampled_units());
}

}  // namespace slide
