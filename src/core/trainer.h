// Batch-parallel trainer (paper §3.1, "OpenMP Parallelization across a
// Batch"): every training instance of a mini-batch runs on its own thread
// slot; gradients accumulate HOGWILD-style; lazy Adam applies once per
// batch; hash tables refresh on the exponential-decay schedule.
//
// With a synchronous MaintenancePolicy the refresh stalls the whole step
// for its duration — that stall is what `rebuild_seconds` in the
// breakdown measures. Async policies move the refresh onto per-layer
// background maintenance threads (core/layer.h): maybe_rebuild only
// *schedules* work, rebuild_seconds collapses to scheduling overhead, and
// trainer threads keep sampling from the live tables throughout
// (bench/maintenance_overhead.cpp quantifies the difference).
#pragma once

#include <functional>
#include <memory>

#include "core/config.h"
#include "core/network.h"
#include "data/batching.h"
#include "sys/thread_pool.h"
#include "sys/timer.h"

namespace slide {

/// Wall-time decomposition of training work, used by the Figure 6 / Table 2
/// instrumentation benches.
struct TrainTimeBreakdown {
  double batch_compute_seconds = 0.0;  // forward + backward fan-out
  double update_seconds = 0.0;         // lazy Adam application
  double rebuild_seconds = 0.0;        // hash table refreshes
  double total_seconds = 0.0;

  TrainTimeBreakdown operator-(const TrainTimeBreakdown& earlier) const;
};

class Trainer {
 public:
  Trainer(Network& network, const TrainerConfig& config);

  /// Runs one mini-batch (the samples at `indices`); returns the mean loss.
  float step(const Dataset& data, std::span<const std::size_t> indices);

  /// Runs `iterations` batches drawn by an internal shuffling Batcher.
  /// `callback(iteration)` fires every `callback_every` iterations (and on
  /// the last one) when provided.
  void train(const Dataset& data, long iterations,
             const std::function<void(long)>& callback = nullptr,
             long callback_every = 0);

  long iteration() const noexcept { return iteration_; }
  ThreadPool& pool() noexcept { return *pool_; }
  Network& network() noexcept { return network_; }
  const TrainerConfig& config() const noexcept { return config_; }

  const TrainTimeBreakdown& time_breakdown() const noexcept {
    return breakdown_;
  }

  /// Fraction of (threads x wall-time) actually spent executing batch work
  /// since construction — the in-container stand-in for the paper's VTune
  /// core-utilization numbers (Table 2).
  double core_utilization() const;

 private:
  Network& network_;
  TrainerConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<Rng> slot_rngs_;          // one per batch slot (reproducible)
  std::vector<std::unique_ptr<VisitedSet>> visited_;  // one per thread
  long iteration_ = 0;
  TrainTimeBreakdown breakdown_;
  double wall_seconds_ = 0.0;
};

}  // namespace slide
