#include "core/serialize.h"

#include <cstring>
#include <fstream>

namespace slide {

namespace {

constexpr std::uint32_t kMagic = 0x534C4944;  // "SLID"
// Version 2 = version 1 + a precision tag word after the header; loaders
// accept both (see serialize.h's version history).
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kMinVersion = 1;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  SLIDE_CHECK(in.good(), "load_weights: truncated stream");
  return v;
}

void write_floats(std::ostream& out, std::span<const float> data) {
  write_u32(out, static_cast<std::uint32_t>(data.size()));
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
}

void read_floats(std::istream& in, std::span<float> data) {
  const std::uint32_t n = read_u32(in);
  SLIDE_CHECK(n == data.size(),
              "load_weights: parameter block size mismatch (incompatible "
              "architecture)");
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(float)));
  SLIDE_CHECK(in.good(), "load_weights: truncated stream");
}

void write_header(std::ostream& out, std::uint32_t kind,
                  std::uint32_t input_dim, std::uint32_t hidden,
                  std::uint32_t num_layers, Precision precision) {
  write_u32(out, kMagic);
  write_u32(out, kVersion);
  write_u32(out, kind);
  write_u32(out, input_dim);
  write_u32(out, hidden);
  write_u32(out, num_layers);
  write_u32(out, static_cast<std::uint32_t>(precision));  // v2 tag
}

std::uint32_t read_version(std::istream& in) {
  SLIDE_CHECK(read_u32(in) == kMagic, "load_weights: not a SLIDE checkpoint");
  const std::uint32_t version = read_u32(in);
  SLIDE_CHECK(version >= kMinVersion && version <= kVersion,
              "load_weights: unsupported checkpoint version");
  return version;
}

/// Reads the optional v2 precision tag (fp32 for v1 files).
Precision read_precision_tag(std::istream& in, std::uint32_t version) {
  if (version < 2) return Precision::kFP32;
  const std::uint32_t tag = read_u32(in);
  SLIDE_CHECK(tag <= static_cast<std::uint32_t>(Precision::kBF16),
              "load_weights: unknown precision tag");
  return static_cast<Precision>(tag);
}

void check_header(std::istream& in, std::uint32_t kind,
                  std::uint32_t input_dim, std::uint32_t hidden,
                  std::uint32_t num_layers) {
  const std::uint32_t version = read_version(in);
  SLIDE_CHECK(read_u32(in) == kind, "load_weights: checkpoint kind mismatch");
  SLIDE_CHECK(read_u32(in) == input_dim,
              "load_weights: input_dim mismatch");
  SLIDE_CHECK(read_u32(in) == hidden, "load_weights: hidden width mismatch");
  SLIDE_CHECK(read_u32(in) == num_layers,
              "load_weights: layer count mismatch");
  read_precision_tag(in, version);
}

}  // namespace

CheckpointInfo peek_checkpoint_info(std::istream& in) {
  const std::istream::pos_type start = in.tellg();
  CheckpointInfo info;
  info.version = read_version(in);
  info.kind = read_u32(in);
  SLIDE_CHECK(info.kind == 0 || info.kind == 1,
              "peek_checkpoint_info: unknown checkpoint kind");
  read_u32(in);  // input_dim
  read_u32(in);  // hidden
  read_u32(in);  // num_layers
  info.precision = read_precision_tag(in, info.version);
  in.seekg(start);
  SLIDE_CHECK(in.good(), "peek_checkpoint_info: stream not seekable");
  return info;
}

CheckpointInfo peek_checkpoint_info_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SLIDE_CHECK(in.good(), "peek_checkpoint_info_file: cannot open " + path);
  return peek_checkpoint_info(in);
}

void save_weights(const Network& network, std::ostream& out) {
  const EmbeddingLayer& emb = network.embedding();
  write_header(out, /*kind=*/0, emb.input_dim(), emb.units(),
               static_cast<std::uint32_t>(network.stack_depth()),
               network.precision());
  write_floats(out, emb.weights_span());
  write_floats(out, emb.bias_span());
  for (int i = 0; i < network.stack_depth(); ++i) {
    const Layer& layer = network.stack(i);
    write_u32(out, layer.units());
    write_u32(out, layer.fan_in());
    write_floats(out, layer.weights_span());
    write_floats(out, layer.bias_span());
  }
  SLIDE_CHECK(out.good(), "save_weights: write failed");
}

void load_weights(Network& network, std::istream& in, ThreadPool* pool) {
  // Weights change behind the layers' backs: bracket the whole load so
  // concurrent debug readers assert (see network.h thread-safety).
  Network::WriteGuard guard(network);
  EmbeddingLayer& emb = network.embedding();
  const std::uint32_t version = read_version(in);
  // Kind 0 is the unified stack; kind 1 is the pre-unification dense
  // baseline, whose byte layout matches a one-stack-layer network exactly —
  // accepted here so old dense checkpoints migrate into the unified stack.
  const std::uint32_t kind = read_u32(in);
  SLIDE_CHECK(kind == 0 || kind == 1,
              "load_weights: checkpoint kind mismatch");
  SLIDE_CHECK(kind == 0 || network.stack_depth() == 1,
              "load_weights: legacy dense checkpoint needs a single-layer "
              "stack");
  SLIDE_CHECK(read_u32(in) == emb.input_dim(),
              "load_weights: input_dim mismatch");
  SLIDE_CHECK(read_u32(in) == emb.units(),
              "load_weights: hidden width mismatch");
  SLIDE_CHECK(read_u32(in) ==
                  static_cast<std::uint32_t>(network.stack_depth()),
              "load_weights: layer count mismatch");
  // The tag is provenance only: parameter blocks are fp32 masters either
  // way, and the network below re-derives its own mirrors per its config.
  read_precision_tag(in, version);
  read_floats(in, emb.weights_span());
  read_floats(in, emb.bias_span());
  emb.refresh_inference_mirror();
  for (int i = 0; i < network.stack_depth(); ++i) {
    Layer& layer = network.stack(i);
    SLIDE_CHECK(read_u32(in) == layer.units(),
                "load_weights: layer width mismatch");
    SLIDE_CHECK(read_u32(in) == layer.fan_in(),
                "load_weights: layer fan-in mismatch");
    read_floats(in, layer.weights_span());
    read_floats(in, layer.bias_span());
    layer.on_weights_loaded();
  }
  // Hash tables are a function of the weights: refresh them.
  network.rebuild_all(pool);
}

void save_weights_file(const Network& network, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  SLIDE_CHECK(out.good(), "save_weights_file: cannot open " + path);
  save_weights(network, out);
}

void load_weights_file(Network& network, const std::string& path,
                       ThreadPool* pool) {
  std::ifstream in(path, std::ios::binary);
  SLIDE_CHECK(in.good(), "load_weights_file: cannot open " + path);
  load_weights(network, in, pool);
}

void save_weights(const DenseNetwork& network, std::ostream& out) {
  const EmbeddingLayer& emb = network.embedding();
  write_header(out, /*kind=*/1, emb.input_dim(), emb.units(), 1,
               Precision::kFP32);
  write_floats(out, emb.weights_span());
  write_floats(out, emb.bias_span());
  write_u32(out, network.output_dim());
  write_u32(out, emb.units());
  write_floats(out, network.output_weights_span());
  write_floats(out, network.output_bias_span());
  SLIDE_CHECK(out.good(), "save_weights: write failed");
}

void load_weights(DenseNetwork& network, std::istream& in) {
  EmbeddingLayer& emb = network.embedding();
  check_header(in, /*kind=*/1, emb.input_dim(), emb.units(), 1);
  read_floats(in, emb.weights_span());
  read_floats(in, emb.bias_span());
  SLIDE_CHECK(read_u32(in) == network.output_dim(),
              "load_weights: output width mismatch");
  SLIDE_CHECK(read_u32(in) == emb.units(),
              "load_weights: output fan-in mismatch");
  read_floats(in, network.output_weights_span());
  read_floats(in, network.output_bias_span());
  // Same post-rewrite contract as the unified loader: derived state
  // (mirrors, memos) must track the new spans. A no-op today — the dense
  // baseline is fp32 and unhashed — but load paths must not depend on that.
  emb.refresh_inference_mirror();
  network.network().stack(0).on_weights_loaded();
}

}  // namespace slide
