#include "core/serialize.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace slide {

namespace {

constexpr std::uint32_t kMagic = 0x534C4944;  // "SLID"
// Version 5 = version 4 + per-layer dynamic-label lifecycle state for
// kind-0 stack layers (appended-row count + tombstone block); loaders
// accept 1..5 (see serialize.h's version history).
constexpr std::uint32_t kVersion = 5;
constexpr std::uint32_t kMinVersion = 1;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  SLIDE_CHECK(in.good(), "load_weights: truncated stream");
  return v;
}

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  SLIDE_CHECK(in.good(), "load_weights: truncated stream");
  return v;
}

void write_floats(std::ostream& out, std::span<const float> data) {
  write_u32(out, static_cast<std::uint32_t>(data.size()));
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
}

void read_floats(std::istream& in, std::span<float> data) {
  const std::uint32_t n = read_u32(in);
  SLIDE_CHECK(n == data.size(),
              "load_weights: parameter block size mismatch (incompatible "
              "architecture)");
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(float)));
  SLIDE_CHECK(in.good(), "load_weights: truncated stream");
}

/// Reads the raw payload of a length-prefixed block whose length word was
/// already consumed by the caller.
void read_payload(std::istream& in, float* data, std::size_t n) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(n * sizeof(float)));
  SLIDE_CHECK(in.good(), "load_weights: truncated stream");
}

/// Copies `count` global rows of `row_width` floats starting at row
/// `first` from `src` into whichever of the layer's shard blocks own them
/// (the reshard path: file partition != target partition).
void scatter_rows(Layer& layer, const float* src, Index first, Index count,
                  std::size_t row_width, bool bias) {
  for (int s = 0; s < layer.num_shards(); ++s) {
    const std::span<float> span =
        bias ? layer.shard_bias(s) : layer.shard_weights(s);
    const Index off = layer.shard_row_offset(s);
    const Index shard_rows = static_cast<Index>(span.size() / row_width);
    const Index lo = std::max(first, off);
    const Index hi = std::min<Index>(first + count, off + shard_rows);
    if (lo >= hi) continue;
    std::copy(src + static_cast<std::size_t>(lo - first) * row_width,
              src + static_cast<std::size_t>(hi - first) * row_width,
              span.data() + static_cast<std::size_t>(lo - off) * row_width);
  }
}

/// Reads one block (length word already pending in the stream) covering
/// `block_rows` global rows starting at `first`: straight into a matching
/// target shard span when the partitions line up, through a scatter buffer
/// otherwise.
void read_rows_into_layer(std::istream& in, Layer& layer, Index first,
                          Index block_rows, std::size_t row_width, bool bias,
                          std::vector<float>& scratch) {
  const std::size_t len =
      static_cast<std::size_t>(block_rows) * row_width;
  for (int s = 0; s < layer.num_shards(); ++s) {
    const std::span<float> span =
        bias ? layer.shard_bias(s) : layer.shard_weights(s);
    if (layer.shard_row_offset(s) == first && span.size() == len) {
      read_payload(in, span.data(), len);  // partitions align: no copy
      return;
    }
  }
  scratch.resize(len);
  read_payload(in, scratch.data(), len);
  scatter_rows(layer, scratch.data(), first, block_rows, row_width, bias);
}

void write_header(std::ostream& out, std::uint32_t kind,
                  std::uint32_t input_dim, std::uint32_t hidden,
                  std::uint32_t num_layers, Precision precision) {
  write_u32(out, kMagic);
  write_u32(out, kVersion);
  write_u32(out, kind);
  write_u32(out, input_dim);
  write_u32(out, hidden);
  write_u32(out, num_layers);
  write_u32(out, static_cast<std::uint32_t>(precision));  // v2 tag
}

std::uint32_t read_version(std::istream& in) {
  SLIDE_CHECK(read_u32(in) == kMagic, "load_weights: not a SLIDE checkpoint");
  const std::uint32_t version = read_u32(in);
  SLIDE_CHECK(version >= kMinVersion && version <= kVersion,
              "load_weights: unsupported checkpoint version");
  return version;
}

/// Reads the optional v2 precision tag (fp32 for v1 files).
Precision read_precision_tag(std::istream& in, std::uint32_t version) {
  if (version < 2) return Precision::kFP32;
  const std::uint32_t tag = read_u32(in);
  SLIDE_CHECK(tag <= static_cast<std::uint32_t>(Precision::kInt8),
              "load_weights: unknown precision tag");
  return static_cast<Precision>(tag);
}

void check_header(std::istream& in, std::uint32_t kind,
                  std::uint32_t input_dim, std::uint32_t hidden,
                  std::uint32_t num_layers) {
  const std::uint32_t version = read_version(in);
  SLIDE_CHECK(read_u32(in) == kind, "load_weights: checkpoint kind mismatch");
  SLIDE_CHECK(read_u32(in) == input_dim,
              "load_weights: input_dim mismatch");
  SLIDE_CHECK(read_u32(in) == hidden, "load_weights: hidden width mismatch");
  SLIDE_CHECK(read_u32(in) == num_layers,
              "load_weights: layer count mismatch");
  read_precision_tag(in, version);
}

}  // namespace

CheckpointInfo peek_checkpoint_info(std::istream& in) {
  const std::istream::pos_type start = in.tellg();
  CheckpointInfo info;
  info.version = read_version(in);
  info.kind = read_u32(in);
  SLIDE_CHECK(info.kind == 0 || info.kind == 1,
              "peek_checkpoint_info: unknown checkpoint kind");
  read_u32(in);  // input_dim
  read_u32(in);  // hidden
  read_u32(in);  // num_layers
  info.precision = read_precision_tag(in, info.version);
  in.seekg(start);
  SLIDE_CHECK(in.good(), "peek_checkpoint_info: stream not seekable");
  return info;
}

CheckpointInfo peek_checkpoint_info_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SLIDE_CHECK(in.good(), "peek_checkpoint_info_file: cannot open " + path);
  return peek_checkpoint_info(in);
}

void save_weights(const Network& network, std::ostream& out) {
  const EmbeddingLayer& emb = network.embedding();
  write_header(out, /*kind=*/0, emb.input_dim(), emb.units(),
               static_cast<std::uint32_t>(network.stack_depth()),
               network.precision());
  write_floats(out, emb.weights_span());
  write_floats(out, emb.bias_span());
  for (int i = 0; i < network.stack_depth(); ++i) {
    const Layer& layer = network.stack(i);
    write_u32(out, layer.units());
    write_u32(out, layer.fan_in());
    // v5: units the layer grew by online (add_units). A loader built from
    // the original config re-grows its layer by up to this much to reach
    // the file width before reading the parameter blocks.
    write_u32(out, layer.appended_units());
    // v3: one weights+bias block pair per shard, contiguous global row
    // ranges in order (monolithic layers are the single-shard case).
    write_u32(out, static_cast<std::uint32_t>(layer.num_shards()));
    for (int s = 0; s < layer.num_shards(); ++s) {
      write_floats(out, layer.shard_weights(s));
      write_floats(out, layer.shard_bias(s));
    }
    // v4: retriever kind + length-prefixed aux block. Backends whose index
    // is a pure function of the weights (LSH, exact) write an empty block
    // — rebuilt on load like the hash tables always were; HNSW saves its
    // graph so the loader can skip the (expensive, serial) rebuild.
    write_u32(out, static_cast<std::uint32_t>(layer.retriever_kind()));
    std::ostringstream aux(std::ios::binary);
    layer.save_retriever_state(aux);
    const std::string bytes = aux.str();
    write_u64(out, static_cast<std::uint64_t>(bytes.size()));
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    // v5: tombstone block — the currently retired global unit ids, so a
    // reboot does not resurrect retired labels. Rows stay in the parameter
    // blocks (tombstoning never compacts); only the mask is persisted.
    const std::vector<Index> retired = layer.retired_unit_ids();
    write_u64(out, static_cast<std::uint64_t>(retired.size()));
    for (Index id : retired) write_u32(out, id);
  }
  SLIDE_CHECK(out.good(), "save_weights: write failed");
}

void load_weights(Network& network, std::istream& in, ThreadPool* pool) {
  // Weights change behind the layers' backs: bracket the whole load so
  // concurrent debug readers assert (see network.h thread-safety).
  Network::WriteGuard guard(network);
  EmbeddingLayer& emb = network.embedding();
  const std::uint32_t version = read_version(in);
  // Kind 0 is the unified stack; kind 1 is the pre-unification dense
  // baseline, whose byte layout matches a one-stack-layer network exactly —
  // accepted here so old dense checkpoints migrate into the unified stack.
  const std::uint32_t kind = read_u32(in);
  SLIDE_CHECK(kind == 0 || kind == 1,
              "load_weights: checkpoint kind mismatch");
  SLIDE_CHECK(kind == 0 || network.stack_depth() == 1,
              "load_weights: legacy dense checkpoint needs a single-layer "
              "stack");
  SLIDE_CHECK(read_u32(in) == emb.input_dim(),
              "load_weights: input_dim mismatch");
  SLIDE_CHECK(read_u32(in) == emb.units(),
              "load_weights: hidden width mismatch");
  SLIDE_CHECK(read_u32(in) ==
                  static_cast<std::uint32_t>(network.stack_depth()),
              "load_weights: layer count mismatch");
  // The tag is provenance only: parameter blocks are fp32 masters either
  // way, and the network below re-derives its own mirrors per its config.
  read_precision_tag(in, version);
  read_floats(in, emb.weights_span());
  read_floats(in, emb.bias_span());
  emb.refresh_inference_mirror();
  std::vector<float> scratch;  // reshard scatter buffer (rarely used)
  // Per-layer: true once the layer's retrieval index was restored from a
  // v4 aux block, so the trailing rebuild pass can skip it.
  std::vector<bool> index_loaded(
      static_cast<std::size_t>(network.stack_depth()), false);
  for (int i = 0; i < network.stack_depth(); ++i) {
    Layer& layer = network.stack(i);
    Index units = layer.units();
    const Index fan_in = layer.fan_in();
    const std::uint32_t file_units = read_u32(in);
    SLIDE_CHECK(read_u32(in) == fan_in,
                "load_weights: layer fan-in mismatch");
    // v5: rows the writer appended online (add_units). A target narrower
    // than the file re-grows by that recorded count before reading the
    // parameter blocks, so a network built from the original config loads
    // a grown checkpoint; any other width difference is still an error.
    const std::uint32_t file_appended =
        (version >= 5 && kind == 0) ? read_u32(in) : 0;
    if (file_units != static_cast<std::uint32_t>(units)) {
      SLIDE_CHECK(file_units > static_cast<std::uint32_t>(units) &&
                      file_units - static_cast<std::uint32_t>(units) <=
                          file_appended,
                  "load_weights: layer width mismatch");
      layer.add_units(static_cast<Index>(file_units) - units);
      units = layer.units();
    }
    // v3 kind-0 layers carry a shard count + per-shard blocks; earlier
    // versions and kind-1 legacy files are the one-block (monolithic)
    // layout. The file's partition need not match the target layer's —
    // blocks are scattered by global row index, which is how a monolithic
    // checkpoint reshards into a sharded layer (and vice versa).
    const std::uint32_t file_shards =
        (version >= 3 && kind == 0) ? read_u32(in) : 1;
    SLIDE_CHECK(file_shards >= 1 && file_shards <= units,
                "load_weights: invalid shard count");
    Index row = 0;
    for (std::uint32_t fs = 0; fs < file_shards; ++fs) {
      const std::uint32_t wlen = read_u32(in);
      SLIDE_CHECK(wlen > 0 && wlen % fan_in == 0,
                  "load_weights: parameter block size mismatch "
                  "(incompatible architecture)");
      const Index block_rows = static_cast<Index>(wlen / fan_in);
      SLIDE_CHECK(row + block_rows <= units,
                  "load_weights: shard blocks exceed layer width");
      read_rows_into_layer(in, layer, row, block_rows, fan_in,
                           /*bias=*/false, scratch);
      SLIDE_CHECK(read_u32(in) == static_cast<std::uint32_t>(block_rows),
                  "load_weights: bias block size mismatch");
      read_rows_into_layer(in, layer, row, block_rows, /*row_width=*/1,
                           /*bias=*/true, scratch);
      row += block_rows;
    }
    SLIDE_CHECK(row == units,
                "load_weights: shard blocks do not cover the layer");
    layer.on_weights_loaded();
    // v4: retriever kind + aux block. The block is usable only if the
    // target layer runs the same backend the writer did (a checkpoint is
    // architecture-portable across retriever configs — mismatched blocks
    // are skipped and the index rebuilds from the weights as before).
    if (version >= 4 && kind == 0) {
      const std::uint32_t file_retriever = read_u32(in);
      SLIDE_CHECK(
          file_retriever <=
              static_cast<std::uint32_t>(retrieval::RetrieverKind::kHnsw),
          "load_weights: unknown retriever kind");
      const std::uint64_t aux_bytes = read_u64(in);
      if (aux_bytes > 0 &&
          file_retriever ==
              static_cast<std::uint32_t>(layer.retriever_kind())) {
        // A backend may decline the block part-way through (e.g. an HNSW
        // graph saved over a different universe size). Reposition to the
        // end of the aux block either way so a declined block cannot
        // desync the words that follow it.
        const std::istream::pos_type aux_start = in.tellg();
        index_loaded[static_cast<std::size_t>(i)] =
            layer.load_retriever_state(in, aux_bytes);
        if (aux_start != std::istream::pos_type(-1)) {
          in.clear();
          in.seekg(aux_start + static_cast<std::istream::off_type>(aux_bytes));
        }
      } else {
        in.ignore(static_cast<std::streamsize>(aux_bytes));
      }
      SLIDE_CHECK(in.good(), "load_weights: truncated stream");
    }
    // v5: tombstone block — re-apply retired ids so they stay masked
    // across reboots (the retriever mask survives the rebuild pass below).
    if (version >= 5 && kind == 0) {
      const std::uint64_t num_retired = read_u64(in);
      if (num_retired > 0) {
        SLIDE_CHECK(num_retired <= static_cast<std::uint64_t>(units),
                    "load_weights: tombstone count exceeds layer width");
        std::vector<Index> retired;
        retired.reserve(static_cast<std::size_t>(num_retired));
        for (std::uint64_t r = 0; r < num_retired; ++r)
          retired.push_back(static_cast<Index>(read_u32(in)));
        layer.retire_units(retired);
      }
      SLIDE_CHECK(in.good(), "load_weights: truncated stream");
    }
  }
  // Retrieval indexes are a function of the weights: refresh the ones not
  // restored from a v4 aux block (pre-v4 behavior: rebuild everything).
  {
    Network::WriteGuard rebuild_guard(network);
    for (int i = 0; i < network.stack_depth(); ++i) {
      if (!index_loaded[static_cast<std::size_t>(i)])
        network.stack(i).rebuild_tables(pool);
    }
  }
}

void save_weights_file(const Network& network, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  SLIDE_CHECK(out.good(), "save_weights_file: cannot open " + path);
  save_weights(network, out);
}

void load_weights_file(Network& network, const std::string& path,
                       ThreadPool* pool) {
  std::ifstream in(path, std::ios::binary);
  SLIDE_CHECK(in.good(), "load_weights_file: cannot open " + path);
  load_weights(network, in, pool);
}

void save_weights(const DenseNetwork& network, std::ostream& out) {
  const EmbeddingLayer& emb = network.embedding();
  write_header(out, /*kind=*/1, emb.input_dim(), emb.units(), 1,
               Precision::kFP32);
  write_floats(out, emb.weights_span());
  write_floats(out, emb.bias_span());
  write_u32(out, network.output_dim());
  write_u32(out, emb.units());
  write_floats(out, network.output_weights_span());
  write_floats(out, network.output_bias_span());
  SLIDE_CHECK(out.good(), "save_weights: write failed");
}

namespace {

constexpr std::uint32_t kShardMagic = 0x534C5348;  // "SLSH"
constexpr std::uint32_t kShardVersion = 1;

}  // namespace

std::string shard_file_path(const std::string& base, int shard_index,
                            int num_shards) {
  return base + ".shard" + std::to_string(shard_index) + "of" +
         std::to_string(num_shards);
}

void save_shard_file(const std::string& path, const ShardFileInfo& info,
                     std::span<const float> weights,
                     std::span<const float> bias) {
  SLIDE_CHECK(weights.size() ==
                  static_cast<std::size_t>(info.rows) * info.fan_in,
              "save_shard_file: weight block does not match rows x fan_in");
  SLIDE_CHECK(bias.size() == info.rows,
              "save_shard_file: bias block does not match rows");
  std::ofstream out(path, std::ios::binary);
  SLIDE_CHECK(out.good(), "save_shard_file: cannot open " + path);
  write_u32(out, kShardMagic);
  write_u32(out, kShardVersion);
  write_u32(out, info.shard_index);
  write_u32(out, info.num_shards);
  write_u32(out, info.row_offset);
  write_u32(out, info.rows);
  write_u32(out, info.fan_in);
  write_floats(out, weights);
  write_floats(out, bias);
  SLIDE_CHECK(out.good(), "save_shard_file: write failed");
}

namespace {

ShardFileInfo read_shard_header(std::istream& in, const std::string& path) {
  SLIDE_CHECK(read_u32(in) == kShardMagic,
              "load_shard_file: " + path + " is not a SLIDE shard file");
  SLIDE_CHECK(read_u32(in) == kShardVersion,
              "load_shard_file: unsupported shard file version");
  ShardFileInfo info;
  info.shard_index = read_u32(in);
  info.num_shards = read_u32(in);
  info.row_offset = read_u32(in);
  info.rows = read_u32(in);
  info.fan_in = read_u32(in);
  SLIDE_CHECK(info.num_shards >= 1 && info.shard_index < info.num_shards,
              "load_shard_file: invalid shard index/count");
  SLIDE_CHECK(info.rows > 0 && info.fan_in > 0,
              "load_shard_file: empty shard block");
  return info;
}

}  // namespace

ShardFileInfo load_shard_file(const std::string& path,
                              std::vector<float>& weights,
                              std::vector<float>& bias) {
  std::ifstream in(path, std::ios::binary);
  SLIDE_CHECK(in.good(), "load_shard_file: cannot open " + path);
  const ShardFileInfo info = read_shard_header(in, path);
  weights.resize(static_cast<std::size_t>(info.rows) * info.fan_in);
  bias.resize(info.rows);
  read_floats(in, {weights.data(), weights.size()});
  read_floats(in, {bias.data(), bias.size()});
  return info;
}

ShardFileInfo peek_shard_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SLIDE_CHECK(in.good(), "peek_shard_file: cannot open " + path);
  return read_shard_header(in, path);
}

void load_weights(DenseNetwork& network, std::istream& in) {
  EmbeddingLayer& emb = network.embedding();
  check_header(in, /*kind=*/1, emb.input_dim(), emb.units(), 1);
  read_floats(in, emb.weights_span());
  read_floats(in, emb.bias_span());
  SLIDE_CHECK(read_u32(in) == network.output_dim(),
              "load_weights: output width mismatch");
  SLIDE_CHECK(read_u32(in) == emb.units(),
              "load_weights: output fan-in mismatch");
  read_floats(in, network.output_weights_span());
  read_floats(in, network.output_bias_span());
  // Same post-rewrite contract as the unified loader: derived state
  // (mirrors, memos) must track the new spans. A no-op today — the dense
  // baseline is fp32 and unhashed — but load paths must not depend on that.
  emb.refresh_inference_mirror();
  network.network().stack(0).on_weights_loaded();
}

}  // namespace slide
