// Configuration structs for the SLIDE network and trainer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/activation.h"
#include "lsh/factory.h"
#include "lsh/hash_table.h"
#include "lsh/sampling.h"
#include "optim/adam.h"
#include "retrieval/retriever.h"
#include "sys/common.h"

namespace slide {

/// Hash-table refresh schedule (paper §4.2, heuristic 1): the first rebuild
/// happens after `initial_period` iterations (paper uses N0 = 50) and the
/// t-th gap grows exponentially, gap_t = N0 * e^(decay * t) — early training
/// moves weights a lot, late training barely at all.
struct RebuildSchedule {
  bool enabled = true;
  long initial_period = 50;
  double decay = 0.05;
};

/// How a hashed layer executes the maintenance events its RebuildSchedule
/// fires (the schedule decides *when*, the policy decides *what and where*):
///
///   kSync       — full rebuild on the trainer thread; every HOGWILD batch
///                 thread stalls for its duration (the paper's baseline).
///   kAsyncFull  — full rebuild on the layer's background maintenance
///                 thread into the shadow table group, published with an
///                 atomic swap; trainer threads keep sampling from the
///                 active group throughout.
///   kAsyncDelta — between full rebuilds only neurons whose weights were
///                 updated since the last event (the dirty-neuron delta
///                 queue) are re-inserted, on the background thread, into
///                 the live tables (reservoir policy preserved). Escalates
///                 to an async full rebuild when the dirty set covers most
///                 of the layer, and periodically for table hygiene.
enum class MaintenancePolicy { kSync, kAsyncFull, kAsyncDelta };

const char* to_string(MaintenancePolicy policy);
/// Parses "sync" | "async_full" | "async_delta" (slide::Error otherwise).
MaintenancePolicy parse_maintenance_policy(const char* name);

/// Inference-scoring precision of a network ("Accelerating SLIDE on Modern
/// CPUs", Daghaghi et al.):
///
///   kFP32 — weights are read as stored; no mirror, no extra memory.
///   kBF16 — every layer keeps a bfloat16 mirror of its weight matrix
///           (half the bytes; biases stay fp32) and the inference path
///           scores through the backend's mixed bf16xfp32 kernels.
///           Training is untouched: forward/backward/Adam run on the fp32
///           master weights (HOGWILD updates never touch the mirror), and
///           the mirror is re-quantized at the publish points — network
///           construction, checkpoint load, and an explicit
///           Network::refresh_inference_mirrors().
///   kFP16 — binary16 mirror (same bytes as bf16, 3 extra mantissa bits at
///           the cost of range); scored via F16C/AVX-512 `vcvtph2ps`
///           load-convert kernels where the CPU has them.
///   kInt8 — signed 8-bit mirror with a per-row symmetric fp32 scale
///           (quarter the weight bytes; see simd/int8.h for the format);
///           scored via AVX-512 VNNI `vpdpbusd` / AVX2 `vpmaddubsw` /
///           scalar, picked at dispatch-bind time from cpuid.
/// All quantized tiers share the bf16 mirror lifecycle above. Enumerator
/// order is a serialization contract (checkpoint + wire precision tags):
/// append only.
enum class Precision { kFP32, kBF16, kFP16, kInt8 };

const char* to_string(Precision precision);
/// Parses "fp32" | "bf16" | "fp16" | "int8" (slide::Error otherwise).
Precision parse_precision(const char* name);

/// One layer after the first hidden layer (see EmbeddingLayer for the
/// input-facing layer). When `hashed` is set, the layer maintains LSH tables
/// over its neurons and activates only a sampled subset per input.
struct LayerSpec {
  Index units = 0;
  Activation activation = Activation::kReLU;

  bool hashed = false;
  /// Static uniform sampling instead of LSH (the Sampled Softmax baseline
  /// of paper §5.1): actives = forced labels + random classes up to
  /// sampling.target. Mutually exclusive with `hashed`.
  bool random_sampled = false;
  HashFamilyConfig family;    // family.dim is overwritten with the fan-in
  HashTable::Config table;
  SamplingConfig sampling;
  RebuildSchedule rebuild;

  /// Candidate-generation backend for a hashed layer (src/retrieval/):
  /// kLsh keeps the paper's (K, L) tables (bit-identical to the
  /// pre-subsystem layer), kExact scans every unit, kHnsw searches a
  /// seeded small-world graph (`hnsw` knobs). Requires `hashed`.
  retrieval::RetrieverKind retriever = retrieval::RetrieverKind::kLsh;
  retrieval::HnswConfig hnsw;
  /// Where maintenance events run (background thread vs trainer stall) and
  /// whether they re-hash everything or only dirty neurons.
  MaintenancePolicy maintenance = MaintenancePolicy::kSync;

  /// When LSH retrieval (plus forced labels) yields fewer than
  /// sampling.target ids, top up with uniformly random neurons (the
  /// reference implementation's random fill-in).
  bool fill_random_to_target = true;

  /// Memoize w·proj per neuron and re-hash incrementally after sparse
  /// updates (paper §4.2 heuristic 3; Simhash only).
  bool incremental_rehash = false;

  /// Model-parallel sharding of a hashed layer (core/sharded_layer.h).
  /// 0 (the default) builds the monolithic SampledLayer; any value >= 1
  /// builds a ShardedSampledLayer whose neuron range is partitioned into
  /// that many contiguous shards, each with its own weight block, LSH
  /// tables, dirty-delta queue, and maintenance thread. shards = 1 is the
  /// parity anchor: bit-identical to the monolithic layer under sync
  /// maintenance. Requires `hashed`.
  int shards = 0;

  /// Multi-process model parallelism (src/dist/): non-empty builds a
  /// DistributedSampledLayer with one shard worker per endpoint
  /// ("tcp:host:port" or "shm:path"), partitioned exactly like `shards =
  /// endpoints.size()`. Requires `hashed`; mutually exclusive with
  /// `shards`.
  std::vector<std::string> endpoints;
  /// Compress activation/error value runs to bf16 on the wire (distributed
  /// only). Halves hot-path bytes; breaks bit-exactness vs in-process.
  bool wire_bf16 = false;
  /// Non-empty (distributed only): workers boot their weights from
  /// per-shard checkpoint files "<base>.shard<s>of<n>" on their own
  /// filesystem instead of random init.
  std::string shard_checkpoint_base;

  /// Weight init stddev; 0 selects 2/sqrt(fan_in).
  float init_stddev = 0.0f;
};

struct NetworkConfig {
  Index input_dim = 0;
  /// First hidden layer width (dense, ReLU, fed by the sparse input).
  Index hidden_units = 128;
  float hidden_init_stddev = 0.5f;

  /// Subsequent layers; the last one is the (softmax) output layer.
  std::vector<LayerSpec> layers;

  /// Batch slots to preallocate (max batch size the network can train on).
  int max_batch_size = 256;

  /// Inference-scoring precision (see Precision). bf16 halves the weight
  /// bytes the serving path reads; fp32 master weights remain authoritative
  /// for training and checkpoints.
  Precision precision = Precision::kFP32;

  AdamConfig adam;
  std::uint64_t seed = 123;
};

struct TrainerConfig {
  int batch_size = 128;
  int num_threads = 0;  // 0 = hardware_threads()
  float learning_rate = 1e-4f;
  bool shuffle = true;
  /// Lock-free gradient accumulation (paper §3.1, HOGWILD). Setting false
  /// serializes accumulation behind per-layer mutexes (ablation only).
  bool hogwild = true;
  std::uint64_t seed = 99;
};

/// Builds the paper's benchmark architecture: input -> 128 ReLU -> softmax
/// output with LSH tables on the output layer only ("we maintain the hash
/// tables for the last layer, where we have a computational bottleneck").
/// Backed by NetworkBuilder (core/builder.h) — equivalent to
/// NetworkBuilder(input_dim).dense(hidden).sampled(label_dim, family,
/// sampling_target).to_config(); prefer the builder in new code.
NetworkConfig make_paper_network(Index input_dim, Index label_dim,
                                 const HashFamilyConfig& family,
                                 Index sampling_target,
                                 Index hidden_units = 128);

}  // namespace slide
