#include "core/activation.h"

namespace slide {

const char* to_string(Activation activation) {
  switch (activation) {
    case Activation::kReLU:
      return "relu";
    case Activation::kSoftmax:
      return "softmax";
    case Activation::kLinear:
      return "linear";
  }
  return "?";
}

}  // namespace slide
