// Model-parallel sharding of a wide LSH-sampled layer.
//
// SLIDE's win grows with the width of the output layer, but a monolithic
// SampledLayer owns one neuron array and one LSH table group, so its
// rebuilds serialize on a single maintenance thread and its class count is
// capped by what one table group can hold comfortably. Distributed SLIDE
// (Yan et al., 2022) shards the output layer across workers via model
// parallelism with per-shard LSH sampling; ShardedSampledLayer is the
// in-process form of that design:
//
//   global neuron range [0, units)
//     = shard 0 rows [off_0, off_1)  — own weight block, MaintainedTables,
//     + shard 1 rows [off_1, off_2)    dirty-delta queue, maintenance
//     + ...                            thread, bf16 mirror, Adam state
//
// Each shard is a full SampledLayer over its contiguous row range, so
// rebuilds, HOGWILD gradient accumulation, delta re-inserts, and bf16
// mirror refreshes all proceed per-shard: S background maintenance threads
// rebuild concurrently where the monolithic layer has one, and sync
// rebuilds fan the shards out across the ThreadPool.
//
// Forward queries every shard's tables and merges the per-shard candidate
// sets into one global active set (ids globalized by the shard row
// offset); softmax normalization runs over the merged set, exactly like
// the monolithic layer's active-set softmax. Backward scatters the merged
// deltas back to the owning shards — a shard that produced no active
// neurons receives no gradient traffic. Top-k inference merges the
// per-shard candidate runs through a bounded heap in InferenceContext
// scratch (no allocation; see Layer::forward_inference_topk).
//
// Parity anchor: with shards = 1 the layer is bit-identical to the
// monolithic SampledLayer under sync maintenance — same weight init
// stream, same sampling target, same RNG consumption order, same Adam
// trajectory. tests/test_sharded_layer.cpp pins this.
#pragma once

#include <memory>
#include <vector>

#include "core/layer.h"

namespace slide {

/// Deterministic near-equal contiguous partition of `units` into `shards`
/// row ranges: returns shards + 1 offsets (offsets[0] == 0, back() ==
/// units); the first units % shards shards own one extra row. Checkpoint
/// loaders and the distributed coordinator recompute any writer's partition
/// from (units, shards) alone.
std::vector<Index> shard_partition(Index units, int shards);

/// Derives the config of one shard from the GLOBAL layer config: shard_size
/// units, proportional sampling target and inference budget (rounded up),
/// per-bucket-occupancy-preserving range_pow shrink, and the golden-ratio
/// seed stride (shard 0 keeps config.seed — the S = 1 bit-identity anchor).
/// Single source of truth shared by ShardedSampledLayer and the distributed
/// coordinator, so a remote shard is constructed bit-identically to its
/// in-process twin.
SampledLayer::Config derive_shard_config(const SampledLayer::Config& global,
                                         Index shard_size, int shard_index);

class ShardedSampledLayer final : public Layer {
 public:
  /// `config` describes the GLOBAL layer (total units, global sampling
  /// target, one seed); the constructor derives the per-shard configs:
  /// near-equal contiguous row ranges (the first units % shards shards get
  /// one extra row), per-shard sampling target ceil(target * shard_units /
  /// units), and per-shard seeds (shard 0 keeps config.seed, so shards = 1
  /// reproduces the monolithic layer bit for bit). Requires config.hashed.
  ShardedSampledLayer(const SampledLayer::Config& config, int shards,
                      int batch_slots, int max_threads);

  // ---- Identity ----
  LayerKind kind() const noexcept override { return LayerKind::kSharded; }
  Index units() const noexcept override { return units_; }
  Index fan_in() const noexcept override { return fan_in_; }
  Activation activation() const noexcept override {
    return config_.activation;
  }
  const SampledLayer::Config& config() const noexcept { return config_; }

  /// Shard topology accessors (tests, benches, serialization).
  int shards() const noexcept { return static_cast<int>(shards_.size()); }
  SampledLayer& shard(int s) noexcept {
    return *shards_[static_cast<std::size_t>(s)];
  }
  const SampledLayer& shard(int s) const noexcept {
    return *shards_[static_cast<std::size_t>(s)];
  }
  /// Global row range of shard s: [shard_offset(s), shard_offset(s + 1)).
  Index shard_offset(int s) const noexcept {
    return offsets_[static_cast<std::size_t>(s)];
  }
  /// Owning shard of a global unit id.
  int shard_of(Index unit) const noexcept;

  // ---- Training hooks ----
  void forward(int slot, const ActiveSet& prev, std::span<const Index> forced,
               Rng& rng, VisitedSet& visited, int tid) override;
  float compute_softmax_ce_deltas(int slot, std::span<const Index> labels,
                                  float inv_batch) override;
  void compute_relu_deltas(int slot) override;
  void backward(int slot, ActiveSet& prev, int tid) override;
  void apply_updates(float lr, ThreadPool* pool) override;

  // ---- LSH lifecycle ----
  /// Fires each shard's schedule. Under sync maintenance with a
  /// multi-thread pool the shards rebuild in parallel (one pool worker per
  /// shard, each building its own table group); async policies schedule on
  /// the S per-shard maintenance threads and return immediately.
  bool maybe_rebuild(long iteration, ThreadPool* pool) override;
  void rebuild_tables(ThreadPool* pool) override;
  void quiesce_maintenance() const override;
  void flush_maintenance() override;

  // ---- Dynamic label lifecycle ----
  /// Appends `n` units to the LAST shard (every other shard's row offset
  /// stays put, so existing global ids are stable) and extends the global
  /// partition. Returns the global id of the first appended unit.
  Index add_units(Index n) override;
  /// Routes each global id to its owning shard's tombstone mask.
  void retire_units(std::span<const Index> ids) override;
  Index retired_count() const noexcept override;
  /// Globalized (by shard row offset) tombstoned ids, ascending.
  std::vector<Index> retired_unit_ids() const override;
  Index appended_units() const noexcept override;

  /// Aggregated diagnostics across shards.
  long rebuild_count() const noexcept;
  long delta_reinserted() const noexcept;
  std::size_t dirty_pending() const;
  /// Summed per-shard phase timers (the Figure 6 / Table 2
  /// instrumentation; see SampledLayer::sampling_seconds).
  double sampling_seconds() const override;
  double compute_seconds() const override;

  // ---- Inference hooks ----
  void forward_inference(std::span<const Index> prev_ids,
                         std::span<const float> prev_act, bool exact,
                         Rng& rng, VisitedSet& visited,
                         std::vector<Index>& ids_out,
                         std::vector<float>& act_out) const override;
  /// K-way merge of the per-shard candidate runs through a bounded heap in
  /// the caller's scratch — the global top-k never materializes more than
  /// k entries beyond the per-shard candidate buffers.
  void forward_inference_topk(std::span<const Index> prev_ids,
                              std::span<const float> prev_act, int k,
                              bool exact, Rng& rng, VisitedSet& visited,
                              TopKScratch& scratch,
                              std::vector<Index>& out) const override;

  // ---- Per-slot state (the merged, globally-indexed active set) ----
  ActiveSet& slot(int s) override {
    return slots_[static_cast<std::size_t>(s)];
  }
  const ActiveSet& slot(int s) const override {
    return slots_[static_cast<std::size_t>(s)];
  }

  // ---- Serialize hooks ----
  /// A sharded layer has no contiguous whole-layer parameter block; the
  /// per-shard spans below are the serialization surface (checkpoint v3).
  /// The whole-layer spans are intentionally empty so a caller that
  /// ignores num_shards() fails loudly (zero-size block) instead of
  /// silently reading one shard.
  std::span<float> weights_span() noexcept override { return {}; }
  std::span<const float> weights_span() const noexcept override { return {}; }
  std::span<float> bias_span() noexcept override { return {}; }
  std::span<const float> bias_span() const noexcept override { return {}; }

  int num_shards() const noexcept override { return shards(); }
  Index shard_row_offset(int s) const noexcept override {
    return shard_offset(s);
  }
  std::span<float> shard_weights(int s) noexcept override {
    return shard(s).weights_span();
  }
  std::span<const float> shard_weights(int s) const noexcept override {
    return shard(s).weights_span();
  }
  std::span<float> shard_bias(int s) noexcept override {
    return shard(s).bias_span();
  }
  std::span<const float> shard_bias(int s) const noexcept override {
    return shard(s).bias_span();
  }

  void on_weights_loaded() noexcept override;
  std::size_t num_parameters() const noexcept override;

  // ---- Quantized inference ----
  Precision inference_precision() const noexcept override {
    return config_.precision;
  }
  void refresh_inference_mirror() noexcept override;
  std::size_t inference_weight_bytes() const noexcept override;
  LayerMemory memory() const noexcept override;

  void set_use_locks(bool locks) noexcept override;
  double average_active_fraction() const override;

  // ---- Retrieval subsystem hooks ----
  /// All shards share the global config's backend.
  retrieval::RetrieverKind retriever_kind() const noexcept override {
    return config_.retriever;
  }
  /// Summed adaptive-retrieval counters across shards.
  RetrievalStats retrieval_stats() const override;

 private:
  /// Scatters the merged per-slot deltas back into the shard slots (the
  /// inverse of the forward merge); called by backward.
  void scatter_errors(int slot);

  SampledLayer::Config config_;  // the global (pre-partition) config
  Index units_;
  Index fan_in_;
  std::vector<Index> offsets_;  // size shards() + 1; offsets_[0] == 0
  std::vector<std::unique_ptr<SampledLayer>> shards_;
  std::vector<ActiveSet> slots_;  // merged active sets, global ids
};

}  // namespace slide
