#include "dist/frame.h"

#include <array>

namespace slide::dist {

namespace {

constexpr std::array<std::uint8_t, 4> kMagic = {0x53, 0x4C, 0x46, 0x57};

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

const char* to_string(FrameErrorKind kind) {
  switch (kind) {
    case FrameErrorKind::kTruncated:
      return "truncated";
    case FrameErrorKind::kBadMagic:
      return "bad magic";
    case FrameErrorKind::kOversized:
      return "oversized";
    case FrameErrorKind::kBadCrc:
      return "bad crc";
    case FrameErrorKind::kBadFormat:
      return "bad format";
  }
  return "?";
}

std::uint32_t crc32(const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    c = kCrcTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out) {
  SLIDE_CHECK(frame.payload.size() <= kMaxFramePayload,
              "encode_frame: payload exceeds kMaxFramePayload");
  out.clear();
  out.resize(kFrameHeaderBytes + frame.payload.size());
  out[0] = kMagic[0];
  out[1] = kMagic[1];
  out[2] = kMagic[2];
  out[3] = kMagic[3];
  out[4] = frame.type;
  out[5] = frame.flags;
  out[6] = 0;
  out[7] = 0;
  put_u32(out.data() + 8, static_cast<std::uint32_t>(frame.payload.size()));
  put_u32(out.data() + 12, crc32(frame.payload.data(), frame.payload.size()));
  std::memcpy(out.data() + kFrameHeaderBytes, frame.payload.data(),
              frame.payload.size());
}

FrameHeader decode_frame_header(const std::uint8_t* header16) {
  if (std::memcmp(header16, kMagic.data(), kMagic.size()) != 0)
    throw FrameError(FrameErrorKind::kBadMagic,
                     "header does not start with SLFW");
  FrameHeader h;
  h.type = header16[4];
  h.flags = header16[5];
  h.length = get_u32(header16 + 8);
  h.crc = get_u32(header16 + 12);
  if (h.length > kMaxFramePayload)
    throw FrameError(FrameErrorKind::kOversized,
                     "length " + std::to_string(h.length) + " exceeds cap");
  return h;
}

Frame assemble_frame(const FrameHeader& header,
                     std::vector<std::uint8_t> payload) {
  if (payload.size() != header.length)
    throw FrameError(FrameErrorKind::kTruncated,
                     "payload shorter than header length");
  if (crc32(payload.data(), payload.size()) != header.crc)
    throw FrameError(FrameErrorKind::kBadCrc, "payload checksum mismatch");
  Frame frame;
  frame.type = header.type;
  frame.flags = header.flags;
  frame.payload = std::move(payload);
  return frame;
}

}  // namespace slide::dist
