#include "dist/transport.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "dist/shm_ring.h"

namespace slide::dist {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const char* what) {
  throw TransportError(std::string(what) + ": " + std::strerror(errno));
}

/// Remaining milliseconds of a deadline started `start` ago with budget
/// `timeout_ms` (< 0 = infinite). Returns -1 for infinite, throws on expiry.
int remaining_ms(Clock::time_point start, int timeout_ms, const char* what) {
  if (timeout_ms < 0) return -1;
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            start)
          .count();
  const long left = timeout_ms - static_cast<long>(elapsed);
  if (left <= 0) throw TransportTimeout(std::string(what) + ": timed out");
  return static_cast<int>(left);
}

struct ParsedEndpoint {
  std::string scheme;  // "tcp" | "shm"
  std::string host;    // tcp only
  int port = 0;        // tcp only
  std::string path;    // shm only
};

ParsedEndpoint parse_endpoint(const std::string& endpoint) {
  ParsedEndpoint p;
  const std::size_t colon = endpoint.find(':');
  SLIDE_CHECK(colon != std::string::npos,
              "endpoint must be tcp:<host>:<port> or shm:<path>");
  p.scheme = endpoint.substr(0, colon);
  const std::string rest = endpoint.substr(colon + 1);
  if (p.scheme == "tcp") {
    const std::size_t sep = rest.rfind(':');
    SLIDE_CHECK(sep != std::string::npos,
                "tcp endpoint must be tcp:<host>:<port>");
    p.host = rest.substr(0, sep);
    if (p.host.empty()) p.host = "0.0.0.0";
    try {
      p.port = std::stoi(rest.substr(sep + 1));
    } catch (const std::exception&) {
      throw Error("tcp endpoint has a non-numeric port: " + endpoint);
    }
    SLIDE_CHECK(p.port >= 0 && p.port <= 65535,
                "tcp endpoint port out of range");
  } else if (p.scheme == "shm") {
    SLIDE_CHECK(!rest.empty(), "shm endpoint must be shm:<path>");
    p.path = rest;
  } else {
    throw Error("unknown endpoint scheme '" + p.scheme +
                "' (expected tcp: or shm:)");
  }
  return p;
}

sockaddr_in resolve_ipv4(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1) return addr;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const int rc = getaddrinfo(host.c_str(), nullptr, &hints, &result);
  if (rc != 0 || result == nullptr)
    throw TransportError("cannot resolve host '" + host +
                         "': " + gai_strerror(rc));
  addr.sin_addr =
      reinterpret_cast<sockaddr_in*>(result->ai_addr)->sin_addr;
  freeaddrinfo(result);
  return addr;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpTransport
// ---------------------------------------------------------------------------

TcpTransport::TcpTransport(int fd) : fd_(fd) {
  SLIDE_CHECK(fd >= 0, "TcpTransport: invalid socket");
  set_nodelay(fd);
}

TcpTransport::~TcpTransport() { close(); }

void TcpTransport::close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

void TcpTransport::send(const Frame& frame) {
  encode_frame(frame, send_buf_);
  const std::uint8_t* p = send_buf_.data();
  std::size_t left = send_buf_.size();
  while (left > 0) {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) throw TransportClosed("tcp send: transport closed");
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET || errno == EBADF)
        throw TransportClosed("tcp send: peer closed");
      throw_errno("tcp send");
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  count_sent(send_buf_.size());
}

void TcpTransport::read_exact(std::uint8_t* dst, std::size_t n,
                              int timeout_ms) {
  const auto start = Clock::now();
  std::size_t got = 0;
  while (got < n) {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) throw TransportClosed("tcp recv: transport closed");
    pollfd pfd{fd, POLLIN, 0};
    const int wait = remaining_ms(start, timeout_ms, "tcp recv");
    const int pr = ::poll(&pfd, 1, wait);
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw_errno("tcp poll");
    }
    if (pr == 0) continue;  // loop re-checks the deadline
    const ssize_t r = ::recv(fd, dst + got, n - got, 0);
    if (r == 0) throw TransportClosed("tcp recv: peer closed");
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      if (errno == ECONNRESET || errno == EBADF)
        throw TransportClosed("tcp recv: peer reset");
      throw_errno("tcp recv");
    }
    got += static_cast<std::size_t>(r);
  }
}

std::size_t TcpTransport::recv_raw(void* dst, std::size_t cap,
                                   int timeout_ms) {
  SLIDE_CHECK(cap > 0, "tcp recv_raw: zero-capacity buffer");
  const auto start = Clock::now();
  while (true) {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) throw TransportClosed("tcp recv_raw: transport closed");
    pollfd pfd{fd, POLLIN, 0};
    const int wait = remaining_ms(start, timeout_ms, "tcp recv_raw");
    const int pr = ::poll(&pfd, 1, wait);
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw_errno("tcp poll");
    }
    if (pr == 0) continue;  // loop re-checks the deadline
    const ssize_t r = ::recv(fd, dst, cap, 0);
    if (r == 0) throw TransportClosed("tcp recv_raw: peer closed");
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      if (errno == ECONNRESET || errno == EBADF)
        throw TransportClosed("tcp recv_raw: peer reset");
      throw_errno("tcp recv_raw");
    }
    return static_cast<std::size_t>(r);
  }
}

void TcpTransport::send_raw(const void* data, std::size_t n) {
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  std::size_t left = n;
  while (left > 0) {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) throw TransportClosed("tcp send_raw: transport closed");
    const ssize_t w = ::send(fd, p, left, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET || errno == EBADF)
        throw TransportClosed("tcp send_raw: peer closed");
      throw_errno("tcp send_raw");
    }
    p += w;
    left -= static_cast<std::size_t>(w);
  }
}

Frame TcpTransport::recv(int timeout_ms) {
  std::uint8_t header[kFrameHeaderBytes];
  read_exact(header, kFrameHeaderBytes, timeout_ms);
  const FrameHeader h = decode_frame_header(header);
  std::vector<std::uint8_t> payload(h.length);
  if (h.length > 0) read_exact(payload.data(), h.length, timeout_ms);
  count_received(kFrameHeaderBytes + h.length);
  return assemble_frame(h, std::move(payload));
}

// ---------------------------------------------------------------------------
// TcpListener
// ---------------------------------------------------------------------------

TcpListener::TcpListener(const std::string& host, int port) : fd_(-1) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("tcp listen socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = resolve_ipv4(host.empty() ? "0.0.0.0" : host, port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("tcp bind");
  }
  if (::listen(fd, 16) < 0) {
    ::close(fd);
    throw_errno("tcp listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = ntohs(addr.sin_port);
  fd_.store(fd, std::memory_order_release);
}

TcpListener::~TcpListener() { close(); }

void TcpListener::close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

std::string TcpListener::endpoint() const {
  return "tcp:127.0.0.1:" + std::to_string(port_);
}

std::unique_ptr<Transport> TcpListener::accept(int timeout_ms) {
  const auto start = Clock::now();
  while (true) {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) throw TransportClosed("tcp accept: listener closed");
    pollfd pfd{fd, POLLIN, 0};
    const int wait = remaining_ms(start, timeout_ms, "tcp accept");
    const int pr = ::poll(&pfd, 1, wait);
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw_errno("tcp accept poll");
    }
    if (pr == 0) continue;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      if (errno == EBADF || errno == EINVAL)
        throw TransportClosed("tcp accept: listener closed");
      throw_errno("tcp accept");
    }
    return std::make_unique<TcpTransport>(conn);
  }
}

// ---------------------------------------------------------------------------
// Endpoint factory
// ---------------------------------------------------------------------------

std::unique_ptr<Transport> connect_endpoint(const std::string& endpoint,
                                            int timeout_ms) {
  const ParsedEndpoint p = parse_endpoint(endpoint);
  if (p.scheme == "shm") return shm_attach(p.path, /*server=*/false,
                                           timeout_ms);
  const auto start = Clock::now();
  const sockaddr_in addr =
      resolve_ipv4(p.host == "0.0.0.0" ? "127.0.0.1" : p.host, p.port);
  while (true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("tcp connect socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      return std::make_unique<TcpTransport>(fd);
    ::close(fd);
    // Workers may come up after the coordinator: retry until the deadline.
    remaining_ms(start, timeout_ms, ("connect " + endpoint).c_str());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

std::unique_ptr<Listener> listen_endpoint(const std::string& endpoint) {
  const ParsedEndpoint p = parse_endpoint(endpoint);
  if (p.scheme == "shm") return std::make_unique<ShmListener>(p.path);
  return std::make_unique<TcpListener>(p.host, p.port);
}

}  // namespace slide::dist
