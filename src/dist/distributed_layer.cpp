#include "dist/distributed_layer.h"

#include <algorithm>
#include <cmath>

#include "core/serialize.h"
#include "simd/kernels.h"

namespace slide::dist {

namespace {

/// WireActiveSet from the inference-path spans (empty prev_ids = dense set
/// indexed by unit, the Layer::forward_inference convention).
WireActiveSet capture_spans(std::span<const Index> prev_ids,
                            std::span<const float> prev_act) {
  WireActiveSet w;
  if (prev_ids.empty()) {
    w.dense_width = static_cast<Index>(prev_act.size());
    for (std::size_t i = 0; i < prev_act.size(); ++i) {
      if (prev_act[i] != 0.0f) {
        w.ids.push_back(static_cast<Index>(i));
        w.act.push_back(prev_act[i]);
      }
    }
  } else {
    w.ids.assign(prev_ids.begin(), prev_ids.end());
    w.act.assign(prev_act.begin(), prev_act.begin() + prev_ids.size());
  }
  return w;
}

}  // namespace

DistributedSampledLayer::DistributedSampledLayer(
    const SampledLayer::Config& config,
    const std::vector<std::string>& endpoints, int batch_slots,
    const DistributedOptions& options)
    : config_(config),
      units_(config.units),
      fan_in_(config.fan_in),
      wire_bf16_(options.wire_bf16) {
  SLIDE_CHECK(config.hashed,
              "DistributedSampledLayer: requires an LSH (hashed) layer");
  SLIDE_CHECK(!config.random_sampled,
              "DistributedSampledLayer: random_sampled cannot be sharded");
  SLIDE_CHECK(!endpoints.empty(),
              "DistributedSampledLayer: at least one worker endpoint");
  const int num = static_cast<int>(endpoints.size());
  offsets_ = shard_partition(units_, num);
  for (const std::string& ep : endpoints)
    clients_.push_back(std::make_unique<ShardClient>(ep, options.client));
  for (int s = 0; s < num; ++s) client(s).connect();
  for (int s = 0; s < num; ++s) {
    InitShardMsg init;
    init.shard_index = s;
    init.num_shards = num;
    init.row_offset = offsets_[static_cast<std::size_t>(s)];
    init.global_units = units_;
    init.batch_slots = batch_slots;
    init.config = derive_shard_config(
        config,
        offsets_[static_cast<std::size_t>(s) + 1] -
            offsets_[static_cast<std::size_t>(s)],
        s);
    if (!options.shard_checkpoint_base.empty())
      init.checkpoint_path =
          shard_file_path(options.shard_checkpoint_base, s, num);
    client(s).call(init.to_frame(), MsgType::kAck);
  }
  slots_.resize(static_cast<std::size_t>(batch_slots));
  seg_sizes_.assign(static_cast<std::size_t>(batch_slots),
                    std::vector<std::size_t>(static_cast<std::size_t>(num)));
  cache_w_.resize(static_cast<std::size_t>(num));
  cache_b_.resize(static_cast<std::size_t>(num));
  refresh_checkpoint_cache();
}

DistributedSampledLayer::~DistributedSampledLayer() { shutdown_workers(); }

int DistributedSampledLayer::shard_of(Index unit) const noexcept {
  SLIDE_ASSERT(unit < units_);
  return static_cast<int>(
             std::upper_bound(offsets_.begin(), offsets_.end(), unit) -
             offsets_.begin()) -
         1;
}

// ---------------------------------------------------------------------------
// Training path
// ---------------------------------------------------------------------------

void DistributedSampledLayer::forward(int slot, const ActiveSet& prev,
                                      std::span<const Index> forced, Rng& rng,
                                      VisitedSet& /*visited*/, int /*tid*/) {
  // Same shape as ShardedSampledLayer::forward, with the per-shard select +
  // score moved across the wire: the prev active set ships sparse, the
  // coordinator's RNG state round-trips per shard in fixed shard order, so
  // the consumed stream — and therefore the selected candidates — are
  // identical to the in-process run. The worker keeps its own VisitedSet
  // (forward begins a fresh epoch per shard either way).
  const int num = shards();
  ForwardMsg msg;
  msg.slot = slot;
  msg.prev = WireActiveSet::capture(prev);
  std::vector<std::size_t>& segs = seg_sizes_[static_cast<std::size_t>(slot)];
  ActiveSet& ms = slots_[static_cast<std::size_t>(slot)];
  ms.ids.clear();
  thread_local std::vector<float> acts;
  acts.clear();
  for (int s = 0; s < num; ++s) {
    const Index lo = offsets_[static_cast<std::size_t>(s)];
    const Index hi = offsets_[static_cast<std::size_t>(s) + 1];
    msg.forced_local.clear();
    for (Index f : forced) {
      SLIDE_ASSERT(f < units_);
      if (f >= lo && f < hi) msg.forced_local.push_back(f - lo);
    }
    msg.rng = rng.state();
    const ForwardResp resp = ForwardResp::from_frame(
        client(s).call(msg.to_frame(wire_bf16_), MsgType::kForwardResp));
    rng.set_state(resp.rng);
    SLIDE_CHECK(resp.ids.size() == resp.act.size(),
                "distributed forward: mismatched id/act runs from shard");
    segs[static_cast<std::size_t>(s)] = resp.ids.size();
    for (Index id : resp.ids) ms.ids.push_back(lo + id);
    acts.insert(acts.end(), resp.act.begin(), resp.act.end());
  }
  const std::size_t total = acts.size();
  ms.act.resize(total);
  std::copy(acts.begin(), acts.end(), ms.act.begin());
  ms.err.assign(total, 0.0f);
  active_sum_.fetch_add(total, std::memory_order_relaxed);
  active_events_.fetch_add(1, std::memory_order_relaxed);
}

float DistributedSampledLayer::compute_softmax_ce_deltas(
    int slot, std::span<const Index> labels, float inv_batch) {
  SLIDE_CHECK(config_.activation == Activation::kSoftmax,
              "softmax deltas on a non-softmax layer");
  ActiveSet& ms = slots_[static_cast<std::size_t>(slot)];
  const std::size_t n = ms.ids.size();
  if (n == 0) return 0.0f;

  // Runs entirely on the coordinator over the merged active set — the
  // normalizing constant spans all shards' candidates, so the loss surface
  // is the in-process sharded (and monolithic) one.
  simd::softmax_inplace(ms.act.data(), n);
  for (std::size_t i = 0; i < n; ++i) ms.err[i] = ms.act[i] * inv_batch;

  const std::vector<std::size_t>& segs =
      seg_sizes_[static_cast<std::size_t>(slot)];
  const int num = shards();
  thread_local std::vector<std::size_t> seg_begin;
  thread_local std::vector<Index> forced_seen;
  seg_begin.assign(static_cast<std::size_t>(num), 0);
  forced_seen.assign(static_cast<std::size_t>(num), 0);
  std::size_t pos = 0;
  for (int s = 0; s < num; ++s) {
    seg_begin[static_cast<std::size_t>(s)] = pos;
    pos += segs[static_cast<std::size_t>(s)];
  }

  const float y =
      labels.empty() ? 0.0f : 1.0f / static_cast<float>(labels.size());
  float loss = 0.0f;
  for (Index label : labels) {
    const int s = shard_of(label);
    const std::size_t i = seg_begin[static_cast<std::size_t>(s)] +
                          forced_seen[static_cast<std::size_t>(s)]++;
    SLIDE_ASSERT(i < n && ms.ids[i] == label);
    ms.err[i] -= y * inv_batch;
    loss -= y * std::log(std::max(ms.act[i], 1e-30f));
  }
  return loss;
}

void DistributedSampledLayer::compute_relu_deltas(int slot) {
  ActiveSet& ms = slots_[static_cast<std::size_t>(slot)];
  const std::size_t n = ms.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (ms.act[i] <= 0.0f) ms.err[i] = 0.0f;
  }
}

void DistributedSampledLayer::backward(int slot, ActiveSet& prev,
                                       int /*tid*/) {
  // Sequential fold over the shards in fixed order: each request carries
  // this shard's segment of the merged err plus the CURRENT prev.err, the
  // worker accumulates its contributions in the in-process loop order, the
  // response replaces prev.err and seeds the next shard. Identical FP
  // rounding order to ShardedSampledLayer::backward's sequential loop.
  // A failure here propagates — dropping one shard's gradients would
  // silently corrupt the model.
  const ActiveSet& ms = slots_[static_cast<std::size_t>(slot)];
  const std::vector<std::size_t>& segs =
      seg_sizes_[static_cast<std::size_t>(slot)];
  const std::size_t pn = prev.size();
  BackwardMsg msg;
  msg.slot = slot;
  std::size_t pos = 0;
  for (int s = 0; s < shards(); ++s) {
    const std::size_t n = segs[static_cast<std::size_t>(s)];
    if (n > 0) {
      msg.err.assign(ms.err.begin() + static_cast<std::ptrdiff_t>(pos),
                     ms.err.begin() + static_cast<std::ptrdiff_t>(pos + n));
      msg.prev_err.assign(prev.err.begin(),
                          prev.err.begin() + static_cast<std::ptrdiff_t>(pn));
      const BackwardResp resp = BackwardResp::from_frame(client(s).call(
          msg.to_frame(wire_bf16_), MsgType::kBackwardResp));
      SLIDE_CHECK(resp.prev_err.size() == pn,
                  "distributed backward: prev_err size changed in flight");
      std::copy(resp.prev_err.begin(), resp.prev_err.end(),
                prev.err.begin());
    }
    pos += n;
  }
}

void DistributedSampledLayer::apply_updates(float lr, ThreadPool* /*pool*/) {
  ApplyUpdatesMsg msg;
  msg.lr = lr;
  for (int s = 0; s < shards(); ++s)
    client(s).call(msg.to_frame(), MsgType::kAck);
}

// ---------------------------------------------------------------------------
// LSH lifecycle
// ---------------------------------------------------------------------------

bool DistributedSampledLayer::maybe_rebuild(long iteration,
                                            ThreadPool* /*pool*/) {
  // Each worker runs its own schedule (sync policies rebuild inline in the
  // worker process — the S workers ARE the parallelism the in-process
  // layer gets from its thread pool).
  MaybeRebuildMsg msg;
  msg.iteration = iteration;
  bool fired = false;
  for (int s = 0; s < shards(); ++s) {
    fired |= MaybeRebuildResp::from_frame(
                 client(s).call(msg.to_frame(), MsgType::kMaybeRebuildResp))
                 .fired;
  }
  return fired;
}

void DistributedSampledLayer::rebuild_tables(ThreadPool* /*pool*/) {
  for (int s = 0; s < shards(); ++s)
    client(s).call(make_frame(MsgType::kRebuildTables), MsgType::kAck);
}

Index DistributedSampledLayer::add_units(Index n) {
  SLIDE_CHECK(n > 0, "add_units: unit count must be positive");
  const Index first = units_;
  const int last = shards() - 1;
  client(last).call(AddUnitsMsg{n}.to_frame(), MsgType::kAck);
  offsets_.back() += n;
  units_ += n;
  config_.units = units_;
  appended_units_ += n;
  // Keep the serialization surface shaped like the workers: the grown rows
  // are zero until the next refresh_checkpoint_cache() pulls them.
  cache_w_[static_cast<std::size_t>(last)].resize(
      static_cast<std::size_t>(offsets_[static_cast<std::size_t>(last) + 1] -
                               offsets_[static_cast<std::size_t>(last)]) *
      fan_in_);
  cache_b_[static_cast<std::size_t>(last)].resize(static_cast<std::size_t>(
      offsets_[static_cast<std::size_t>(last) + 1] -
      offsets_[static_cast<std::size_t>(last)]));
  return first;
}

void DistributedSampledLayer::retire_units(std::span<const Index> ids) {
  std::vector<std::vector<Index>> per_shard(
      static_cast<std::size_t>(shards()));
  for (Index id : ids) {
    SLIDE_CHECK(id < units_, "retire_units: unit id out of range");
    const int s = shard_of(id);
    per_shard[static_cast<std::size_t>(s)].push_back(
        id - offsets_[static_cast<std::size_t>(s)]);
    retired_.insert(id);
  }
  for (int s = 0; s < shards(); ++s) {
    auto& local = per_shard[static_cast<std::size_t>(s)];
    if (local.empty()) continue;
    RetireUnitsMsg msg;
    msg.local_ids = std::move(local);
    client(s).call(msg.to_frame(), MsgType::kAck);
  }
}

void DistributedSampledLayer::quiesce_maintenance() const {
  for (int s = 0; s < shards(); ++s)
    client(s).call(make_frame(MsgType::kQuiesce), MsgType::kAck);
}

void DistributedSampledLayer::flush_maintenance() {
  for (int s = 0; s < shards(); ++s)
    client(s).call(make_frame(MsgType::kFlushMaintenance), MsgType::kAck);
  // The Layer contract says the model is "settled" after this — make the
  // serialization surface (the coordinator cache) reflect the workers'
  // current parameters.
  refresh_checkpoint_cache();
}

// ---------------------------------------------------------------------------
// Inference path (degraded mode: unhealthy shards are skipped)
// ---------------------------------------------------------------------------

void DistributedSampledLayer::forward_inference(
    std::span<const Index> prev_ids, std::span<const float> prev_act,
    bool exact, Rng& rng, VisitedSet& /*visited*/,
    std::vector<Index>& ids_out, std::vector<float>& act_out) const {
  ids_out.clear();
  act_out.clear();
  QueryTopkMsg msg;
  msg.exact = exact;
  // budget 0 = the shard's own config, which already carries its
  // proportional split of the global inference budget (derive_shard_config).
  msg.budget = 0;
  msg.prev = capture_spans(prev_ids, prev_act);
  for (int s = 0; s < shards(); ++s) {
    ShardClient& c = client(s);
    if (!c.healthy()) continue;
    msg.rng = rng.state();
    Frame rf;
    try {
      rf = c.call(msg.to_frame(wire_bf16_), MsgType::kQueryTopkResp);
    } catch (const TransportError&) {
      continue;  // degraded mode: answer from the surviving shards
    }
    const QueryTopkResp resp = QueryTopkResp::from_frame(rf);
    rng.set_state(resp.rng);
    const Index off = offsets_[static_cast<std::size_t>(s)];
    for (Index id : resp.ids) ids_out.push_back(off + id);
    act_out.insert(act_out.end(), resp.act.begin(), resp.act.end());
  }
}

void DistributedSampledLayer::forward_inference_topk(
    std::span<const Index> prev_ids, std::span<const float> prev_act, int k,
    bool exact, Rng& rng, VisitedSet& /*visited*/, TopKScratch& scratch,
    std::vector<Index>& out) const {
  out.clear();
  if (k < 1) return;
  // The ShardedSampledLayer bounded-heap k-way merge, fed by RPC responses
  // instead of in-process shard calls (same `better` order: descending
  // score, ties toward the earlier candidate position).
  auto better = [](const std::pair<float, std::uint64_t>& a,
                   const std::pair<float, std::uint64_t>& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  };
  std::vector<std::pair<float, std::uint64_t>>& heap = scratch.heap;
  heap.clear();
  const std::size_t cap = static_cast<std::size_t>(k);
  std::uint64_t position = 0;
  QueryTopkMsg msg;
  msg.exact = exact;
  msg.budget = 0;
  msg.prev = capture_spans(prev_ids, prev_act);
  for (int s = 0; s < shards(); ++s) {
    ShardClient& c = client(s);
    if (!c.healthy()) continue;
    msg.rng = rng.state();
    Frame rf;
    try {
      rf = c.call(msg.to_frame(wire_bf16_), MsgType::kQueryTopkResp);
    } catch (const TransportError&) {
      continue;  // degraded mode
    }
    const QueryTopkResp resp = QueryTopkResp::from_frame(rf);
    rng.set_state(resp.rng);
    const Index off = offsets_[static_cast<std::size_t>(s)];
    for (std::size_t i = 0; i < resp.ids.size(); ++i) {
      const std::pair<float, std::uint64_t> cand{
          resp.act[i],
          (position << 32) | static_cast<std::uint64_t>(off + resp.ids[i])};
      ++position;
      if (heap.size() < cap) {
        heap.push_back(cand);
        std::push_heap(heap.begin(), heap.end(), better);
      } else if (better(cand, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), better);
        heap.back() = cand;
        std::push_heap(heap.begin(), heap.end(), better);
      }
    }
  }
  std::sort(heap.begin(), heap.end(), better);  // descending score
  out.reserve(heap.size());
  for (const auto& entry : heap)
    out.push_back(static_cast<Index>(entry.second & 0xFFFFFFFFull));
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

void DistributedSampledLayer::refresh_checkpoint_cache() {
  for (int s = 0; s < shards(); ++s) {
    FetchShardResp resp = fetch_shard(s);
    SLIDE_CHECK(resp.row_offset == offsets_[static_cast<std::size_t>(s)] &&
                    resp.fan_in == fan_in_,
                "fetch_shard: worker topology does not match coordinator");
    cache_w_[static_cast<std::size_t>(s)] = std::move(resp.weights);
    cache_b_[static_cast<std::size_t>(s)] = std::move(resp.bias);
  }
}

FetchShardResp DistributedSampledLayer::fetch_shard(int s) {
  return FetchShardResp::from_frame(
      client(s).call(make_frame(MsgType::kFetchShard),
                     MsgType::kFetchShardResp));
}

void DistributedSampledLayer::checkpoint_shards(const std::string& base) {
  CheckpointShardMsg msg;
  for (int s = 0; s < shards(); ++s) {
    msg.path = shard_file_path(base, s, shards());
    client(s).call(msg.to_frame(), MsgType::kAck);
  }
}

void DistributedSampledLayer::on_weights_loaded() noexcept {
  for (int s = 0; s < shards(); ++s) {
    SetShardWeightsMsg msg;
    msg.weights = cache_w_[static_cast<std::size_t>(s)];
    msg.bias = cache_b_[static_cast<std::size_t>(s)];
    try {
      client(s).call(msg.to_frame(), MsgType::kAck);
    } catch (const Error&) {
      // noexcept contract: the client marked itself unhealthy; the failure
      // surfaces on the shard's next use.
    }
  }
}

// ---------------------------------------------------------------------------
// Misc hooks
// ---------------------------------------------------------------------------

void DistributedSampledLayer::refresh_inference_mirror() noexcept {
  for (int s = 0; s < shards(); ++s) {
    try {
      client(s).call(make_frame(MsgType::kRefreshMirror), MsgType::kAck);
    } catch (const Error&) {
    }
  }
}

std::size_t DistributedSampledLayer::inference_weight_bytes() const noexcept {
  const std::size_t weight_count = static_cast<std::size_t>(units_) * fan_in_;
  const std::size_t bias_bytes = static_cast<std::size_t>(units_) *
                                 sizeof(float);
  switch (config_.precision) {
    case Precision::kBF16:
    case Precision::kFP16:
      return weight_count * 2 + bias_bytes;
    case Precision::kInt8:
      // s8 weights + one fp32 scale per neuron row (simd/int8.h).
      return weight_count +
             static_cast<std::size_t>(units_) * sizeof(float) + bias_bytes;
    case Precision::kFP32:
      break;
  }
  return weight_count * sizeof(float) + bias_bytes;
}

LayerMemory DistributedSampledLayer::memory() const noexcept {
  LayerMemory m;
  for (int s = 0; s < shards(); ++s) {
    m.master_bytes +=
        (cache_w_[static_cast<std::size_t>(s)].size() +
         cache_b_[static_cast<std::size_t>(s)].size()) *
        sizeof(float);
  }
  return m;
}

void DistributedSampledLayer::set_use_locks(bool locks) noexcept {
  SetUseLocksMsg msg;
  msg.locks = locks;
  for (int s = 0; s < shards(); ++s) {
    try {
      client(s).call(msg.to_frame(), MsgType::kAck);
    } catch (const Error&) {
    }
  }
}

double DistributedSampledLayer::average_active_fraction() const {
  const std::uint64_t events =
      active_events_.load(std::memory_order_relaxed);
  if (events == 0) return 0.0;
  return static_cast<double>(active_sum_.load(std::memory_order_relaxed)) /
         (static_cast<double>(events) * static_cast<double>(units_));
}

StatsResp DistributedSampledLayer::shard_stats(int s) const {
  return StatsResp::from_frame(
      client(s).call(make_frame(MsgType::kStats), MsgType::kStatsResp));
}

double DistributedSampledLayer::sampling_seconds() const {
  double total = 0.0;
  for (int s = 0; s < shards(); ++s) {
    if (!client(s).healthy()) continue;
    try {
      total += shard_stats(s).sampling_seconds;
    } catch (const Error&) {
    }
  }
  return total;
}

double DistributedSampledLayer::compute_seconds() const {
  double total = 0.0;
  for (int s = 0; s < shards(); ++s) {
    if (!client(s).healthy()) continue;
    try {
      total += shard_stats(s).compute_seconds;
    } catch (const Error&) {
    }
  }
  return total;
}

long DistributedSampledLayer::rebuild_count() const {
  long total = 0;
  for (int s = 0; s < shards(); ++s) {
    if (!client(s).healthy()) continue;
    try {
      total += static_cast<long>(shard_stats(s).rebuild_count);
    } catch (const Error&) {
    }
  }
  return total;
}

long DistributedSampledLayer::delta_reinserted() const {
  long total = 0;
  for (int s = 0; s < shards(); ++s) {
    if (!client(s).healthy()) continue;
    try {
      total += static_cast<long>(shard_stats(s).delta_reinserted);
    } catch (const Error&) {
    }
  }
  return total;
}

WireCounters DistributedSampledLayer::wire_counters() const noexcept {
  WireCounters total{};
  for (const auto& c : clients_) {
    const WireCounters wc = c->counters();
    total.bytes_sent += wc.bytes_sent;
    total.bytes_received += wc.bytes_received;
    total.frames_sent += wc.frames_sent;
    total.frames_received += wc.frames_received;
  }
  return total;
}

int DistributedSampledLayer::unhealthy_shards() const noexcept {
  int count = 0;
  for (const auto& c : clients_) {
    if (!c->healthy()) ++count;
  }
  return count;
}

void DistributedSampledLayer::shutdown_workers() noexcept {
  for (const auto& c : clients_) {
    if (c->healthy()) c->shutdown_worker();
    c->close();
  }
}

}  // namespace slide::dist
