// RPC protocol between the coordinator (DistributedSampledLayer) and shard
// workers (ShardWorker), layered on dist/frame.h frames.
//
// One request frame -> one response frame, strictly in order per transport
// (the client serializes whole exchanges). The coordinator drives; workers
// only answer. Message catalog:
//
//   request            response            carries
//   kHello             kHelloOk            protocol version handshake
//   kInitShard         kAck                per-shard SampledLayer::Config +
//                                          topology (+ checkpoint to load)
//   kForwardActive     kForwardResp        RNG state + forced labels + prev
//                                          active set (sparse pairs) ->
//                                          shard-local actives + RNG state
//   kBackwardScatter   kBackwardResp       merged err segment + current
//                                          prev.err -> updated prev.err
//   kApplyUpdates      kAck                learning rate
//   kMaybeRebuild      kMaybeRebuildResp   iteration -> fired?
//   kRebuildTables     kAck
//   kQuiesce           kAck
//   kFlushMaintenance  kAck
//   kRefreshMirror     kAck
//   kSetUseLocks       kAck
//   kQueryTopk         kQueryTopkResp      inference candidates (budgeted)
//   kCheckpointShard   kAck                worker writes its shard file
//   kFetchShard        kFetchShardResp     weights + bias (tests, rescatter)
//   kSetShardWeights   kAck                coordinator pushes weights + bias
//                                          (checkpoint-v3 load path)
//   kStats             kStatsResp          shard diagnostics
//   kShutdown          kAck                worker exits its serve loop
//   any                kErrorResp          worker-side slide::Error text
//
// Bit-exactness contract (what makes a 2-worker run reproduce
// ShardedSampledLayer(S=2) bit for bit, pinned by tests/test_dist.cpp):
//   * kForwardActive / kQueryTopk round-trip the coordinator's Rng::State,
//     so the remote shard consumes the exact RNG stream the in-process
//     shard would have.
//   * The prev active set travels as sparse {index, value} pairs but is
//     reconstructed into its original dense/sparse shape before compute —
//     sparse on the wire, identical math in the shard.
//   * kBackwardScatter is a sequential fold: the request carries the
//     current prev.err, the worker accumulates its contributions in the
//     same loop order as the in-process shard, the response replaces
//     prev.err. Shard order is fixed, so FP rounding order is identical.
//
// Values (activations, errors, weights) may optionally travel bf16
// (kFlagBf16Values) — halves the hot-path bytes at the cost of exactness;
// off by default and off in the equivalence tests.
#pragma once

#include <string>
#include <vector>

#include "core/layer.h"
#include "dist/frame.h"
#include "sys/rng.h"

namespace slide::dist {

// Version history:
//   1 — initial release (PR 6).
//   2 — layer config gains retriever kind + HNSW knobs + escalation floor
//       (appended at the end of the config block).
//   3 — dynamic label lifecycle: kAddUnits grows a shard's unit rows in
//       place, kRetireUnits tombstones shard-local ids out of retrieval
//       (both answer kAck). Workers speaking v2 reject them as unknown.
inline constexpr std::uint32_t kProtocolVersion = 3;

enum class MsgType : std::uint8_t {
  kHello = 1,
  kHelloOk = 2,
  kInitShard = 3,
  kForwardActive = 4,
  kForwardResp = 5,
  kBackwardScatter = 6,
  kBackwardResp = 7,
  kApplyUpdates = 8,
  kMaybeRebuild = 9,
  kMaybeRebuildResp = 10,
  kRebuildTables = 11,
  kQuiesce = 12,
  kFlushMaintenance = 13,
  kRefreshMirror = 14,
  kSetUseLocks = 15,
  kQueryTopk = 16,
  kQueryTopkResp = 17,
  kCheckpointShard = 18,
  kFetchShard = 19,
  kFetchShardResp = 20,
  kStats = 21,
  kStatsResp = 22,
  kShutdown = 23,
  kAck = 24,
  kErrorResp = 25,
  kSetShardWeights = 26,
  kAddUnits = 27,
  kRetireUnits = 28,
};

const char* to_string(MsgType type);

/// Frame type byte -> MsgType with validation (kBadFormat on unknown).
MsgType msg_type_of(const Frame& frame);

/// An empty-payload frame of the given type (kAck, kQuiesce, ...).
Frame make_frame(MsgType type);

// ---------------------------------------------------------------------------
// Field codecs shared by the message structs
// ---------------------------------------------------------------------------

void write_rng_state(PayloadWriter& w, const Rng::State& st);
Rng::State read_rng_state(PayloadReader& r);

void write_layer_config(PayloadWriter& w, const SampledLayer::Config& c);
SampledLayer::Config read_layer_config(PayloadReader& r);

/// The previous layer's active set as it crosses the wire: sparse
/// {index, value} pairs plus the dense width needed to reconstruct the
/// original shape (dense_width > 0 means "dense set of that width; the
/// pairs are its nonzeros").
struct WireActiveSet {
  Index dense_width = 0;
  std::vector<Index> ids;
  std::vector<float> act;

  /// Captures `prev` for the wire, dropping zeros of a dense set.
  static WireActiveSet capture(const ActiveSet& prev);
  /// Rebuilds the original dense/sparse shape into `out` (err zeroed).
  void reconstruct(ActiveSet& out) const;

  void write(PayloadWriter& w, bool bf16) const;
  void read(PayloadReader& r, bool bf16);
};

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

struct HelloMsg {
  std::uint32_t version = kProtocolVersion;

  Frame to_frame() const;
  static HelloMsg from_frame(const Frame& f);
};

struct InitShardMsg {
  std::int32_t shard_index = 0;
  std::int32_t num_shards = 1;
  Index row_offset = 0;
  Index global_units = 0;
  std::int32_t batch_slots = 1;
  SampledLayer::Config config;  // the per-shard (already derived) config
  std::string checkpoint_path;  // non-empty: load weights from this file

  Frame to_frame() const;
  static InitShardMsg from_frame(const Frame& f);
};

struct ForwardMsg {
  std::int32_t slot = 0;
  Rng::State rng{};
  std::vector<Index> forced_local;
  WireActiveSet prev;

  Frame to_frame(bool bf16) const;
  static ForwardMsg from_frame(const Frame& f);
};

struct ForwardResp {
  Rng::State rng{};
  std::vector<Index> ids;  // shard-local active ids
  std::vector<float> act;

  Frame to_frame(bool bf16) const;
  static ForwardResp from_frame(const Frame& f);
};

struct BackwardMsg {
  std::int32_t slot = 0;
  std::vector<float> err;       // this shard's segment of the merged err
  std::vector<float> prev_err;  // current prev.err (dense over prev.size())

  Frame to_frame(bool bf16) const;
  static BackwardMsg from_frame(const Frame& f);
};

struct BackwardResp {
  std::vector<float> prev_err;  // updated prev.err, replaces the caller's

  Frame to_frame(bool bf16) const;
  static BackwardResp from_frame(const Frame& f);
};

struct ApplyUpdatesMsg {
  float lr = 0.0f;

  Frame to_frame() const;
  static ApplyUpdatesMsg from_frame(const Frame& f);
};

struct MaybeRebuildMsg {
  std::int64_t iteration = 0;

  Frame to_frame() const;
  static MaybeRebuildMsg from_frame(const Frame& f);
};

struct MaybeRebuildResp {
  bool fired = false;

  Frame to_frame() const;
  static MaybeRebuildResp from_frame(const Frame& f);
};

struct SetUseLocksMsg {
  bool locks = false;

  Frame to_frame() const;
  static SetUseLocksMsg from_frame(const Frame& f);
};

struct QueryTopkMsg {
  Rng::State rng{};
  bool exact = false;
  /// Candidate budget override for this query (satellite: global budget
  /// split across shards); 0 keeps the shard's configured target.
  Index budget = 0;
  WireActiveSet prev;

  Frame to_frame(bool bf16) const;
  static QueryTopkMsg from_frame(const Frame& f);
};

struct QueryTopkResp {
  Rng::State rng{};
  std::vector<Index> ids;  // shard-local candidates
  std::vector<float> act;

  Frame to_frame(bool bf16) const;
  static QueryTopkResp from_frame(const Frame& f);
};

struct CheckpointShardMsg {
  std::string path;

  Frame to_frame() const;
  static CheckpointShardMsg from_frame(const Frame& f);
};

struct FetchShardResp {
  Index row_offset = 0;
  Index rows = 0;
  Index fan_in = 0;
  std::vector<float> weights;  // [rows x fan_in]
  std::vector<float> bias;     // [rows]

  Frame to_frame() const;
  static FetchShardResp from_frame(const Frame& f);
};

/// Pushes full fp32 master weights into a worker's shard (the inverse of
/// kFetchShard): the coordinator's checkpoint-v3 load path rewrites worker
/// state with this. Never bf16-compressed — masters must round-trip exactly.
struct SetShardWeightsMsg {
  std::vector<float> weights;  // [rows x fan_in]
  std::vector<float> bias;     // [rows]

  Frame to_frame() const;
  static SetShardWeightsMsg from_frame(const Frame& f);
};

struct StatsResp {
  double active_fraction = 0.0;
  double sampling_seconds = 0.0;
  double compute_seconds = 0.0;
  std::int64_t rebuild_count = 0;
  std::int64_t delta_reinserted = 0;

  Frame to_frame() const;
  static StatsResp from_frame(const Frame& f);
};

/// Grows the worker's shard by `count` unit rows (protocol v3; the
/// coordinator appends to the LAST shard so earlier row offsets stay
/// stable). The worker re-sizes its VisitedSet scratch for the wider
/// sampled universe before acking.
struct AddUnitsMsg {
  Index count = 0;

  Frame to_frame() const;
  static AddUnitsMsg from_frame(const Frame& f);
};

/// Tombstones shard-LOCAL unit ids out of the worker's retrieval and top-k
/// paths (protocol v3). Rows are masked, never compacted — global ids of
/// every other unit are unchanged.
struct RetireUnitsMsg {
  std::vector<Index> local_ids;

  Frame to_frame() const;
  static RetireUnitsMsg from_frame(const Frame& f);
};

struct ErrorResp {
  std::string message;

  Frame to_frame() const;
  static ErrorResp from_frame(const Frame& f);
};

}  // namespace slide::dist
