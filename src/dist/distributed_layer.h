// Multi-process model parallelism: the coordinator-side Layer.
//
// DistributedSampledLayer is ShardedSampledLayer with the shards moved out
// of process: each of the S workers owns one contiguous row range of the
// output layer as a full SampledLayer (own MaintainedTables, dirty-delta
// queue, Adam state), and the coordinator fans every training/inference
// step out over dist/client.h RPCs, exchanging only the sparse active sets
// (Distributed SLIDE, arXiv:2201.12667: the activations that cross the
// wire are the ~0.5% active neurons, not the dense layer).
//
// Equivalence contract (pinned by tests/test_dist.cpp): with bf16 wire
// compression off, a run through S workers is bit-identical to
// ShardedSampledLayer(S) under sync maintenance —
//   * shard configs come from the same derive_shard_config,
//   * the coordinator's Rng::State round-trips through every forward /
//     query RPC, so workers consume the exact stream the in-process shards
//     would,
//   * the wire carries the prev active set sparsely but workers
//     reconstruct the original dense/sparse shape before compute,
//   * backward is a sequential fold over the shards in fixed order: each
//     request ships the current prev.err, the worker accumulates its
//     contributions in-process-identically, the response replaces
//     prev.err — same FP rounding order as the in-process loop.
//
// Failure model: an unhealthy worker (RPC timeout exhausted, transport
// gone) is skipped for INFERENCE — the layer keeps answering from the
// surviving shards ("degraded mode"; unhealthy_shards() surfaces the count
// through engine stats). TRAINING RPC failures propagate: silently
// dropping one shard's gradients would corrupt the model.
#pragma once

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/sharded_layer.h"
#include "dist/client.h"

namespace slide::dist {

struct DistributedOptions {
  /// Compress activation/error value runs to bf16 on the wire. Halves the
  /// hot-path bytes; breaks bit-exactness vs the in-process layer.
  bool wire_bf16 = false;
  /// Non-empty: workers boot their weights from per-shard checkpoint files
  /// "<base>.shard<s>of<n>" (core/serialize.h) that live on THEIR
  /// filesystem; the path is shipped in kInitShard.
  std::string shard_checkpoint_base;
  ClientConfig client;
};

class DistributedSampledLayer final : public Layer {
 public:
  /// `config` describes the GLOBAL layer; one worker per endpoint
  /// ("tcp:host:port" or "shm:path") receives the derive_shard_config
  /// derivation for its row range via kInitShard. Dials, handshakes, and
  /// initializes all workers; pulls the initial weights into the
  /// coordinator-side checkpoint cache.
  DistributedSampledLayer(const SampledLayer::Config& config,
                          const std::vector<std::string>& endpoints,
                          int batch_slots,
                          const DistributedOptions& options = {});
  ~DistributedSampledLayer() override;

  // ---- Identity ----
  LayerKind kind() const noexcept override { return LayerKind::kDistributed; }
  Index units() const noexcept override { return units_; }
  Index fan_in() const noexcept override { return fan_in_; }
  Activation activation() const noexcept override {
    return config_.activation;
  }
  const SampledLayer::Config& config() const noexcept { return config_; }

  int shards() const noexcept { return static_cast<int>(clients_.size()); }
  Index shard_offset(int s) const noexcept {
    return offsets_[static_cast<std::size_t>(s)];
  }
  int shard_of(Index unit) const noexcept;
  const std::string& shard_endpoint(int s) const noexcept {
    return clients_[static_cast<std::size_t>(s)]->endpoint();
  }

  // ---- Training hooks (failures propagate — see failure model above) ----
  void forward(int slot, const ActiveSet& prev, std::span<const Index> forced,
               Rng& rng, VisitedSet& visited, int tid) override;
  float compute_softmax_ce_deltas(int slot, std::span<const Index> labels,
                                  float inv_batch) override;
  void compute_relu_deltas(int slot) override;
  void backward(int slot, ActiveSet& prev, int tid) override;
  void apply_updates(float lr, ThreadPool* pool) override;

  // ---- LSH lifecycle (remote: each worker runs its own schedule) ----
  bool maybe_rebuild(long iteration, ThreadPool* pool) override;
  void rebuild_tables(ThreadPool* pool) override;
  void quiesce_maintenance() const override;
  /// Drains worker-side maintenance, then refreshes the coordinator-side
  /// checkpoint cache — after this, save_weights serializes the workers'
  /// current parameters (the "settled model" contract of Layer).
  void flush_maintenance() override;

  // ---- Dynamic label lifecycle (protocol v3) ----
  /// Grows the LAST shard's worker by n rows (kAddUnits) so every other
  /// shard's row offsets stay stable; resizes the coordinator-side
  /// checkpoint cache to match. Returns the first new global id.
  Index add_units(Index n) override;
  /// Tombstones global ids out of their owning workers' retrieval
  /// (kRetireUnits with shard-local ids). The coordinator mirrors the
  /// tombstone set so checkpoints and stats see it without an RPC.
  void retire_units(std::span<const Index> ids) override;
  Index retired_count() const noexcept override {
    return static_cast<Index>(retired_.size());
  }
  std::vector<Index> retired_unit_ids() const override {
    return {retired_.begin(), retired_.end()};
  }
  Index appended_units() const noexcept override { return appended_units_; }

  // ---- Inference hooks (degraded mode: unhealthy shards are skipped) ----
  void forward_inference(std::span<const Index> prev_ids,
                         std::span<const float> prev_act, bool exact,
                         Rng& rng, VisitedSet& visited,
                         std::vector<Index>& ids_out,
                         std::vector<float>& act_out) const override;
  void forward_inference_topk(std::span<const Index> prev_ids,
                              std::span<const float> prev_act, int k,
                              bool exact, Rng& rng, VisitedSet& visited,
                              TopKScratch& scratch,
                              std::vector<Index>& out) const override;

  // ---- Per-slot state (the merged, globally-indexed active set) ----
  ActiveSet& slot(int s) override {
    return slots_[static_cast<std::size_t>(s)];
  }
  const ActiveSet& slot(int s) const override {
    return slots_[static_cast<std::size_t>(s)];
  }

  // ---- Serialize hooks ----
  // The checkpoint surface is the coordinator-side cache: one weight/bias
  // block per shard, refreshed from the workers by flush_maintenance() /
  // refresh_checkpoint_cache() and pushed BACK to the workers by
  // on_weights_loaded(). With that round-trip, checkpoint v3's per-shard
  // blocks map 1:1 onto worker-owned state and a distributed network
  // saves/loads through the standard core/serialize path.
  std::span<float> weights_span() noexcept override { return {}; }
  std::span<const float> weights_span() const noexcept override { return {}; }
  std::span<float> bias_span() noexcept override { return {}; }
  std::span<const float> bias_span() const noexcept override { return {}; }

  int num_shards() const noexcept override { return shards(); }
  Index shard_row_offset(int s) const noexcept override {
    return shard_offset(s);
  }
  std::span<float> shard_weights(int s) noexcept override {
    auto& w = cache_w_[static_cast<std::size_t>(s)];
    return {w.data(), w.size()};
  }
  std::span<const float> shard_weights(int s) const noexcept override {
    const auto& w = cache_w_[static_cast<std::size_t>(s)];
    return {w.data(), w.size()};
  }
  std::span<float> shard_bias(int s) noexcept override {
    auto& b = cache_b_[static_cast<std::size_t>(s)];
    return {b.data(), b.size()};
  }
  std::span<const float> shard_bias(int s) const noexcept override {
    const auto& b = cache_b_[static_cast<std::size_t>(s)];
    return {b.data(), b.size()};
  }

  /// Pushes the checkpoint cache (just rewritten by load_weights) into the
  /// workers: kSetShardWeights + table rebuild per shard. noexcept per the
  /// Layer contract — an RPC failure marks the shard unhealthy and is
  /// surfaced on its next use.
  void on_weights_loaded() noexcept override;
  std::size_t num_parameters() const noexcept override {
    return static_cast<std::size_t>(units_) * fan_in_ + units_;
  }

  /// Re-pulls every worker's current weights into the checkpoint cache
  /// (kFetchShard per shard) so a following save_weights serializes live
  /// parameters.
  void refresh_checkpoint_cache();

  /// Tells every worker to write its own per-shard checkpoint file
  /// "<base>.shard<s>of<n>" on ITS filesystem (kCheckpointShard). The
  /// cluster restart path: workers later boot from these files via
  /// DistributedOptions::shard_checkpoint_base, no weight bytes cross the
  /// wire.
  void checkpoint_shards(const std::string& base);

  /// One worker's full parameter block (tests, diagnostics).
  FetchShardResp fetch_shard(int s);

  // ---- Quantized inference ----
  Precision inference_precision() const noexcept override {
    return config_.precision;
  }
  void refresh_inference_mirror() noexcept override;
  std::size_t inference_weight_bytes() const noexcept override;
  /// Coordinator-resident bytes only (the checkpoint cache); the shard
  /// weights, mirrors, and Adam state live in the worker processes.
  LayerMemory memory() const noexcept override;

  void set_use_locks(bool locks) noexcept override;
  double average_active_fraction() const override;
  double sampling_seconds() const override;
  double compute_seconds() const override;

  // ---- Distributed diagnostics ----
  /// Summed wire traffic across all shard clients.
  WireCounters wire_counters() const noexcept;
  /// Shards currently marked unresponsive/gone (degraded-mode health flag).
  int unhealthy_shards() const noexcept;
  /// One worker's StatsResp (throws if the shard is unhealthy).
  StatsResp shard_stats(int s) const;
  long rebuild_count() const;
  long delta_reinserted() const;

  /// Sends kShutdown to every worker (best effort) and closes the clients.
  /// The destructor calls this; explicit for tests that assert clean exits.
  void shutdown_workers() noexcept;

 private:
  ShardClient& client(int s) const {
    return *clients_[static_cast<std::size_t>(s)];
  }

  SampledLayer::Config config_;  // the global (pre-partition) config
  Index units_;
  Index fan_in_;
  bool wire_bf16_;
  std::vector<Index> offsets_;  // size shards() + 1; offsets_[0] == 0
  /// Mutable: const hooks (quiesce, stats, inference) still do RPC.
  mutable std::vector<std::unique_ptr<ShardClient>> clients_;

  std::vector<ActiveSet> slots_;  // merged active sets, global ids
  /// Per-slot, per-shard active-segment lengths of the last forward (the
  /// in-process layer reads shard(s).slot(slot).size(); here the segment
  /// boundaries must survive between forward and backward).
  std::vector<std::vector<std::size_t>> seg_sizes_;

  /// Coordinator-side checkpoint cache (see serialize hooks above).
  std::vector<std::vector<float>> cache_w_;
  std::vector<std::vector<float>> cache_b_;

  /// Coordinator's mirror of the workers' tombstone sets (global ids,
  /// sorted) and lifetime growth — the checkpoint/stats surface.
  std::set<Index> retired_;
  Index appended_units_ = 0;

  // Active-fraction diagnostic, tracked at the merge point.
  mutable std::atomic<std::uint64_t> active_sum_{0};
  mutable std::atomic<std::uint64_t> active_events_{0};
};

}  // namespace slide::dist
