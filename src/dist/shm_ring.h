// Same-host shared-memory ring transport.
//
// One file-backed mapping (open + ftruncate + mmap MAP_SHARED — works
// anywhere a tmpfs or ordinary filesystem does, no shm_open namespace to
// manage) holds two single-producer/single-consumer byte rings:
//
//   +----------------+----------------------+----------------------+
//   | ShmHeader      | ring A (srv -> cli)  | ring B (cli -> srv)  |
//   +----------------+----------------------+----------------------+
//
// Each ring is a classic SPSC circular byte queue: the producer owns
// `head`, the consumer owns `tail`, both are C++20 atomic_ref-compatible
// 64-bit counters that only ever increase (indices are taken mod capacity),
// so full/empty are unambiguous without a spare slot. Frames are written as
// their encoded byte stream (dist/frame.h header + payload) and may wrap
// the ring edge; the reader reassembles across the wrap.
//
// Waiting is adaptive spin -> yield -> short sleep with a deadline — the
// rings exist to keep the sparse-activation hot path away from syscalls,
// but a worker that has died must still surface as TransportTimeout /
// TransportClosed rather than a live-locked coordinator. The `closed` word
// is set by either side's close() (and by the destructor) so the peer
// observes shutdown promptly.
#pragma once

#include <memory>
#include <string>

#include "dist/transport.h"

namespace slide::dist {

/// Creates the ring file at `path` (overwriting any stale one) and waits
/// for one peer to attach. `ring_capacity` is the per-direction byte
/// capacity (rounded up to a page multiple).
class ShmListener final : public Listener {
 public:
  explicit ShmListener(const std::string& path,
                       std::size_t ring_capacity = 1u << 20);
  ~ShmListener() override;

  std::unique_ptr<Transport> accept(int timeout_ms) override;
  void close() override;
  std::string endpoint() const override { return "shm:" + path_; }

 private:
  std::string path_;
  std::size_t capacity_;
  std::atomic<bool> closed_{false};
};

/// Attaches to a ring file created by ShmListener. `server` selects which
/// direction this side produces into.
std::unique_ptr<Transport> shm_attach(const std::string& path, bool server,
                                      int timeout_ms);

}  // namespace slide::dist
