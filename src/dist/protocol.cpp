#include "dist/protocol.h"

namespace slide::dist {

namespace {

Frame begin_frame(MsgType type, bool bf16 = false) {
  Frame f;
  f.type = static_cast<std::uint8_t>(type);
  if (bf16) f.flags |= kFlagBf16Values;
  return f;
}

PayloadReader open_payload(const Frame& f, MsgType expected) {
  if (msg_type_of(f) != expected)
    throw FrameError(FrameErrorKind::kBadFormat,
                     std::string("expected ") + to_string(expected) +
                         ", got " + to_string(msg_type_of(f)));
  return PayloadReader({f.payload.data(), f.payload.size()});
}

template <typename Enum>
Enum read_enum(PayloadReader& r, std::uint8_t max_value, const char* what) {
  const std::uint8_t v = r.u8();
  if (v > max_value)
    throw FrameError(FrameErrorKind::kBadFormat,
                     std::string("bad ") + what + " value");
  return static_cast<Enum>(v);
}

}  // namespace

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "Hello";
    case MsgType::kHelloOk: return "HelloOk";
    case MsgType::kInitShard: return "InitShard";
    case MsgType::kForwardActive: return "ForwardActive";
    case MsgType::kForwardResp: return "ForwardResp";
    case MsgType::kBackwardScatter: return "BackwardScatter";
    case MsgType::kBackwardResp: return "BackwardResp";
    case MsgType::kApplyUpdates: return "ApplyUpdates";
    case MsgType::kMaybeRebuild: return "MaybeRebuild";
    case MsgType::kMaybeRebuildResp: return "MaybeRebuildResp";
    case MsgType::kRebuildTables: return "RebuildTables";
    case MsgType::kQuiesce: return "Quiesce";
    case MsgType::kFlushMaintenance: return "FlushMaintenance";
    case MsgType::kRefreshMirror: return "RefreshMirror";
    case MsgType::kSetUseLocks: return "SetUseLocks";
    case MsgType::kQueryTopk: return "QueryTopk";
    case MsgType::kQueryTopkResp: return "QueryTopkResp";
    case MsgType::kCheckpointShard: return "CheckpointShard";
    case MsgType::kFetchShard: return "FetchShard";
    case MsgType::kFetchShardResp: return "FetchShardResp";
    case MsgType::kStats: return "Stats";
    case MsgType::kStatsResp: return "StatsResp";
    case MsgType::kShutdown: return "Shutdown";
    case MsgType::kAck: return "Ack";
    case MsgType::kErrorResp: return "ErrorResp";
    case MsgType::kSetShardWeights: return "SetShardWeights";
    case MsgType::kAddUnits: return "AddUnits";
    case MsgType::kRetireUnits: return "RetireUnits";
  }
  return "?";
}

MsgType msg_type_of(const Frame& frame) {
  if (frame.type < static_cast<std::uint8_t>(MsgType::kHello) ||
      frame.type > static_cast<std::uint8_t>(MsgType::kRetireUnits))
    throw FrameError(FrameErrorKind::kBadFormat,
                     "unknown message type " + std::to_string(frame.type));
  return static_cast<MsgType>(frame.type);
}

Frame make_frame(MsgType type) { return begin_frame(type); }

// ---------------------------------------------------------------------------
// Field codecs
// ---------------------------------------------------------------------------

void write_rng_state(PayloadWriter& w, const Rng::State& st) {
  for (std::uint64_t word : st.s) w.u64(word);
  w.f32(st.cached);
  w.u8(st.has_cached ? 1 : 0);
}

Rng::State read_rng_state(PayloadReader& r) {
  Rng::State st{};
  for (std::uint64_t& word : st.s) word = r.u64();
  st.cached = r.f32();
  st.has_cached = r.u8() != 0;
  return st;
}

void write_layer_config(PayloadWriter& w, const SampledLayer::Config& c) {
  w.u32(c.units);
  w.u32(c.fan_in);
  w.u8(static_cast<std::uint8_t>(c.activation));
  w.u8(c.hashed ? 1 : 0);
  w.u8(c.random_sampled ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(c.family.kind));
  w.u32(static_cast<std::uint32_t>(c.family.k));
  w.u32(static_cast<std::uint32_t>(c.family.l));
  w.u32(c.family.dim);
  w.f64(c.family.simhash_density);
  w.u32(static_cast<std::uint32_t>(c.family.bin_size));
  w.u32(static_cast<std::uint32_t>(c.family.doph_top_k));
  w.u64(c.family.seed);
  w.u32(static_cast<std::uint32_t>(c.table.range_pow));
  w.u32(static_cast<std::uint32_t>(c.table.bucket_size));
  w.u8(static_cast<std::uint8_t>(c.table.policy));
  w.u8(static_cast<std::uint8_t>(c.sampling.strategy));
  w.u32(c.sampling.target);
  w.u32(static_cast<std::uint32_t>(c.sampling.hard_threshold_m));
  w.u32(c.sampling.inference_budget);
  w.u8(c.rebuild.enabled ? 1 : 0);
  w.i64(c.rebuild.initial_period);
  w.f64(c.rebuild.decay);
  w.u8(static_cast<std::uint8_t>(c.maintenance));
  w.u8(c.fill_random_to_target ? 1 : 0);
  w.u8(c.incremental_rehash ? 1 : 0);
  w.f32(c.init_stddev);
  w.f32(c.adam.beta1);
  w.f32(c.adam.beta2);
  w.f32(c.adam.epsilon);
  w.u8(static_cast<std::uint8_t>(c.precision));
  w.u64(c.seed);
  // Protocol v2: retrieval backend selection rides at the end of the block.
  w.u8(static_cast<std::uint8_t>(c.retriever));
  w.u32(static_cast<std::uint32_t>(c.hnsw.m));
  w.u32(static_cast<std::uint32_t>(c.hnsw.ef_construction));
  w.u32(static_cast<std::uint32_t>(c.hnsw.ef_search));
  w.u32(c.sampling.escalation_floor);
}

SampledLayer::Config read_layer_config(PayloadReader& r) {
  SampledLayer::Config c;
  c.units = r.u32();
  c.fan_in = r.u32();
  c.activation = read_enum<Activation>(
      r, static_cast<std::uint8_t>(Activation::kLinear), "activation");
  c.hashed = r.u8() != 0;
  c.random_sampled = r.u8() != 0;
  c.family.kind = read_enum<HashFamilyKind>(
      r, static_cast<std::uint8_t>(HashFamilyKind::kDoph), "hash family");
  c.family.k = static_cast<int>(r.u32());
  c.family.l = static_cast<int>(r.u32());
  c.family.dim = r.u32();
  c.family.simhash_density = r.f64();
  c.family.bin_size = static_cast<int>(r.u32());
  c.family.doph_top_k = static_cast<int>(r.u32());
  c.family.seed = r.u64();
  c.table.range_pow = static_cast<int>(r.u32());
  c.table.bucket_size = static_cast<int>(r.u32());
  c.table.policy = read_enum<InsertionPolicy>(
      r, static_cast<std::uint8_t>(InsertionPolicy::kFifo), "insert policy");
  c.sampling.strategy = read_enum<SamplingStrategy>(
      r, static_cast<std::uint8_t>(SamplingStrategy::kHardThreshold),
      "sampling strategy");
  c.sampling.target = r.u32();
  c.sampling.hard_threshold_m = static_cast<int>(r.u32());
  c.sampling.inference_budget = r.u32();
  c.rebuild.enabled = r.u8() != 0;
  c.rebuild.initial_period = r.i64();
  c.rebuild.decay = r.f64();
  c.maintenance = read_enum<MaintenancePolicy>(
      r, static_cast<std::uint8_t>(MaintenancePolicy::kAsyncDelta),
      "maintenance policy");
  c.fill_random_to_target = r.u8() != 0;
  c.incremental_rehash = r.u8() != 0;
  c.init_stddev = r.f32();
  c.adam.beta1 = r.f32();
  c.adam.beta2 = r.f32();
  c.adam.epsilon = r.f32();
  c.precision = read_enum<Precision>(
      r, static_cast<std::uint8_t>(Precision::kInt8), "precision");
  c.seed = r.u64();
  c.retriever = read_enum<retrieval::RetrieverKind>(
      r, static_cast<std::uint8_t>(retrieval::RetrieverKind::kHnsw),
      "retriever kind");
  c.hnsw.m = static_cast<int>(r.u32());
  c.hnsw.ef_construction = static_cast<int>(r.u32());
  c.hnsw.ef_search = static_cast<int>(r.u32());
  c.sampling.escalation_floor = r.u32();
  return c;
}

// ---------------------------------------------------------------------------
// WireActiveSet
// ---------------------------------------------------------------------------

WireActiveSet WireActiveSet::capture(const ActiveSet& prev) {
  WireActiveSet ws;
  if (prev.dense()) {
    // Dense set: ship only the nonzeros (post-ReLU activations are mostly
    // zero); reconstruct() restores the exact dense vector.
    ws.dense_width = prev.dense_width;
    for (Index i = 0; i < prev.dense_width; ++i) {
      const float v = prev.act[i];
      if (v != 0.0f) {
        ws.ids.push_back(i);
        ws.act.push_back(v);
      }
    }
  } else {
    ws.dense_width = 0;
    ws.ids = prev.ids;
    ws.act.assign(prev.act.begin(),
                  prev.act.begin() +
                      static_cast<std::ptrdiff_t>(prev.ids.size()));
  }
  return ws;
}

void WireActiveSet::reconstruct(ActiveSet& out) const {
  if (dense_width > 0) {
    out.ids.clear();
    out.dense_width = dense_width;
    out.act.assign(dense_width, 0.0f);
    out.err.assign(dense_width, 0.0f);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] >= dense_width)
        throw FrameError(FrameErrorKind::kBadFormat,
                         "active-set index exceeds dense width");
      out.act[ids[i]] = act[i];
    }
  } else {
    out.dense_width = 0;
    out.ids.assign(ids.begin(), ids.end());
    out.act.assign(act.begin(), act.end());
    out.err.assign(ids.size(), 0.0f);
  }
}

void WireActiveSet::write(PayloadWriter& w, bool bf16) const {
  w.u32(dense_width);
  w.indices({ids.data(), ids.size()});
  w.values({act.data(), act.size()}, bf16);
}

void WireActiveSet::read(PayloadReader& r, bool bf16) {
  dense_width = r.u32();
  r.indices(ids);
  r.values(act, bf16);
  if (ids.size() != act.size())
    throw FrameError(FrameErrorKind::kBadFormat,
                     "active-set id/value run length mismatch");
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

Frame HelloMsg::to_frame() const {
  Frame f = begin_frame(MsgType::kHello);
  PayloadWriter w(f.payload);
  w.u32(version);
  return f;
}

HelloMsg HelloMsg::from_frame(const Frame& f) {
  PayloadReader r = open_payload(f, MsgType::kHello);
  HelloMsg m;
  m.version = r.u32();
  return m;
}

Frame InitShardMsg::to_frame() const {
  Frame f = begin_frame(MsgType::kInitShard);
  PayloadWriter w(f.payload);
  w.u32(static_cast<std::uint32_t>(shard_index));
  w.u32(static_cast<std::uint32_t>(num_shards));
  w.u32(row_offset);
  w.u32(global_units);
  w.u32(static_cast<std::uint32_t>(batch_slots));
  write_layer_config(w, config);
  w.str(checkpoint_path);
  return f;
}

InitShardMsg InitShardMsg::from_frame(const Frame& f) {
  PayloadReader r = open_payload(f, MsgType::kInitShard);
  InitShardMsg m;
  m.shard_index = static_cast<std::int32_t>(r.u32());
  m.num_shards = static_cast<std::int32_t>(r.u32());
  m.row_offset = r.u32();
  m.global_units = r.u32();
  m.batch_slots = static_cast<std::int32_t>(r.u32());
  m.config = read_layer_config(r);
  m.checkpoint_path = r.str();
  return m;
}

Frame ForwardMsg::to_frame(bool bf16) const {
  Frame f = begin_frame(MsgType::kForwardActive, bf16);
  PayloadWriter w(f.payload);
  w.u32(static_cast<std::uint32_t>(slot));
  write_rng_state(w, rng);
  w.indices({forced_local.data(), forced_local.size()});
  prev.write(w, bf16);
  return f;
}

ForwardMsg ForwardMsg::from_frame(const Frame& f) {
  PayloadReader r = open_payload(f, MsgType::kForwardActive);
  ForwardMsg m;
  m.slot = static_cast<std::int32_t>(r.u32());
  m.rng = read_rng_state(r);
  r.indices(m.forced_local);
  m.prev.read(r, f.bf16_values());
  return m;
}

Frame ForwardResp::to_frame(bool bf16) const {
  Frame f = begin_frame(MsgType::kForwardResp, bf16);
  PayloadWriter w(f.payload);
  write_rng_state(w, rng);
  w.indices({ids.data(), ids.size()});
  w.values({act.data(), act.size()}, bf16);
  return f;
}

ForwardResp ForwardResp::from_frame(const Frame& f) {
  PayloadReader r = open_payload(f, MsgType::kForwardResp);
  ForwardResp m;
  m.rng = read_rng_state(r);
  r.indices(m.ids);
  r.values(m.act, f.bf16_values());
  if (m.ids.size() != m.act.size())
    throw FrameError(FrameErrorKind::kBadFormat,
                     "forward response id/act length mismatch");
  return m;
}

Frame BackwardMsg::to_frame(bool bf16) const {
  Frame f = begin_frame(MsgType::kBackwardScatter, bf16);
  PayloadWriter w(f.payload);
  w.u32(static_cast<std::uint32_t>(slot));
  w.values({err.data(), err.size()}, bf16);
  // prev.err must survive the fold bit-exactly — never bf16-compressed.
  w.floats({prev_err.data(), prev_err.size()});
  return f;
}

BackwardMsg BackwardMsg::from_frame(const Frame& f) {
  PayloadReader r = open_payload(f, MsgType::kBackwardScatter);
  BackwardMsg m;
  m.slot = static_cast<std::int32_t>(r.u32());
  r.values(m.err, f.bf16_values());
  r.floats(m.prev_err);
  return m;
}

Frame BackwardResp::to_frame(bool /*bf16*/) const {
  Frame f = begin_frame(MsgType::kBackwardResp);
  PayloadWriter w(f.payload);
  w.floats({prev_err.data(), prev_err.size()});
  return f;
}

BackwardResp BackwardResp::from_frame(const Frame& f) {
  PayloadReader r = open_payload(f, MsgType::kBackwardResp);
  BackwardResp m;
  r.floats(m.prev_err);
  return m;
}

Frame ApplyUpdatesMsg::to_frame() const {
  Frame f = begin_frame(MsgType::kApplyUpdates);
  PayloadWriter w(f.payload);
  w.f32(lr);
  return f;
}

ApplyUpdatesMsg ApplyUpdatesMsg::from_frame(const Frame& f) {
  PayloadReader r = open_payload(f, MsgType::kApplyUpdates);
  ApplyUpdatesMsg m;
  m.lr = r.f32();
  return m;
}

Frame MaybeRebuildMsg::to_frame() const {
  Frame f = begin_frame(MsgType::kMaybeRebuild);
  PayloadWriter w(f.payload);
  w.i64(iteration);
  return f;
}

MaybeRebuildMsg MaybeRebuildMsg::from_frame(const Frame& f) {
  PayloadReader r = open_payload(f, MsgType::kMaybeRebuild);
  MaybeRebuildMsg m;
  m.iteration = r.i64();
  return m;
}

Frame MaybeRebuildResp::to_frame() const {
  Frame f = begin_frame(MsgType::kMaybeRebuildResp);
  PayloadWriter w(f.payload);
  w.u8(fired ? 1 : 0);
  return f;
}

MaybeRebuildResp MaybeRebuildResp::from_frame(const Frame& f) {
  PayloadReader r = open_payload(f, MsgType::kMaybeRebuildResp);
  MaybeRebuildResp m;
  m.fired = r.u8() != 0;
  return m;
}

Frame SetUseLocksMsg::to_frame() const {
  Frame f = begin_frame(MsgType::kSetUseLocks);
  PayloadWriter w(f.payload);
  w.u8(locks ? 1 : 0);
  return f;
}

SetUseLocksMsg SetUseLocksMsg::from_frame(const Frame& f) {
  PayloadReader r = open_payload(f, MsgType::kSetUseLocks);
  SetUseLocksMsg m;
  m.locks = r.u8() != 0;
  return m;
}

Frame QueryTopkMsg::to_frame(bool bf16) const {
  Frame f = begin_frame(MsgType::kQueryTopk, bf16);
  PayloadWriter w(f.payload);
  write_rng_state(w, rng);
  w.u8(exact ? 1 : 0);
  w.u32(budget);
  prev.write(w, bf16);
  return f;
}

QueryTopkMsg QueryTopkMsg::from_frame(const Frame& f) {
  PayloadReader r = open_payload(f, MsgType::kQueryTopk);
  QueryTopkMsg m;
  m.rng = read_rng_state(r);
  m.exact = r.u8() != 0;
  m.budget = r.u32();
  m.prev.read(r, f.bf16_values());
  return m;
}

Frame QueryTopkResp::to_frame(bool bf16) const {
  Frame f = begin_frame(MsgType::kQueryTopkResp, bf16);
  PayloadWriter w(f.payload);
  write_rng_state(w, rng);
  w.indices({ids.data(), ids.size()});
  w.values({act.data(), act.size()}, bf16);
  return f;
}

QueryTopkResp QueryTopkResp::from_frame(const Frame& f) {
  PayloadReader r = open_payload(f, MsgType::kQueryTopkResp);
  QueryTopkResp m;
  m.rng = read_rng_state(r);
  r.indices(m.ids);
  r.values(m.act, f.bf16_values());
  if (m.ids.size() != m.act.size())
    throw FrameError(FrameErrorKind::kBadFormat,
                     "topk response id/act length mismatch");
  return m;
}

Frame CheckpointShardMsg::to_frame() const {
  Frame f = begin_frame(MsgType::kCheckpointShard);
  PayloadWriter w(f.payload);
  w.str(path);
  return f;
}

CheckpointShardMsg CheckpointShardMsg::from_frame(const Frame& f) {
  PayloadReader r = open_payload(f, MsgType::kCheckpointShard);
  CheckpointShardMsg m;
  m.path = r.str();
  return m;
}

Frame FetchShardResp::to_frame() const {
  Frame f = begin_frame(MsgType::kFetchShardResp);
  PayloadWriter w(f.payload);
  w.u32(row_offset);
  w.u32(rows);
  w.u32(fan_in);
  w.floats({weights.data(), weights.size()});
  w.floats({bias.data(), bias.size()});
  return f;
}

FetchShardResp FetchShardResp::from_frame(const Frame& f) {
  PayloadReader r = open_payload(f, MsgType::kFetchShardResp);
  FetchShardResp m;
  m.row_offset = r.u32();
  m.rows = r.u32();
  m.fan_in = r.u32();
  r.floats(m.weights);
  r.floats(m.bias);
  if (m.weights.size() !=
          static_cast<std::size_t>(m.rows) * m.fan_in ||
      m.bias.size() != m.rows)
    throw FrameError(FrameErrorKind::kBadFormat,
                     "shard block sizes do not match its shape");
  return m;
}

Frame StatsResp::to_frame() const {
  Frame f = begin_frame(MsgType::kStatsResp);
  PayloadWriter w(f.payload);
  w.f64(active_fraction);
  w.f64(sampling_seconds);
  w.f64(compute_seconds);
  w.i64(rebuild_count);
  w.i64(delta_reinserted);
  return f;
}

StatsResp StatsResp::from_frame(const Frame& f) {
  PayloadReader r = open_payload(f, MsgType::kStatsResp);
  StatsResp m;
  m.active_fraction = r.f64();
  m.sampling_seconds = r.f64();
  m.compute_seconds = r.f64();
  m.rebuild_count = r.i64();
  m.delta_reinserted = r.i64();
  return m;
}

Frame SetShardWeightsMsg::to_frame() const {
  Frame f = begin_frame(MsgType::kSetShardWeights);
  PayloadWriter w(f.payload);
  w.floats({weights.data(), weights.size()});
  w.floats({bias.data(), bias.size()});
  return f;
}

SetShardWeightsMsg SetShardWeightsMsg::from_frame(const Frame& f) {
  PayloadReader r = open_payload(f, MsgType::kSetShardWeights);
  SetShardWeightsMsg m;
  r.floats(m.weights);
  r.floats(m.bias);
  return m;
}

Frame AddUnitsMsg::to_frame() const {
  Frame f = begin_frame(MsgType::kAddUnits);
  PayloadWriter w(f.payload);
  w.u32(count);
  return f;
}

AddUnitsMsg AddUnitsMsg::from_frame(const Frame& f) {
  PayloadReader r = open_payload(f, MsgType::kAddUnits);
  AddUnitsMsg m;
  m.count = r.u32();
  return m;
}

Frame RetireUnitsMsg::to_frame() const {
  Frame f = begin_frame(MsgType::kRetireUnits);
  PayloadWriter w(f.payload);
  w.indices({local_ids.data(), local_ids.size()});
  return f;
}

RetireUnitsMsg RetireUnitsMsg::from_frame(const Frame& f) {
  PayloadReader r = open_payload(f, MsgType::kRetireUnits);
  RetireUnitsMsg m;
  r.indices(m.local_ids);
  return m;
}

Frame ErrorResp::to_frame() const {
  Frame f = begin_frame(MsgType::kErrorResp);
  PayloadWriter w(f.payload);
  w.str(message);
  return f;
}

ErrorResp ErrorResp::from_frame(const Frame& f) {
  PayloadReader r = open_payload(f, MsgType::kErrorResp);
  ErrorResp m;
  m.message = r.str();
  return m;
}

}  // namespace slide::dist
