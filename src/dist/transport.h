// Byte transports carrying dist/frame.h frames between the coordinator and
// shard workers.
//
// Two implementations, one contract:
//
//   TcpTransport      — POSIX stream sockets (loopback or cross-node),
//                       TCP_NODELAY, poll()-based receive timeouts.
//   ShmRingTransport  — same-host pair of SPSC shared-memory byte rings
//                       (dist/shm_ring.h); no syscalls on the data path.
//
// Endpoints are strings so configs and CLIs can name them uniformly:
//
//   "tcp:<host>:<port>"   connect_endpoint dials; listen_endpoint binds
//                         (host may be omitted on listen: "tcp::0" binds
//                         an ephemeral port on all interfaces).
//   "shm:<path>"          a file-backed shared-memory ring pair at <path>;
//                         listen_endpoint creates it, connect_endpoint
//                         attaches.
//
// Error taxonomy: TransportTimeout (peer slow — retryable), TransportClosed
// (peer gone — reconnect or degrade), TransportError (everything else).
// FrameError from the decode layer passes through untouched, so callers can
// distinguish a corrupt peer from a dead one.
//
// Thread-safety: one sender thread + one receiver thread per transport (the
// RPC clients serialize whole call/response exchanges behind a mutex). The
// byte counters are relaxed atomics so stats readers on other threads see
// sane values.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "dist/frame.h"

namespace slide::dist {

class TransportError : public Error {
 public:
  using Error::Error;
};

class TransportTimeout : public TransportError {
 public:
  using TransportError::TransportError;
};

class TransportClosed : public TransportError {
 public:
  using TransportError::TransportError;
};

/// Monotonic wire counters of one transport (and, summed, of a client).
struct WireCounters {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Blocking send of one whole frame. Throws TransportClosed/-Error.
  virtual void send(const Frame& frame) = 0;

  /// Blocking receive of one whole frame. `timeout_ms` < 0 waits forever;
  /// expiry throws TransportTimeout, peer shutdown throws TransportClosed,
  /// corruption throws FrameError.
  virtual Frame recv(int timeout_ms) = 0;

  /// Makes concurrent and future recv/send calls fail fast with
  /// TransportClosed. Idempotent.
  virtual void close() = 0;

  virtual const char* kind() const noexcept = 0;

  WireCounters counters() const noexcept {
    return {bytes_sent_.load(std::memory_order_relaxed),
            bytes_received_.load(std::memory_order_relaxed),
            frames_sent_.load(std::memory_order_relaxed),
            frames_received_.load(std::memory_order_relaxed)};
  }

 protected:
  void count_sent(std::size_t bytes) noexcept {
    bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_received(std::size_t bytes) noexcept {
    bytes_received_.fetch_add(bytes, std::memory_order_relaxed);
    frames_received_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_received_{0};
};

/// Server side of an endpoint: owns the listening resource, hands out one
/// connected Transport per accept.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Waits up to `timeout_ms` (< 0 = forever) for a peer; TransportTimeout
  /// on expiry, TransportClosed after close().
  virtual std::unique_ptr<Transport> accept(int timeout_ms) = 0;

  /// Unblocks a concurrent accept() with TransportClosed. Idempotent.
  virtual void close() = 0;

  /// The endpoint peers should dial — for "tcp::0" this carries the
  /// kernel-assigned port ("tcp:127.0.0.1:<port>").
  virtual std::string endpoint() const = 0;
};

// ---------------------------------------------------------------------------

class TcpTransport final : public Transport {
 public:
  /// Takes ownership of a connected socket fd.
  explicit TcpTransport(int fd);
  ~TcpTransport() override;

  void send(const Frame& frame) override;
  Frame recv(int timeout_ms) override;
  void close() override;
  const char* kind() const noexcept override { return "tcp"; }

  /// Raw-byte side door for non-frame protocols on a TCP socket (the
  /// metrics HTTP listener). Receives whatever is available, up to `cap`
  /// bytes; always returns >= 1 or throws (TransportTimeout on expiry,
  /// TransportClosed on peer shutdown). Raw bytes are not added to the
  /// frame wire counters — those meter the dist RPC protocol only.
  std::size_t recv_raw(void* dst, std::size_t cap, int timeout_ms);
  /// Blocking raw send of exactly `n` bytes. Throws TransportClosed/-Error.
  void send_raw(const void* data, std::size_t n);

 private:
  /// Reads exactly n bytes honoring the deadline accumulated so far.
  void read_exact(std::uint8_t* dst, std::size_t n, int timeout_ms);

  std::atomic<int> fd_;
  std::vector<std::uint8_t> send_buf_;
};

class TcpListener final : public Listener {
 public:
  /// Binds and listens; port 0 selects an ephemeral port.
  TcpListener(const std::string& host, int port);
  ~TcpListener() override;

  std::unique_ptr<Transport> accept(int timeout_ms) override;
  void close() override;
  std::string endpoint() const override;
  int port() const noexcept { return port_; }

 private:
  std::atomic<int> fd_;
  int port_ = 0;
};

// ---------------------------------------------------------------------------

/// Dials an endpoint string ("tcp:host:port" or "shm:path"), retrying until
/// `timeout_ms` elapses (workers may come up after the coordinator).
std::unique_ptr<Transport> connect_endpoint(const std::string& endpoint,
                                            int timeout_ms = 5000);

/// Binds/creates the server side of an endpoint string.
std::unique_ptr<Listener> listen_endpoint(const std::string& endpoint);

}  // namespace slide::dist
