// Coordinator-side RPC client for one shard worker.
//
// A ShardClient owns the transport to one worker and serializes whole
// request/response exchanges behind a mutex (the transports are one
// in-flight frame per direction by design — see dist/transport.h).
//
// Failure model (the "degrade, don't hang" satellite):
//   * Every recv carries a timeout. On expiry the client RE-WAITS up to
//     `recv_retries` more slices — the request was sent exactly once, so a
//     late response is still matched to it and the stream never desyncs
//     (re-SENDING after a timeout would double-execute non-idempotent
//     RPCs).
//   * When the retries are exhausted, or the transport errors, the client
//     marks itself unhealthy and closes: every later call fails fast with
//     TransportClosed. The distributed layer skips unhealthy shards for
//     inference (degraded mode, surfaced through engine stats) and
//     propagates the error for training (silently dropping a shard's
//     gradients would corrupt the model).
//   * A worker-side slide::Error arrives as kErrorResp and is rethrown
//     as slide::Error with the remote message; the client stays healthy —
//     the worker answered, the request was just bad.
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "dist/protocol.h"
#include "dist/transport.h"

namespace slide::dist {

struct ClientConfig {
  /// Dial budget: how long connect() keeps retrying (workers may come up
  /// after the coordinator).
  int connect_timeout_ms = 10000;
  /// Per-wait receive budget of one RPC.
  int rpc_timeout_ms = 30000;
  /// Extra recv waits after the first timeout before declaring the worker
  /// unresponsive.
  int recv_retries = 1;
};

class ShardClient {
 public:
  ShardClient(std::string endpoint, const ClientConfig& config);
  ~ShardClient();

  /// Dials and handshakes (kHello / kHelloOk, protocol version check).
  void connect();

  /// One RPC exchange: send `request`, receive and validate a frame of type
  /// `expect`. kErrorResp becomes slide::Error. Transport failures mark the
  /// client unhealthy and rethrow.
  Frame call(const Frame& request, MsgType expect);

  /// Fails fast when the worker was declared unresponsive/gone.
  bool healthy() const noexcept {
    return healthy_.load(std::memory_order_acquire);
  }

  /// Sends kShutdown (best effort — a dead worker is already shut down).
  void shutdown_worker() noexcept;

  /// Closes the transport and marks unhealthy (no reconnect: the worker's
  /// shard state lives in its process).
  void close() noexcept;

  const std::string& endpoint() const noexcept { return endpoint_; }

  /// Cumulative wire traffic of this client's transport.
  WireCounters counters() const noexcept;

 private:
  void mark_unhealthy() noexcept;

  std::string endpoint_;
  ClientConfig config_;
  mutable std::mutex mutex_;
  std::unique_ptr<Transport> transport_;
  std::atomic<bool> healthy_{false};
  /// Counters survive transport teardown so stats stay monotonic.
  WireCounters retired_{};
};

}  // namespace slide::dist
