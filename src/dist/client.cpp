#include "dist/client.h"

namespace slide::dist {

ShardClient::ShardClient(std::string endpoint, const ClientConfig& config)
    : endpoint_(std::move(endpoint)), config_(config) {}

ShardClient::~ShardClient() { close(); }

void ShardClient::connect() {
  std::lock_guard lock(mutex_);
  SLIDE_CHECK(transport_ == nullptr, "ShardClient: already connected");
  transport_ = connect_endpoint(endpoint_, config_.connect_timeout_ms);
  Frame hello = HelloMsg{}.to_frame();
  transport_->send(hello);
  const Frame resp = transport_->recv(config_.rpc_timeout_ms);
  if (msg_type_of(resp) == MsgType::kErrorResp)
    throw Error("worker " + endpoint_ +
                " rejected handshake: " + ErrorResp::from_frame(resp).message);
  SLIDE_CHECK(msg_type_of(resp) == MsgType::kHelloOk,
              "ShardClient: unexpected handshake response");
  PayloadReader r({resp.payload.data(), resp.payload.size()});
  const std::uint32_t version = r.u32();
  SLIDE_CHECK(version == kProtocolVersion,
              "ShardClient: worker speaks protocol version " +
                  std::to_string(version) + ", expected " +
                  std::to_string(kProtocolVersion));
  healthy_.store(true, std::memory_order_release);
}

Frame ShardClient::call(const Frame& request, MsgType expect) {
  std::lock_guard lock(mutex_);
  if (!healthy_.load(std::memory_order_acquire) || transport_ == nullptr)
    throw TransportClosed("shard " + endpoint_ + " is unhealthy");
  try {
    transport_->send(request);
    // The request went out exactly once. A timeout below only means "no
    // response yet" — re-wait up to recv_retries more slices so a slow
    // worker (long rebuild, GC of the box it runs on) degrades into
    // latency, not into a desynced stream or a double-executed RPC.
    Frame response;
    for (int attempt = 0;; ++attempt) {
      try {
        response = transport_->recv(config_.rpc_timeout_ms);
        break;
      } catch (const TransportTimeout&) {
        if (attempt >= config_.recv_retries) throw;
      }
    }
    if (msg_type_of(response) == MsgType::kErrorResp)
      throw Error("worker " + endpoint_ + ": " +
                  ErrorResp::from_frame(response).message);
    if (msg_type_of(response) != expect)
      throw FrameError(FrameErrorKind::kBadFormat,
                       std::string("expected ") + to_string(expect) +
                           " from " + endpoint_ + ", got " +
                           to_string(msg_type_of(response)));
    return response;
  } catch (const TransportError&) {
    mark_unhealthy();
    throw;
  } catch (const FrameError&) {
    mark_unhealthy();  // corrupt peer: stream can no longer be trusted
    throw;
  }
}

void ShardClient::shutdown_worker() noexcept {
  try {
    call(make_frame(MsgType::kShutdown), MsgType::kAck);
  } catch (const Error&) {
    // Best effort: a dead worker is already shut down.
  }
  close();
}

void ShardClient::close() noexcept {
  std::lock_guard lock(mutex_);
  healthy_.store(false, std::memory_order_release);
  if (transport_ != nullptr) {
    const WireCounters c = transport_->counters();
    retired_.bytes_sent += c.bytes_sent;
    retired_.bytes_received += c.bytes_received;
    retired_.frames_sent += c.frames_sent;
    retired_.frames_received += c.frames_received;
    transport_->close();
    transport_.reset();
  }
}

void ShardClient::mark_unhealthy() noexcept {
  healthy_.store(false, std::memory_order_release);
  if (transport_ != nullptr) transport_->close();
}

WireCounters ShardClient::counters() const noexcept {
  std::lock_guard lock(mutex_);
  WireCounters total = retired_;
  if (transport_ != nullptr) {
    const WireCounters c = transport_->counters();
    total.bytes_sent += c.bytes_sent;
    total.bytes_received += c.bytes_received;
    total.frames_sent += c.frames_sent;
    total.frames_received += c.frames_received;
  }
  return total;
}

}  // namespace slide::dist
