// Shard worker: the process-side owner of one output-layer shard.
//
// A ShardWorker answers the dist/protocol.h RPCs over one connected
// Transport. After kInitShard it owns a full SampledLayer — its own weight
// block, MaintainedTables, dirty-delta queue, Adam state, bf16 mirror —
// constructed from the per-shard config the coordinator derived (see
// derive_shard_config), optionally booted from a per-shard checkpoint file
// (core/serialize.h shard files).
//
// The worker is single-threaded by design: requests arrive strictly in
// order on one transport and are answered in order, which is exactly what
// the bit-exactness contract of the protocol requires (sequential RNG
// stream, sequential backward fold). The layer's own background
// maintenance thread (async policies) still runs concurrently, same as
// in-process.
//
// Errors: any slide::Error thrown while handling a request is returned to
// the coordinator as kErrorResp and the worker keeps serving; transport
// errors end the serve loop.
//
// Deployment shapes:
//   * tools/slide_worker — standalone process (`slide_worker --listen
//     tcp::0`), one worker per shard, used by the CI multi-process smoke
//     job and real clusters.
//   * InProcessWorker — a worker on a background thread of the coordinator
//     process, used by tests, examples, and single-host serving
//     (`serve_cli --dist N`).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/layer.h"
#include "dist/protocol.h"
#include "dist/transport.h"

namespace slide::dist {

class ShardWorker {
 public:
  /// Takes ownership of a connected transport (the coordinator's side of
  /// the RPC pair is dist/client.h).
  explicit ShardWorker(std::unique_ptr<Transport> transport);
  ~ShardWorker();

  /// Why the serve loop ended.
  enum class ExitReason { kShutdown, kPeerClosed };

  /// Answers RPCs until kShutdown (acked first) or the peer disappears.
  /// Frame/payload corruption is answered with kErrorResp; transport
  /// errors end the loop.
  ExitReason serve();

  /// The shard layer (null before kInitShard). Test/diagnostic access.
  const SampledLayer* layer() const noexcept { return layer_.get(); }

 private:
  Frame dispatch(const Frame& request);

  Frame handle_init(const Frame& f);
  Frame handle_forward(const Frame& f);
  Frame handle_backward(const Frame& f);
  Frame handle_query_topk(const Frame& f);
  Frame handle_checkpoint(const Frame& f);
  Frame handle_fetch() const;
  Frame handle_stats() const;

  SampledLayer& layer_checked();
  const SampledLayer& layer_checked() const;

  std::unique_ptr<Transport> transport_;
  std::unique_ptr<SampledLayer> layer_;
  std::unique_ptr<VisitedSet> visited_;
  Rng rng_{1};  // state injected per request (coordinator round-trip)

  // Topology from kInitShard (identity for checkpoint_shard files).
  std::int32_t shard_index_ = 0;
  std::int32_t num_shards_ = 1;
  Index row_offset_ = 0;
  Index global_units_ = 0;

  /// Per-slot previous-layer active sets reconstructed by kForwardActive
  /// and reused by kBackwardScatter (the wire never resends prev.act).
  std::vector<ActiveSet> prev_slots_;
  /// Scratch prev set + candidate buffers for kQueryTopk.
  ActiveSet query_prev_;
  std::vector<Index> query_ids_;
  std::vector<float> query_act_;
};

/// A shard worker running on a background thread of this process: owns the
/// listener, accepts exactly one coordinator connection, serves it to
/// completion. Tests, examples, and `serve_cli --dist` use this to get
/// worker processes' semantics without process management.
class InProcessWorker {
 public:
  /// Binds `endpoint` ("tcp:127.0.0.1:0" for an ephemeral port, or
  /// "shm:<path>") and starts serving on a background thread.
  explicit InProcessWorker(const std::string& endpoint);
  ~InProcessWorker();

  /// The dialable endpoint (with the kernel-assigned port resolved).
  const std::string& endpoint() const noexcept { return endpoint_; }

  /// Closes the listener/transport and joins the thread. Idempotent.
  void stop();

 private:
  std::unique_ptr<Listener> listener_;
  std::string endpoint_;
  std::thread thread_;
  /// The transport being served, for stop() to close; guarded by mutex_
  /// (set/cleared by the serve thread, read by stop()).
  std::mutex mutex_;
  Transport* active_ = nullptr;
};

}  // namespace slide::dist
