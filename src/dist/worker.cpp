#include "dist/worker.h"

#include <algorithm>

#include "core/serialize.h"

namespace slide::dist {

ShardWorker::ShardWorker(std::unique_ptr<Transport> transport)
    : transport_(std::move(transport)) {
  SLIDE_CHECK(transport_ != nullptr, "ShardWorker: null transport");
}

ShardWorker::~ShardWorker() = default;

SampledLayer& ShardWorker::layer_checked() {
  SLIDE_CHECK(layer_ != nullptr, "worker: no shard initialized (InitShard "
                                 "must precede this RPC)");
  return *layer_;
}

const SampledLayer& ShardWorker::layer_checked() const {
  SLIDE_CHECK(layer_ != nullptr, "worker: no shard initialized (InitShard "
                                 "must precede this RPC)");
  return *layer_;
}

ShardWorker::ExitReason ShardWorker::serve() {
  while (true) {
    Frame request;
    try {
      request = transport_->recv(/*timeout_ms=*/-1);
    } catch (const TransportClosed&) {
      return ExitReason::kPeerClosed;
    }
    bool shutdown = false;
    Frame response;
    try {
      if (msg_type_of(request) == MsgType::kShutdown) {
        shutdown = true;
        response = make_frame(MsgType::kAck);
      } else {
        response = dispatch(request);
      }
    } catch (const Error& e) {
      // Includes FrameError (corrupt payload): report, keep serving — a
      // single bad request must not take the shard down.
      response = ErrorResp{e.what()}.to_frame();
    }
    try {
      transport_->send(response);
    } catch (const TransportClosed&) {
      return ExitReason::kPeerClosed;
    }
    if (shutdown) return ExitReason::kShutdown;
  }
}

Frame ShardWorker::dispatch(const Frame& request) {
  switch (msg_type_of(request)) {
    case MsgType::kHello: {
      const HelloMsg hello = HelloMsg::from_frame(request);
      SLIDE_CHECK(hello.version == kProtocolVersion,
                  "worker: protocol version mismatch (coordinator " +
                      std::to_string(hello.version) + ", worker " +
                      std::to_string(kProtocolVersion) + ")");
      Frame ok = make_frame(MsgType::kHelloOk);
      PayloadWriter w(ok.payload);
      w.u32(kProtocolVersion);
      return ok;
    }
    case MsgType::kInitShard:
      return handle_init(request);
    case MsgType::kForwardActive:
      return handle_forward(request);
    case MsgType::kBackwardScatter:
      return handle_backward(request);
    case MsgType::kApplyUpdates:
      layer_checked().apply_updates(
          ApplyUpdatesMsg::from_frame(request).lr, nullptr);
      return make_frame(MsgType::kAck);
    case MsgType::kMaybeRebuild: {
      MaybeRebuildResp resp;
      resp.fired = layer_checked().maybe_rebuild(
          MaybeRebuildMsg::from_frame(request).iteration, nullptr);
      return resp.to_frame();
    }
    case MsgType::kRebuildTables:
      layer_checked().rebuild_tables(nullptr);
      return make_frame(MsgType::kAck);
    case MsgType::kQuiesce:
      layer_checked().quiesce_maintenance();
      return make_frame(MsgType::kAck);
    case MsgType::kFlushMaintenance:
      layer_checked().flush_maintenance();
      return make_frame(MsgType::kAck);
    case MsgType::kRefreshMirror:
      layer_checked().refresh_inference_mirror();
      return make_frame(MsgType::kAck);
    case MsgType::kSetUseLocks:
      layer_checked().set_use_locks(
          SetUseLocksMsg::from_frame(request).locks);
      return make_frame(MsgType::kAck);
    case MsgType::kQueryTopk:
      return handle_query_topk(request);
    case MsgType::kCheckpointShard:
      return handle_checkpoint(request);
    case MsgType::kFetchShard:
      return handle_fetch();
    case MsgType::kSetShardWeights: {
      const SetShardWeightsMsg m = SetShardWeightsMsg::from_frame(request);
      SampledLayer& layer = layer_checked();
      SLIDE_CHECK(m.weights.size() == layer.weights_span().size() &&
                      m.bias.size() == layer.bias_span().size(),
                  "worker: pushed weight block does not match the shard "
                  "shape");
      std::copy(m.weights.begin(), m.weights.end(),
                layer.weights_span().data());
      std::copy(m.bias.begin(), m.bias.end(), layer.bias_span().data());
      layer.on_weights_loaded();
      layer.rebuild_tables(nullptr);
      return make_frame(MsgType::kAck);
    }
    case MsgType::kAddUnits: {
      const AddUnitsMsg m = AddUnitsMsg::from_frame(request);
      SampledLayer& layer = layer_checked();
      layer.add_units(m.count);
      // The sampled universe widened; the VisitedSet is capacity-fixed.
      visited_ = std::make_unique<VisitedSet>(layer.units());
      return make_frame(MsgType::kAck);
    }
    case MsgType::kRetireUnits: {
      const RetireUnitsMsg m = RetireUnitsMsg::from_frame(request);
      layer_checked().retire_units(m.local_ids);
      return make_frame(MsgType::kAck);
    }
    case MsgType::kStats:
      return handle_stats();
    default:
      throw FrameError(FrameErrorKind::kBadFormat,
                       std::string("unexpected request ") +
                           to_string(msg_type_of(request)));
  }
}

Frame ShardWorker::handle_init(const Frame& f) {
  const InitShardMsg m = InitShardMsg::from_frame(f);
  SLIDE_CHECK(layer_ == nullptr, "worker: shard already initialized");
  SLIDE_CHECK(m.batch_slots >= 1, "worker: batch_slots must be >= 1");
  shard_index_ = m.shard_index;
  num_shards_ = m.num_shards;
  row_offset_ = m.row_offset;
  global_units_ = m.global_units;
  // max_threads = 1: RPCs arrive sequentially, so one HOGWILD touched list
  // suffices (tid is always 0 below).
  layer_ = std::make_unique<SampledLayer>(m.config, m.batch_slots,
                                          /*max_threads=*/1);
  visited_ = std::make_unique<VisitedSet>(m.config.units);
  prev_slots_.resize(static_cast<std::size_t>(m.batch_slots));

  if (!m.checkpoint_path.empty()) {
    std::vector<float> weights;
    std::vector<float> bias;
    const ShardFileInfo info =
        load_shard_file(m.checkpoint_path, weights, bias);
    SLIDE_CHECK(info.shard_index == static_cast<std::uint32_t>(shard_index_) &&
                    info.num_shards ==
                        static_cast<std::uint32_t>(num_shards_) &&
                    info.row_offset == row_offset_,
                "worker: shard file topology does not match InitShard");
    SLIDE_CHECK(info.rows == m.config.units &&
                    info.fan_in == m.config.fan_in,
                "worker: shard file shape does not match the shard config");
    std::copy(weights.begin(), weights.end(),
              layer_->weights_span().data());
    std::copy(bias.begin(), bias.end(), layer_->bias_span().data());
    layer_->on_weights_loaded();
    layer_->rebuild_tables(nullptr);
  }
  return make_frame(MsgType::kAck);
}

Frame ShardWorker::handle_forward(const Frame& f) {
  const ForwardMsg m = ForwardMsg::from_frame(f);
  SampledLayer& layer = layer_checked();
  SLIDE_CHECK(m.slot >= 0 &&
                  static_cast<std::size_t>(m.slot) < prev_slots_.size(),
              "worker: forward slot out of range");
  ActiveSet& prev = prev_slots_[static_cast<std::size_t>(m.slot)];
  m.prev.reconstruct(prev);
  rng_.set_state(m.rng);
  layer.forward(m.slot, prev, m.forced_local, rng_, *visited_, /*tid=*/0);

  const ActiveSet& slot = layer.slot(m.slot);
  ForwardResp resp;
  resp.rng = rng_.state();
  const std::size_t n = slot.size();
  resp.ids.assign(slot.ids.begin(), slot.ids.end());
  resp.act.assign(slot.act.begin(),
                  slot.act.begin() + static_cast<std::ptrdiff_t>(n));
  return resp.to_frame(f.bf16_values());
}

Frame ShardWorker::handle_backward(const Frame& f) {
  BackwardMsg m = BackwardMsg::from_frame(f);
  SampledLayer& layer = layer_checked();
  SLIDE_CHECK(m.slot >= 0 &&
                  static_cast<std::size_t>(m.slot) < prev_slots_.size(),
              "worker: backward slot out of range");
  ActiveSet& slot = layer.slot(m.slot);
  SLIDE_CHECK(m.err.size() == slot.size(),
              "worker: err segment does not match the shard's active set");
  ActiveSet& prev = prev_slots_[static_cast<std::size_t>(m.slot)];
  SLIDE_CHECK(m.prev_err.size() == prev.size(),
              "worker: prev_err does not match the cached prev set");
  std::copy(m.err.begin(), m.err.end(), slot.err.begin());
  // The fold: start from the coordinator's current prev.err, accumulate
  // this shard's contributions in the same loop order as in-process,
  // return the result to seed the next shard.
  std::copy(m.prev_err.begin(), m.prev_err.end(), prev.err.begin());
  layer.backward(m.slot, prev, /*tid=*/0);
  BackwardResp resp;
  resp.prev_err.assign(prev.err.begin(),
                       prev.err.begin() +
                           static_cast<std::ptrdiff_t>(prev.size()));
  return resp.to_frame(false);
}

Frame ShardWorker::handle_query_topk(const Frame& f) {
  const QueryTopkMsg m = QueryTopkMsg::from_frame(f);
  const SampledLayer& layer = layer_checked();
  m.prev.reconstruct(query_prev_);
  const std::span<const Index> prev_ids{query_prev_.ids.data(),
                                        query_prev_.ids.size()};
  const std::span<const float> prev_act{query_prev_.act.data(),
                                        query_prev_.act.size()};
  rng_.set_state(m.rng);
  layer.forward_inference_budgeted(prev_ids, prev_act, m.exact, rng_,
                                   *visited_, m.budget, query_ids_,
                                   query_act_);
  QueryTopkResp resp;
  resp.rng = rng_.state();
  resp.ids = query_ids_;
  resp.act = query_act_;
  return resp.to_frame(f.bf16_values());
}

Frame ShardWorker::handle_checkpoint(const Frame& f) {
  const CheckpointShardMsg m = CheckpointShardMsg::from_frame(f);
  const SampledLayer& layer = layer_checked();
  ShardFileInfo info;
  info.shard_index = static_cast<std::uint32_t>(shard_index_);
  info.num_shards = static_cast<std::uint32_t>(num_shards_);
  info.row_offset = row_offset_;
  info.rows = layer.units();
  info.fan_in = layer.fan_in();
  save_shard_file(m.path, info, layer.weights_span(), layer.bias_span());
  return make_frame(MsgType::kAck);
}

Frame ShardWorker::handle_fetch() const {
  const SampledLayer& layer = layer_checked();
  FetchShardResp resp;
  resp.row_offset = row_offset_;
  resp.rows = layer.units();
  resp.fan_in = layer.fan_in();
  const std::span<const float> w = layer.weights_span();
  const std::span<const float> b = layer.bias_span();
  resp.weights.assign(w.begin(), w.end());
  resp.bias.assign(b.begin(), b.end());
  return resp.to_frame();
}

Frame ShardWorker::handle_stats() const {
  const SampledLayer& layer = layer_checked();
  StatsResp resp;
  resp.active_fraction = layer.average_active_fraction();
  resp.sampling_seconds = layer.sampling_seconds();
  resp.compute_seconds = layer.compute_seconds();
  resp.rebuild_count = layer.rebuild_count();
  resp.delta_reinserted = layer.delta_reinserted();
  return resp.to_frame();
}

// ---------------------------------------------------------------------------
// InProcessWorker
// ---------------------------------------------------------------------------

InProcessWorker::InProcessWorker(const std::string& endpoint)
    : listener_(listen_endpoint(endpoint)), endpoint_(listener_->endpoint()) {
  thread_ = std::thread([this] {
    try {
      std::unique_ptr<Transport> transport =
          listener_->accept(/*timeout_ms=*/-1);
      {
        std::lock_guard lock(mutex_);
        active_ = transport.get();
      }
      ShardWorker worker(std::move(transport));
      worker.serve();
      std::lock_guard lock(mutex_);
      active_ = nullptr;
    } catch (const TransportError&) {
      // Listener closed before a coordinator arrived, or the peer vanished
      // mid-handshake — a normal shutdown path for tests.
      std::lock_guard lock(mutex_);
      active_ = nullptr;
    } catch (const Error&) {
      std::lock_guard lock(mutex_);
      active_ = nullptr;
    }
  });
}

InProcessWorker::~InProcessWorker() { stop(); }

void InProcessWorker::stop() {
  if (listener_) listener_->close();
  {
    // Unblock a serve loop still waiting on its coordinator.
    std::lock_guard lock(mutex_);
    if (active_ != nullptr) active_->close();
  }
  if (thread_.joinable()) thread_.join();
}

}  // namespace slide::dist
