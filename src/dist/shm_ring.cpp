#include "dist/shm_ring.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <new>
#include <thread>

namespace slide::dist {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kShmMagic = 0x534C534Du;  // "SLSM"
constexpr std::uint32_t kShmVersion = 1;

/// One SPSC byte ring: producer owns head, consumer owns tail; both are
/// monotonic, indices taken mod capacity, so full/empty are unambiguous.
struct alignas(64) Ring {
  std::atomic<std::uint64_t> head;
  char pad0[64 - sizeof(std::atomic<std::uint64_t>)];
  std::atomic<std::uint64_t> tail;
  char pad1[64 - sizeof(std::atomic<std::uint64_t>)];
};

struct ShmHeader {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint64_t capacity;  // bytes per direction
  std::atomic<std::uint32_t> init_complete;
  std::atomic<std::uint32_t> server_attached;
  std::atomic<std::uint32_t> client_attached;
  std::atomic<std::uint32_t> closed;
  char pad[64];
  Ring rings[2];  // [0] server -> client, [1] client -> server
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shm rings need lock-free 64-bit atomics");
static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
              "shm rings need lock-free 32-bit atomics");

constexpr std::size_t round_up(std::size_t v, std::size_t align) {
  return (v + align - 1) / align * align;
}

constexpr std::size_t header_bytes() {
  return round_up(sizeof(ShmHeader), 64);
}

struct Mapping {
  void* addr = nullptr;
  std::size_t bytes = 0;
};

void check_deadline(Clock::time_point start, int timeout_ms,
                    const char* what) {
  if (timeout_ms < 0) return;
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            start)
          .count();
  if (elapsed >= timeout_ms)
    throw TransportTimeout(std::string(what) + ": timed out");
}

/// Spin -> yield -> sleep. The rings exist to avoid syscalls on the hot
/// path, but an idle peer must not burn a core forever.
struct Backoff {
  int spins = 0;
  void pause() {
    if (spins < 64) {
      ++spins;
    } else if (spins < 256) {
      ++spins;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  void reset() noexcept { spins = 0; }
};

Mapping map_ring_file(const std::string& path, bool create,
                      std::size_t capacity) {
  int flags = O_RDWR;
  if (create) flags |= O_CREAT | O_TRUNC;
  const int fd = ::open(path.c_str(), flags, 0600);
  if (fd < 0)
    throw TransportError("shm open '" + path + "': " + std::strerror(errno));
  std::size_t total = 0;
  if (create) {
    total = header_bytes() + 2 * capacity;
    if (::ftruncate(fd, static_cast<off_t>(total)) != 0) {
      const int err = errno;
      ::close(fd);
      throw TransportError("shm ftruncate '" + path +
                           "': " + std::strerror(err));
    }
  } else {
    struct stat st{};
    if (::fstat(fd, &st) != 0 ||
        static_cast<std::size_t>(st.st_size) < header_bytes()) {
      ::close(fd);
      throw TransportError("shm '" + path + "' is not a ring file");
    }
    total = static_cast<std::size_t>(st.st_size);
  }
  void* addr = ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                      0);
  const int err = errno;
  ::close(fd);
  if (addr == MAP_FAILED)
    throw TransportError("shm mmap '" + path + "': " + std::strerror(err));
  return {addr, total};
}

class ShmRingTransport final : public Transport {
 public:
  ShmRingTransport(Mapping map, bool server)
      : map_(map),
        hdr_(static_cast<ShmHeader*>(map.addr)),
        server_(server) {
    if (hdr_->magic != kShmMagic || hdr_->version != kShmVersion) {
      ::munmap(map_.addr, map_.bytes);
      throw TransportError("shm ring file has wrong magic/version");
    }
    cap_ = static_cast<std::size_t>(hdr_->capacity);
    auto* base = static_cast<std::uint8_t*>(map_.addr) + header_bytes();
    data_[0] = base;
    data_[1] = base + cap_;
  }

  ~ShmRingTransport() override {
    close();
    ::munmap(map_.addr, map_.bytes);
  }

  const char* kind() const noexcept override { return "shm"; }

  void close() override {
    if (!local_closed_.exchange(true, std::memory_order_acq_rel))
      hdr_->closed.store(1, std::memory_order_release);
  }

  void send(const Frame& frame) override {
    encode_frame(frame, send_buf_);
    write_bytes(send_buf_.data(), send_buf_.size());
    count_sent(send_buf_.size());
  }

  Frame recv(int timeout_ms) override {
    const auto start = Clock::now();
    std::uint8_t header[kFrameHeaderBytes];
    read_bytes(header, kFrameHeaderBytes, start, timeout_ms);
    const FrameHeader h = decode_frame_header(header);
    std::vector<std::uint8_t> payload(h.length);
    if (h.length > 0) read_bytes(payload.data(), h.length, start, timeout_ms);
    count_received(kFrameHeaderBytes + h.length);
    return assemble_frame(h, std::move(payload));
  }

  void mark_attached() {
    auto& flag = server_ ? hdr_->server_attached : hdr_->client_attached;
    flag.store(1, std::memory_order_release);
  }

  bool peer_attached() const noexcept {
    const auto& flag =
        server_ ? hdr_->client_attached : hdr_->server_attached;
    return flag.load(std::memory_order_acquire) != 0;
  }

 private:
  bool closed() const noexcept {
    return local_closed_.load(std::memory_order_acquire) ||
           hdr_->closed.load(std::memory_order_acquire) != 0;
  }

  // kSendTimeoutMs bounds how long a send blocks on a full ring — a peer
  // that stopped draining must surface as an error, not a live-lock.
  static constexpr int kSendTimeoutMs = 30000;

  void write_bytes(const std::uint8_t* src, std::size_t n) {
    Ring& ring = hdr_->rings[server_ ? 0 : 1];
    std::uint8_t* base = data_[server_ ? 0 : 1];
    const auto start = Clock::now();
    Backoff bo;
    std::size_t done = 0;
    while (done < n) {
      if (closed()) throw TransportClosed("shm send: transport closed");
      const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
      const std::uint64_t tail = ring.tail.load(std::memory_order_acquire);
      const std::size_t space = cap_ - static_cast<std::size_t>(head - tail);
      if (space == 0) {
        check_deadline(start, kSendTimeoutMs, "shm send");
        bo.pause();
        continue;
      }
      const std::size_t off = static_cast<std::size_t>(head % cap_);
      const std::size_t chunk =
          std::min(std::min(space, n - done), cap_ - off);
      std::memcpy(base + off, src + done, chunk);
      ring.head.store(head + chunk, std::memory_order_release);
      done += chunk;
      bo.reset();
    }
  }

  void read_bytes(std::uint8_t* dst, std::size_t n, Clock::time_point start,
                  int timeout_ms) {
    Ring& ring = hdr_->rings[server_ ? 1 : 0];
    const std::uint8_t* base = data_[server_ ? 1 : 0];
    Backoff bo;
    std::size_t done = 0;
    while (done < n) {
      const std::uint64_t head = ring.head.load(std::memory_order_acquire);
      const std::uint64_t tail = ring.tail.load(std::memory_order_relaxed);
      const std::size_t avail = static_cast<std::size_t>(head - tail);
      if (avail == 0) {
        // Drain-then-fail: data already in the ring is still delivered
        // after the peer closes; only an empty closed ring is an error.
        if (closed()) throw TransportClosed("shm recv: transport closed");
        check_deadline(start, timeout_ms, "shm recv");
        bo.pause();
        continue;
      }
      const std::size_t off = static_cast<std::size_t>(tail % cap_);
      const std::size_t chunk =
          std::min(std::min(avail, n - done), cap_ - off);
      std::memcpy(dst + done, base + off, chunk);
      ring.tail.store(tail + chunk, std::memory_order_release);
      done += chunk;
      bo.reset();
    }
  }

  Mapping map_;
  ShmHeader* hdr_;
  std::uint8_t* data_[2] = {nullptr, nullptr};
  std::size_t cap_ = 0;
  bool server_;
  std::atomic<bool> local_closed_{false};
  std::vector<std::uint8_t> send_buf_;
};

}  // namespace

// ---------------------------------------------------------------------------
// ShmListener
// ---------------------------------------------------------------------------

ShmListener::ShmListener(const std::string& path, std::size_t ring_capacity)
    : path_(path), capacity_(round_up(std::max<std::size_t>(
                       ring_capacity, 4 * kFrameHeaderBytes), 64)) {
  const Mapping map = map_ring_file(path_, /*create=*/true, capacity_);
  auto* hdr = new (map.addr) ShmHeader{};
  hdr->magic = kShmMagic;
  hdr->version = kShmVersion;
  hdr->capacity = capacity_;
  hdr->init_complete.store(1, std::memory_order_release);
  ::munmap(map.addr, map.bytes);
}

ShmListener::~ShmListener() {
  close();
  ::unlink(path_.c_str());
}

void ShmListener::close() { closed_.store(true, std::memory_order_release); }

std::unique_ptr<Transport> ShmListener::accept(int timeout_ms) {
  auto transport = std::make_unique<ShmRingTransport>(
      map_ring_file(path_, /*create=*/false, 0), /*server=*/true);
  transport->mark_attached();
  const auto start = Clock::now();
  Backoff bo;
  while (!transport->peer_attached()) {
    if (closed_.load(std::memory_order_acquire))
      throw TransportClosed("shm accept: listener closed");
    check_deadline(start, timeout_ms, "shm accept");
    bo.pause();
  }
  return transport;
}

// ---------------------------------------------------------------------------

std::unique_ptr<Transport> shm_attach(const std::string& path, bool server,
                                      int timeout_ms) {
  const auto start = Clock::now();
  while (true) {
    try {
      auto transport = std::make_unique<ShmRingTransport>(
          map_ring_file(path, /*create=*/false, 0), server);
      transport->mark_attached();
      Backoff bo;
      while (!transport->peer_attached()) {
        check_deadline(start, timeout_ms, "shm attach");
        bo.pause();
      }
      return transport;
    } catch (const TransportTimeout&) {
      throw;
    } catch (const TransportError&) {
      // Ring file not created (or not initialized) yet — the listener may
      // come up after us; retry until the deadline.
      check_deadline(start, timeout_ms, ("shm attach " + path).c_str());
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

}  // namespace slide::dist
