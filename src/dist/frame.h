// Wire framing for the distributed model-parallel subsystem.
//
// Every RPC between the coordinator (dist/distributed_layer.h) and a shard
// worker (dist/worker.h) travels as one length-prefixed, CRC-checked frame:
//
//   offset  size  field
//        0     4  magic  "SLFW" (0x53 0x4C 0x46 0x57, byte order fixed)
//        4     1  type   (dist/protocol.h MsgType; opaque at this layer)
//        5     1  flags  (bit 0: payload values are bf16-compressed)
//        6     2  reserved (zero)
//        8     4  payload length, little-endian (<= kMaxFramePayload)
//       12     4  CRC-32 (IEEE) of the payload bytes, little-endian
//       16     n  payload
//
// The decoder is deliberately paranoid — frames arrive from sockets and
// shared-memory rings that other processes write — and rejects every
// corruption kind with a *typed* error (FrameError::kind), mirroring the
// xc_reader malformed-input contract: truncated header/payload, bad magic,
// oversized length, CRC mismatch. tests/test_dist.cpp fuzzes all of them.
//
// Payload contents are built with PayloadWriter / PayloadReader: explicit
// little-endian scalar codecs plus the sparse active-set pair codec
// ({index, value} runs, fp32 or bf16 values) that carries the activations
// and gradients — the entire point of Distributed SLIDE (arXiv:2201.12667)
// is that these sparse runs are small enough for low-bandwidth links.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "simd/bf16.h"
#include "sys/common.h"

namespace slide::dist {

/// Corruption kind a frame decoder detected (typed for tests and for
/// callers that want to distinguish "peer is garbage" from "peer is slow").
enum class FrameErrorKind {
  kTruncated,  ///< stream/ring ended inside a header or payload
  kBadMagic,   ///< header does not start with "SLFW"
  kOversized,  ///< length field exceeds kMaxFramePayload
  kBadCrc,     ///< payload CRC mismatch
  kBadFormat,  ///< payload structure invalid (reader overrun, bad counts)
};

const char* to_string(FrameErrorKind kind);

class FrameError : public Error {
 public:
  FrameError(FrameErrorKind kind, const std::string& what)
      : Error(std::string("frame: ") + to_string(kind) + ": " + what),
        kind_(kind) {}
  FrameErrorKind kind() const noexcept { return kind_; }

 private:
  FrameErrorKind kind_;
};

/// Hard payload bound: a full fp32 weight block of the paper's widest shard
/// fits with room to spare; anything bigger is a corrupt length field.
inline constexpr std::size_t kMaxFramePayload = 256u * 1024u * 1024u;
inline constexpr std::size_t kFrameHeaderBytes = 16;
inline constexpr std::uint8_t kFlagBf16Values = 0x01;

/// CRC-32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF) over `data`.
std::uint32_t crc32(const void* data, std::size_t len) noexcept;

struct Frame {
  std::uint8_t type = 0;
  std::uint8_t flags = 0;
  std::vector<std::uint8_t> payload;

  bool bf16_values() const noexcept { return (flags & kFlagBf16Values) != 0; }
};

/// Parsed header of an incoming frame (payload not yet read).
struct FrameHeader {
  std::uint8_t type = 0;
  std::uint8_t flags = 0;
  std::uint32_t length = 0;
  std::uint32_t crc = 0;
};

/// Serializes header + payload into `out` (cleared first).
void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out);

/// Validates and parses a 16-byte header block. Throws FrameError
/// (kBadMagic, kOversized) on corruption.
FrameHeader decode_frame_header(const std::uint8_t* header16);

/// Verifies the payload against the header CRC and materializes the Frame.
/// Throws FrameError (kBadCrc) on mismatch.
Frame assemble_frame(const FrameHeader& header, std::vector<std::uint8_t> payload);

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

/// Appends little-endian scalars to a byte buffer.
class PayloadWriter {
 public:
  explicit PayloadWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void f32(float v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void bytes(std::span<const std::uint8_t> b) { raw(b.data(), b.size()); }
  void floats(std::span<const float> v) {
    u32(static_cast<std::uint32_t>(v.size()));
    raw(v.data(), v.size() * sizeof(float));
  }
  void indices(std::span<const Index> v) {
    u32(static_cast<std::uint32_t>(v.size()));
    raw(v.data(), v.size() * sizeof(Index));
  }
  /// Value run with optional bf16 wire compression (ids travel separately).
  void values(std::span<const float> v, bool bf16) {
    u32(static_cast<std::uint32_t>(v.size()));
    if (!bf16) {
      raw(v.data(), v.size() * sizeof(float));
      return;
    }
    for (float f : v) u16(simd::float_to_bf16(f));
  }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), b, b + n);
  }

  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked little-endian reader; any overrun throws
/// FrameError(kBadFormat) — a valid CRC does not make a payload well-formed.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { std::uint8_t v; raw(&v, sizeof(v)); return v; }
  std::uint16_t u16() { std::uint16_t v; raw(&v, sizeof(v)); return v; }
  std::uint32_t u32() { std::uint32_t v; raw(&v, sizeof(v)); return v; }
  std::uint64_t u64() { std::uint64_t v; raw(&v, sizeof(v)); return v; }
  std::int64_t i64() { std::int64_t v; raw(&v, sizeof(v)); return v; }
  float f32() { float v; raw(&v, sizeof(v)); return v; }
  double f64() { double v; raw(&v, sizeof(v)); return v; }
  std::string str() {
    const std::uint32_t n = checked_count(u32(), 1);
    std::string s(n, '\0');
    raw(s.data(), n);
    return s;
  }
  void floats(std::vector<float>& out) {
    const std::uint32_t n = checked_count(u32(), sizeof(float));
    out.resize(n);
    raw(out.data(), static_cast<std::size_t>(n) * sizeof(float));
  }
  void indices(std::vector<Index>& out) {
    const std::uint32_t n = checked_count(u32(), sizeof(Index));
    out.resize(n);
    raw(out.data(), static_cast<std::size_t>(n) * sizeof(Index));
  }
  void values(std::vector<float>& out, bool bf16) {
    if (!bf16) {
      floats(out);
      return;
    }
    const std::uint32_t n = checked_count(u32(), sizeof(std::uint16_t));
    out.resize(n);
    for (std::uint32_t i = 0; i < n; ++i)
      out[i] = simd::bf16_to_float(u16());
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return pos_ == data_.size(); }

 private:
  /// A count whose elements could not possibly fit in the remaining bytes
  /// is corrupt — reject before resize() turns it into an allocation bomb.
  std::uint32_t checked_count(std::uint32_t n, std::size_t elem_bytes) {
    if (static_cast<std::size_t>(n) * elem_bytes > remaining())
      throw FrameError(FrameErrorKind::kBadFormat,
                       "element count exceeds payload");
    return n;
  }
  void raw(void* p, std::size_t n) {
    if (n > remaining())
      throw FrameError(FrameErrorKind::kBadFormat, "payload reader overrun");
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace slide::dist
