#include "sys/hugepages.h"

#include <atomic>
#include <cstring>
#include <utility>

#if defined(__linux__)
#include <sys/mman.h>
#define SLIDE_HAVE_MMAP 1
#else
#define SLIDE_HAVE_MMAP 0
#endif

namespace slide {

namespace {
std::atomic<bool> g_hugepages_enabled{true};
constexpr std::size_t kHugePageSize = 2u << 20;  // 2 MB
}  // namespace

void set_hugepages_enabled(bool enabled) noexcept {
  g_hugepages_enabled.store(enabled, std::memory_order_relaxed);
}

bool hugepages_enabled() noexcept {
  return g_hugepages_enabled.load(std::memory_order_relaxed);
}

bool hugepages_supported() noexcept {
#if SLIDE_HAVE_MMAP && defined(MADV_HUGEPAGE)
  return true;
#else
  return false;
#endif
}

HugeBuffer::HugeBuffer(std::size_t bytes) {
  if (bytes == 0) return;
  bytes_ = (bytes + kHugePageSize - 1) / kHugePageSize * kHugePageSize;
#if SLIDE_HAVE_MMAP
  void* p = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) throw Error("HugeBuffer: mmap failed");
  data_ = p;
#if defined(MADV_HUGEPAGE)
  if (hugepages_enabled()) {
    // Advisory only: the kernel may or may not promote the range. We record
    // whether the advice was *accepted*, which is what the A/B benches toggle.
    thp_ = ::madvise(data_, bytes_, MADV_HUGEPAGE) == 0;
  } else {
    // Explicitly opt this range out so an enabled system THP default does
    // not silently back the "without hugepages" arm of the comparison.
#if defined(MADV_NOHUGEPAGE)
    ::madvise(data_, bytes_, MADV_NOHUGEPAGE);
#endif
  }
#endif
#else
  data_ = std::calloc(bytes_, 1);
  if (data_ == nullptr) throw Error("HugeBuffer: allocation failed");
#endif
}

HugeBuffer::~HugeBuffer() {
  if (data_ == nullptr) return;
#if SLIDE_HAVE_MMAP
  ::munmap(data_, bytes_);
#else
  std::free(data_);
#endif
}

HugeBuffer::HugeBuffer(HugeBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      bytes_(std::exchange(other.bytes_, 0)),
      thp_(std::exchange(other.thp_, false)) {}

HugeBuffer& HugeBuffer::operator=(HugeBuffer&& other) noexcept {
  if (this != &other) {
    this->~HugeBuffer();
    data_ = std::exchange(other.data_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
    thp_ = std::exchange(other.thp_, false);
  }
  return *this;
}

}  // namespace slide
