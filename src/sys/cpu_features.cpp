#include "sys/cpu_features.h"

namespace slide {

namespace {

CpuFeatures detect() noexcept {
  CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  // __builtin_cpu_supports reads cpuid (and xgetbv for the AVX512 state
  // check), so a kernel that masks AVX-512 is honored too.
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
  f.avx512f = __builtin_cpu_supports("avx512f") != 0;
  f.avx512bw = __builtin_cpu_supports("avx512bw") != 0;
  f.f16c = __builtin_cpu_supports("f16c") != 0;
  f.avx512vnni = __builtin_cpu_supports("avx512vnni") != 0;
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() noexcept {
  static const CpuFeatures features = detect();
  return features;
}

}  // namespace slide
