#include "sys/thread_pool.h"

#include <algorithm>

#include "sys/timer.h"

namespace slide {

int hardware_threads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  SLIDE_CHECK(num_threads >= 1, "ThreadPool requires at least one thread");
  busy_ = std::vector<PaddedDouble>(static_cast<std::size_t>(num_threads));
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int t = 1; t < num_threads; ++t) {
    workers_.emplace_back([this, t] { worker_main(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
    ++generation_;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_main(int thread_id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      wake_cv_.wait(lock, [&] {
        return shutting_down_ || generation_ != seen_generation;
      });
      if (shutting_down_) return;
      seen_generation = generation_;
    }
    execute_slice(thread_id);
    {
      std::lock_guard lock(mutex_);
      if (--workers_remaining_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::execute_slice(int thread_id) {
  const std::size_t count = job_count_;
  const std::size_t threads = static_cast<std::size_t>(num_threads_);
  const std::size_t chunk = (count + threads - 1) / threads;
  const std::size_t begin = std::min(count, chunk * thread_id);
  const std::size_t end = std::min(count, begin + chunk);
  if (begin >= end) return;
  WallTimer timer;
  try {
    (*job_)(begin, end, thread_id);
  } catch (...) {
    std::lock_guard lock(error_mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  auto& acc = busy_[static_cast<std::size_t>(thread_id)].value;
  acc.store(acc.load(std::memory_order_relaxed) + timer.seconds(),
            std::memory_order_relaxed);
}

void ThreadPool::dispatch_and_wait() {
  if (num_threads_ == 1) {
    execute_slice(0);
  } else {
    {
      std::lock_guard lock(mutex_);
      workers_remaining_ = num_threads_ - 1;
      ++generation_;
    }
    wake_cv_.notify_all();
    execute_slice(0);  // Caller participates as thread 0.
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return workers_remaining_ == 0; });
  }
  job_ = nullptr;
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_range(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t, int)>& fn) {
  if (count == 0) return;
  job_count_ = count;
  job_ = &fn;
  dispatch_and_wait();
}

void ThreadPool::parallel_for(
    std::size_t count, const std::function<void(std::size_t, int)>& fn) {
  const std::function<void(std::size_t, std::size_t, int)> range_fn =
      [&fn](std::size_t begin, std::size_t end, int tid) {
        for (std::size_t i = begin; i < end; ++i) fn(i, tid);
      };
  parallel_range(count, range_fn);
}

void ThreadPool::run_on_all(const std::function<void(int)>& fn) {
  const std::function<void(std::size_t, std::size_t, int)> range_fn =
      [&fn](std::size_t, std::size_t, int tid) { fn(tid); };
  parallel_range(static_cast<std::size_t>(num_threads_), range_fn);
}

std::vector<double> ThreadPool::busy_seconds() const {
  std::vector<double> out;
  out.reserve(busy_.size());
  for (const auto& b : busy_) out.push_back(b.value.load());
  return out;
}

void ThreadPool::reset_busy() {
  for (auto& b : busy_) b.value.store(0.0);
}

// ---------------------------------------------------------------------------
// BackgroundWorker
// ---------------------------------------------------------------------------

BackgroundWorker::~BackgroundWorker() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
    queue_.clear();  // unstarted maintenance work is worthless at shutdown
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void BackgroundWorker::submit(std::function<void()> task) {
  SLIDE_CHECK(task != nullptr, "BackgroundWorker: null task");
  {
    std::lock_guard lock(mutex_);
    SLIDE_CHECK(!shutting_down_, "BackgroundWorker: submit after shutdown");
    queue_.push_back(std::move(task));
    if (!started_) {
      started_ = true;
      thread_ = std::thread([this] { worker_main(); });
    }
  }
  wake_cv_.notify_one();
}

void BackgroundWorker::worker_main() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_cv_.wait(lock, [&] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
      running_task_ = true;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      running_task_ = false;
      ++completed_;
      if (queue_.empty()) idle_cv_.notify_all();
      if (shutting_down_) return;
    }
  }
}

std::size_t BackgroundWorker::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size() + (running_task_ ? 1 : 0);
}

void BackgroundWorker::wait_idle() const {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && !running_task_; });
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

std::uint64_t BackgroundWorker::completed() const {
  std::lock_guard lock(mutex_);
  return completed_;
}

}  // namespace slide
