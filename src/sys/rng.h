// Fast, seedable pseudo-random number generation.
//
// All stochastic components of the library (weight init, hash-function
// generation, synthetic data, reservoir sampling, vanilla-sampling table
// order) draw from an explicitly seeded Rng so single-threaded runs are
// reproducible bit-for-bit. The generator is xoshiro256**, which is much
// faster than std::mt19937_64 and passes BigCrush.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "sys/common.h"

namespace slide {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
/// Satisfies std::uniform_random_bit_generator so it can drive
/// std::shuffle / std::uniform_*_distribution as well.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors: avoids
    // all-zero and low-entropy states for small seeds.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Lemire's multiply-shift reduction (unbiased enough
  /// for sampling uses; n is always far below 2^32 here).
  std::uint32_t uniform(std::uint32_t n) {
    SLIDE_ASSERT(n > 0);
    return static_cast<std::uint32_t>(
        (static_cast<__uint128_t>(operator()()) * n) >> 64);
  }

  /// Uniform float in [0, 1).
  float uniform_float() {
    return static_cast<float>(operator()() >> 40) * 0x1.0p-24f;
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Marsaglia polar method (no trig).
  float normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    float u, v, s;
    do {
      u = 2.0f * uniform_float() - 1.0f;
      v = 2.0f * uniform_float() - 1.0f;
      s = u * u + v * v;
    } while (s >= 1.0f || s == 0.0f);
    const float m = std::sqrt(-2.0f * std::log(s) / s);
    cached_ = v * m;
    has_cached_ = true;
    return u * m;
  }

  /// Derive an independent stream (for per-thread / per-table generators).
  Rng fork() { return Rng(operator()()); }

  /// Full generator state, for serialization (src/dist/ round-trips it over
  /// the wire so a remote shard consumes the coordinator's stream exactly
  /// where an in-process shard would). 4 xoshiro words + the Marsaglia
  /// cached-normal pair.
  struct State {
    std::uint64_t s[4];
    float cached;
    bool has_cached;
  };
  State state() const noexcept {
    return {{state_[0], state_[1], state_[2], state_[3]}, cached_,
            has_cached_};
  }
  void set_state(const State& st) noexcept {
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
    cached_ = st.cached;
    has_cached_ = st.has_cached;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  float cached_ = 0.0f;
  bool has_cached_ = false;
};

}  // namespace slide
