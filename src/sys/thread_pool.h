// Persistent worker pool with OpenMP-style static-partition parallel loops.
//
// SLIDE's batch parallelism (paper §3.1, "OpenMP Parallelization across a
// Batch") maps each training instance in a mini-batch to one thread. The
// pool here gives the same shape with an explicit, per-run-configurable
// thread count, plus per-thread busy-time accounting that backs the core
// utilization numbers of paper Table 2 / Figure 6.
//
// The calling thread participates as logical thread 0, so a pool of size N
// spawns N-1 workers. Loops use static chunking: item i goes to thread
// i / ceil(count / threads), matching OpenMP's schedule(static) — the
// default the paper relies on when the batch size exceeds the thread count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sys/common.h"

namespace slide {

class ThreadPool {
 public:
  /// Creates a pool of `num_threads` logical threads (>= 1). The constructor
  /// spawns `num_threads - 1` workers; the caller acts as thread 0.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(item_index, thread_id) for every item in [0, count), statically
  /// partitioned into contiguous per-thread ranges. Blocks until all items
  /// complete. Exceptions thrown by fn are rethrown on the calling thread
  /// (first one wins).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t, int)>& fn);

  /// Runs fn(begin, end, thread_id) once per thread with that thread's
  /// contiguous slice of [0, count). Lower dispatch overhead than
  /// parallel_for for tight inner loops.
  void parallel_range(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t, int)>& fn);

  /// Runs fn(thread_id) once on every logical thread.
  void run_on_all(const std::function<void(int)>& fn);

  /// Seconds each logical thread has spent executing loop bodies since the
  /// last reset_busy(). busy_seconds().size() == num_threads().
  std::vector<double> busy_seconds() const;
  void reset_busy();

 private:
  struct alignas(kCacheLineSize) PaddedDouble {
    std::atomic<double> value{0.0};
  };

  void worker_main(int thread_id);
  void execute_slice(int thread_id);
  // Dispatches the currently-staged job to all threads and waits.
  void dispatch_and_wait();

  int num_threads_;
  std::vector<std::thread> workers_;
  std::vector<PaddedDouble> busy_;

  // Job staging: guarded by mutex_, published to workers via generation_.
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  int workers_remaining_ = 0;
  bool shutting_down_ = false;

  // Current job (valid while a dispatch is in flight).
  std::size_t job_count_ = 0;
  const std::function<void(std::size_t, std::size_t, int)>* job_ = nullptr;
  std::exception_ptr first_error_;
  std::mutex error_mutex_;
};

/// Number of hardware threads, never less than 1.
int hardware_threads();

// ---------------------------------------------------------------------------

/// A single background thread executing submitted tasks in FIFO order — the
/// maintenance executor behind asynchronous LSH table rebuilds (see
/// core/layer.h, MaintenancePolicy). Constructing the object is free: the
/// thread is spawned lazily on the first submit, so layers that never use
/// async maintenance never pay for a thread.
///
/// Tasks run strictly one at a time in submission order, which is what the
/// maintenance logic relies on to keep full rebuilds and delta re-inserts
/// from overlapping each other. wait_idle() blocks until the queue is empty
/// and no task is running; it also rethrows the first exception a task
/// raised (maintenance tasks are not expected to throw).
///
/// Destruction discards tasks that have not started, waits for the running
/// one to finish, and joins the thread — shutdown never blocks on a long
/// queue of stale maintenance work.
class BackgroundWorker {
 public:
  BackgroundWorker() = default;
  ~BackgroundWorker();

  BackgroundWorker(const BackgroundWorker&) = delete;
  BackgroundWorker& operator=(const BackgroundWorker&) = delete;

  /// Enqueues a task (spawning the thread on first use).
  void submit(std::function<void()> task);

  /// Tasks queued or currently running.
  std::size_t pending() const;
  bool idle() const { return pending() == 0; }

  /// Blocks until no task is queued or running, then rethrows the first
  /// task exception if any. Logically const: observers may wait without
  /// mutating the worker.
  void wait_idle() const;

  /// Tasks that have finished running (monotonic).
  std::uint64_t completed() const;

 private:
  void worker_main();

  mutable std::mutex mutex_;
  mutable std::condition_variable wake_cv_;
  mutable std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::thread thread_;
  bool started_ = false;
  bool running_task_ = false;
  bool shutting_down_ = false;
  std::uint64_t completed_ = 0;
  mutable std::exception_ptr first_error_;
};

}  // namespace slide
