// Explicit software prefetch, used in the weight-update software pipeline
// (paper appendix D: "Vector Processing, Software Pipelining, and
// Prefetching" — prefetch weight W[i+d] while updating W[i]).
#pragma once

namespace slide {

/// Depth of the software pipeline: how many items ahead to prefetch while
/// streaming through weight rows.
inline constexpr int kPrefetchDistance = 8;

/// Prefetch the cache line containing `addr` into all cache levels
/// (PREFETCHT0). No-op if the compiler lacks the builtin.
inline void prefetch_read(const void* addr) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
  (void)addr;
#endif
}

/// Prefetch for an impending write.
inline void prefetch_write(const void* addr) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/1, /*locality=*/3);
#else
  (void)addr;
#endif
}

}  // namespace slide
