// Common foundation: error type, assertions, and small shared typedefs.
//
// Every other module in the library includes this header; keep it minimal
// and dependency-free.
#pragma once

#include <cstdint>
#include <source_location>
#include <stdexcept>
#include <string>

namespace slide {

/// Exception thrown for configuration and I/O errors (anything a caller can
/// plausibly recover from or report to the user). Programming errors use
/// SLIDE_ASSERT instead.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr,
                                     const std::source_location& loc) {
  throw std::logic_error(std::string("SLIDE_ASSERT failed: ") + expr + " at " +
                         loc.file_name() + ":" + std::to_string(loc.line()));
}
}  // namespace detail

}  // namespace slide

/// Invariant check. Active in debug builds; compiled out with NDEBUG so the
/// release benchmarks measure the unchecked fast path.
#ifndef NDEBUG
#define SLIDE_ASSERT(expr)                                            \
  do {                                                                \
    if (!(expr))                                                      \
      ::slide::detail::assert_fail(#expr,                             \
                                   std::source_location::current());  \
  } while (0)
#else
#define SLIDE_ASSERT(expr) ((void)0)
#endif

/// Check that is always active regardless of build type. Use for conditions
/// on user-supplied configuration.
#define SLIDE_CHECK(expr, msg)                         \
  do {                                                 \
    if (!(expr)) throw ::slide::Error(msg);            \
  } while (0)

namespace slide {

/// Neuron / feature / label index. 32-bit: the paper's largest layer is
/// 670K neurons and the largest feature space 782K dims, far below 2^32.
using Index = std::uint32_t;

/// Size of a CPU cache line; used to pad shared structures against false
/// sharing (paper appendix D).
inline constexpr std::size_t kCacheLineSize = 64;

}  // namespace slide
