#include "sys/perf_counters.h"

#include <fstream>
#include <sstream>

#if defined(__linux__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#define SLIDE_HAVE_RUSAGE 1
#else
#define SLIDE_HAVE_RUSAGE 0
#endif

namespace slide {

namespace {
double timeval_seconds(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) +
         static_cast<double>(tv.tv_usec) * 1e-6;
}
}  // namespace

PerfSnapshot PerfSnapshot::now() {
  PerfSnapshot s;
#if SLIDE_HAVE_RUSAGE
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    s.minor_page_faults = static_cast<std::uint64_t>(ru.ru_minflt);
    s.major_page_faults = static_cast<std::uint64_t>(ru.ru_majflt);
    s.voluntary_ctx_switches = static_cast<std::uint64_t>(ru.ru_nvcsw);
    s.involuntary_ctx_switches = static_cast<std::uint64_t>(ru.ru_nivcsw);
    s.user_cpu_seconds = timeval_seconds(ru.ru_utime);
    s.system_cpu_seconds = timeval_seconds(ru.ru_stime);
  }
#endif
#if defined(__linux__)
  std::ifstream statm("/proc/self/statm");
  if (statm) {
    std::uint64_t total_pages = 0, resident_pages = 0;
    statm >> total_pages >> resident_pages;
    s.resident_set_bytes =
        resident_pages * static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
  }
#endif
  return s;
}

PerfSnapshot PerfSnapshot::operator-(const PerfSnapshot& earlier) const {
  PerfSnapshot d;
  d.minor_page_faults = minor_page_faults - earlier.minor_page_faults;
  d.major_page_faults = major_page_faults - earlier.major_page_faults;
  d.voluntary_ctx_switches =
      voluntary_ctx_switches - earlier.voluntary_ctx_switches;
  d.involuntary_ctx_switches =
      involuntary_ctx_switches - earlier.involuntary_ctx_switches;
  d.user_cpu_seconds = user_cpu_seconds - earlier.user_cpu_seconds;
  d.system_cpu_seconds = system_cpu_seconds - earlier.system_cpu_seconds;
  d.resident_set_bytes = resident_set_bytes;  // absolute, not cumulative
  return d;
}

std::string thp_mode() {
  std::ifstream f("/sys/kernel/mm/transparent_hugepage/enabled");
  if (!f) return "unknown";
  std::string line;
  std::getline(f, line);
  // Format: "always [madvise] never" — the bracketed token is active.
  auto open = line.find('[');
  auto close = line.find(']');
  if (open == std::string::npos || close == std::string::npos) return line;
  return line.substr(open + 1, close - open - 1);
}

std::uint64_t anon_hugepage_bytes() {
  std::ifstream f("/proc/self/smaps_rollup");
  if (!f) return 0;
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("AnonHugePages:", 0) == 0) {
      std::istringstream iss(line.substr(14));
      std::uint64_t kb = 0;
      iss >> kb;
      return kb * 1024;
    }
  }
  return 0;
}

}  // namespace slide
