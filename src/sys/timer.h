// Monotonic wall-clock timing used by the trainer, the convergence recorder
// and every benchmark harness.
#pragma once

#include <chrono>

namespace slide {

/// Stopwatch over std::chrono::steady_clock.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }
  double microseconds() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace slide
