// Cache-line-aligned allocation.
//
// SLIDE's weight matrices and per-neuron batch arrays are allocated on
// 64-byte boundaries so that (a) AVX2 loads are aligned and (b) per-thread
// data does not straddle cache lines shared with another thread's data
// (false-sharing mitigation, paper appendix D).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

#include "sys/common.h"

namespace slide {

/// Minimal standard-conforming allocator returning storage aligned to
/// `Alignment` bytes. Use through AlignedVector.
template <typename T, std::size_t Alignment = kCacheLineSize>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Alignment >= alignof(T));
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be 2^k");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_alloc();
    // std::aligned_alloc requires the size to be a multiple of the alignment.
    std::size_t bytes = (n * sizeof(T) + Alignment - 1) / Alignment * Alignment;
    void* p = std::aligned_alloc(Alignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// A std::vector whose storage starts on a cache-line boundary.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace slide
