// Runtime CPU feature detection for the SIMD kernel dispatch.
//
// The compute backend (simd/backend.h) binds the widest kernel table the
// *running* machine supports, so one binary serves a heterogeneous fleet.
// This header answers the only question that decision needs: which vector
// ISA extensions does this CPU have? Detection runs once (first call) and
// is free afterwards.
#pragma once

namespace slide {

struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
  bool avx512bw = false;
};

/// Features of the CPU this process is running on. Non-x86 builds report
/// everything false (the dispatch then stays on the scalar table).
const CpuFeatures& cpu_features() noexcept;

}  // namespace slide
