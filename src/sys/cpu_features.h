// Runtime CPU feature detection for the SIMD kernel dispatch.
//
// The compute backend (simd/backend.h) binds the widest kernel table the
// *running* machine supports, so one binary serves a heterogeneous fleet.
// This header answers the only question that decision needs: which vector
// ISA extensions does this CPU have? Detection runs once (first call) and
// is free afterwards.
#pragma once

namespace slide {

struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
  bool avx512bw = false;
  // Optional extensions below the level baselines: F16C (fp16 <-> fp32
  // convert, used by the fp16 tier at AVX2) and AVX512-VNNI (`vpdpbusd`
  // u8xs8 MAC, used by the int8 tier). The dispatch picks a sub-feature
  // table variant from these; they never gate a whole level.
  bool f16c = false;
  bool avx512vnni = false;
};

/// Features of the CPU this process is running on. Non-x86 builds report
/// everything false (the dispatch then stays on the scalar table).
const CpuFeatures& cpu_features() noexcept;

}  // namespace slide
