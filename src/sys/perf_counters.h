// OS-level performance counters.
//
// Stands in for the Intel VTune measurements of paper Table 2 / Figure 6 /
// Table 4 (see DESIGN.md §3): we read what the container exposes — minor and
// major page faults, voluntary/involuntary context switches, user/system CPU
// time — via getrusage(2), plus resident-set size from /proc/self/statm.
// Deltas between two snapshots around a workload give the per-run counters
// the benches report.
#pragma once

#include <cstdint>
#include <string>

namespace slide {

/// A snapshot of process-wide counters. Fields are cumulative since process
/// start; subtract two snapshots to get a per-interval reading.
struct PerfSnapshot {
  std::uint64_t minor_page_faults = 0;
  std::uint64_t major_page_faults = 0;
  std::uint64_t voluntary_ctx_switches = 0;
  std::uint64_t involuntary_ctx_switches = 0;
  double user_cpu_seconds = 0.0;
  double system_cpu_seconds = 0.0;
  std::uint64_t resident_set_bytes = 0;

  static PerfSnapshot now();

  /// Component-wise difference (this - earlier); RSS is reported as the
  /// later absolute value since it is not cumulative.
  PerfSnapshot operator-(const PerfSnapshot& earlier) const;
};

/// Kernel THP status parsed from /sys/kernel/mm/transparent_hugepage/enabled
/// ("always", "madvise", "never", or "unknown" when unreadable).
std::string thp_mode();

/// Anonymous hugepage bytes currently mapped by this process, from
/// /proc/self/smaps_rollup (AnonHugePages). Returns 0 when unreadable.
std::uint64_t anon_hugepage_bytes();

}  // namespace slide
