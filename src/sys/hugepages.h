// Transparent-Huge-Page-backed allocation.
//
// SLIDE is a memory-bound workload with a large footprint (paper appendix D):
// the dominant cost on wide layers is TLB misses and page-table walks while
// streaming weight rows. The paper pre-allocates 2MB/1GB hugepages and
// reports a ~1.3x end-to-end speedup (Figure 10) and large TLB/page-fault
// reductions (Table 4).
//
// This module provides an mmap-based buffer that requests Transparent Huge
// Pages via madvise(MADV_HUGEPAGE) — the in-container equivalent of the
// paper's libhugetlbfs setup — and falls back to ordinary pages when THP is
// unavailable. A process-wide toggle lets benchmarks A/B the two modes
// (bench/fig10_optimizations, bench/table4_hugepages).
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>

#include "sys/common.h"

namespace slide {

/// Process-wide preference: when enabled, HugeBuffer requests THP backing.
/// Defaults to enabled; bench harnesses flip it to A/B the two modes.
void set_hugepages_enabled(bool enabled) noexcept;
bool hugepages_enabled() noexcept;

/// True if this buffer implementation can use madvise(MADV_HUGEPAGE) on the
/// current platform (Linux with mmap available).
bool hugepages_supported() noexcept;

/// A raw byte buffer, page-aligned, optionally THP-advised. Movable,
/// non-copyable; frees its mapping on destruction.
class HugeBuffer {
 public:
  HugeBuffer() = default;
  /// Allocates `bytes` rounded up to a 2MB boundary (so THP can back the
  /// whole range). Zero-initialized by the kernel.
  explicit HugeBuffer(std::size_t bytes);
  ~HugeBuffer();

  HugeBuffer(HugeBuffer&& other) noexcept;
  HugeBuffer& operator=(HugeBuffer&& other) noexcept;
  HugeBuffer(const HugeBuffer&) = delete;
  HugeBuffer& operator=(const HugeBuffer&) = delete;

  void* data() noexcept { return data_; }
  const void* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return bytes_; }
  bool uses_thp() const noexcept { return thp_; }

 private:
  void* data_ = nullptr;
  std::size_t bytes_ = 0;
  bool thp_ = false;
};

/// A fixed-size array of trivially-copyable T in (optionally)
/// hugepage-backed storage. This is the storage type for layer weight
/// matrices, optimizer state, and every quantized inference weight mirror
/// (fp32 / bf16 / fp16 / int8) — the serving hot path streams these rows,
/// which is exactly the TLB-bound access pattern Table 4 measures.
template <typename T>
class HugeArrayT {
  static_assert(std::is_trivially_copyable_v<T>,
                "HugeArrayT holds raw, kernel-zeroed storage");

 public:
  HugeArrayT() = default;
  explicit HugeArrayT(std::size_t count)
      : buffer_(count * sizeof(T)), count_(count) {}

  T* data() noexcept { return static_cast<T*>(buffer_.data()); }
  const T* data() const noexcept {
    return static_cast<const T*>(buffer_.data());
  }
  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  bool uses_thp() const noexcept { return buffer_.uses_thp(); }

  /// Replaces the storage with a fresh zeroed allocation of `count`
  /// elements (does NOT preserve contents — mirrors only ever grow from
  /// empty to their final size and are then overwritten in full).
  void resize(std::size_t count) {
    buffer_ = HugeBuffer(count * sizeof(T));
    count_ = count;
  }

  T& operator[](std::size_t i) noexcept {
    SLIDE_ASSERT(i < count_);
    return data()[i];
  }
  T operator[](std::size_t i) const noexcept {
    SLIDE_ASSERT(i < count_);
    return data()[i];
  }

 private:
  HugeBuffer buffer_;
  std::size_t count_ = 0;
};

/// The fp32 master-weight storage type (the original, pre-template name).
using HugeArray = HugeArrayT<float>;

}  // namespace slide
