// Transparent-Huge-Page-backed allocation.
//
// SLIDE is a memory-bound workload with a large footprint (paper appendix D):
// the dominant cost on wide layers is TLB misses and page-table walks while
// streaming weight rows. The paper pre-allocates 2MB/1GB hugepages and
// reports a ~1.3x end-to-end speedup (Figure 10) and large TLB/page-fault
// reductions (Table 4).
//
// This module provides an mmap-based buffer that requests Transparent Huge
// Pages via madvise(MADV_HUGEPAGE) — the in-container equivalent of the
// paper's libhugetlbfs setup — and falls back to ordinary pages when THP is
// unavailable. A process-wide toggle lets benchmarks A/B the two modes
// (bench/fig10_optimizations, bench/table4_hugepages).
#pragma once

#include <cstddef>
#include <memory>

#include "sys/common.h"

namespace slide {

/// Process-wide preference: when enabled, HugeBuffer requests THP backing.
/// Defaults to enabled; bench harnesses flip it to A/B the two modes.
void set_hugepages_enabled(bool enabled) noexcept;
bool hugepages_enabled() noexcept;

/// True if this buffer implementation can use madvise(MADV_HUGEPAGE) on the
/// current platform (Linux with mmap available).
bool hugepages_supported() noexcept;

/// A raw byte buffer, page-aligned, optionally THP-advised. Movable,
/// non-copyable; frees its mapping on destruction.
class HugeBuffer {
 public:
  HugeBuffer() = default;
  /// Allocates `bytes` rounded up to a 2MB boundary (so THP can back the
  /// whole range). Zero-initialized by the kernel.
  explicit HugeBuffer(std::size_t bytes);
  ~HugeBuffer();

  HugeBuffer(HugeBuffer&& other) noexcept;
  HugeBuffer& operator=(HugeBuffer&& other) noexcept;
  HugeBuffer(const HugeBuffer&) = delete;
  HugeBuffer& operator=(const HugeBuffer&) = delete;

  void* data() noexcept { return data_; }
  const void* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return bytes_; }
  bool uses_thp() const noexcept { return thp_; }

 private:
  void* data_ = nullptr;
  std::size_t bytes_ = 0;
  bool thp_ = false;
};

/// A fixed-size float array in (optionally) hugepage-backed storage. This is
/// the storage type for layer weight matrices and optimizer state.
class HugeArray {
 public:
  HugeArray() = default;
  explicit HugeArray(std::size_t count)
      : buffer_(count * sizeof(float)), count_(count) {}

  float* data() noexcept { return static_cast<float*>(buffer_.data()); }
  const float* data() const noexcept {
    return static_cast<const float*>(buffer_.data());
  }
  std::size_t size() const noexcept { return count_; }
  bool uses_thp() const noexcept { return buffer_.uses_thp(); }

  float& operator[](std::size_t i) noexcept {
    SLIDE_ASSERT(i < count_);
    return data()[i];
  }
  float operator[](std::size_t i) const noexcept {
    SLIDE_ASSERT(i < count_);
    return data()[i];
  }

 private:
  HugeBuffer buffer_;
  std::size_t count_ = 0;
};

}  // namespace slide
