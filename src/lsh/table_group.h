// The (K, L) LSH structure of one layer: a hash family plus L hash tables
// (paper §2, Figure 1). Supports parallel (re)builds over neuron weight
// rows and per-query bucket retrieval for the sampling strategies.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "lsh/hash_function.h"
#include "lsh/hash_table.h"
#include "sys/thread_pool.h"

namespace slide {

class LshTableGroup {
 public:
  /// Takes ownership of the hash family. The group creates family->l()
  /// tables with the given per-table configuration.
  LshTableGroup(std::unique_ptr<HashFamily> family,
                const HashTable::Config& table_config,
                std::uint64_t seed = 23);

  int k() const noexcept { return family_->k(); }
  int l() const noexcept { return family_->l(); }
  const HashFamily& family() const noexcept { return *family_; }

  /// Computes the L fingerprint keys of a dense query of family().dim().
  void query_keys_dense(const float* x, std::span<std::uint32_t> keys) const {
    family_->hash_dense(x, keys);
  }
  void query_keys_sparse(const Index* idx, const float* val, std::size_t nnz,
                         std::span<std::uint32_t> keys) const {
    family_->hash_sparse(idx, val, nnz, keys);
  }

  /// Inserts id into table t's bucket for keys[t], for all t. Safe to call
  /// concurrently from many threads (each with its own Rng).
  void insert(Index id, std::span<const std::uint32_t> keys, Rng& rng);

  /// Hash-and-insert for a dense vector (e.g. a neuron weight row).
  void insert_dense(Index id, const float* row, Rng& rng);

  /// Fills out[t] with the bucket of table t for keys[t].
  void buckets(std::span<const std::uint32_t> keys,
               std::vector<std::span<const Index>>& out) const;

  /// Clears all tables and re-inserts ids [0, count) with vector i at
  /// rows + i*row_stride, parallelized over ids when a pool is given.
  /// This is the layer (re)build of paper §3.1 / §4.2.
  void build_from_rows(const float* rows, std::size_t row_stride, Index count,
                       ThreadPool* pool = nullptr);

  void clear();

  std::size_t memory_bytes() const;
  const HashTable& table(int t) const { return tables_[static_cast<std::size_t>(t)]; }

 private:
  std::unique_ptr<HashFamily> family_;
  std::vector<HashTable> tables_;
  std::uint64_t seed_;
};

}  // namespace slide
