// The (K, L) LSH structure of one layer: a hash family plus L hash tables
// (paper §2, Figure 1). Supports parallel (re)builds over neuron weight
// rows and per-query bucket retrieval for the sampling strategies.
//
// Two classes live here:
//   LshTableGroup   — one set of L tables over one (possibly shared) hash
//                     family; the unit of building and querying.
//   MaintainedTables — the double-buffered active/shadow pair behind
//                     asynchronous maintenance (core/layer.h,
//                     MaintenancePolicy): readers pin the active group and
//                     sample from it lock-free while a maintenance thread
//                     re-hashes weights into the shadow group and publishes
//                     it with an atomic index swap.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "lsh/hash_function.h"
#include "lsh/hash_table.h"
#include "sys/thread_pool.h"

namespace slide {

class LshTableGroup {
 public:
  /// Takes ownership of the hash family. The group creates family->l()
  /// tables with the given per-table configuration.
  LshTableGroup(std::unique_ptr<HashFamily> family,
                const HashTable::Config& table_config,
                std::uint64_t seed = 23);

  /// Shares an externally owned family — the double-buffer constructor:
  /// active and shadow groups must hash identically, so they reference one
  /// family instead of owning two independently seeded ones.
  LshTableGroup(std::shared_ptr<const HashFamily> family,
                const HashTable::Config& table_config,
                std::uint64_t seed = 23);

  int k() const noexcept { return family_->k(); }
  int l() const noexcept { return family_->l(); }
  const HashFamily& family() const noexcept { return *family_; }

  /// Computes the L fingerprint keys of a dense query of family().dim().
  void query_keys_dense(const float* x, std::span<std::uint32_t> keys) const {
    family_->hash_dense(x, keys);
  }
  void query_keys_sparse(const Index* idx, const float* val, std::size_t nnz,
                         std::span<std::uint32_t> keys) const {
    family_->hash_sparse(idx, val, nnz, keys);
  }

  /// Inserts id into table t's bucket for keys[t], for all t. Safe to call
  /// concurrently from many threads (each with its own Rng).
  void insert(Index id, std::span<const std::uint32_t> keys, Rng& rng);

  /// Hash-and-insert for a dense vector (e.g. a neuron weight row).
  void insert_dense(Index id, const float* row, Rng& rng);

  /// Fills out[t] with the bucket of table t for keys[t].
  void buckets(std::span<const std::uint32_t> keys,
               std::vector<std::span<const Index>>& out) const;

  /// Clears all tables and re-inserts ids [0, count) with vector i at
  /// rows + i*row_stride, parallelized over ids when a pool is given.
  /// This is the layer (re)build of paper §3.1 / §4.2.
  void build_from_rows(const float* rows, std::size_t row_stride, Index count,
                       ThreadPool* pool = nullptr);

  void clear();

  std::size_t memory_bytes() const;
  const HashTable& table(int t) const { return tables_[static_cast<std::size_t>(t)]; }

 private:
  std::shared_ptr<const HashFamily> family_;
  std::vector<HashTable> tables_;
  std::uint64_t seed_;
};

// ---------------------------------------------------------------------------

/// Double-buffered table groups with lock-free reader pinning.
///
/// Readers (trainer threads selecting active neurons, inference forwards)
/// call pin(): it resolves the current active group and holds a per-buffer
/// reader count so the group cannot be rebuilt under them. The maintenance
/// side (exactly ONE caller at a time — either the trainer thread for
/// synchronous policies or the layer's BackgroundWorker for async ones)
/// rebuilds into shadow_group() and makes it visible with publish_shadow(),
/// an atomic index swap. In-flight readers finish on the retired group —
/// shadow_group() waits for their count to drain before reusing the buffer
/// (the RCU grace period), so a reader can never observe a half-built or
/// half-swapped group.
///
/// The shadow buffer is allocated lazily on first use: synchronous-only
/// layers keep the original single-group memory footprint.
///
/// Delta maintenance inserts into active_group() *while readers sample
/// from it*. Bucket counters are atomic; slot writes are intentionally
/// unsynchronized (see lsh/hash_table.h) — a concurrently observed slot
/// holds either the old or the new neuron id, both valid samples.
class MaintainedTables {
 public:
  MaintainedTables(std::unique_ptr<HashFamily> family,
                   const HashTable::Config& table_config,
                   std::uint64_t seed = 23);

  int k() const noexcept { return family_->k(); }
  int l() const noexcept { return family_->l(); }
  const HashFamily& family() const noexcept { return *family_; }

  /// Key computation only touches the (immutable, shared) family — no pin
  /// needed, valid across swaps.
  void query_keys_dense(const float* x, std::span<std::uint32_t> keys) const {
    family_->hash_dense(x, keys);
  }
  void query_keys_sparse(const Index* idx, const float* val, std::size_t nnz,
                         std::span<std::uint32_t> keys) const {
    family_->hash_sparse(idx, val, nnz, keys);
  }

  /// RAII reader pin: the referenced group stays valid (never rebuilt in
  /// place) for the pin's lifetime. Bucket spans obtained through the pin
  /// must not outlive it.
  class Pin {
   public:
    const LshTableGroup& group() const noexcept { return *group_; }
    const LshTableGroup* operator->() const noexcept { return group_; }
    ~Pin() {
      if (owner_ != nullptr)
        owner_->readers_[idx_].count.fetch_sub(1, std::memory_order_seq_cst);
    }
    Pin(Pin&& other) noexcept
        : owner_(other.owner_), idx_(other.idx_), group_(other.group_) {
      other.owner_ = nullptr;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    Pin& operator=(Pin&&) = delete;

   private:
    friend class MaintainedTables;
    Pin(const MaintainedTables* owner, int idx) noexcept
        : owner_(owner),
          idx_(idx),
          group_(owner->groups_[static_cast<std::size_t>(idx)].get()) {}

    const MaintainedTables* owner_;
    int idx_;
    const LshTableGroup* group_;
  };

  /// Pins the active group for reading. Lock-free (one atomic increment /
  /// decrement pair per query — noise next to the K*L hash computations).
  Pin pin() const;

  /// Convenience for diagnostics and single-threaded callers (benches,
  /// tests). The returned spans are NOT protected by a pin once this call
  /// returns — concurrent-maintenance callers must hold their own pin()
  /// and read through it instead.
  void buckets(std::span<const std::uint32_t> keys,
               std::vector<std::span<const Index>>& out) const {
    active().buckets(keys, out);
  }

  // ---- Maintenance side (single caller at a time; see class comment) ----

  /// The active group, mutable: in-place rebuilds for the synchronous
  /// policy (caller guarantees no concurrent readers) and delta re-inserts
  /// for async_delta (concurrent readers allowed, see class comment).
  LshTableGroup& active_group() noexcept {
    return *groups_[static_cast<std::size_t>(
        active_idx_.load(std::memory_order_seq_cst))];
  }

  /// The shadow group, cleared and ready to build into. Allocates it on
  /// first use; waits for readers still pinning the retired buffer.
  LshTableGroup& shadow_group();

  /// Atomically makes the shadow group the active one. The previously
  /// active group becomes the next shadow; in-flight readers finish on it.
  void publish_shadow();

  /// Successful publish_shadow() calls (diagnostics).
  std::uint64_t publish_count() const noexcept {
    return publish_count_.load(std::memory_order_relaxed);
  }

  // ---- Diagnostics (unpinned: only meaningful without concurrent
  //      maintenance, e.g. in benches and tests) ----
  const LshTableGroup& active() const noexcept {
    return *groups_[static_cast<std::size_t>(
        active_idx_.load(std::memory_order_seq_cst))];
  }
  const HashTable& table(int t) const { return active().table(t); }
  std::size_t memory_bytes() const;

 private:
  struct alignas(kCacheLineSize) PaddedCount {
    mutable std::atomic<std::uint32_t> count{0};
  };

  std::shared_ptr<const HashFamily> family_;
  HashTable::Config table_config_;
  std::uint64_t seed_;
  std::unique_ptr<LshTableGroup> groups_[2];  // [shadow] lazily allocated
  std::atomic<int> active_idx_{0};
  PaddedCount readers_[2];
  std::atomic<std::uint64_t> publish_count_{0};
};

}  // namespace slide
