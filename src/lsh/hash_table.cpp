#include "lsh/hash_table.h"

#include <algorithm>

namespace slide {

HashTable::HashTable(const Config& config) : config_(config) {
  SLIDE_CHECK(config_.range_pow >= 1 && config_.range_pow <= 28,
              "HashTable: range_pow must be in [1, 28]");
  SLIDE_CHECK(config_.bucket_size >= 1,
              "HashTable: bucket_size must be >= 1");
  const std::size_t buckets = std::size_t{1} << config_.range_pow;
  shift_ = 32u - static_cast<unsigned>(config_.range_pow);
  ids_.resize(buckets * static_cast<std::size_t>(config_.bucket_size));
  counts_ = std::vector<std::atomic<std::uint32_t>>(buckets);
}

HashTable::HashTable(HashTable&& other) noexcept
    : config_(other.config_),
      shift_(other.shift_),
      ids_(std::move(other.ids_)) {
  counts_ = std::vector<std::atomic<std::uint32_t>>(other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i].store(other.counts_[i].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

void HashTable::insert(std::uint32_t key, Index id, Rng& rng) {
  const std::uint32_t b = bucket_of(key);
  const auto cap = static_cast<std::uint32_t>(config_.bucket_size);
  Index* slots = ids_.data() + static_cast<std::size_t>(b) * cap;
  // fetch_add gives each insert a unique sequence number within the bucket,
  // which is exactly what both policies need.
  const std::uint32_t n =
      counts_[b].fetch_add(1, std::memory_order_relaxed);
  if (n < cap) {
    slots[n] = id;
    return;
  }
  switch (config_.policy) {
    case InsertionPolicy::kReservoir: {
      // Vitter: the (n+1)-th item replaces a uniform slot with probability
      // cap/(n+1); every item ends up retained with equal probability.
      const std::uint32_t j = rng.uniform(n + 1);
      if (j < cap) slots[j] = id;
      break;
    }
    case InsertionPolicy::kFifo:
      slots[n % cap] = id;
      break;
  }
}

std::span<const Index> HashTable::bucket(std::uint32_t key) const {
  const std::uint32_t b = bucket_of(key);
  const auto cap = static_cast<std::uint32_t>(config_.bucket_size);
  const std::uint32_t n =
      std::min(counts_[b].load(std::memory_order_relaxed), cap);
  return {ids_.data() + static_cast<std::size_t>(b) * cap, n};
}

void HashTable::clear() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

std::size_t HashTable::total_stored() const {
  std::size_t total = 0;
  const auto cap = static_cast<std::uint32_t>(config_.bucket_size);
  for (const auto& c : counts_)
    total += std::min(c.load(std::memory_order_relaxed), cap);
  return total;
}

std::size_t HashTable::occupied_buckets() const {
  std::size_t occupied = 0;
  for (const auto& c : counts_)
    occupied += c.load(std::memory_order_relaxed) > 0 ? 1 : 0;
  return occupied;
}

}  // namespace slide
