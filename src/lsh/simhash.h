// Simhash: signed sparse random projections for cosine similarity
// (paper §3.2 and appendix A).
//
// Each of the K*L projections is a random vector with entries in
// {+1, 0, -1}; following the paper we keep 1/3 of the coordinates nonzero
// and store only their indices and signs, so one code costs dim/3 additions
// (no multiplications). The code is the sign bit of the projection; K sign
// bits are mixed into one fingerprint per table.
//
// The class additionally exposes the raw projection values and an inverted
// dim→projections index to support the paper's §4.2 optimization #3:
// memoize w·proj per neuron and, after a sparse gradient update that touches
// d' << d coordinates, recompute codes with O(d') additions instead of O(d).
#pragma once

#include <cstdint>
#include <vector>

#include "lsh/hash_function.h"
#include "sys/rng.h"

namespace slide {

class Simhash final : public HashFamily {
 public:
  struct Config {
    int k = 9;
    int l = 50;
    Index dim = 0;
    /// Fraction of nonzero coordinates per projection (paper uses 1/3).
    double density = 1.0 / 3.0;
    std::uint64_t seed = 11;
  };

  explicit Simhash(const Config& config);

  int k() const noexcept override { return k_; }
  int l() const noexcept override { return l_; }
  Index dim() const noexcept override { return dim_; }
  std::string name() const override { return "simhash"; }

  void hash_dense(const float* x,
                  std::span<std::uint32_t> keys) const override;
  void hash_sparse(const Index* idx, const float* val, std::size_t nnz,
                   std::span<std::uint32_t> keys) const override;

  // --- Incremental-rehash support (paper §4.2, optimization 3) -----------

  int num_projections() const noexcept { return k_ * l_; }

  /// Fills dots[p] = <x, projection_p> for all K*L projections.
  void project_dense(const float* x, float* dots) const;

  /// Converts memoized projection values into the L fingerprint keys.
  void keys_from_projections(const float* dots,
                             std::span<std::uint32_t> keys) const;

  /// Applies a delta update: dots += delta * column(dim) — i.e. the change
  /// in every projection value when coordinate `dim` of x changes by
  /// `delta`. O(#projections containing dim) = O(K*L*density) expected.
  void update_projections(Index dim, float delta, float* dots) const;

  /// Entries of projection p: parallel spans of coordinate indices/signs.
  std::span<const Index> projection_indices(int p) const;
  std::span<const float> projection_signs(int p) const;

 private:
  int k_;
  int l_;
  Index dim_;

  // CSR-like storage of the K*L sparse sign projections.
  std::vector<std::size_t> proj_offsets_;  // size k*l + 1
  std::vector<Index> proj_indices_;
  std::vector<float> proj_signs_;  // +1 / -1

  // Inverted index: for each coordinate, which projections contain it and
  // with what sign. Used by update_projections.
  std::vector<std::size_t> inv_offsets_;  // size dim + 1
  std::vector<std::uint32_t> inv_proj_;
  std::vector<float> inv_sign_;
};

}  // namespace slide
