// Closed-form LSH collision and selection probabilities (paper §2, §4.1,
// eqs. 2-3 and appendix B). Used by bench/fig11_threshold_theory and as the
// oracle in the sampler property tests.
#pragma once

namespace slide {

/// Simhash collision probability for two vectors with the given cosine
/// similarity: p = 1 - acos(cos_sim)/pi (paper appendix B).
double simhash_collision_probability(double cosine_similarity);

/// Probability that a table's meta-hash matches, given per-function
/// collision probability p and K concatenated functions: p^K.
double meta_hash_probability(double p, int k);

/// LSH-as-sampler retrieval probability over L tables (paper §2.1):
/// 1 - (1 - p^K)^L.
double any_bucket_probability(double p, int k, int l);

/// Vanilla-sampling selection probability after probing tau of L tables
/// (paper eq. 2): (p^K)^tau * (1 - p^K)^(L - tau).
double vanilla_selection_probability(double p, int k, int l, int tau);

/// Hard-thresholding selection probability (paper eq. 3): probability that
/// a neuron appears in at least m of the L buckets,
/// sum_{i=m..L} C(L,i) (p^K)^i (1-p^K)^(L-i).
double hard_threshold_selection_probability(double p, int k, int l, int m);

/// Binomial tail Pr[X >= m] for X ~ Binomial(n, q), computed in log space
/// for numerical stability.
double binomial_tail(int n, double q, int m);

}  // namespace slide
