#include "lsh/dwta.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace slide {

DwtaHash::DwtaHash(const Config& config)
    : k_(config.k),
      l_(config.l),
      dim_(config.dim),
      bin_size_(config.bin_size),
      max_densify_attempts_(config.max_densify_attempts),
      probe_seed_(config.seed * 0x2545F4914F6CDD1Dull + 1) {
  SLIDE_CHECK(k_ >= 1 && l_ >= 1, "DwtaHash: K and L must be >= 1");
  SLIDE_CHECK(bin_size_ >= 2, "DwtaHash: bin_size must be >= 2");
  SLIDE_CHECK(dim_ >= static_cast<Index>(bin_size_),
              "DwtaHash: dim must be >= bin_size");

  bins_per_perm_ = static_cast<int>(dim_) / bin_size_;
  const int total_codes = k_ * l_;
  num_perms_ = (total_codes + bins_per_perm_ - 1) / bins_per_perm_;

  Rng rng(config.seed);
  std::vector<Index> perm(dim_);
  pos_.resize(static_cast<std::size_t>(num_perms_) * dim_);
  for (int p = 0; p < num_perms_; ++p) {
    std::iota(perm.begin(), perm.end(), Index{0});
    std::shuffle(perm.begin(), perm.end(), rng);
    Index* pos = pos_.data() + static_cast<std::size_t>(p) * dim_;
    for (Index q = 0; q < dim_; ++q) pos[perm[q]] = q;
  }
}

int DwtaHash::codes_sparse(const Index* idx, const float* val,
                           std::size_t nnz, std::uint32_t* codes) const {
  const int total_codes = k_ * l_;
  thread_local std::vector<float> best;
  thread_local std::vector<std::uint8_t> filled;
  best.assign(static_cast<std::size_t>(total_codes),
              -std::numeric_limits<float>::infinity());
  filled.assign(static_cast<std::size_t>(total_codes), 0);
  std::fill_n(codes, total_codes, 0u);

  const int in_range_positions = bins_per_perm_ * bin_size_;
  for (std::size_t i = 0; i < nnz; ++i) {
    const Index d = idx[i];
    SLIDE_ASSERT(d < dim_);
    const float v = val[i];
    for (int p = 0; p < num_perms_; ++p) {
      const Index q = pos_[static_cast<std::size_t>(p) * dim_ + d];
      if (q >= static_cast<Index>(in_range_positions)) continue;
      const int c = p * bins_per_perm_ + static_cast<int>(q) / bin_size_;
      if (c >= total_codes) continue;
      if (!filled[static_cast<std::size_t>(c)] ||
          v > best[static_cast<std::size_t>(c)]) {
        best[static_cast<std::size_t>(c)] = v;
        filled[static_cast<std::size_t>(c)] = 1;
        codes[c] = static_cast<std::uint32_t>(q) % bin_size_;
      }
    }
  }

  int empty = 0;
  for (int c = 0; c < total_codes; ++c)
    if (!filled[static_cast<std::size_t>(c)]) ++empty;
  // densify() reads the pre-densification fill state, so repaired bins never
  // act as donors and the result does not depend on repair order.
  if (empty > 0) densify(codes, filled.data());
  return empty;
}

void DwtaHash::densify(std::uint32_t* codes,
                       const std::uint8_t* filled) const {
  const int total_codes = k_ * l_;
  for (int c = 0; c < total_codes; ++c) {
    if (filled[c]) continue;
    std::uint32_t code = 0;
    for (int attempt = 1; attempt <= max_densify_attempts_; ++attempt) {
      // Universal probe hash over (bin, attempt).
      std::uint64_t h = probe_seed_;
      h ^= static_cast<std::uint64_t>(c) * 0x9E3779B97F4A7C15ull;
      h ^= static_cast<std::uint64_t>(attempt) * 0xBF58476D1CE4E5B9ull;
      h ^= h >> 31;
      h *= 0x94D049BB133111EBull;
      h ^= h >> 29;
      const int donor = static_cast<int>(h % static_cast<std::uint64_t>(total_codes));
      if (filled[donor]) {
        code = codes[donor];
        break;
      }
    }
    codes[c] = code;
  }
}

void DwtaHash::keys_from_codes(const std::uint32_t* codes,
                               std::span<std::uint32_t> keys) const {
  SLIDE_ASSERT(static_cast<int>(keys.size()) == l_);
  int c = 0;
  for (int t = 0; t < l_; ++t) {
    detail::FingerprintMixer mixer;
    for (int j = 0; j < k_; ++j, ++c) mixer.add(codes[c]);
    keys[t] = mixer.value();
  }
}

void DwtaHash::hash_sparse(const Index* idx, const float* val,
                           std::size_t nnz,
                           std::span<std::uint32_t> keys) const {
  thread_local std::vector<std::uint32_t> codes;
  codes.resize(static_cast<std::size_t>(k_) * l_);
  codes_sparse(idx, val, nnz, codes.data());
  keys_from_codes(codes.data(), keys);
}

void DwtaHash::hash_dense(const float* x, std::span<std::uint32_t> keys) const {
  // A dense vector is the nnz == dim special case; reuse the sparse path
  // with an identity index map.
  thread_local std::vector<Index> identity;
  if (identity.size() != dim_) {
    identity.resize(dim_);
    std::iota(identity.begin(), identity.end(), Index{0});
  }
  hash_sparse(identity.data(), x, dim_, keys);
}

}  // namespace slide
