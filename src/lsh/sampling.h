// The three active-neuron sampling strategies of paper §4.1 / appendix B.
//
// Given the L buckets retrieved for a query, a strategy selects the set of
// active neurons:
//   * Vanilla      — walk tables in random order, union buckets until the
//                    target count β is reached or all tables are used. O(β).
//   * TopK         — aggregate id frequencies across all L buckets, keep the
//                    β most frequent. O(|candidates| log |candidates|).
//   * HardThreshold— keep ids appearing at least m times; no sort.
//
// Selection probabilities (paper eqs. 2-3) are in lsh/collision.h; their
// empirical counterparts are exercised in the property tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sys/common.h"
#include "sys/rng.h"

namespace slide {

enum class SamplingStrategy { kVanilla, kTopK, kHardThreshold };

const char* to_string(SamplingStrategy strategy);

struct SamplingConfig {
  SamplingStrategy strategy = SamplingStrategy::kVanilla;
  /// Target number of active neurons β (Vanilla / TopK). TopK returns at
  /// most this many; Vanilla stops adding once reached.
  Index target = 1024;
  /// Minimum bucket-frequency m for HardThreshold.
  int hard_threshold_m = 2;
  /// Optional cap on INFERENCE candidates (training sampling untouched).
  /// On a sharded/distributed layer this is a GLOBAL budget, split across
  /// shards proportionally to their width — the fix for per-shard candidate
  /// oversampling, where S shards each sampling the full target produce
  /// S x target candidates per query. 0 (default) disables the cap, which
  /// preserves the historical behavior and the S = 1 bit-identity anchor.
  Index inference_budget = 0;
  /// Adaptive recall floor for INFERENCE: when the retriever returns fewer
  /// than this many candidates the layer escalates the query to an exact
  /// scan (scores every unit) instead of padding with random ids, and
  /// records the escalation + the candidate set's recall against the exact
  /// top-k in Layer::retrieval_stats() (surfaced in ServeStats). 0
  /// (default) disables the policy — bit-identical to the historical path.
  Index escalation_floor = 0;
};

/// Epoch-stamped visited-set + frequency counters over a fixed id universe.
/// O(1) insert/lookup with no clearing cost between epochs; one instance per
/// thread makes the sampling hot path allocation-free. Also used by the
/// layer code to deduplicate forced labels and random fill-ins.
class VisitedSet {
 public:
  explicit VisitedSet(Index max_ids);

  Index capacity() const noexcept { return static_cast<Index>(stamp_.size()); }

  /// Starts a new epoch; all ids become "unseen".
  void begin_epoch();

  /// Marks id seen; returns true the first time in this epoch.
  bool insert(Index id) {
    SLIDE_ASSERT(id < capacity());
    if (stamp_[id] == epoch_) return false;
    stamp_[id] = epoch_;
    freq_[id] = 0;
    return true;
  }

  bool contains(Index id) const {
    SLIDE_ASSERT(id < capacity());
    return stamp_[id] == epoch_;
  }

  /// Increments and returns the occurrence count of a seen id.
  std::uint16_t bump(Index id) {
    SLIDE_ASSERT(contains(id));
    return ++freq_[id];
  }

  std::uint16_t count(Index id) const {
    return contains(id) ? freq_[id] : 0;
  }

 private:
  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint16_t> freq_;
  std::uint32_t epoch_ = 0;
};

/// Runs the configured strategy over the retrieved buckets. `out` receives
/// the unique selected neuron ids (unordered; TopK output is ordered by
/// descending frequency). The RNG drives Vanilla's random table order only.
///
/// With fresh_epoch (default) the visited set is epoch-reset first. Passing
/// false lets the caller pre-stamp ids to exclude — SLIDE uses this to keep
/// forced true-label neurons out of the sampled list (they are already in
/// the active set).
void sample_neurons(const SamplingConfig& config,
                    std::span<const std::span<const Index>> buckets,
                    VisitedSet& visited, Rng& rng, std::vector<Index>& out,
                    bool fresh_epoch = true);

}  // namespace slide
