// Winner-Takes-All hashing (Yagnik et al. 2011) with the paper's memory
// optimization (appendix A): instead of K*L full permutations, generate
// ceil(K*L / (d/m)) permutations and split each into d/m bins of size m;
// every bin yields one code — the within-bin offset of the maximum element.
// Total permutation storage is O(K*L*m) instead of O(K*L*d).
//
// WTA preserves rank ("comparative reasoning") similarity. For very sparse
// inputs its codes are dominated by ties among zeros — the failure mode that
// motivates DWTA (see dwta.h).
#pragma once

#include <cstdint>
#include <vector>

#include "lsh/hash_function.h"
#include "sys/rng.h"

namespace slide {

class WtaHash final : public HashFamily {
 public:
  struct Config {
    int k = 6;
    int l = 50;
    Index dim = 0;
    /// Bin size m (paper's adjustable hyper-parameter, m << d).
    int bin_size = 8;
    std::uint64_t seed = 13;
  };

  explicit WtaHash(const Config& config);

  int k() const noexcept override { return k_; }
  int l() const noexcept override { return l_; }
  Index dim() const noexcept override { return dim_; }
  std::string name() const override { return "wta"; }

  void hash_dense(const float* x,
                  std::span<std::uint32_t> keys) const override;
  /// Densifies into thread-local scratch: classic WTA is not meaningful
  /// natively on sparse inputs (that is DWTA's job).
  void hash_sparse(const Index* idx, const float* val, std::size_t nnz,
                   std::span<std::uint32_t> keys) const override;

  int bin_size() const noexcept { return bin_size_; }
  int num_permutations() const noexcept { return num_perms_; }

  /// Raw codes (one per K*L bins), exposed for tests.
  void codes_dense(const float* x, std::uint32_t* codes) const;

 private:
  void keys_from_codes(const std::uint32_t* codes,
                       std::span<std::uint32_t> keys) const;

  int k_;
  int l_;
  Index dim_;
  int bin_size_;
  int bins_per_perm_;
  int num_perms_;
  // perm_[p * dim_ + q] = the coordinate at position q of permutation p.
  std::vector<Index> perm_;

  friend class DwtaHash;
};

}  // namespace slide
