#include "lsh/collision.h"

#include <algorithm>
#include <cmath>

#include "sys/common.h"

namespace slide {

double simhash_collision_probability(double cosine_similarity) {
  const double s = std::clamp(cosine_similarity, -1.0, 1.0);
  return 1.0 - std::acos(s) / 3.14159265358979323846;
}

double meta_hash_probability(double p, int k) {
  SLIDE_CHECK(p >= 0.0 && p <= 1.0, "collision probability out of [0,1]");
  SLIDE_CHECK(k >= 1, "K must be >= 1");
  return std::pow(p, k);
}

double any_bucket_probability(double p, int k, int l) {
  SLIDE_CHECK(l >= 1, "L must be >= 1");
  const double q = meta_hash_probability(p, k);
  return 1.0 - std::pow(1.0 - q, l);
}

double vanilla_selection_probability(double p, int k, int l, int tau) {
  SLIDE_CHECK(tau >= 0 && tau <= l, "tau must be in [0, L]");
  const double q = meta_hash_probability(p, k);
  return std::pow(q, tau) * std::pow(1.0 - q, l - tau);
}

double binomial_tail(int n, double q, int m) {
  SLIDE_CHECK(n >= 0 && m >= 0, "binomial_tail: negative arguments");
  if (m <= 0) return 1.0;
  if (m > n) return 0.0;
  if (q <= 0.0) return 0.0;
  if (q >= 1.0) return 1.0;
  // Sum in log space: log C(n,i) + i log q + (n-i) log(1-q).
  const double log_q = std::log(q);
  const double log_1mq = std::log1p(-q);
  double tail = 0.0;
  for (int i = m; i <= n; ++i) {
    const double log_choose = std::lgamma(n + 1.0) - std::lgamma(i + 1.0) -
                              std::lgamma(n - i + 1.0);
    tail += std::exp(log_choose + i * log_q + (n - i) * log_1mq);
  }
  return std::min(tail, 1.0);
}

double hard_threshold_selection_probability(double p, int k, int l, int m) {
  return binomial_tail(l, meta_hash_probability(p, k), m);
}

}  // namespace slide
