// Interface for LSH families.
//
// SLIDE parameterizes each layer's sampling with (K, L): L hash tables, each
// addressed by a meta-hash of K concatenated codes from one LSH family
// (paper §2, §3.2). A family implementation computes, for an input vector,
// one 32-bit *fingerprint key per table* — the mixed combination of that
// table's K codes. The table group then maps fingerprints onto bucket
// indices. Custom families can be added by implementing this interface
// (paper: "SLIDE also provides the interface to add customized hash
// functions based on need").
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "data/sparse_vector.h"
#include "sys/common.h"

namespace slide {

class HashFamily {
 public:
  virtual ~HashFamily() = default;

  /// Codes concatenated per table (meta-hash width).
  virtual int k() const noexcept = 0;
  /// Number of tables.
  virtual int l() const noexcept = 0;
  /// Dimension of the vectors this family hashes.
  virtual Index dim() const noexcept = 0;
  /// Family name for logging ("simhash", "wta", "dwta", "doph").
  virtual std::string name() const = 0;

  /// Computes the L fingerprint keys for a dense vector of length dim().
  /// keys.size() must equal l().
  virtual void hash_dense(const float* x,
                          std::span<std::uint32_t> keys) const = 0;

  /// Computes the L fingerprint keys for a sparse vector (indices must be
  /// < dim()). Families that are not natively sparse may densify into
  /// thread-local scratch.
  virtual void hash_sparse(const Index* idx, const float* val,
                           std::size_t nnz,
                           std::span<std::uint32_t> keys) const = 0;

  void hash_sparse(const SparseVector& v, std::span<std::uint32_t> keys) const {
    hash_sparse(v.index_data(), v.value_data(), v.nnz(), keys);
  }
};

namespace detail {

/// Mixes K per-table codes into one 32-bit fingerprint (FNV-1a over the
/// code stream). All families use this so bucket aliasing behaves
/// identically across them.
class FingerprintMixer {
 public:
  FingerprintMixer() = default;
  void add(std::uint32_t code) noexcept {
    fp_ = (fp_ ^ code) * 0x01000193u;
    fp_ ^= fp_ >> 15;
  }
  std::uint32_t value() const noexcept { return fp_; }

 private:
  std::uint32_t fp_ = 0x811C9DC5u;
};

}  // namespace detail

}  // namespace slide
