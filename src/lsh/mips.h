// Asymmetric LSH transform for Maximum Inner Product Search (paper §2.1.1,
// following Shrivastava & Li 2014/2015, "Sign-ALSH").
//
// Simhash collides by *cosine*, but neuron selection wants large *inner
// products* w·x (activation magnitude). The asymmetric trick turns MIPS
// into cosine search: scale every data vector so its norm is at most U < 1,
// then append m augmentation terms
//     P(x) = [ Sx;  1/2 - ||Sx||^2;  1/2 - ||Sx||^4; ... ]
//     Q(q) = [ q/||q||;  0;  0; ... ]
// so that cos(Q(q), P(x)) is monotonically increasing in q·x (the norm
// information moves into the augmented coordinates and the query side
// ignores it). A Simhash family over the augmented space then samples
// neurons with probability increasing in the activation — the MIPS sampling
// view the paper builds on.
#pragma once

#include <cstddef>
#include <vector>

#include "sys/common.h"

namespace slide {

class MipsTransform {
 public:
  struct Config {
    Index dim = 0;
    /// Number of augmentation terms m (2-3 suffice in practice).
    int m = 3;
    /// Norm bound U after scaling (Shrivastava & Li recommend ~0.75-0.83).
    float u = 0.75f;
  };

  explicit MipsTransform(const Config& config);

  Index input_dim() const noexcept { return dim_; }
  Index augmented_dim() const noexcept {
    return dim_ + static_cast<Index>(m_);
  }

  /// Sets the data scale from the largest row norm of a collection
  /// ([rows, rows + count*row_stride), row i at rows + i*row_stride).
  void fit(const float* rows, std::size_t row_stride, Index count);

  /// Sets the scale directly (max data norm M; vectors are multiplied by
  /// u/M so every scaled norm is <= u).
  void set_max_norm(float max_norm);
  float max_norm() const noexcept { return max_norm_; }

  /// Data-side transform P(x) into out[0 .. augmented_dim).
  void transform_data(const float* x, float* out) const;

  /// Query-side transform Q(q) into out[0 .. augmented_dim): normalized
  /// query, zero-padded augmentation.
  void transform_query(const float* q, float* out) const;

 private:
  Index dim_;
  int m_;
  float u_;
  float max_norm_ = 1.0f;
};

}  // namespace slide
