// Config-driven construction of the four built-in hash families
// (paper §3.2: Simhash, WTA, DWTA, DOPH). Header-only.
#pragma once

#include <memory>

#include "lsh/doph.h"
#include "lsh/dwta.h"
#include "lsh/simhash.h"
#include "lsh/wta.h"

namespace slide {

enum class HashFamilyKind { kSimhash, kWta, kDwta, kDoph };

inline const char* to_string(HashFamilyKind kind) {
  switch (kind) {
    case HashFamilyKind::kSimhash:
      return "simhash";
    case HashFamilyKind::kWta:
      return "wta";
    case HashFamilyKind::kDwta:
      return "dwta";
    case HashFamilyKind::kDoph:
      return "doph";
  }
  return "?";
}

struct HashFamilyConfig {
  HashFamilyKind kind = HashFamilyKind::kSimhash;
  int k = 9;
  int l = 50;
  Index dim = 0;  // set by the layer to its fan-in
  /// Simhash: fraction of nonzero projection coordinates.
  double simhash_density = 1.0 / 3.0;
  /// WTA/DWTA bin size m.
  int bin_size = 8;
  /// DOPH top-k binarization threshold.
  int doph_top_k = 32;
  std::uint64_t seed = 11;
};

inline std::unique_ptr<HashFamily> make_hash_family(
    const HashFamilyConfig& cfg) {
  switch (cfg.kind) {
    case HashFamilyKind::kSimhash: {
      Simhash::Config c;
      c.k = cfg.k;
      c.l = cfg.l;
      c.dim = cfg.dim;
      c.density = cfg.simhash_density;
      c.seed = cfg.seed;
      return std::make_unique<Simhash>(c);
    }
    case HashFamilyKind::kWta: {
      WtaHash::Config c;
      c.k = cfg.k;
      c.l = cfg.l;
      c.dim = cfg.dim;
      c.bin_size = cfg.bin_size;
      c.seed = cfg.seed;
      return std::make_unique<WtaHash>(c);
    }
    case HashFamilyKind::kDwta: {
      DwtaHash::Config c;
      c.k = cfg.k;
      c.l = cfg.l;
      c.dim = cfg.dim;
      c.bin_size = cfg.bin_size;
      c.seed = cfg.seed;
      return std::make_unique<DwtaHash>(c);
    }
    case HashFamilyKind::kDoph: {
      DophHash::Config c;
      c.k = cfg.k;
      c.l = cfg.l;
      c.dim = cfg.dim;
      c.binarize_top_k = cfg.doph_top_k;
      c.seed = cfg.seed;
      return std::make_unique<DophHash>(c);
    }
  }
  throw Error("make_hash_family: unknown kind");
}

}  // namespace slide
