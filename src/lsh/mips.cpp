#include "lsh/mips.h"

#include <algorithm>
#include <cmath>

#include "simd/kernels.h"

namespace slide {

MipsTransform::MipsTransform(const Config& config)
    : dim_(config.dim), m_(config.m), u_(config.u) {
  SLIDE_CHECK(dim_ > 0, "MipsTransform: dim must be positive");
  SLIDE_CHECK(m_ >= 1 && m_ <= 16, "MipsTransform: m must be in [1, 16]");
  SLIDE_CHECK(u_ > 0.0f && u_ < 1.0f, "MipsTransform: U must be in (0, 1)");
}

void MipsTransform::fit(const float* rows, std::size_t row_stride,
                        Index count) {
  float max_sq = 0.0f;
  for (Index i = 0; i < count; ++i) {
    const float* row = rows + static_cast<std::size_t>(i) * row_stride;
    max_sq = std::max(max_sq, simd::dot(row, row, dim_));
  }
  set_max_norm(std::sqrt(max_sq));
}

void MipsTransform::set_max_norm(float max_norm) {
  SLIDE_CHECK(max_norm > 0.0f, "MipsTransform: max_norm must be positive");
  max_norm_ = max_norm;
}

void MipsTransform::transform_data(const float* x, float* out) const {
  const float scale = u_ / max_norm_;
  for (Index d = 0; d < dim_; ++d) out[d] = scale * x[d];
  // Augmentation: 1/2 - ||Sx||^(2^i). The squared norm is < u^2 < 1, so the
  // powers decay geometrically toward 1/2 - 0.
  float norm_pow = simd::dot(out, out, dim_);  // ||Sx||^2
  for (int i = 0; i < m_; ++i) {
    out[dim_ + static_cast<Index>(i)] = 0.5f - norm_pow;
    norm_pow *= norm_pow;  // ^2 -> ^4 -> ^8 ...
  }
}

void MipsTransform::transform_query(const float* q, float* out) const {
  const float norm = std::sqrt(simd::dot(q, q, dim_));
  const float inv = norm > 0.0f ? 1.0f / norm : 0.0f;
  for (Index d = 0; d < dim_; ++d) out[d] = inv * q[d];
  for (int i = 0; i < m_; ++i) out[dim_ + static_cast<Index>(i)] = 0.0f;
}

}  // namespace slide
