// A single LSH hash table with fixed-capacity buckets.
//
// Buckets store neuron ids only (paper §2: "We only store pointers ...
// storing whole data vectors is very memory inefficient"). Every bucket is
// limited to a fixed size, which caps memory and balances thread load
// during parallel aggregation (paper §3.2). When a bucket is full, one of
// two replacement policies applies (paper §4.2, Table 3):
//   * Reservoir — Vitter's reservoir sampling; keeps every inserted item
//     with equal probability, preserving the adaptive-sampling property.
//   * FIFO — ring overwrite of the oldest entry; cheaper bookkeeping.
//
// Inserts may run concurrently from many threads (rebuilds are parallel
// over neurons). The bucket counters are atomic; slot writes are
// intentionally unsynchronized in the HOGWILD spirit — a lost update
// replaces one sampled id with another equally-valid one.
//
// Delta maintenance (core/layer.h, MaintenancePolicy::kAsyncDelta) extends
// the same argument to insert-while-read: the background maintenance
// thread re-inserts dirty neurons into a table that trainer threads are
// concurrently sampling from. A reader racing a slot write observes either
// the old or the new id — both valid, naturally-aligned 4-byte neuron ids —
// and bucket() clamps the atomic counter, so no reader ever indexes past
// initialized slots. These races are intentional and suppressed under
// ThreadSanitizer (.tsan-suppressions).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "sys/common.h"
#include "sys/rng.h"

namespace slide {

enum class InsertionPolicy { kReservoir, kFifo };

class HashTable {
 public:
  struct Config {
    /// Number of buckets = 2^range_pow.
    int range_pow = 15;
    /// Fixed bucket capacity (the paper's reference implementation uses 128).
    int bucket_size = 128;
    InsertionPolicy policy = InsertionPolicy::kReservoir;
  };

  explicit HashTable(const Config& config);

  // Movable so std::vector<HashTable> can be built; not thread-safe to move
  // while in use.
  HashTable(HashTable&&) noexcept;
  HashTable& operator=(HashTable&&) = delete;
  HashTable(const HashTable&) = delete;

  /// Inserts id into the bucket addressed by the fingerprint key.
  void insert(std::uint32_t key, Index id, Rng& rng);

  /// Returns the ids currently stored in the bucket for `key`.
  std::span<const Index> bucket(std::uint32_t key) const;

  /// Removes all entries (O(num_buckets)).
  void clear();

  std::size_t num_buckets() const noexcept { return counts_.size(); }
  int bucket_size() const noexcept { return config_.bucket_size; }
  InsertionPolicy policy() const noexcept { return config_.policy; }

  /// Number of ids currently stored across all buckets.
  std::size_t total_stored() const;
  /// Number of non-empty buckets.
  std::size_t occupied_buckets() const;

  std::size_t memory_bytes() const noexcept {
    return ids_.size() * sizeof(Index) +
           counts_.size() * sizeof(std::atomic<std::uint32_t>);
  }

 private:
  std::uint32_t bucket_of(std::uint32_t key) const noexcept {
    // Fibonacci multiplicative mixing of the (already mixed) fingerprint;
    // top bits select the bucket.
    return (key * 2654435761u) >> shift_;
  }

  Config config_;
  unsigned shift_;
  std::vector<Index> ids_;  // num_buckets × bucket_size, row-major
  std::vector<std::atomic<std::uint32_t>> counts_;  // inserts seen per bucket
};

}  // namespace slide
