#include "lsh/sampling.h"

#include <algorithm>
#include <numeric>

namespace slide {

const char* to_string(SamplingStrategy strategy) {
  switch (strategy) {
    case SamplingStrategy::kVanilla:
      return "vanilla";
    case SamplingStrategy::kTopK:
      return "topk";
    case SamplingStrategy::kHardThreshold:
      return "hard-threshold";
  }
  return "?";
}

VisitedSet::VisitedSet(Index max_ids)
    : stamp_(max_ids, 0), freq_(max_ids, 0) {}

void VisitedSet::begin_epoch() {
  ++epoch_;
  if (epoch_ == 0) {  // wrapped after 2^32 epochs: reset stamps once
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    epoch_ = 1;
  }
}

namespace {

/// Vanilla sampling: random table order, stop at target (paper §4.1 —
/// O(β) time, the strategy used in the main experiments).
void vanilla(const SamplingConfig& cfg,
             std::span<const std::span<const Index>> buckets, VisitedSet& v,
             Rng& rng, std::vector<Index>& out) {
  const std::size_t num_tables = buckets.size();
  thread_local std::vector<std::uint32_t> order;
  order.resize(num_tables);
  std::iota(order.begin(), order.end(), 0u);

  for (std::size_t i = 0; i < num_tables; ++i) {
    // Incremental Fisher-Yates: draw the next random table lazily so early
    // exit does the minimum shuffling work.
    const std::size_t j =
        i + rng.uniform(static_cast<std::uint32_t>(num_tables - i));
    std::swap(order[i], order[j]);
    for (Index id : buckets[order[i]]) {
      if (!v.insert(id)) continue;
      out.push_back(id);
      if (out.size() >= cfg.target) return;
    }
  }
}

/// Shared frequency aggregation for TopK / HardThreshold: all buckets are
/// scanned, unique ids land in `candidates` with their occurrence counts.
void aggregate(std::span<const std::span<const Index>> buckets, VisitedSet& v,
               std::vector<Index>& candidates) {
  for (const auto& bucket : buckets) {
    for (Index id : bucket) {
      if (v.insert(id)) candidates.push_back(id);
      v.bump(id);
    }
  }
}

void topk(const SamplingConfig& cfg,
          std::span<const std::span<const Index>> buckets, VisitedSet& v,
          std::vector<Index>& out) {
  thread_local std::vector<Index> candidates;
  candidates.clear();
  aggregate(buckets, v, candidates);
  if (candidates.size() > cfg.target) {
    std::nth_element(candidates.begin(),
                     candidates.begin() + static_cast<std::ptrdiff_t>(cfg.target),
                     candidates.end(), [&](Index a, Index b) {
                       return v.count(a) > v.count(b);
                     });
    candidates.resize(cfg.target);
  }
  // The paper's TopK sorts survivors by frequency — that sort is what makes
  // it O(n log n) in Figure 4, so keep it for behavioural parity.
  std::sort(candidates.begin(), candidates.end(),
            [&](Index a, Index b) { return v.count(a) > v.count(b); });
  out.insert(out.end(), candidates.begin(), candidates.end());
}

void hard_threshold(const SamplingConfig& cfg,
                    std::span<const std::span<const Index>> buckets,
                    VisitedSet& v, std::vector<Index>& out) {
  thread_local std::vector<Index> candidates;
  candidates.clear();
  aggregate(buckets, v, candidates);
  const auto m = static_cast<std::uint16_t>(std::max(1, cfg.hard_threshold_m));
  for (Index id : candidates) {
    if (v.count(id) >= m) out.push_back(id);
  }
}

}  // namespace

void sample_neurons(const SamplingConfig& config,
                    std::span<const std::span<const Index>> buckets,
                    VisitedSet& visited, Rng& rng, std::vector<Index>& out,
                    bool fresh_epoch) {
  out.clear();
  if (buckets.empty()) return;
  if (fresh_epoch) visited.begin_epoch();
  switch (config.strategy) {
    case SamplingStrategy::kVanilla:
      vanilla(config, buckets, visited, rng, out);
      break;
    case SamplingStrategy::kTopK:
      topk(config, buckets, visited, out);
      break;
    case SamplingStrategy::kHardThreshold:
      hard_threshold(config, buckets, visited, out);
      break;
  }
}

}  // namespace slide
