#include "lsh/wta.h"

#include <algorithm>
#include <numeric>

namespace slide {

WtaHash::WtaHash(const Config& config)
    : k_(config.k),
      l_(config.l),
      dim_(config.dim),
      bin_size_(config.bin_size) {
  SLIDE_CHECK(k_ >= 1 && l_ >= 1, "WtaHash: K and L must be >= 1");
  SLIDE_CHECK(bin_size_ >= 2, "WtaHash: bin_size must be >= 2");
  SLIDE_CHECK(dim_ >= static_cast<Index>(bin_size_),
              "WtaHash: dim must be >= bin_size");

  bins_per_perm_ = static_cast<int>(dim_) / bin_size_;
  const int total_codes = k_ * l_;
  num_perms_ = (total_codes + bins_per_perm_ - 1) / bins_per_perm_;

  Rng rng(config.seed);
  perm_.resize(static_cast<std::size_t>(num_perms_) * dim_);
  for (int p = 0; p < num_perms_; ++p) {
    Index* perm = perm_.data() + static_cast<std::size_t>(p) * dim_;
    std::iota(perm, perm + dim_, Index{0});
    std::shuffle(perm, perm + dim_, rng);
  }
}

void WtaHash::codes_dense(const float* x, std::uint32_t* codes) const {
  const int total_codes = k_ * l_;
  for (int c = 0; c < total_codes; ++c) {
    const int p = c / bins_per_perm_;
    const int b = c % bins_per_perm_;
    const Index* perm =
        perm_.data() + static_cast<std::size_t>(p) * dim_ +
        static_cast<std::size_t>(b) * bin_size_;
    std::uint32_t best_offset = 0;
    float best_val = x[perm[0]];
    for (int q = 1; q < bin_size_; ++q) {
      const float v = x[perm[q]];
      if (v > best_val) {
        best_val = v;
        best_offset = static_cast<std::uint32_t>(q);
      }
    }
    codes[c] = best_offset;
  }
}

void WtaHash::keys_from_codes(const std::uint32_t* codes,
                              std::span<std::uint32_t> keys) const {
  SLIDE_ASSERT(static_cast<int>(keys.size()) == l_);
  int c = 0;
  for (int t = 0; t < l_; ++t) {
    detail::FingerprintMixer mixer;
    for (int j = 0; j < k_; ++j, ++c) mixer.add(codes[c]);
    keys[t] = mixer.value();
  }
}

void WtaHash::hash_dense(const float* x, std::span<std::uint32_t> keys) const {
  thread_local std::vector<std::uint32_t> codes;
  codes.resize(static_cast<std::size_t>(k_) * l_);
  codes_dense(x, codes.data());
  keys_from_codes(codes.data(), keys);
}

void WtaHash::hash_sparse(const Index* idx, const float* val, std::size_t nnz,
                          std::span<std::uint32_t> keys) const {
  thread_local std::vector<float> dense;
  dense.assign(dim_, 0.0f);
  for (std::size_t i = 0; i < nnz; ++i) {
    SLIDE_ASSERT(idx[i] < dim_);
    dense[idx[i]] = val[i];
  }
  hash_dense(dense.data(), keys);
}

}  // namespace slide
