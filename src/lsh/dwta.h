// Densified Winner-Takes-All hashing (Chen & Shrivastava 2018), the family
// the paper uses for the very sparse Amazon-670K inputs (§3.2, appendix A).
//
// Same permutation/bin structure as WTA, but computed by looping over the
// *nonzero* coordinates of the input only — O(nnz * K*L*m/d) comparisons —
// and repairing bins that received no nonzero coordinate ("empty bins")
// with the densification scheme: an empty bin borrows the code of a
// non-empty bin found by iterating a universal hash probe.
#pragma once

#include <cstdint>
#include <vector>

#include "lsh/hash_function.h"
#include "sys/rng.h"

namespace slide {

class DwtaHash final : public HashFamily {
 public:
  struct Config {
    int k = 8;
    int l = 50;
    Index dim = 0;
    int bin_size = 8;
    /// Probe cap for empty-bin densification.
    int max_densify_attempts = 128;
    std::uint64_t seed = 17;
  };

  explicit DwtaHash(const Config& config);

  int k() const noexcept override { return k_; }
  int l() const noexcept override { return l_; }
  Index dim() const noexcept override { return dim_; }
  std::string name() const override { return "dwta"; }

  void hash_dense(const float* x,
                  std::span<std::uint32_t> keys) const override;
  void hash_sparse(const Index* idx, const float* val, std::size_t nnz,
                   std::span<std::uint32_t> keys) const override;

  int bin_size() const noexcept { return bin_size_; }
  int num_permutations() const noexcept { return num_perms_; }

  /// Raw densified codes for a sparse input (exposed for tests). Returns
  /// the number of bins that were empty before densification.
  int codes_sparse(const Index* idx, const float* val, std::size_t nnz,
                   std::uint32_t* codes) const;

 private:
  void keys_from_codes(const std::uint32_t* codes,
                       std::span<std::uint32_t> keys) const;
  void densify(std::uint32_t* codes, const std::uint8_t* filled) const;

  int k_;
  int l_;
  Index dim_;
  int bin_size_;
  int bins_per_perm_;
  int num_perms_;
  int max_densify_attempts_;
  std::uint64_t probe_seed_;
  // pos_[p * dim_ + d] = position of coordinate d in permutation p.
  std::vector<Index> pos_;
};

}  // namespace slide
