// Densified One-Permutation Hashing (DOPH, Shrivastava & Li 2014b) — minwise
// hashing for Jaccard similarity over binary sets (paper appendix A).
//
// DOPH is designed for binary inputs: each set element is hashed once; a
// universal hash assigns it to one of K*L bins and the minimum value hash
// per bin is the code. Empty bins are repaired by the same universal-probe
// densification as DWTA. Real-valued vectors are binarized first with the
// paper's thresholding heuristic: the indices of the top-k values form the
// set (maintained with a bounded heap in O(d log k)).
#pragma once

#include <cstdint>
#include <vector>

#include "lsh/hash_function.h"

namespace slide {

class DophHash final : public HashFamily {
 public:
  struct Config {
    int k = 4;
    int l = 50;
    Index dim = 0;
    /// Top-k threshold for binarizing dense/real-valued inputs.
    int binarize_top_k = 32;
    int max_densify_attempts = 128;
    std::uint64_t seed = 19;
  };

  explicit DophHash(const Config& config);

  int k() const noexcept override { return k_; }
  int l() const noexcept override { return l_; }
  Index dim() const noexcept override { return dim_; }
  std::string name() const override { return "doph"; }

  void hash_dense(const float* x,
                  std::span<std::uint32_t> keys) const override;
  void hash_sparse(const Index* idx, const float* val, std::size_t nnz,
                   std::span<std::uint32_t> keys) const override;

  /// Hashes an explicit binary set (element ids < dim()); exposed for tests
  /// and for binary-input callers that skip thresholding.
  void hash_set(std::span<const Index> elements,
                std::span<std::uint32_t> keys) const;

  /// The thresholding heuristic: indices of the top-k values of x
  /// (paper appendix A, "Threshold(x_i)"). Exposed for tests.
  std::vector<Index> binarize_dense(const float* x) const;

 private:
  void codes_for_set(std::span<const Index> elements,
                     std::uint32_t* codes) const;
  void keys_from_codes(const std::uint32_t* codes,
                       std::span<std::uint32_t> keys) const;

  int k_;
  int l_;
  Index dim_;
  int binarize_top_k_;
  int max_densify_attempts_;
  std::uint64_t seed_a_;
  std::uint64_t seed_b_;
};

}  // namespace slide
