#include "lsh/doph.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace slide {

namespace {
// 64-bit mix (splitmix finalizer) used as the universal hash.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}
}  // namespace

DophHash::DophHash(const Config& config)
    : k_(config.k),
      l_(config.l),
      dim_(config.dim),
      binarize_top_k_(config.binarize_top_k),
      max_densify_attempts_(config.max_densify_attempts),
      seed_a_(mix64(config.seed * 2 + 1)),
      seed_b_(mix64(config.seed * 2 + 2)) {
  SLIDE_CHECK(k_ >= 1 && l_ >= 1, "DophHash: K and L must be >= 1");
  SLIDE_CHECK(dim_ >= 1, "DophHash: dim must be >= 1");
  SLIDE_CHECK(binarize_top_k_ >= 1, "DophHash: binarize_top_k must be >= 1");
}

void DophHash::codes_for_set(std::span<const Index> elements,
                             std::uint32_t* codes) const {
  const int total_bins = k_ * l_;
  thread_local std::vector<std::uint64_t> min_val;
  min_val.assign(static_cast<std::size_t>(total_bins),
                 std::numeric_limits<std::uint64_t>::max());

  for (Index e : elements) {
    SLIDE_ASSERT(e < dim_);
    // One permutation: element -> bin via one hash, rank via another.
    const std::uint64_t he = mix64(seed_a_ ^ e);
    const int bin = static_cast<int>(he % static_cast<std::uint64_t>(total_bins));
    const std::uint64_t rank = mix64(seed_b_ ^ e);
    auto& slot = min_val[static_cast<std::size_t>(bin)];
    slot = std::min(slot, rank);
  }

  // Densify empty bins from the pre-densification state.
  for (int c = 0; c < total_bins; ++c) {
    const auto v = min_val[static_cast<std::size_t>(c)];
    if (v != std::numeric_limits<std::uint64_t>::max()) {
      codes[c] = static_cast<std::uint32_t>(v);
      continue;
    }
    std::uint32_t code = 0;
    for (int attempt = 1; attempt <= max_densify_attempts_; ++attempt) {
      const std::uint64_t h =
          mix64(seed_a_ ^ (static_cast<std::uint64_t>(c) << 20) ^
                static_cast<std::uint64_t>(attempt));
      const int donor = static_cast<int>(h % static_cast<std::uint64_t>(total_bins));
      const auto dv = min_val[static_cast<std::size_t>(donor)];
      if (dv != std::numeric_limits<std::uint64_t>::max()) {
        code = static_cast<std::uint32_t>(dv);
        break;
      }
    }
    codes[c] = code;
  }
}

void DophHash::keys_from_codes(const std::uint32_t* codes,
                               std::span<std::uint32_t> keys) const {
  SLIDE_ASSERT(static_cast<int>(keys.size()) == l_);
  int c = 0;
  for (int t = 0; t < l_; ++t) {
    detail::FingerprintMixer mixer;
    for (int j = 0; j < k_; ++j, ++c) mixer.add(codes[c]);
    keys[t] = mixer.value();
  }
}

void DophHash::hash_set(std::span<const Index> elements,
                        std::span<std::uint32_t> keys) const {
  thread_local std::vector<std::uint32_t> codes;
  codes.resize(static_cast<std::size_t>(k_) * l_);
  codes_for_set(elements, codes.data());
  keys_from_codes(codes.data(), keys);
}

std::vector<Index> DophHash::binarize_dense(const float* x) const {
  // Bounded min-heap of (value, index): O(d log k), the paper's
  // priority-queue alternative to a full O(d log d) sort.
  using Entry = std::pair<float, Index>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (Index d = 0; d < dim_; ++d) {
    if (static_cast<int>(heap.size()) < binarize_top_k_) {
      heap.emplace(x[d], d);
    } else if (x[d] > heap.top().first) {
      heap.pop();
      heap.emplace(x[d], d);
    }
  }
  std::vector<Index> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back(heap.top().second);
    heap.pop();
  }
  std::sort(out.begin(), out.end());
  return out;
}

void DophHash::hash_dense(const float* x,
                          std::span<std::uint32_t> keys) const {
  const std::vector<Index> set = binarize_dense(x);
  hash_set(set, keys);
}

void DophHash::hash_sparse(const Index* idx, const float* val,
                           std::size_t nnz,
                           std::span<std::uint32_t> keys) const {
  // For sparse inputs the support itself is the binary set (when it exceeds
  // the top-k budget, keep the k largest values, matching the dense path).
  if (static_cast<int>(nnz) <= binarize_top_k_) {
    hash_set(std::span<const Index>(idx, nnz), keys);
    return;
  }
  using Entry = std::pair<float, Index>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t i = 0; i < nnz; ++i) {
    if (static_cast<int>(heap.size()) < binarize_top_k_) {
      heap.emplace(val[i], idx[i]);
    } else if (val[i] > heap.top().first) {
      heap.pop();
      heap.emplace(val[i], idx[i]);
    }
  }
  std::vector<Index> set;
  set.reserve(heap.size());
  while (!heap.empty()) {
    set.push_back(heap.top().second);
    heap.pop();
  }
  std::sort(set.begin(), set.end());
  hash_set(set, keys);
}

}  // namespace slide
