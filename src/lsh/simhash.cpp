#include "lsh/simhash.h"

#include <algorithm>
#include <cmath>

namespace slide {

Simhash::Simhash(const Config& config)
    : k_(config.k), l_(config.l), dim_(config.dim) {
  SLIDE_CHECK(k_ >= 1 && k_ <= 32, "Simhash: K must be in [1, 32]");
  SLIDE_CHECK(l_ >= 1, "Simhash: L must be >= 1");
  SLIDE_CHECK(dim_ >= 1, "Simhash: dim must be >= 1");
  SLIDE_CHECK(config.density > 0.0 && config.density <= 1.0,
              "Simhash: density must be in (0, 1]");

  const int num_proj = k_ * l_;
  const auto nnz_per_proj = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(config.density * dim_)));

  Rng rng(config.seed);
  proj_offsets_.reserve(static_cast<std::size_t>(num_proj) + 1);
  proj_offsets_.push_back(0);
  proj_indices_.reserve(num_proj * nnz_per_proj);
  proj_signs_.reserve(num_proj * nnz_per_proj);

  // Draw each projection's support as exactly nnz_per_proj *distinct*
  // coordinates with Floyd's sampling algorithm (a sort-unique pass over
  // uniform draws would undershoot the requested density by ~15% at 1/3).
  std::vector<Index> support;
  std::vector<std::uint8_t> member(dim_, 0);
  for (int p = 0; p < num_proj; ++p) {
    support.clear();
    const Index start = dim_ - static_cast<Index>(
                                   std::min<std::size_t>(nnz_per_proj, dim_));
    for (Index j = start; j < dim_; ++j) {
      Index t = rng.uniform(j + 1);
      if (member[t]) t = j;
      member[t] = 1;
      support.push_back(t);
    }
    std::sort(support.begin(), support.end());
    for (Index d : support) {
      member[d] = 0;  // reset for the next projection
      proj_indices_.push_back(d);
      proj_signs_.push_back(rng.uniform(2) == 0 ? 1.0f : -1.0f);
    }
    proj_offsets_.push_back(proj_indices_.size());
  }

  // Build the inverted index (counting sort by coordinate).
  inv_offsets_.assign(static_cast<std::size_t>(dim_) + 1, 0);
  for (Index d : proj_indices_) ++inv_offsets_[d + 1];
  for (std::size_t d = 1; d <= dim_; ++d) inv_offsets_[d] += inv_offsets_[d - 1];
  inv_proj_.resize(proj_indices_.size());
  inv_sign_.resize(proj_indices_.size());
  std::vector<std::size_t> cursor(inv_offsets_.begin(), inv_offsets_.end() - 1);
  for (int p = 0; p < num_proj; ++p) {
    for (std::size_t e = proj_offsets_[p]; e < proj_offsets_[p + 1]; ++e) {
      const Index d = proj_indices_[e];
      const std::size_t slot = cursor[d]++;
      inv_proj_[slot] = static_cast<std::uint32_t>(p);
      inv_sign_[slot] = proj_signs_[e];
    }
  }
}

void Simhash::project_dense(const float* x, float* dots) const {
  const int num_proj = k_ * l_;
  for (int p = 0; p < num_proj; ++p) {
    float acc = 0.0f;
    for (std::size_t e = proj_offsets_[p]; e < proj_offsets_[p + 1]; ++e) {
      // Signs are ±1, so this is adds/subtracts — the paper's
      // multiplication-free formulation.
      acc += proj_signs_[e] * x[proj_indices_[e]];
    }
    dots[p] = acc;
  }
}

void Simhash::keys_from_projections(const float* dots,
                                    std::span<std::uint32_t> keys) const {
  SLIDE_ASSERT(static_cast<int>(keys.size()) == l_);
  int p = 0;
  for (int t = 0; t < l_; ++t) {
    std::uint32_t bits = 0;
    for (int j = 0; j < k_; ++j, ++p) {
      bits = (bits << 1) | (dots[p] >= 0.0f ? 1u : 0u);
    }
    detail::FingerprintMixer mixer;
    mixer.add(bits);
    keys[t] = mixer.value();
  }
}

void Simhash::hash_dense(const float* x, std::span<std::uint32_t> keys) const {
  // Stack scratch would overflow for large K*L; use a thread-local buffer.
  thread_local std::vector<float> dots;
  dots.resize(static_cast<std::size_t>(num_projections()));
  project_dense(x, dots.data());
  keys_from_projections(dots.data(), keys);
}

void Simhash::hash_sparse(const Index* idx, const float* val, std::size_t nnz,
                          std::span<std::uint32_t> keys) const {
  // Natively sparse path via the inverted index: cost O(nnz * K*L*density)
  // in expectation, independent of dim.
  thread_local std::vector<float> dots;
  dots.assign(static_cast<std::size_t>(num_projections()), 0.0f);
  for (std::size_t i = 0; i < nnz; ++i) {
    const Index d = idx[i];
    SLIDE_ASSERT(d < dim_);
    for (std::size_t e = inv_offsets_[d]; e < inv_offsets_[d + 1]; ++e) {
      dots[inv_proj_[e]] += inv_sign_[e] * val[i];
    }
  }
  keys_from_projections(dots.data(), keys);
}

void Simhash::update_projections(Index dim, float delta, float* dots) const {
  SLIDE_ASSERT(dim < dim_);
  for (std::size_t e = inv_offsets_[dim]; e < inv_offsets_[dim + 1]; ++e) {
    dots[inv_proj_[e]] += inv_sign_[e] * delta;
  }
}

std::span<const Index> Simhash::projection_indices(int p) const {
  SLIDE_ASSERT(p >= 0 && p < num_projections());
  return {proj_indices_.data() + proj_offsets_[p],
          proj_offsets_[p + 1] - proj_offsets_[p]};
}

std::span<const float> Simhash::projection_signs(int p) const {
  SLIDE_ASSERT(p >= 0 && p < num_projections());
  return {proj_signs_.data() + proj_offsets_[p],
          proj_offsets_[p + 1] - proj_offsets_[p]};
}

}  // namespace slide
