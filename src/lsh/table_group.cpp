#include "lsh/table_group.h"

namespace slide {

LshTableGroup::LshTableGroup(std::unique_ptr<HashFamily> family,
                             const HashTable::Config& table_config,
                             std::uint64_t seed)
    : family_(std::move(family)), seed_(seed) {
  SLIDE_CHECK(family_ != nullptr, "LshTableGroup: null hash family");
  tables_.reserve(static_cast<std::size_t>(family_->l()));
  for (int t = 0; t < family_->l(); ++t) tables_.emplace_back(table_config);
}

void LshTableGroup::insert(Index id, std::span<const std::uint32_t> keys,
                           Rng& rng) {
  SLIDE_ASSERT(keys.size() == tables_.size());
  for (std::size_t t = 0; t < tables_.size(); ++t)
    tables_[t].insert(keys[t], id, rng);
}

void LshTableGroup::insert_dense(Index id, const float* row, Rng& rng) {
  thread_local std::vector<std::uint32_t> keys;
  keys.resize(tables_.size());
  family_->hash_dense(row, keys);
  insert(id, keys, rng);
}

void LshTableGroup::buckets(std::span<const std::uint32_t> keys,
                            std::vector<std::span<const Index>>& out) const {
  SLIDE_ASSERT(keys.size() == tables_.size());
  out.resize(tables_.size());
  for (std::size_t t = 0; t < tables_.size(); ++t)
    out[t] = tables_[t].bucket(keys[t]);
}

void LshTableGroup::build_from_rows(const float* rows, std::size_t row_stride,
                                    Index count, ThreadPool* pool) {
  clear();
  if (pool != nullptr && pool->num_threads() > 1) {
    // One RNG per thread keeps reservoir decisions uncorrelated without
    // synchronization ("easily parallelized with multiple threads over
    // different neurons", paper §3.1).
    std::vector<Rng> rngs;
    rngs.reserve(static_cast<std::size_t>(pool->num_threads()));
    Rng seeder(seed_);
    for (int t = 0; t < pool->num_threads(); ++t) rngs.push_back(seeder.fork());
    pool->parallel_range(
        count, [&](std::size_t begin, std::size_t end, int tid) {
          Rng& rng = rngs[static_cast<std::size_t>(tid)];
          for (std::size_t i = begin; i < end; ++i) {
            insert_dense(static_cast<Index>(i), rows + i * row_stride, rng);
          }
        });
  } else {
    Rng rng(seed_);
    for (Index i = 0; i < count; ++i)
      insert_dense(i, rows + static_cast<std::size_t>(i) * row_stride, rng);
  }
}

void LshTableGroup::clear() {
  for (auto& table : tables_) table.clear();
}

std::size_t LshTableGroup::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& table : tables_) total += table.memory_bytes();
  return total;
}

}  // namespace slide
