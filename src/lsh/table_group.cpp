#include "lsh/table_group.h"

#include <thread>

namespace slide {

LshTableGroup::LshTableGroup(std::unique_ptr<HashFamily> family,
                             const HashTable::Config& table_config,
                             std::uint64_t seed)
    : LshTableGroup(std::shared_ptr<const HashFamily>(std::move(family)),
                    table_config, seed) {}

LshTableGroup::LshTableGroup(std::shared_ptr<const HashFamily> family,
                             const HashTable::Config& table_config,
                             std::uint64_t seed)
    : family_(std::move(family)), seed_(seed) {
  SLIDE_CHECK(family_ != nullptr, "LshTableGroup: null hash family");
  tables_.reserve(static_cast<std::size_t>(family_->l()));
  for (int t = 0; t < family_->l(); ++t) tables_.emplace_back(table_config);
}

void LshTableGroup::insert(Index id, std::span<const std::uint32_t> keys,
                           Rng& rng) {
  SLIDE_ASSERT(keys.size() == tables_.size());
  for (std::size_t t = 0; t < tables_.size(); ++t)
    tables_[t].insert(keys[t], id, rng);
}

void LshTableGroup::insert_dense(Index id, const float* row, Rng& rng) {
  thread_local std::vector<std::uint32_t> keys;
  keys.resize(tables_.size());
  family_->hash_dense(row, keys);
  insert(id, keys, rng);
}

void LshTableGroup::buckets(std::span<const std::uint32_t> keys,
                            std::vector<std::span<const Index>>& out) const {
  SLIDE_ASSERT(keys.size() == tables_.size());
  out.resize(tables_.size());
  for (std::size_t t = 0; t < tables_.size(); ++t)
    out[t] = tables_[t].bucket(keys[t]);
}

void LshTableGroup::build_from_rows(const float* rows, std::size_t row_stride,
                                    Index count, ThreadPool* pool) {
  clear();
  if (pool != nullptr && pool->num_threads() > 1) {
    // One RNG per thread keeps reservoir decisions uncorrelated without
    // synchronization ("easily parallelized with multiple threads over
    // different neurons", paper §3.1).
    std::vector<Rng> rngs;
    rngs.reserve(static_cast<std::size_t>(pool->num_threads()));
    Rng seeder(seed_);
    for (int t = 0; t < pool->num_threads(); ++t) rngs.push_back(seeder.fork());
    pool->parallel_range(
        count, [&](std::size_t begin, std::size_t end, int tid) {
          Rng& rng = rngs[static_cast<std::size_t>(tid)];
          for (std::size_t i = begin; i < end; ++i) {
            insert_dense(static_cast<Index>(i), rows + i * row_stride, rng);
          }
        });
  } else {
    Rng rng(seed_);
    for (Index i = 0; i < count; ++i)
      insert_dense(i, rows + static_cast<std::size_t>(i) * row_stride, rng);
  }
}

void LshTableGroup::clear() {
  for (auto& table : tables_) table.clear();
}

std::size_t LshTableGroup::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& table : tables_) total += table.memory_bytes();
  return total;
}

// ---------------------------------------------------------------------------
// MaintainedTables
// ---------------------------------------------------------------------------

MaintainedTables::MaintainedTables(std::unique_ptr<HashFamily> family,
                                   const HashTable::Config& table_config,
                                   std::uint64_t seed)
    : family_(std::move(family)), table_config_(table_config), seed_(seed) {
  SLIDE_CHECK(family_ != nullptr, "MaintainedTables: null hash family");
  groups_[0] = std::make_unique<LshTableGroup>(family_, table_config_, seed_);
}

MaintainedTables::Pin MaintainedTables::pin() const {
  // Increment-then-recheck (the classic double-buffer RCU entry): if the
  // active index moved between the load and the increment, the maintenance
  // side may already have skipped our count — back out and retry. seq_cst
  // everywhere: the publish/drain handshake is a store-load (Dekker)
  // pattern, and rebuilds are far too rare for the fence to matter.
  for (;;) {
    const int i = active_idx_.load(std::memory_order_seq_cst);
    readers_[i].count.fetch_add(1, std::memory_order_seq_cst);
    if (active_idx_.load(std::memory_order_seq_cst) == i) return Pin(this, i);
    readers_[i].count.fetch_sub(1, std::memory_order_seq_cst);
  }
}

LshTableGroup& MaintainedTables::shadow_group() {
  const int s = 1 - active_idx_.load(std::memory_order_seq_cst);
  auto& group = groups_[static_cast<std::size_t>(s)];
  if (group == nullptr) {
    // Same seed as the active buffer: a single-threaded build produces
    // identical tables whichever buffer it lands in, so sync and async_full
    // policies are bit-equivalent (tested in test_maintenance.cpp).
    group = std::make_unique<LshTableGroup>(family_, table_config_, seed_);
  }
  // RCU grace period: readers that pinned this buffer before it was
  // retired must drain before we clear it under them. The wait is
  // microseconds (a pin spans one bucket-sampling pass), while rebuilds
  // are many iterations apart.
  while (readers_[s].count.load(std::memory_order_seq_cst) != 0)
    std::this_thread::yield();
  return *group;
}

void MaintainedTables::publish_shadow() {
  const int s = 1 - active_idx_.load(std::memory_order_seq_cst);
  SLIDE_CHECK(groups_[static_cast<std::size_t>(s)] != nullptr,
              "MaintainedTables: publish_shadow without a built shadow");
  active_idx_.store(s, std::memory_order_seq_cst);
  publish_count_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t MaintainedTables::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& group : groups_)
    if (group != nullptr) total += group->memory_bytes();
  return total;
}

}  // namespace slide
