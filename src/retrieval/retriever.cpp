#include "retrieval/retriever.h"

namespace slide::retrieval {

const char* to_string(RetrieverKind kind) {
  switch (kind) {
    case RetrieverKind::kLsh: return "lsh";
    case RetrieverKind::kExact: return "exact";
    case RetrieverKind::kHnsw: return "hnsw";
  }
  return "?";
}

RetrieverKind parse_retriever_kind(const std::string& s) {
  if (s == "lsh") return RetrieverKind::kLsh;
  if (s == "exact") return RetrieverKind::kExact;
  if (s == "hnsw") return RetrieverKind::kHnsw;
  throw Error("unknown retriever kind: " + s + " (expected lsh|exact|hnsw)");
}

}  // namespace slide::retrieval
