// Brute-force retrieval: every live id is a candidate.
//
// This is the `exact = true` scan expressed as a Retriever — the oracle
// the other backends are measured against (metrics::recall_at_k), and the
// degenerate baseline for the standalone ANN-search workloads. There is no
// index: retrieve() appends the whole universe (minus removed ids and
// pre-stamped exclusions), so `budget` is documented-ignored and rebuild()
// is a no-op.
#pragma once

#include "retrieval/retriever.h"

namespace slide::retrieval {

class ExactRetriever final : public Retriever {
 public:
  explicit ExactRetriever(RowView rows) : rows_(rows) {}

  RetrieverKind kind() const noexcept override { return RetrieverKind::kExact; }
  Index size() const noexcept override { return rows_.count; }

  void retrieve(std::span<const Index> query_ids,
                std::span<const float> query_act, Index budget, Rng& rng,
                VisitedSet& visited, std::vector<Index>& out,
                bool fresh_epoch = true) const override;

  void rebuild(ThreadPool* pool) override { (void)pool; }

  std::size_t memory_bytes() const noexcept override { return 0; }

 private:
  void do_resize(RowView rows) override { rows_ = rows; }

  RowView rows_;
};

}  // namespace slide::retrieval
