#include "retrieval/lsh_retriever.h"

namespace slide::retrieval {

LshRetriever::LshRetriever(std::unique_ptr<HashFamily> family,
                           const HashTable::Config& table_config,
                           const SamplingConfig& sampling, RowView rows,
                           std::uint64_t seed)
    : tables_(std::move(family), table_config, seed),
      sampling_(sampling),
      rows_(rows),
      mutate_rng_(seed + 0x10D5ull) {}

void LshRetriever::retrieve(std::span<const Index> query_ids,
                            std::span<const float> query_act, Index budget,
                            Rng& rng, VisitedSet& visited,
                            std::vector<Index>& out, bool fresh_epoch) const {
  // The historical SampledLayer hot path, moved here verbatim: hash the
  // query once per table, pin the active group, union/select bucket ids.
  // sample_neurons stamps each selected id into `visited` — that is where
  // the retrieve() dedupe post-condition is enforced for this backend.
  thread_local std::vector<std::uint32_t> keys;
  keys.resize(static_cast<std::size_t>(tables_.l()));
  if (query_ids.empty()) {
    tables_.query_keys_dense(query_act.data(), keys);
  } else {
    tables_.query_keys_sparse(query_ids.data(), query_act.data(),
                              query_ids.size(), keys);
  }
  thread_local std::vector<std::span<const Index>> buckets;
  thread_local std::vector<Index> sampled;
  {
    // Bucket spans point into the pinned group; consume them before the
    // pin drops (a concurrent publish_shadow would recycle the buffer).
    const MaintainedTables::Pin pin = tables_.pin();
    pin->buckets(keys, buckets);
    SamplingConfig sampling = sampling_;
    sampling.target = budget;
    sample_neurons(sampling, buckets, visited, rng, sampled, fresh_epoch);
  }
  if (!any_masked()) {
    out.insert(out.end(), sampled.begin(), sampled.end());
  } else {
    for (Index id : sampled) {
      if (!masked(id)) out.push_back(id);
    }
  }
}

void LshRetriever::rebuild(ThreadPool* pool) {
  // Shadow build + atomic publish: readable throughout, correct from both
  // the sync (trainer) and async (BackgroundWorker) call sites.
  tables_.shadow_group().build_from_rows(rows_.data, rows_.dim, rows_.count,
                                         pool);
  tables_.publish_shadow();
}

void LshRetriever::reinsert(std::span<const Index> ids) {
  // Delta maintenance into the LIVE group (reader-safe; see the
  // MaintainedTables class comment). Stale bucket entries from the ids'
  // previous hashes wash out at the next full rebuild.
  LshTableGroup& group = tables_.active_group();
  for (Index id : ids) group.insert_dense(id, rows_.row(id), mutate_rng_);
}

void LshRetriever::do_insert(Index id) {
  tables_.active_group().insert_dense(id, rows_.row(id), mutate_rng_);
}

void LshRetriever::do_update(Index id) {
  // No in-place bucket eviction: re-hash into the live group and let the
  // next full rebuild clear the superseded entries (the same contract as
  // the async delta path).
  tables_.active_group().insert_dense(id, rows_.row(id), mutate_rng_);
}

}  // namespace slide::retrieval
