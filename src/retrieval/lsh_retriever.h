// (K, L) LSH retrieval — the paper's sampler behind the Retriever surface.
//
// Owns the layer's MaintainedTables (the double-buffered active/shadow
// structure of core/layer.h's maintenance machinery) and reproduces the
// historical key → pin → buckets → sample_neurons sequence VERBATIM:
// SampledLayer with retriever(lsh) is bit-identical to the pre-subsystem
// layer under sync maintenance (pinned by the golden determinism test).
//
// The owning SampledLayer keeps driving the memo-aware rebuild and delta
// re-insert paths directly through tables() — the incremental-rehash
// projection memo lives in the layer, next to the weight deltas that feed
// it. Standalone users (ANN search, benches, tests) get the same index
// through the generic hooks: rebuild() hashes every row, reinsert()
// refreshes single ids into the live group.
#pragma once

#include "lsh/table_group.h"
#include "retrieval/retriever.h"

namespace slide::retrieval {

class LshRetriever final : public Retriever {
 public:
  /// Takes ownership of the hash family (dim must equal rows.dim). The
  /// `sampling` strategy/threshold knobs drive candidate selection;
  /// retrieve() overrides the target with its per-call budget.
  LshRetriever(std::unique_ptr<HashFamily> family,
               const HashTable::Config& table_config,
               const SamplingConfig& sampling, RowView rows,
               std::uint64_t seed);

  RetrieverKind kind() const noexcept override { return RetrieverKind::kLsh; }
  Index size() const noexcept override { return rows_.count; }

  void retrieve(std::span<const Index> query_ids,
                std::span<const float> query_act, Index budget, Rng& rng,
                VisitedSet& visited, std::vector<Index>& out,
                bool fresh_epoch = true) const override;

  void rebuild(ThreadPool* pool) override;
  bool supports_delta() const noexcept override { return true; }
  void reinsert(std::span<const Index> ids) override;

  std::size_t memory_bytes() const noexcept override {
    return tables_.memory_bytes();
  }

  /// The underlying double-buffered tables — the owning SampledLayer's
  /// maintenance code (memo-aware builds, delta re-inserts, publishes)
  /// operates on them directly.
  MaintainedTables& tables() noexcept { return tables_; }
  const MaintainedTables& tables() const noexcept { return tables_; }

 private:
  void do_insert(Index id) override;
  void do_update(Index id) override;
  /// Buckets store ids, not row pointers, so the tables survive a grown
  /// (reallocated) weight array as-is; only the view needs re-targeting.
  void do_resize(RowView rows) override { rows_ = rows; }

  MaintainedTables tables_;
  SamplingConfig sampling_;
  RowView rows_;
  /// Drives bucket reservoir decisions for the standalone single-id
  /// mutation paths (the layer's own paths carry their own generators).
  Rng mutate_rng_;
};

}  // namespace slide::retrieval
