// Pluggable candidate retrieval for the sampled wide layer.
//
// SLIDE's core trick is that the wide output layer only ever *scores* a
// candidate set; how that set is produced is an index choice, not a layer
// property. This subsystem extracts candidate generation behind one
// interface so the same layer (and the standalone ANN-search workloads)
// can swap between:
//
//   LshRetriever    (K, L) hash tables — the paper's sampler, wrapping the
//                   double-buffered MaintainedTables path unchanged.
//   ExactRetriever  brute force: every live id is a candidate. The oracle.
//   HnswRetriever   deterministic seeded small-world graph with a beam
//                   (ef) search knob — the graph-ANN alternative.
//
// A retriever indexes a fixed universe of ids [0, size()) whose vectors
// live in caller-owned row storage (RowView — for a layer, its weight
// rows). retrieve() is const and safe to call concurrently with the
// maintenance hooks; mutation (insert/update/remove/rebuild) follows the
// layer's single-writer contract.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "lsh/sampling.h"
#include "sys/common.h"
#include "sys/rng.h"

namespace slide {

class ThreadPool;

namespace retrieval {

enum class RetrieverKind : std::uint8_t { kLsh = 0, kExact = 1, kHnsw = 2 };

const char* to_string(RetrieverKind kind);
RetrieverKind parse_retriever_kind(const std::string& s);

/// Knobs for HnswRetriever (ignored by the other backends). The defaults
/// land ≥ 0.9 recall@10 on the bench dataset at a fraction of the exact
/// scan's work; raise ef_search to trade qps for recall.
struct HnswConfig {
  /// Max neighbors per node on the upper levels; level 0 keeps 2*m.
  int m = 16;
  /// Beam width while building. Larger = better graph, slower rebuild.
  int ef_construction = 128;
  /// Beam width while searching (floored at the per-query budget).
  int ef_search = 64;
};

/// Non-owning view of the indexed vectors: `count` rows of `dim` floats,
/// row id at data + id * dim. The storage must stay valid and its address
/// stable for the retriever's lifetime (layer weights are HugeArray-backed,
/// so theirs is).
struct RowView {
  const float* data = nullptr;
  Index dim = 0;
  Index count = 0;

  const float* row(Index id) const noexcept {
    SLIDE_ASSERT(id < count);
    return data + static_cast<std::size_t>(id) * dim;
  }
};

/// Candidate-generation index over a fixed id universe.
///
/// Lifecycle: construct over a RowView, then rebuild() to (re)index the
/// current rows. insert/update/remove adjust single ids between rebuilds;
/// remove(id) masks the id from retrieval until a later insert(id)
/// resurrects it (rebuild() does NOT clear the mask). The mask lives here,
/// in the base class, so every backend shares one tombstone semantic.
class Retriever {
 public:
  virtual ~Retriever() = default;

  virtual RetrieverKind kind() const noexcept = 0;

  /// Size of the id universe (NOT the live count; removed ids still count).
  virtual Index size() const noexcept = 0;

  // --- candidate generation -------------------------------------------

  /// Appends up to ~`budget` candidate ids for the query to `out`.
  ///
  /// The query is the previous layer's activation vector: dense when
  /// `query_ids` is empty (`query_act` is the full vector), else sparse
  /// {query_ids[i], query_act[i]} pairs.
  ///
  /// Post-condition (THE candidate dedupe point — call sites never dedupe
  /// again): every id appended is (a) in [0, size()), (b) not removed,
  /// (c) was not stamped in `visited` when retrieve() was entered, and
  /// (d) is stamped in `visited` on return. Hence ids within one call are
  /// unique, and successive calls in the same epoch return disjoint sets.
  ///
  /// With `fresh_epoch` (the inference path) the visited set is
  /// epoch-reset first. Passing false (the training path) lets the caller
  /// pre-stamp exclusions — SLIDE stamps the forced true-label ids so they
  /// are never re-retrieved.
  ///
  /// ExactRetriever ignores `budget` (it IS the oracle scan); the others
  /// treat it as the sampling target. Thread-safe against concurrent
  /// retrieve() calls and against rebuild() running on a maintenance
  /// thread.
  virtual void retrieve(std::span<const Index> query_ids,
                        std::span<const float> query_act, Index budget,
                        Rng& rng, VisitedSet& visited, std::vector<Index>& out,
                        bool fresh_epoch = true) const = 0;

  // --- index mutation (single writer) ----------------------------------

  /// (Re)indexes id from its current row and clears any remove() mask.
  void insert(Index id) {
    unmask(id);
    do_insert(id);
  }

  /// Refreshes id's index entry after its row changed. Backends whose
  /// structures cannot update in place (HNSW, and LSH between rebuilds)
  /// may defer the refresh to the next rebuild().
  void update(Index id) { do_update(id); }

  /// Masks id from retrieval until a later insert(id).
  void remove(Index id) {
    mask(id);
    do_remove(id);
  }

  // --- tombstone introspection (the dynamic-label lifecycle reads these) -

  /// True if id passed through remove() without a later insert() — the
  /// public face of the tombstone mask, for callers (layer forward paths,
  /// checkpointing) that must agree with retrieval on what is live.
  bool is_removed(Index id) const noexcept { return masked(id); }
  /// True once any remove() happened (cheap any-tombstone fast-path gate).
  bool has_removed() const noexcept { return any_masked(); }
  /// Number of currently masked ids.
  Index removed_count() const noexcept {
    Index n = 0;
    for (std::uint8_t t : tombstone_) n += t != 0;
    return n;
  }
  /// Appends every masked id to `out` in ascending order.
  void append_removed_ids(std::vector<Index>& out) const {
    for (std::size_t id = 0; id < tombstone_.size(); ++id)
      if (tombstone_[id] != 0) out.push_back(static_cast<Index>(id));
  }

  /// Re-targets the index at grown row storage (online add_units: the
  /// layer's weight arrays were reallocated and extended by new rows).
  /// `rows` must have the same dim and count >= size(); existing ids keep
  /// their tombstone state, the appended ids start live but UNINDEXED —
  /// the caller follows up with insert(id) (or a rebuild) for each new id.
  void resize_universe(RowView rows) {
    SLIDE_CHECK(rows.dim == 0 || size() == 0 || rows.count >= size(),
                "retriever: resize_universe cannot shrink the universe");
    if (!tombstone_.empty())
      tombstone_.resize(static_cast<std::size_t>(rows.count), 0);
    do_resize(rows);
  }

  // --- maintenance hooks (plug into the layer's rebuild machinery) -----

  /// Rebuilds the whole index from the current rows. Called synchronously
  /// (kSync, with the trainer's pool) or from a BackgroundWorker thread
  /// (kAsync*, pool = nullptr) — implementations must keep retrieve()
  /// readable throughout (shadow build + atomic publish).
  virtual void rebuild(ThreadPool* pool) = 0;

  /// True if reinsert() refreshes single ids cheaply (LSH delta path).
  /// The layer escalates kAsyncDelta to full rebuilds when false.
  virtual bool supports_delta() const noexcept { return false; }

  /// Delta maintenance: re-index just these ids (rows already updated).
  virtual void reinsert(std::span<const Index> ids) { (void)ids; }

  // --- serialize hooks (checkpoint v4 aux blocks) -----------------------

  /// True if save_state() emits anything. Backends whose index is cheap to
  /// rebuild from the rows (LSH, exact) return false and checkpoint as an
  /// empty aux block.
  virtual bool has_serialized_state() const noexcept { return false; }
  virtual void save_state(std::ostream& out) const { (void)out; }
  /// Restores the index previously written by save_state() (rows already
  /// loaded). Returns true if the index is usable without a rebuild.
  virtual bool load_state(std::istream& in) {
    (void)in;
    return false;
  }

  virtual std::size_t memory_bytes() const noexcept = 0;

 protected:
  /// True if id passed through remove() without a later insert(). The
  /// backends filter retrieval output through this.
  bool masked(Index id) const noexcept {
    return !tombstone_.empty() && tombstone_[id] != 0;
  }
  /// True once any remove() happened — lets hot paths skip the filter.
  bool any_masked() const noexcept { return !tombstone_.empty(); }

  virtual void do_insert(Index id) { (void)id; }
  virtual void do_update(Index id) { (void)id; }
  virtual void do_remove(Index id) { (void)id; }
  /// Swaps in the grown RowView (backends store it by value). Structures
  /// built over the old storage stay valid only if they index by id, not by
  /// pointer; backends that cache derived state re-target it here.
  virtual void do_resize(RowView rows) = 0;

 private:
  void mask(Index id) {
    SLIDE_ASSERT(id < size());
    if (tombstone_.empty())
      tombstone_.assign(static_cast<std::size_t>(size()), 0);
    tombstone_[id] = 1;
  }
  void unmask(Index id) {
    if (!tombstone_.empty()) tombstone_[id] = 0;
  }

  /// Lazily allocated: empty until the first remove(), so the untouched
  /// (training) path never pays for the filter.
  std::vector<std::uint8_t> tombstone_;
};

}  // namespace retrieval
}  // namespace slide
