#include "retrieval/exact_retriever.h"

namespace slide::retrieval {

void ExactRetriever::retrieve(std::span<const Index> query_ids,
                              std::span<const float> query_act, Index budget,
                              Rng& rng, VisitedSet& visited,
                              std::vector<Index>& out,
                              bool fresh_epoch) const {
  // The query and budget do not narrow an exact scan; the signature is the
  // shared contract, not a promise to use every argument.
  (void)query_ids;
  (void)query_act;
  (void)budget;
  (void)rng;
  if (fresh_epoch) visited.begin_epoch();
  const Index n = rows_.count;
  out.reserve(out.size() + static_cast<std::size_t>(n));
  for (Index id = 0; id < n; ++id) {
    if (masked(id)) continue;
    if (visited.insert(id)) out.push_back(id);
  }
}

}  // namespace slide::retrieval
