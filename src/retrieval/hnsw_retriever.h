// HNSW graph retrieval (Malkov & Yashunin, 2016) over MIPS "distance".
//
// A hierarchical small-world graph: every node gets a geometrically
// distributed top level; upper levels form coarse express lanes (≤ m
// neighbors per node), level 0 carries the full navigable graph with
// heuristic-pruned neighbor lists of ≤ 2*m. A query greedily descends the
// upper levels to a good entry point, then runs a best-first beam of width
// ef over level 0. Distance is the negated inner product, matching the
// sampled layer's activation ranking (and the MIPS framing of paper §2).
//
// Determinism: the build is single-threaded, inserts ids in ascending
// order, draws levels from one seeded Rng, and breaks every distance tie
// by id — the same (rows, config, seed) always yields the same graph bit
// for bit (pinned by the seeded-build test), which is what makes the
// checkpoint-v4 graph blocks optional: a loader may skip them and rebuild.
//
// Concurrency: the graph is immutable behind a shared_ptr; rebuild()
// builds a fresh graph off to the side and swaps the pointer, so readers
// (retrieve is const) stay safe during background maintenance. Single-id
// update() defers to the next rebuild (supports_delta() is false — the
// layer escalates delta maintenance to full rebuilds for this backend).
#pragma once

#include <memory>
#include <mutex>
#include <utility>

#include "retrieval/retriever.h"

namespace slide::retrieval {

class HnswRetriever final : public Retriever {
 public:
  /// Does NOT build: the graph is empty (retrieve yields nothing) until
  /// the first rebuild(). The layer builds at construction; standalone
  /// users build after filling their rows.
  HnswRetriever(RowView rows, const HnswConfig& config, std::uint64_t seed);

  RetrieverKind kind() const noexcept override { return RetrieverKind::kHnsw; }
  Index size() const noexcept override { return rows_.count; }

  void retrieve(std::span<const Index> query_ids,
                std::span<const float> query_act, Index budget, Rng& rng,
                VisitedSet& visited, std::vector<Index>& out,
                bool fresh_epoch = true) const override;

  /// Deterministic serial build + atomic publish. The pool is accepted for
  /// interface parity but unused — parallel insertion would break the
  /// seeded bit-stability contract.
  void rebuild(ThreadPool* pool) override;

  bool has_serialized_state() const noexcept override { return true; }
  void save_state(std::ostream& out) const override;
  bool load_state(std::istream& in) override;

  std::size_t memory_bytes() const noexcept override;

  const HnswConfig& config() const noexcept { return config_; }

 private:
  /// Immutable once published. links[node][level] is the pruned neighbor
  /// list; links[node].size() - 1 is the node's top level.
  struct Graph {
    Index entry = 0;
    int max_level = -1;  // -1: empty (nothing indexed yet)
    std::vector<std::vector<std::vector<Index>>> links;
  };

  /// Per-thread search state: an epoch-stamped visited array plus the two
  /// beam heaps, so concurrent retrieves never contend or allocate.
  struct Scratch {
    std::vector<std::uint32_t> stamp;
    std::uint32_t epoch = 0;
    std::vector<std::pair<float, Index>> cand;  // min-heap (closest first)
    std::vector<std::pair<float, Index>> top;   // max-heap (worst first)

    void begin(Index n);
    bool visit(Index id) {
      if (stamp[id] == epoch) return false;
      stamp[id] = epoch;
      return true;
    }
  };
  static Scratch& scratch();

  std::shared_ptr<const Graph> snapshot() const;
  void publish(std::shared_ptr<const Graph> graph);
  std::shared_ptr<const Graph> build() const;

  template <typename DistFn>
  static void greedy_descend(const Graph& g, DistFn&& dist, int level,
                             Index& curr, float& curr_dist);
  /// Best-first beam at `level` from `curr`; results land in s.top
  /// (heap order). Caller begins s's epoch and stamps `curr`.
  template <typename DistFn>
  static void search_layer(const Graph& g, DistFn&& dist, Index curr,
                           float curr_dist, int level, std::size_t ef,
                           Scratch& s);
  /// HNSW heuristic prune: walk candidates (ascending by distance-to-base,
  /// ties by id), keep one only if no already-kept neighbor is closer to
  /// it than the base is; backfill with the nearest pruned ones up to
  /// max_m so degrees stay full.
  void select_neighbors(std::vector<std::pair<float, Index>>& cand,
                        std::size_t max_m, std::vector<Index>& out) const;

  float node_dist(Index a, Index b) const;

  /// The published graph indexes ids, not row addresses, so it stays valid
  /// over the grown view; appended ids are simply unreachable until the
  /// next rebuild() (the layer escalates growth to a rebuild for HNSW —
  /// supports_delta() is false).
  void do_resize(RowView rows) override { rows_ = rows; }

  RowView rows_;
  HnswConfig config_;
  std::uint64_t seed_;

  mutable std::mutex graph_mutex_;
  std::shared_ptr<const Graph> graph_;
};

}  // namespace slide::retrieval
