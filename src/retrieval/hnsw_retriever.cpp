#include "retrieval/hnsw_retriever.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "simd/kernels.h"

namespace slide::retrieval {

namespace {

/// Geometric level cap: P(level > 30) is astronomically small for any
/// usable m; the cap only bounds the per-node vector in adversarial draws.
constexpr int kMaxLevel = 30;

/// (distance, id) ordered lexicographically — the id tie-break is what
/// makes every heap/sort decision, and hence the whole graph,
/// deterministic.
using Scored = std::pair<float, Index>;

struct MinFirst {
  bool operator()(const Scored& a, const Scored& b) const { return a > b; }
};
struct MaxFirst {
  bool operator()(const Scored& a, const Scored& b) const { return a < b; }
};

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  SLIDE_CHECK(static_cast<bool>(in), "hnsw state: truncated stream");
  return v;
}

}  // namespace

HnswRetriever::HnswRetriever(RowView rows, const HnswConfig& config,
                             std::uint64_t seed)
    : rows_(rows), config_(config), seed_(seed) {
  SLIDE_CHECK(config_.m >= 2, "hnsw: m must be >= 2");
  SLIDE_CHECK(config_.ef_construction >= config_.m,
              "hnsw: ef_construction must be >= m");
  SLIDE_CHECK(config_.ef_search >= 1, "hnsw: ef_search must be >= 1");
}

HnswRetriever::Scratch& HnswRetriever::scratch() {
  thread_local Scratch s;
  return s;
}

void HnswRetriever::Scratch::begin(Index n) {
  if (stamp.size() < static_cast<std::size_t>(n))
    stamp.resize(static_cast<std::size_t>(n), 0);
  if (++epoch == 0) {
    std::fill(stamp.begin(), stamp.end(), 0u);
    epoch = 1;
  }
}

std::shared_ptr<const HnswRetriever::Graph> HnswRetriever::snapshot() const {
  const std::lock_guard<std::mutex> lock(graph_mutex_);
  return graph_;
}

void HnswRetriever::publish(std::shared_ptr<const Graph> graph) {
  const std::lock_guard<std::mutex> lock(graph_mutex_);
  graph_ = std::move(graph);
}

float HnswRetriever::node_dist(Index a, Index b) const {
  return -simd::dot(rows_.row(a), rows_.row(b),
                    static_cast<std::size_t>(rows_.dim));
}

template <typename DistFn>
void HnswRetriever::greedy_descend(const Graph& g, DistFn&& dist, int level,
                                   Index& curr, float& curr_dist) {
  bool improved = true;
  while (improved) {
    improved = false;
    for (Index nb :
         g.links[static_cast<std::size_t>(curr)][static_cast<std::size_t>(
             level)]) {
      const float d = dist(nb);
      if (d < curr_dist || (d == curr_dist && nb < curr)) {
        curr = nb;
        curr_dist = d;
        improved = true;
      }
    }
  }
}

template <typename DistFn>
void HnswRetriever::search_layer(const Graph& g, DistFn&& dist, Index curr,
                                 float curr_dist, int level, std::size_t ef,
                                 Scratch& s) {
  s.cand.clear();
  s.top.clear();
  s.cand.emplace_back(curr_dist, curr);
  s.top.emplace_back(curr_dist, curr);
  while (!s.cand.empty()) {
    std::pop_heap(s.cand.begin(), s.cand.end(), MinFirst{});
    const Scored c = s.cand.back();
    s.cand.pop_back();
    if (s.top.size() >= ef && c.first > s.top.front().first) break;
    for (Index nb :
         g.links[static_cast<std::size_t>(c.second)][static_cast<std::size_t>(
             level)]) {
      if (!s.visit(nb)) continue;
      const float d = dist(nb);
      if (s.top.size() < ef || d < s.top.front().first ||
          (d == s.top.front().first && nb < s.top.front().second)) {
        s.cand.emplace_back(d, nb);
        std::push_heap(s.cand.begin(), s.cand.end(), MinFirst{});
        s.top.emplace_back(d, nb);
        std::push_heap(s.top.begin(), s.top.end(), MaxFirst{});
        if (s.top.size() > ef) {
          std::pop_heap(s.top.begin(), s.top.end(), MaxFirst{});
          s.top.pop_back();
        }
      }
    }
  }
}

void HnswRetriever::select_neighbors(std::vector<Scored>& cand,
                                     std::size_t max_m,
                                     std::vector<Index>& out) const {
  std::sort(cand.begin(), cand.end());
  out.clear();
  for (const auto& [d, id] : cand) {
    if (out.size() >= max_m) return;
    bool keep = true;
    for (Index sel : out) {
      // An already-selected neighbor closer to the candidate than the base
      // point occludes it — the candidate is reachable through `sel`.
      if (node_dist(id, sel) < d) {
        keep = false;
        break;
      }
    }
    if (keep) out.push_back(id);
  }
  if (out.size() >= max_m) return;
  // Backfill with the nearest pruned candidates: full degrees keep the
  // graph navigable when the heuristic is aggressive (clustered rows).
  for (const auto& [d, id] : cand) {
    if (out.size() >= max_m) return;
    if (std::find(out.begin(), out.end(), id) == out.end()) out.push_back(id);
  }
}

std::shared_ptr<const HnswRetriever::Graph> HnswRetriever::build() const {
  auto g = std::make_shared<Graph>();
  const Index n = rows_.count;
  g->links.resize(static_cast<std::size_t>(n));
  if (n == 0) return g;

  // All level draws up front, one per node in id order, from one seeded
  // stream — the insertion loop below consumes no randomness at all.
  const double ml = 1.0 / std::log(static_cast<double>(config_.m));
  Rng rng(seed_);
  std::vector<int> levels(static_cast<std::size_t>(n));
  for (auto& level : levels) {
    const double u = std::max(rng.uniform_double(), 1e-300);
    level = std::min(kMaxLevel, static_cast<int>(-std::log(u) * ml));
  }

  const std::size_t m = static_cast<std::size_t>(config_.m);
  const std::size_t ef = static_cast<std::size_t>(config_.ef_construction);
  Scratch& s = scratch();
  std::vector<Scored> pool;
  std::vector<Scored> rescored;
  std::vector<Index> pruned;
  for (Index i = 0; i < n; ++i) {
    const int li = levels[static_cast<std::size_t>(i)];
    g->links[static_cast<std::size_t>(i)].assign(
        static_cast<std::size_t>(li) + 1, {});
    if (g->max_level < 0) {
      g->entry = i;
      g->max_level = li;
      continue;
    }
    const float* qrow = rows_.row(i);
    auto dist = [&](Index v) {
      return -simd::dot(qrow, rows_.row(v),
                        static_cast<std::size_t>(rows_.dim));
    };
    Index curr = g->entry;
    float curr_dist = dist(curr);
    for (int lc = g->max_level; lc > li; --lc)
      greedy_descend(*g, dist, lc, curr, curr_dist);
    for (int lc = std::min(g->max_level, li); lc >= 0; --lc) {
      s.begin(n);
      s.visit(curr);
      search_layer(*g, dist, curr, curr_dist, lc, ef, s);
      pool.assign(s.top.begin(), s.top.end());
      const std::size_t cap = lc == 0 ? 2 * m : m;
      std::vector<Index>& own =
          g->links[static_cast<std::size_t>(i)][static_cast<std::size_t>(lc)];
      select_neighbors(pool, cap, own);  // sorts pool ascending
      for (Index nb : own) {
        std::vector<Index>& back = g->links[static_cast<std::size_t>(
            nb)][static_cast<std::size_t>(lc)];
        back.push_back(i);
        if (back.size() > cap) {
          rescored.clear();
          for (Index id : back) rescored.emplace_back(node_dist(nb, id), id);
          select_neighbors(rescored, cap, pruned);
          back = pruned;
        }
      }
      if (!pool.empty()) {
        curr = pool.front().second;
        curr_dist = pool.front().first;
      }
    }
    if (li > g->max_level) {
      g->max_level = li;
      g->entry = i;
    }
  }
  return g;
}

void HnswRetriever::rebuild(ThreadPool* pool) {
  (void)pool;
  publish(build());
}

void HnswRetriever::retrieve(std::span<const Index> query_ids,
                             std::span<const float> query_act, Index budget,
                             Rng& rng, VisitedSet& visited,
                             std::vector<Index>& out, bool fresh_epoch) const {
  (void)rng;  // the search is deterministic; the Rng is contract surface
  if (fresh_epoch) visited.begin_epoch();
  const std::shared_ptr<const Graph> g = snapshot();
  if (g == nullptr || g->max_level < 0 || budget <= 0) return;

  auto dist = [&](Index v) {
    const float* row = rows_.row(v);
    return query_ids.empty()
               ? -simd::dot(query_act.data(), row,
                            static_cast<std::size_t>(rows_.dim))
               : -simd::sparse_dot(query_ids.data(), query_act.data(),
                                   query_ids.size(), row);
  };

  Index curr = g->entry;
  float curr_dist = dist(curr);
  for (int lc = g->max_level; lc >= 1; --lc)
    greedy_descend(*g, dist, lc, curr, curr_dist);

  const std::size_t ef = std::max<std::size_t>(
      static_cast<std::size_t>(config_.ef_search),
      static_cast<std::size_t>(budget));
  Scratch& s = scratch();
  s.begin(rows_.count);
  s.visit(curr);
  search_layer(*g, dist, curr, curr_dist, 0, ef, s);

  // Emit best-first so a caller truncating to `budget` keeps the closest.
  std::sort(s.top.begin(), s.top.end());
  Index emitted = 0;
  for (const auto& [d, id] : s.top) {
    if (emitted >= budget) break;
    if (masked(id)) continue;
    if (visited.insert(id)) {
      out.push_back(id);
      ++emitted;
    }
  }
}

void HnswRetriever::save_state(std::ostream& out) const {
  const std::shared_ptr<const Graph> g = snapshot();
  write_u32(out, static_cast<std::uint32_t>(rows_.count));
  write_u32(out, static_cast<std::uint32_t>(config_.m));
  write_u32(out, g == nullptr ? 0u : static_cast<std::uint32_t>(g->entry));
  write_u32(out, static_cast<std::uint32_t>(
                     g == nullptr ? -1 : g->max_level));
  if (g == nullptr || g->max_level < 0) return;
  for (const auto& node : g->links) {
    write_u32(out, static_cast<std::uint32_t>(node.size()));
    for (const auto& level : node) {
      write_u32(out, static_cast<std::uint32_t>(level.size()));
      for (Index id : level) write_u32(out, id);
    }
  }
}

bool HnswRetriever::load_state(std::istream& in) {
  const std::uint32_t count = read_u32(in);
  const std::uint32_t m = read_u32(in);
  if (count != static_cast<std::uint32_t>(rows_.count)) {
    // A graph saved over a different universe (e.g. the layer grew or
    // shrank relative to this checkpoint) indexes the wrong id space:
    // decline and let the caller rebuild from the rows.
    return false;
  }
  SLIDE_CHECK(m == static_cast<std::uint32_t>(config_.m),
              "hnsw state: m mismatch");
  auto g = std::make_shared<Graph>();
  g->entry = read_u32(in);
  g->max_level = static_cast<std::int32_t>(read_u32(in));
  if (g->max_level < 0) {
    // An empty graph was saved (never built): nothing usable to restore.
    return false;
  }
  SLIDE_CHECK(g->entry < rows_.count, "hnsw state: entry out of range");
  g->links.resize(count);
  for (auto& node : g->links) {
    const std::uint32_t nlevels = read_u32(in);
    SLIDE_CHECK(nlevels <= static_cast<std::uint32_t>(kMaxLevel) + 1,
                "hnsw state: corrupt level count");
    node.resize(nlevels);
    for (auto& level : node) {
      const std::uint32_t deg = read_u32(in);
      SLIDE_CHECK(deg <= count, "hnsw state: corrupt degree");
      level.resize(deg);
      for (Index& id : level) {
        id = read_u32(in);
        SLIDE_CHECK(id < rows_.count, "hnsw state: neighbor out of range");
      }
    }
  }
  publish(std::move(g));
  return true;
}

std::size_t HnswRetriever::memory_bytes() const noexcept {
  const std::shared_ptr<const Graph> g = snapshot();
  if (g == nullptr) return 0;
  std::size_t bytes = 0;
  for (const auto& node : g->links) {
    bytes += sizeof(node);
    for (const auto& level : node)
      bytes += sizeof(level) + level.capacity() * sizeof(Index);
  }
  return bytes;
}

}  // namespace slide::retrieval
