// Hot-swappable model snapshots (RCU-style publish/read).
//
// A ModelSnapshot is an immutable, fully-built model: a const Network with
// its hash tables already rebuilt, plus a monotonically increasing version.
// The ModelStore holds the current snapshot behind a shared_ptr; readers
// (engine workers) grab a reference once per micro-batch and keep serving
// on it even if a newer snapshot is published mid-batch — the classic
// read-copy-update shape. Publishing swaps the pointer under a short
// mutex; in-flight requests finish on the old snapshot, which is freed
// when the last reader drops its reference. There is no pause, no
// reader-side locking beyond the pointer copy, and no torn state: a
// snapshot is either fully visible or not yet published.
//
// Checkpoint loads (core/serialize format) construct the fresh Network and
// rebuild its tables *before* the swap, off the serving path — the
// building block for train-and-serve loops where a trainer periodically
// checkpoints and the server picks the weights up with zero pause
// (cf. the parameter-exchange motivation in "Distributed SLIDE", 2022).
#pragma once

#include <atomic>
#include <future>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>

#include "core/network.h"

namespace slide {

struct ModelSnapshot {
  std::shared_ptr<const Network> network;
  std::uint64_t version = 0;
  /// Provenance: checkpoint path, "initial", "published", ...
  std::string source;
  /// Cached network->max_sampled_units(); sizes per-worker scratch.
  Index max_units = 0;
  /// Cached network->input_dim(); validates requests at admission.
  Index input_dim = 0;
};

class ModelStore : public std::enable_shared_from_this<ModelStore> {
 public:
  /// Seeds the store with an already-built network (version 1). The network
  /// must have its hash tables current (e.g. rebuild_all after training).
  explicit ModelStore(std::shared_ptr<const Network> initial,
                      std::string source = "initial");

  /// Boots a store directly from a checkpoint (version 1) — the standalone
  /// server path, with no placeholder network to build and discard.
  static std::shared_ptr<ModelStore> from_checkpoint_file(
      const NetworkConfig& config, const std::string& path,
      int rebuild_threads = 0);

  /// Boots a store whose distributed layers load from per-shard checkpoint
  /// files "<base>.shard<s>of<n>" (core/serialize.h shard files, written by
  /// DistributedSampledLayer::checkpoint_shards): each shard worker reads
  /// its OWN file during kInitShard — the wide layer's weights never cross
  /// the wire. A non-empty `coordinator_checkpoint` then restores the other
  /// layers (embedding, dense mid-stack) from a standard core/serialize
  /// checkpoint. The config must have at least one layer with distributed
  /// endpoints.
  static std::shared_ptr<ModelStore> from_shard_checkpoints(
      NetworkConfig config, const std::string& base,
      const std::string& coordinator_checkpoint = "");

  ModelStore(const ModelStore&) = delete;
  ModelStore& operator=(const ModelStore&) = delete;

  /// The current snapshot; never null. Readers hold the returned pointer
  /// for as long as they need the model — publishing never invalidates it.
  std::shared_ptr<const ModelSnapshot> current() const;

  std::uint64_t version() const;

  /// Atomically publishes an already-built network; returns its version.
  std::uint64_t publish(std::shared_ptr<const Network> network,
                        std::string source = "published");

  /// Builds a fresh Network(config), loads a core/serialize checkpoint into
  /// it, rebuilds its hash tables (`rebuild_threads`, 0 = hardware), then
  /// publishes. All heavy work happens on the calling thread before the
  /// O(1) swap. The config must match the checkpoint architecture
  /// (slide::Error otherwise, store unchanged).
  std::uint64_t load_checkpoint(const NetworkConfig& config, std::istream& in,
                                const std::string& source = "stream",
                                int rebuild_threads = 0);
  std::uint64_t load_checkpoint_file(const NetworkConfig& config,
                                     const std::string& path,
                                     int rebuild_threads = 0);

  /// load_checkpoint_file on a background thread; the future resolves to
  /// the published version (or rethrows the load error). The task holds a
  /// shared_ptr to the store, so the store outlives the load even if the
  /// caller drops its reference — requires the store to be owned by a
  /// shared_ptr (it always is via make_shared / from_checkpoint_file).
  std::future<std::uint64_t> load_checkpoint_file_async(
      NetworkConfig config, std::string path, int rebuild_threads = 0);

  /// Input dimension of the current snapshot (lock-free; updated at
  /// publish). Admission-time request validation reads this on every
  /// submit, so it must not take the snapshot mutex.
  Index input_dim() const noexcept {
    return input_dim_.load(std::memory_order_acquire);
  }

  /// Total successful publishes (including the seed snapshot).
  std::uint64_t publish_count() const;

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const ModelSnapshot> current_;
  std::atomic<Index> input_dim_{0};
  std::uint64_t next_version_ = 1;
  std::uint64_t publish_count_ = 0;
};

/// Convenience for the common train-and-serve handoff: serialize `trained`
/// through an in-memory checkpoint into a fresh network with the same
/// config and publish it. (A direct shared_ptr publish is cheaper when the
/// caller can relinquish ownership; this path clones, so the trainer can
/// keep mutating its own network.)
std::uint64_t publish_clone(ModelStore& store, const Network& trained,
                            int rebuild_threads = 0,
                            const std::string& source = "clone");

/// publish_clone with a serving-precision override: the published snapshot
/// scores inference at `precision` regardless of how the trainer's network
/// is configured. Precision::kBF16 emits a quantized snapshot whose
/// scoring path reads half the weight bytes (Network::memory_footprint);
/// the trainer keeps its fp32 masters untouched. The checkpoint-loading
/// boot paths (from_checkpoint_file / load_checkpoint*) get the same knob
/// through NetworkConfig::precision.
std::uint64_t publish_clone(ModelStore& store, const Network& trained,
                            Precision precision, int rebuild_threads = 0,
                            const std::string& source = "clone");

/// publish_clone with a shard-count override: every hashed layer of the
/// published snapshot is re-partitioned into `shards` model-parallel LSH
/// shards (core/sharded_layer.h) regardless of how the trainer's network is
/// laid out — the checkpoint-v3 loader reshards the weight blocks by global
/// row index, so the served parameters are bit-identical to the trainer's.
/// `shards` = 0 publishes the monolithic layout; this is how a v2-era
/// monolithic model is re-published as a sharded serving snapshot (and how
/// a sharded trainer publishes a monolithic one).
std::uint64_t publish_clone_sharded(ModelStore& store, const Network& trained,
                                    int shards, int rebuild_threads = 0,
                                    const std::string& source = "reshard");

}  // namespace slide
