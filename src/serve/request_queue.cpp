#include "serve/request_queue.h"

namespace slide {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  SLIDE_CHECK(capacity > 0, "RequestQueue: capacity must be positive");
}

bool RequestQueue::try_push(ServeRequest&& request) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(request));
  }
  not_empty_.notify_one();
  return true;
}

bool RequestQueue::pop(ServeRequest& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [&] { return poppable_locked() || closed_; });
  // On close, remaining items still drain (even through a pause — close
  // overrides pause so shutdown cannot deadlock).
  if (items_.empty()) return false;
  out = std::move(items_.front());
  items_.pop_front();
  return true;
}

bool RequestQueue::pop_until(ServeRequest& out,
                             std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait_until(lock, deadline,
                        [&] { return poppable_locked() || closed_; });
  if ((paused_ && !closed_) || items_.empty()) return false;
  out = std::move(items_.front());
  items_.pop_front();
  return true;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

void RequestQueue::set_paused(bool paused) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = paused;
  }
  if (!paused) not_empty_.notify_all();
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

}  // namespace slide
