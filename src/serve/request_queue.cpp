#include "serve/request_queue.h"

namespace slide {

const char* to_string(Priority p) noexcept {
  switch (p) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kDefault:
      return "default";
    case Priority::kBatch:
      return "batch";
  }
  return "unknown";
}

const char* to_string(ShedReason r) noexcept {
  switch (r) {
    case ShedReason::kAdmission:
      return "admission";
    case ShedReason::kQueueEvicted:
      return "evicted";
    case ShedReason::kDeadlineExpired:
      return "expired";
  }
  return "unknown";
}

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  SLIDE_CHECK(capacity > 0, "RequestQueue: capacity must be positive");
}

RequestQueue::PushOutcome RequestQueue::try_push(ServeRequest&& request) {
  PushOutcome outcome;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return outcome;
    if (size_ >= capacity_) {
      // Full. A higher-priority arrival may still be admitted by bumping
      // the *youngest* request of the *lowest*-priority occupied lane:
      // youngest because it has the least sunk queue time, lowest lane
      // because strict priority would serve it last anyway.
      int victim = -1;
      for (int lane = kNumLanes - 1; lane > lane_index(request.priority);
           --lane) {
        if (!lanes_[lane].empty()) {
          victim = lane;
          break;
        }
      }
      if (victim < 0) return outcome;  // backpressure
      outcome.evicted.emplace(std::move(lanes_[victim].back()));
      lanes_[victim].pop_back();
      --size_;
    }
    lanes_[lane_index(request.priority)].push_back(std::move(request));
    ++size_;
    outcome.admitted = true;
  }
  not_empty_.notify_one();
  return outcome;
}

ServeRequest RequestQueue::pop_front_locked() {
  for (int lane = 0; lane < kNumLanes; ++lane) {
    if (!lanes_[lane].empty()) {
      ServeRequest item = std::move(lanes_[lane].front());
      lanes_[lane].pop_front();
      --size_;
      return item;
    }
  }
  SLIDE_CHECK(false, "RequestQueue: pop from empty queue");
  return {};  // unreachable
}

bool RequestQueue::pop(ServeRequest& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [&] { return poppable_locked() || closed_; });
  // On close, remaining items still drain (close() clears pause so
  // shutdown cannot deadlock behind a paused queue).
  if (size_ == 0 || paused_) return false;
  out = pop_front_locked();
  return true;
}

bool RequestQueue::pop_until(ServeRequest& out,
                             std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait_until(lock, deadline,
                        [&] { return poppable_locked() || closed_; });
  if (paused_ || size_ == 0) return false;  // timed out, paused, or drained
  out = pop_front_locked();
  return true;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    // A paused close would strand queued items: unpause so they drain.
    paused_ = false;
  }
  not_empty_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

void RequestQueue::set_paused(bool paused) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;  // close overrides pause, permanently
    paused_ = paused;
  }
  if (!paused) not_empty_.notify_all();
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return size_;
}

std::size_t RequestQueue::lane_depth(Priority lane) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lanes_[lane_index(lane)].size();
}

std::size_t RequestQueue::depth_ahead_of(Priority priority) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t ahead = 0;
  for (int lane = 0; lane <= lane_index(priority); ++lane) {
    ahead += lanes_[lane].size();
  }
  return ahead;
}

}  // namespace slide
