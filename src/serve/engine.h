// Concurrent inference engine: bounded admission, adaptive micro-batching,
// hot-swappable snapshots.
//
// Shape of the system (cf. "Accelerating SLIDE Deep Learning on Modern
// CPUs", 2021 — on CPUs, batching and memory placement decide serving
// throughput):
//
//   clients --> try_push --> [bounded RequestQueue] --> N workers
//                  |                                     |  drain up to
//                  v (full)                              |  max_batch, or
//               rejected                                 |  until the oldest
//                                                        |  waits max_wait_us
//                                                        v
//                                            snapshot = store->current()
//                                            predict_topk per request
//                                            fulfill future / callback
//
// Adaptive micro-batching: a worker takes one request (blocking), then
// keeps draining until either `max_batch` requests are in hand or
// `max_wait_us` has elapsed since the *oldest* request was enqueued —
// whichever comes first. Under light load the window closes on the
// deadline (latency-bound, batch of 1-2); under heavy load it closes on
// size (throughput-bound, full batches) — no tuning knob to flip between
// the two regimes. The whole batch runs against one snapshot reference, so
// a concurrent hot-swap never mixes models within a batch. The batch is
// then dispatched whole through Network::predict_batch (grouped by
// requested top_k/exact, since those change the shape of the answer), and
// the per-worker BatchOutput scratch is reused across batches (its
// contexts are rebuilt only when a swap changes the architecture).
//
// Thread-safety contract with the model: predict_batch is safe for any
// number of concurrent readers while no writer is active (see
// core/network.h); snapshots are immutable by construction, so workers
// need no locks on the model at all.
#pragma once

#include <exception>
#include <iosfwd>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "metrics/latency.h"
#include "serve/request_queue.h"
#include "serve/snapshot.h"

namespace slide {

struct ServeConfig {
  /// Worker threads draining the queue.
  int num_workers = 2;
  /// Dispatch a micro-batch at this many requests...
  int max_batch = 16;
  /// ...or when the oldest queued request has waited this long.
  long max_wait_us = 200;
  /// Admission bound; try_push past this is rejected (backpressure).
  std::size_t queue_capacity = 4096;
  /// Default top-k when submit is called with k = 0.
  int default_top_k = 5;
  /// Score every class instead of LSH-sampled inference (slower, exact).
  bool exact = false;
  /// Seeds the per-worker RNGs driving sampled inference.
  std::uint64_t seed = 0x51CE;
};

/// Point-in-time counters (monotonic since engine construction).
struct ServeStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;   // backpressure at admission
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;     // exceptions routed into futures
  std::uint64_t batches = 0;
  double mean_batch_size = 0.0;
  std::size_t queue_depth = 0;
  std::uint64_t snapshot_version = 0;  // store version at reading time
  std::uint64_t swaps_observed = 0;    // version changes seen by workers
  LatencyHistogram::Summary latency;   // end-to-end, microseconds

  // Distributed model parallelism (all zero unless the served network has a
  // DistributedSampledLayer; see src/dist/).
  bool distributed = false;
  std::uint64_t wire_bytes_sent = 0;      // coordinator -> workers
  std::uint64_t wire_bytes_received = 0;  // workers -> coordinator
  int unhealthy_shards = 0;  // degraded-mode health flag (skipped shards)

  // Per-query adaptive retrieval (all zero unless a served layer runs with
  // sampling.escalation_floor > 0; see src/retrieval/). Escalated queries
  // fall back to exact scoring; `retrieval_recall` is the measured
  // recall@10 of the sampled candidate set against the exact answer on
  // those queries — a live estimate of how much the index is missing.
  bool adaptive_retrieval = false;
  std::uint64_t retrieval_escalations = 0;
  double retrieval_recall = 0.0;
};

class InferenceEngine {
 public:
  InferenceEngine(std::shared_ptr<ModelStore> store, const ServeConfig& config);
  ~InferenceEngine();  // stop(): drains the queue, joins workers

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Submits a request; the future resolves when a worker completes it
  /// (with the result, or with the exception the worker hit serving it).
  /// nullopt = rejected by backpressure (queue full or engine stopped).
  /// Throws slide::Error at admission when a feature index exceeds the
  /// served model's input dimension or page_offset is negative. top_k = 0
  /// uses config().default_top_k; exact overrides config().exact when set.
  /// page_offset > 0 returns ranks [page_offset, page_offset + top_k) of
  /// the full ranking instead of the head (pagination; see
  /// Network::topk_iterator) — pages of one query concatenate to exactly
  /// the one-shot top-k when served against the same snapshot version.
  std::optional<std::future<Prediction>> submit(
      SparseVector features, int top_k = 0,
      std::optional<bool> exact = std::nullopt, int page_offset = 0);

  /// Callback flavor: `callback` runs on the worker thread that served the
  /// request (keep it light). False = rejected by backpressure.
  bool submit_callback(SparseVector features,
                       std::function<void(Prediction)> callback, int top_k = 0,
                       std::optional<bool> exact = std::nullopt,
                       int page_offset = 0);

  /// Drain control: paused workers finish their in-flight batch, then hold;
  /// admission stays open (the queue absorbs up to queue_capacity).
  void pause();
  void resume();

  /// Closes admission, drains every queued request, joins workers. Futures
  /// of already-admitted requests all resolve. Idempotent; the destructor
  /// calls it.
  void stop();

  ServeStats stats() const;
  /// Renders stats as a markdown table (metrics/table_printer).
  void print_stats(std::ostream& out) const;

  std::size_t queue_depth() const { return queue_.depth(); }
  const ServeConfig& config() const noexcept { return config_; }
  const ModelStore& store() const noexcept { return *store_; }

 private:
  /// Shared admission path: validates features (throws slide::Error on an
  /// out-of-range index) and stamps defaults + enqueue time.
  ServeRequest prepare_request(SparseVector features, int top_k,
                               std::optional<bool> exact, int page_offset);
  /// Pushes or rejects (backpressure), keeping the counters in step.
  bool enqueue(ServeRequest&& request);

  void worker_main(int worker_id);
  void serve_batch(std::vector<ServeRequest>& batch, int worker_id);
  /// Routes an error into the request's future and counts it.
  void fail(ServeRequest& request, std::exception_ptr error) noexcept;

  ServeConfig config_;
  std::shared_ptr<ModelStore> store_;
  RequestQueue queue_;
  std::vector<std::thread> workers_;

  // Per-worker snapshot + scratch, touched only by that worker's thread.
  struct WorkerState {
    std::shared_ptr<const ModelSnapshot> snapshot;
    BatchOutput out;  // predict_batch result + reused context scratch
    // Dispatch-group scratch (requests sharing top_k/exact/page_offset).
    std::vector<const SparseVector*> group_features;
    std::vector<std::size_t> group_members;
    std::vector<char> served;
    // Pagination path (page_offset > 0): single-sample context + result
    // scratch, re-targeted on snapshot swaps.
    InferenceContext page_ctx{1};
    std::vector<Index> page_out;
  };
  std::vector<WorkerState> worker_state_;

  LatencyHistogram latency_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> swaps_observed_{0};
  std::atomic<bool> stopped_{false};
};

}  // namespace slide
