// Concurrent inference engine: bounded admission, adaptive micro-batching,
// hot-swappable snapshots, SLO-aware shedding.
//
// Shape of the system (cf. "Accelerating SLIDE Deep Learning on Modern
// CPUs", 2021 — on CPUs, batching and memory placement decide serving
// throughput):
//
//   clients --> submit --> [3-lane RequestQueue] --> N workers
//                 |          interactive>default>batch  |  drain up to
//                 |  (full)        |                    |  max_batch, or
//                 +--> rejected    | (deadline passed   |  until the oldest
//                 |  (hopeless     |  while queued)     |  waits max_wait_us
//                 |   deadline)    v                    v
//                 +--> shed      shed       snapshot = store->current()
//                                           predict_topk per request
//                                           fulfill future / callback
//
// Adaptive micro-batching: a worker takes one request (blocking), then
// keeps draining until either `max_batch` requests are in hand or
// `max_wait_us` has elapsed since the *oldest* request was enqueued —
// whichever comes first. Under light load the window closes on the
// deadline (latency-bound, batch of 1-2); under heavy load it closes on
// size (throughput-bound, full batches) — no tuning knob to flip between
// the two regimes. The whole batch runs against one snapshot reference, so
// a concurrent hot-swap never mixes models within a batch. The batch is
// then dispatched whole through Network::predict_batch (grouped by
// requested top_k/exact, since those change the shape of the answer), and
// the per-worker BatchOutput scratch is reused across batches (its
// contexts are rebuilt only when a swap changes the architecture).
//
// SLO awareness: every request may carry an absolute deadline and a
// priority lane (ServeOptions). The queue pops strict-priority; a full
// queue evicts batch work to admit interactive work. Requests whose
// deadline cannot be met are shed — at admission (deadline already past,
// or the EWMA of recent per-request service times says the queue wait
// alone exceeds it) or at pop time (deadline expired while queued). A
// shed request's future resolves with the typed ShedError (never hangs),
// distinct from a serving failure; sheds are counted per lane and reason,
// never as errors.
//
// Thread-safety contract with the model: predict_batch is safe for any
// number of concurrent readers while no writer is active (see
// core/network.h); snapshots are immutable by construction, so workers
// need no locks on the model at all.
#pragma once

#include <chrono>
#include <exception>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "metrics/latency.h"
#include "serve/request_queue.h"
#include "serve/snapshot.h"

namespace slide {

struct ServeConfig {
  /// Worker threads draining the queue.
  int num_workers = 2;
  /// Dispatch a micro-batch at this many requests...
  int max_batch = 16;
  /// ...or when the oldest queued request has waited this long.
  long max_wait_us = 200;
  /// Admission bound; try_push past this is rejected (backpressure).
  std::size_t queue_capacity = 4096;
  /// Default top-k when submit is called with k = 0.
  int default_top_k = 5;
  /// Score every class instead of LSH-sampled inference (slower, exact).
  bool exact = false;
  /// Seeds the per-worker RNGs driving sampled inference.
  std::uint64_t seed = 0x51CE;
  /// Smoothing of the per-request service-time EWMA behind deadline
  /// admission control (higher = more reactive to the latest batch).
  double service_ewma_alpha = 0.2;
};

/// Per-request serving options — everything submit() accepts beyond the
/// feature vector. Designated initializers read best at call sites:
///   engine.submit(x, {.top_k = 3, .priority = Priority::kInteractive});
/// the fluent with_* setters exist for call sites built incrementally.
struct ServeOptions {
  /// 0 = ServeConfig::default_top_k.
  int top_k = 0;
  /// Overrides ServeConfig::exact when set.
  std::optional<bool> exact = std::nullopt;
  /// Ranks [page_offset, page_offset + top_k) of the full ranking instead
  /// of the head (pagination; see Network::topk_iterator).
  int page_offset = 0;
  /// Priority lane (strict: interactive > default > batch).
  Priority priority = Priority::kDefault;
  /// Absolute SLO deadline; kNoDeadline = serve no matter how long it
  /// takes. A request that cannot meet its deadline is shed with the typed
  /// ShedError instead of served late.
  std::chrono::steady_clock::time_point deadline = kNoDeadline;

  ServeOptions& with_top_k(int k) {
    top_k = k;
    return *this;
  }
  ServeOptions& with_exact(bool e) {
    exact = e;
    return *this;
  }
  ServeOptions& with_page_offset(int offset) {
    page_offset = offset;
    return *this;
  }
  ServeOptions& with_priority(Priority p) {
    priority = p;
    return *this;
  }
  ServeOptions& with_deadline(std::chrono::steady_clock::time_point d) {
    deadline = d;
    return *this;
  }
  /// Deadline relative to now — the common client idiom.
  ServeOptions& with_deadline_in(std::chrono::microseconds budget) {
    deadline = std::chrono::steady_clock::now() + budget;
    return *this;
  }
};

/// Policy knobs for the online-update path (enable_online_updates).
struct OnlineUpdateConfig {
  /// Adam learning rate applied to each update() call's samples.
  float learning_rate = 1e-3f;
  /// Republish a serving snapshot every this many update() calls (1 =
  /// every call). Between publishes the fp32 master absorbs deltas while
  /// traffic keeps serving the previous immutable snapshot.
  std::uint64_t publish_every = 1;
  /// Threads for the clone-side table rebuild at publish (0 = hardware).
  int rebuild_threads = 1;
  /// Shard count of the published snapshot: -1 keeps the master's layout,
  /// 0 forces monolithic, n > 0 re-partitions (publish_clone_sharded).
  int publish_shards = -1;
  /// Serving precision of published snapshots; nullopt = the master's own
  /// precision (publish_clone re-quantizes mirrors from fp32 either way).
  std::optional<Precision> publish_precision = std::nullopt;
  /// Seeds the update path's sampled-training RNG.
  std::uint64_t seed = 0x0511DEull;
};

/// One batch of live-traffic model change: label-space growth/retirement
/// plus training samples, applied atomically to the fp32 master.
struct OnlineDelta {
  /// Output units to append before training (0 = none). New labels become
  /// retrievable in the NEXT published snapshot.
  Index add_units = 0;
  /// Output units to tombstone out of retrieval/top-k (rows survive; see
  /// Layer::retire_units).
  std::vector<Index> retire;
  /// Samples trained against the fp32 master (labels may reference units
  /// added by this same delta).
  std::vector<Sample> samples;
};

/// Point-in-time counters (monotonic since engine construction).
struct ServeStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;   // backpressure at admission
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;     // exceptions routed into futures
  std::uint64_t batches = 0;
  double mean_batch_size = 0.0;
  std::size_t queue_depth = 0;
  std::uint64_t snapshot_version = 0;  // store version at reading time
  std::uint64_t swaps_observed = 0;    // version changes seen by workers
  LatencyHistogram::Summary latency;   // end-to-end, microseconds
  LatencyHistogram::Snapshot latency_buckets;  // full distribution

  /// Per-lane SLO accounting. Indexed by lane_index(Priority).
  struct LaneStats {
    std::size_t queue_depth = 0;
    std::uint64_t completed = 0;
    /// Shed at admission: deadline already past, or the EWMA queue-wait
    /// estimate said it could not be met. Never enqueued, never counted
    /// as submitted.
    std::uint64_t shed_admission = 0;
    /// Evicted from the full queue by a higher-priority admission.
    std::uint64_t shed_evicted = 0;
    /// Deadline expired while queued; dropped at pop time.
    std::uint64_t shed_expired = 0;
    /// Served to completion, but past the deadline (the SLO leak the
    /// admission estimate did not catch).
    std::uint64_t deadline_misses = 0;
    LatencyHistogram::Summary latency;
    LatencyHistogram::Snapshot buckets;
  };
  LaneStats lanes[kNumLanes];
  std::uint64_t shed_total = 0;      // all lanes, all reasons
  std::uint64_t deadline_misses = 0; // all lanes
  /// EWMA of per-request service time feeding admission control; 0 until
  /// the first batch completes.
  double ewma_service_us = 0.0;

  // Distributed model parallelism (all zero unless the served network has a
  // DistributedSampledLayer; see src/dist/).
  bool distributed = false;
  std::uint64_t wire_bytes_sent = 0;      // coordinator -> workers
  std::uint64_t wire_bytes_received = 0;  // workers -> coordinator
  int unhealthy_shards = 0;  // degraded-mode health flag (skipped shards)

  // Per-query adaptive retrieval (all zero unless a served layer runs with
  // sampling.escalation_floor > 0; see src/retrieval/). Escalated queries
  // fall back to exact scoring; `retrieval_recall` is the measured
  // recall@10 of the sampled candidate set against the exact answer on
  // those queries — a live estimate of how much the index is missing.
  bool adaptive_retrieval = false;
  std::uint64_t retrieval_escalations = 0;
  double retrieval_recall = 0.0;

  // Online updates (all zero unless enable_online_updates was called).
  bool online_updates = false;
  std::uint64_t online_update_calls = 0;  // update() calls absorbed
  std::uint64_t online_publishes = 0;     // snapshots published by cadence
  std::uint64_t labels_added = 0;         // output units appended, lifetime
  std::uint64_t labels_retired = 0;       // retire requests applied, lifetime

  // Dynamic label space of the CURRENT snapshot (nonzero only after
  // growth/retirement reached a published snapshot or checkpoint).
  Index snapshot_appended_labels = 0;  // units appended since construction
  Index snapshot_retired_labels = 0;   // ids currently tombstoned

  /// Memory footprint of the current snapshot's network — the fix for the
  /// historic under-report: retriever_bytes (HNSW graph, LSH buckets) is
  /// now part of the accounting and the Prometheus export.
  MemoryFootprint memory;
};

class InferenceEngine {
 public:
  InferenceEngine(std::shared_ptr<ModelStore> store, const ServeConfig& config);
  ~InferenceEngine();  // stop(): drains the queue, joins workers

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Submits a request; the future resolves when a worker completes it
  /// (with the result, or with the exception the worker hit serving it,
  /// or — when the request is shed by deadline/overload policy — with a
  /// slide::ShedError carrying the shed reason; shed futures never hang).
  /// nullopt = rejected by backpressure (queue full of same-or-higher
  /// priority work, or engine stopped). Throws slide::Error at admission
  /// when a feature index exceeds the served model's input dimension or
  /// page_offset is negative.
  std::optional<std::future<Prediction>> submit(
      SparseVector features, const ServeOptions& options = {});

  /// Callback flavor: `callback` runs on the worker thread that served the
  /// request (keep it light). False = not served: rejected by backpressure
  /// OR shed at admission (stats() distinguishes). A shed callback request
  /// never invokes the callback.
  bool submit_callback(SparseVector features,
                       std::function<void(Prediction)> callback,
                       const ServeOptions& options = {});

  /// Pre-ServeOptions positional signatures, kept as thin shims.
  [[deprecated("use submit(features, ServeOptions{.top_k = ...})")]]
  std::optional<std::future<Prediction>> submit(
      SparseVector features, int top_k,
      std::optional<bool> exact = std::nullopt, int page_offset = 0);
  [[deprecated(
      "use submit_callback(features, callback, ServeOptions{.top_k = ...})")]]
  bool submit_callback(SparseVector features,
                       std::function<void(Prediction)> callback, int top_k,
                       std::optional<bool> exact = std::nullopt,
                       int page_offset = 0);

  /// Drain control: paused workers finish their in-flight batch, then hold;
  /// admission stays open (the queue absorbs up to queue_capacity).
  void pause();
  void resume();

  /// Closes admission, drains every queued request, joins workers. Futures
  /// of already-admitted requests all resolve. Idempotent; the destructor
  /// calls it.
  void stop();

  // ---- Online updates (dynamic label lifecycle on live traffic) ----
  //
  // The engine serves immutable snapshots; `master` is the mutable fp32
  // network that absorbs deltas off the serving path. update() grows /
  // retires output labels and trains on the delta's samples, then — on the
  // configured cadence — republishes a quantized clone through the store's
  // RCU swap (publish_clone / publish_clone_sharded), so in-flight batches
  // finish on the old snapshot and new batches see the new label space.
  // update() calls are serialized internally; safe to call concurrently
  // with submit() from any thread.

  /// Arms the online-update path. `master` must be the serving-equivalent
  /// trainer network (typically the one the store was seeded from, or a
  /// fp32 twin of the checkpoint). Callable once; throws on a second call
  /// or a null master.
  void enable_online_updates(std::shared_ptr<Network> master,
                             const OnlineUpdateConfig& config = {});
  bool online_updates_enabled() const noexcept {
    return online_enabled_.load(std::memory_order_acquire);
  }

  /// Applies one delta to the master (grow, retire, train — in that
  /// order), republishing per OnlineUpdateConfig::publish_every. Returns
  /// the store version serving traffic after the call (unchanged when the
  /// cadence did not publish). Throws slide::Error if online updates are
  /// not enabled or the delta is malformed (e.g. retire id out of range).
  std::uint64_t update(const OnlineDelta& delta);

  /// Forces an immediate publish of the master's current state regardless
  /// of cadence (e.g. before a planned drain). Returns the new version.
  std::uint64_t publish_now();

  ServeStats stats() const;
  /// Renders stats as a markdown table (metrics/table_printer).
  void print_stats(std::ostream& out) const;

  std::size_t queue_depth() const { return queue_.depth(); }
  const ServeConfig& config() const noexcept { return config_; }
  const ModelStore& store() const noexcept { return *store_; }

 private:
  /// Shared admission path: validates features (throws slide::Error on an
  /// out-of-range index) and stamps defaults + enqueue time.
  ServeRequest prepare_request(SparseVector features,
                               const ServeOptions& options);
  /// Deadline admission control: true when the request should be shed
  /// before enqueueing (deadline already past, or EWMA queue-wait estimate
  /// exceeds the remaining budget).
  bool should_shed_at_admission(const ServeRequest& request) const;
  /// Pushes or rejects (backpressure), keeping the counters in step and
  /// shedding any lower-priority request the push evicted.
  bool enqueue(ServeRequest&& request);
  /// Resolves a shed request's future with ShedError and counts it per
  /// lane/reason. Sheds are policy, not failure: errors_ is untouched.
  void shed(ServeRequest& request, ShedReason reason) noexcept;

  void worker_main(int worker_id);
  void serve_batch(std::vector<ServeRequest>& batch, int worker_id);
  /// Publishes the master per OnlineUpdateConfig (caller holds
  /// online_mutex_). Returns the new store version.
  std::uint64_t publish_master_locked();
  /// Routes an error into the request's future and counts it.
  void fail(ServeRequest& request, std::exception_ptr error) noexcept;
  /// Folds one batch's per-request service time into the admission EWMA.
  void update_service_ewma(double per_request_us) noexcept;

  ServeConfig config_;
  std::shared_ptr<ModelStore> store_;
  RequestQueue queue_;
  std::vector<std::thread> workers_;

  // Per-worker snapshot + scratch, touched only by that worker's thread.
  struct WorkerState {
    std::shared_ptr<const ModelSnapshot> snapshot;
    BatchOutput out;  // predict_batch result + reused context scratch
    // Dispatch-group scratch (requests sharing top_k/exact/page_offset).
    std::vector<const SparseVector*> group_features;
    std::vector<std::size_t> group_members;
    std::vector<char> served;
    // Pagination path (page_offset > 0): single-sample context + result
    // scratch, re-targeted on snapshot swaps.
    InferenceContext page_ctx{1};
    std::vector<Index> page_out;
  };
  std::vector<WorkerState> worker_state_;

  struct LaneCounters {
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> shed_admission{0};
    std::atomic<std::uint64_t> shed_evicted{0};
    std::atomic<std::uint64_t> shed_expired{0};
    std::atomic<std::uint64_t> deadline_misses{0};
  };

  // Online-update state, all behind online_mutex_ except the atomics
  // (read lock-free by stats()).
  std::shared_ptr<Network> online_master_;
  OnlineUpdateConfig online_config_;
  mutable std::mutex online_mutex_;
  Rng online_rng_{0x0511DEull};
  std::unique_ptr<VisitedSet> online_visited_;
  long online_iteration_ = 0;  // feeds Network::maybe_rebuild schedules
  std::atomic<bool> online_enabled_{false};
  std::atomic<std::uint64_t> online_updates_{0};
  std::atomic<std::uint64_t> online_publishes_{0};
  std::atomic<std::uint64_t> labels_added_{0};
  std::atomic<std::uint64_t> labels_retired_{0};
  /// Master's appended_units() at the last online publish — published
  /// clones are built at the grown width, so they cannot report this
  /// themselves (see publish_master_locked).
  std::atomic<Index> published_appended_{0};

  LatencyHistogram latency_;
  LatencyHistogram lane_latency_[kNumLanes];
  LaneCounters lane_counters_[kNumLanes];
  std::atomic<double> ewma_service_us_{0.0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> swaps_observed_{0};
  std::atomic<bool> stopped_{false};
};

}  // namespace slide
