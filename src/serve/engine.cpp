#include "serve/engine.h"

#include <ostream>
#include <utility>

#include "dist/distributed_layer.h"
#include "metrics/table_printer.h"

namespace slide {

InferenceEngine::InferenceEngine(std::shared_ptr<ModelStore> store,
                                 const ServeConfig& config)
    : config_(config),
      store_(std::move(store)),
      queue_(config.queue_capacity) {
  SLIDE_CHECK(store_ != nullptr, "InferenceEngine: store must not be null");
  SLIDE_CHECK(config_.num_workers > 0,
              "InferenceEngine: num_workers must be positive");
  SLIDE_CHECK(config_.max_batch > 0,
              "InferenceEngine: max_batch must be positive");
  SLIDE_CHECK(config_.max_wait_us >= 0,
              "InferenceEngine: max_wait_us must be non-negative");
  SLIDE_CHECK(config_.default_top_k > 0,
              "InferenceEngine: default_top_k must be positive");
  worker_state_.resize(static_cast<std::size_t>(config_.num_workers));
  workers_.reserve(static_cast<std::size_t>(config_.num_workers));
  for (int w = 0; w < config_.num_workers; ++w) {
    // Distinct per-worker seeds drive the sampled-inference RNGs inside the
    // worker's BatchOutput contexts.
    worker_state_[static_cast<std::size_t>(w)].out = BatchOutput(
        config_.seed + 0x9E37u * static_cast<std::uint64_t>(w + 1));
    worker_state_[static_cast<std::size_t>(w)].page_ctx = InferenceContext(
        1, config_.seed + 0xA11CEull * static_cast<std::uint64_t>(w + 1));
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

InferenceEngine::~InferenceEngine() { stop(); }

ServeRequest InferenceEngine::prepare_request(SparseVector features,
                                              int top_k,
                                              std::optional<bool> exact,
                                              int page_offset) {
  // Validate at admission (indices are sorted, so this is one lock-free
  // comparison) — a malformed request must never reach a worker, where it
  // would corrupt or kill the whole serving process. Workers re-validate
  // against the snapshot actually serving the batch, so a hot-swap between
  // admission and service cannot re-open the hole.
  SLIDE_CHECK(features.min_dim() <= store_->input_dim(),
              "InferenceEngine: feature index out of range for the served "
              "model");
  SLIDE_CHECK(page_offset >= 0,
              "InferenceEngine: page_offset must be non-negative");
  ServeRequest request;
  request.features = std::move(features);
  request.top_k = top_k > 0 ? top_k : config_.default_top_k;
  request.exact = exact.value_or(config_.exact);
  request.page_offset = page_offset;
  request.enqueue_time = std::chrono::steady_clock::now();
  return request;
}

bool InferenceEngine::enqueue(ServeRequest&& request) {
  if (!queue_.try_push(std::move(request))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::optional<std::future<Prediction>> InferenceEngine::submit(
    SparseVector features, int top_k, std::optional<bool> exact,
    int page_offset) {
  ServeRequest request =
      prepare_request(std::move(features), top_k, exact, page_offset);
  std::future<Prediction> future = request.promise.get_future();
  if (!enqueue(std::move(request))) return std::nullopt;
  return future;
}

bool InferenceEngine::submit_callback(SparseVector features,
                                      std::function<void(Prediction)> callback,
                                      int top_k, std::optional<bool> exact,
                                      int page_offset) {
  SLIDE_CHECK(callback != nullptr,
              "InferenceEngine: callback must not be empty");
  ServeRequest request =
      prepare_request(std::move(features), top_k, exact, page_offset);
  request.callback = std::move(callback);
  return enqueue(std::move(request));
}

void InferenceEngine::pause() { queue_.set_paused(true); }

void InferenceEngine::resume() { queue_.set_paused(false); }

void InferenceEngine::stop() {
  if (stopped_.exchange(true)) return;
  queue_.close();        // admission off; queued items still drain
  queue_.set_paused(false);
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void InferenceEngine::worker_main(int worker_id) {
  std::vector<ServeRequest> batch;
  batch.reserve(static_cast<std::size_t>(config_.max_batch));
  ServeRequest request;
  while (queue_.pop(request)) {
    batch.clear();
    batch.push_back(std::move(request));
    // Window closes at max_batch requests or max_wait_us after the oldest
    // enqueue — an already-late first request drains only what is
    // immediately available (deadline in the past).
    const auto deadline =
        batch.front().enqueue_time + std::chrono::microseconds(config_.max_wait_us);
    while (static_cast<int>(batch.size()) < config_.max_batch) {
      ServeRequest next;
      if (!queue_.pop_until(next, deadline)) break;
      batch.push_back(std::move(next));
    }
    serve_batch(batch, worker_id);
  }
}

void InferenceEngine::serve_batch(std::vector<ServeRequest>& batch,
                                  int worker_id) {
  WorkerState& state = worker_state_[static_cast<std::size_t>(worker_id)];
  // One snapshot reference for the whole batch: a concurrent publish
  // never mixes two models inside a batch, and the old model stays alive
  // until the last in-flight batch releases it (RCU grace period).
  std::shared_ptr<const ModelSnapshot> snap = store_->current();
  if (state.snapshot == nullptr || state.snapshot->version != snap->version) {
    if (state.snapshot != nullptr)
      swaps_observed_.fetch_add(1, std::memory_order_relaxed);
    state.snapshot = snap;
    // The BatchOutput's context scratch is sized by the snapshot's
    // architecture; predict_batch rebuilds it automatically when the
    // max-units signature changes. The pagination context is ours to
    // re-target (reset keeps the worker's RNG stream).
    state.page_ctx.reset(*snap->network);
  }
  // Batch composition is final here; count it before fulfilling any
  // promise so stats() read after a future resolves always sees the batch.
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(batch.size(), std::memory_order_relaxed);
  const Network& network = *snap->network;
  const std::size_t n = batch.size();

  // A failure on one request must not take down the worker (an uncaught
  // exception in a std::thread is std::terminate — the whole server):
  // route it into the request's future and keep draining.
  auto fulfill = [&](ServeRequest& r, std::span<const Index> labels) {
    try {
      Prediction result;
      result.snapshot_version = snap->version;
      result.labels.assign(labels.begin(), labels.end());
      result.latency_us =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - r.enqueue_time)
              .count();
      latency_.record(result.latency_us);
      if (r.callback) {
        r.callback(std::move(result));
        completed_.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Counted before set_value so stats() observed after the future
        // resolves always includes this request; set_value runs no user
        // code, so it cannot fail past this point.
        completed_.fetch_add(1, std::memory_order_relaxed);
        r.promise.set_value(std::move(result));
      }
    } catch (...) {
      fail(r, std::current_exception());
    }
  };

  // Requests already failed (validation) or served drop out of dispatch.
  state.served.assign(n, 0);

  // Admission validated against the then-current snapshot; a hot-swap to a
  // narrower model may have happened since, so re-check against the
  // snapshot actually serving this batch.
  for (std::size_t i = 0; i < n; ++i) {
    try {
      SLIDE_CHECK(batch[i].features.min_dim() <= snap->input_dim,
                  "InferenceEngine: feature index out of range for the "
                  "snapshot serving this request");
    } catch (...) {
      fail(batch[i], std::current_exception());
      state.served[i] = 1;
    }
  }

  // Dispatch the micro-batch whole: group requests that share
  // (top_k, exact, page_offset) — those parameters shape the answer — and
  // run each group through Network::predict_batch in one call. Paged
  // groups (offset > 0) have no batch entry point; they run per-row
  // through predict_topk_page on the worker's own context.
  for (std::size_t i = 0; i < n; ++i) {
    if (state.served[i]) continue;
    const int top_k = batch[i].top_k;
    const bool exact = batch[i].exact;
    const int page_offset = batch[i].page_offset;
    state.group_features.clear();
    state.group_members.clear();
    for (std::size_t j = i; j < n; ++j) {
      if (state.served[j] || batch[j].top_k != top_k ||
          batch[j].exact != exact || batch[j].page_offset != page_offset)
        continue;
      state.group_features.push_back(&batch[j].features);
      state.group_members.push_back(j);
      state.served[j] = 1;
    }
    if (page_offset > 0) {
      for (std::size_t member : state.group_members) {
        try {
          network.predict_topk_page(batch[member].features, state.page_ctx,
                                    top_k, page_offset, exact,
                                    state.page_out);
          fulfill(batch[member], state.page_out);
        } catch (...) {
          fail(batch[member], std::current_exception());
        }
      }
      continue;
    }
    try {
      network.predict_batch(
          std::span<const SparseVector* const>(state.group_features),
          state.out, /*pool=*/nullptr, top_k, exact);
      for (std::size_t g = 0; g < state.group_members.size(); ++g)
        fulfill(batch[state.group_members[g]], state.out.row(g));
    } catch (...) {
      // The whole group failed before any row was produced.
      for (std::size_t member : state.group_members)
        fail(batch[member], std::current_exception());
    }
  }
}

void InferenceEngine::fail(ServeRequest& request,
                           std::exception_ptr error) noexcept {
  errors_.fetch_add(1, std::memory_order_relaxed);
  if (!request.callback) {
    try {
      request.promise.set_exception(std::move(error));
    } catch (const std::future_error&) {
      // set_value already succeeded: the exception came from the
      // callback-free tail (nothing left to report) — counted above.
    }
  }
}

ServeStats InferenceEngine::stats() const {
  ServeStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  const std::uint64_t batched =
      batched_requests_.load(std::memory_order_relaxed);
  s.mean_batch_size =
      s.batches == 0 ? 0.0
                     : static_cast<double>(batched) /
                           static_cast<double>(s.batches);
  s.queue_depth = queue_.depth();
  s.snapshot_version = store_->version();
  s.swaps_observed = swaps_observed_.load(std::memory_order_relaxed);
  s.latency = latency_.summary();
  const std::shared_ptr<const ModelSnapshot> snapshot = store_->current();
  if (snapshot != nullptr && snapshot->network != nullptr) {
    const Network& net = *snapshot->network;
    long overlap = 0;
    long oracle = 0;
    for (int i = 0; i < net.stack_depth(); ++i) {
      const Layer& layer = net.stack(i);
      const RetrievalStats rs = layer.retrieval_stats();
      if (rs.adaptive) {
        s.adaptive_retrieval = true;
        s.retrieval_escalations += static_cast<std::uint64_t>(rs.escalations);
        overlap += rs.overlap;
        oracle += rs.oracle;
      }
      const auto* d =
          dynamic_cast<const dist::DistributedSampledLayer*>(&layer);
      if (d == nullptr) continue;
      s.distributed = true;
      const dist::WireCounters wc = d->wire_counters();
      s.wire_bytes_sent += wc.bytes_sent;
      s.wire_bytes_received += wc.bytes_received;
      s.unhealthy_shards += d->unhealthy_shards();
    }
    if (oracle > 0)
      s.retrieval_recall =
          static_cast<double>(overlap) / static_cast<double>(oracle);
  }
  return s;
}

void InferenceEngine::print_stats(std::ostream& out) const {
  const ServeStats s = stats();
  MarkdownTable table({"metric", "value"});
  table.add_row({"submitted", fmt_int(static_cast<long long>(s.submitted))});
  table.add_row({"completed", fmt_int(static_cast<long long>(s.completed))});
  table.add_row({"rejected", fmt_int(static_cast<long long>(s.rejected))});
  table.add_row({"errors", fmt_int(static_cast<long long>(s.errors))});
  table.add_row({"queue depth", fmt_int(static_cast<long long>(s.queue_depth))});
  table.add_row({"batches", fmt_int(static_cast<long long>(s.batches))});
  table.add_row({"mean batch", fmt(s.mean_batch_size, 2)});
  table.add_row({"snapshot version",
                 fmt_int(static_cast<long long>(s.snapshot_version))});
  table.add_row({"swaps observed",
                 fmt_int(static_cast<long long>(s.swaps_observed))});
  table.add_row({"latency p50", fmt_latency_us(s.latency.p50_us)});
  table.add_row({"latency p95", fmt_latency_us(s.latency.p95_us)});
  table.add_row({"latency p99", fmt_latency_us(s.latency.p99_us)});
  table.add_row({"latency mean", fmt_latency_us(s.latency.mean_us)});
  table.add_row({"latency max", fmt_latency_us(s.latency.max_us)});
  if (s.distributed) {
    table.add_row({"wire bytes sent",
                   fmt_int(static_cast<long long>(s.wire_bytes_sent))});
    table.add_row({"wire bytes received",
                   fmt_int(static_cast<long long>(s.wire_bytes_received))});
    table.add_row({"unhealthy shards",
                   fmt_int(static_cast<long long>(s.unhealthy_shards))});
  }
  if (s.adaptive_retrieval) {
    table.add_row(
        {"retrieval escalations",
         fmt_int(static_cast<long long>(s.retrieval_escalations))});
    table.add_row({"retrieval recall", fmt(s.retrieval_recall, 4)});
  }
  table.print(out);
}

}  // namespace slide
