#include "serve/engine.h"

#include <ostream>
#include <utility>

#include "dist/distributed_layer.h"
#include "metrics/table_printer.h"

namespace slide {

InferenceEngine::InferenceEngine(std::shared_ptr<ModelStore> store,
                                 const ServeConfig& config)
    : config_(config),
      store_(std::move(store)),
      queue_(config.queue_capacity) {
  SLIDE_CHECK(store_ != nullptr, "InferenceEngine: store must not be null");
  SLIDE_CHECK(config_.num_workers > 0,
              "InferenceEngine: num_workers must be positive");
  SLIDE_CHECK(config_.max_batch > 0,
              "InferenceEngine: max_batch must be positive");
  SLIDE_CHECK(config_.max_wait_us >= 0,
              "InferenceEngine: max_wait_us must be non-negative");
  SLIDE_CHECK(config_.default_top_k > 0,
              "InferenceEngine: default_top_k must be positive");
  SLIDE_CHECK(config_.service_ewma_alpha > 0.0 &&
                  config_.service_ewma_alpha <= 1.0,
              "InferenceEngine: service_ewma_alpha must be in (0, 1]");
  worker_state_.resize(static_cast<std::size_t>(config_.num_workers));
  workers_.reserve(static_cast<std::size_t>(config_.num_workers));
  for (int w = 0; w < config_.num_workers; ++w) {
    // Distinct per-worker seeds drive the sampled-inference RNGs inside the
    // worker's BatchOutput contexts.
    worker_state_[static_cast<std::size_t>(w)].out = BatchOutput(
        config_.seed + 0x9E37u * static_cast<std::uint64_t>(w + 1));
    worker_state_[static_cast<std::size_t>(w)].page_ctx = InferenceContext(
        1, config_.seed + 0xA11CEull * static_cast<std::uint64_t>(w + 1));
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

InferenceEngine::~InferenceEngine() { stop(); }

ServeRequest InferenceEngine::prepare_request(SparseVector features,
                                              const ServeOptions& options) {
  // Validate at admission (indices are sorted, so this is one lock-free
  // comparison) — a malformed request must never reach a worker, where it
  // would corrupt or kill the whole serving process. Workers re-validate
  // against the snapshot actually serving the batch, so a hot-swap between
  // admission and service cannot re-open the hole.
  SLIDE_CHECK(features.min_dim() <= store_->input_dim(),
              "InferenceEngine: feature index out of range for the served "
              "model");
  SLIDE_CHECK(options.page_offset >= 0,
              "InferenceEngine: page_offset must be non-negative");
  ServeRequest request;
  request.features = std::move(features);
  request.top_k = options.top_k > 0 ? options.top_k : config_.default_top_k;
  request.exact = options.exact.value_or(config_.exact);
  request.page_offset = options.page_offset;
  request.priority = options.priority;
  request.deadline = options.deadline;
  request.enqueue_time = std::chrono::steady_clock::now();
  return request;
}

bool InferenceEngine::should_shed_at_admission(
    const ServeRequest& request) const {
  if (!request.has_deadline()) return false;
  const auto now = std::chrono::steady_clock::now();
  if (request.expired(now)) return true;
  // Estimated queue wait: requests that will be served before this one
  // (its lane and above), at the EWMA per-request service rate, spread
  // across the worker pool. Until the first batch lands (ewma = 0) admit
  // optimistically — pop-time shedding still backstops the deadline.
  const double ewma = ewma_service_us_.load(std::memory_order_relaxed);
  if (ewma <= 0.0) return false;
  const double ahead =
      static_cast<double>(queue_.depth_ahead_of(request.priority));
  const double est_wait_us = ewma * ahead / config_.num_workers;
  return now + std::chrono::microseconds(static_cast<long>(est_wait_us)) >=
         request.deadline;
}

void InferenceEngine::shed(ServeRequest& request, ShedReason reason) noexcept {
  auto& lane = lane_counters_[lane_index(request.priority)];
  switch (reason) {
    case ShedReason::kAdmission:
      lane.shed_admission.fetch_add(1, std::memory_order_relaxed);
      break;
    case ShedReason::kQueueEvicted:
      lane.shed_evicted.fetch_add(1, std::memory_order_relaxed);
      break;
    case ShedReason::kDeadlineExpired:
      lane.shed_expired.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (request.callback) return;  // documented: callback never invoked
  try {
    request.promise.set_exception(std::make_exception_ptr(ShedError(
        reason, std::string("request shed (") + to_string(reason) +
                    "): deadline/overload policy on lane " +
                    to_string(request.priority))));
  } catch (const std::future_error&) {
    // Promise already satisfied — cannot happen on the shed paths (a
    // request is shed before any fulfill), but set_exception must not
    // throw out of a noexcept member.
  }
}

bool InferenceEngine::enqueue(ServeRequest&& request) {
  RequestQueue::PushOutcome outcome = queue_.try_push(std::move(request));
  if (outcome.evicted) {
    // A lower-priority request was bumped to make room: its future gets
    // the typed shed error, and it stays counted as submitted (it *was*
    // admitted; the accounting identity is
    // completed + errors + shed_evicted + shed_expired == submitted).
    shed(*outcome.evicted, ShedReason::kQueueEvicted);
  }
  if (!outcome.admitted) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::optional<std::future<Prediction>> InferenceEngine::submit(
    SparseVector features, const ServeOptions& options) {
  ServeRequest request = prepare_request(std::move(features), options);
  std::future<Prediction> future = request.promise.get_future();
  if (should_shed_at_admission(request)) {
    // Shed, not rejected: the caller gets a future that resolves
    // immediately with ShedError{kAdmission} — distinguishable from both
    // backpressure (nullopt) and serving failure (other exceptions).
    shed(request, ShedReason::kAdmission);
    return future;
  }
  if (!enqueue(std::move(request))) return std::nullopt;
  return future;
}

bool InferenceEngine::submit_callback(SparseVector features,
                                      std::function<void(Prediction)> callback,
                                      const ServeOptions& options) {
  SLIDE_CHECK(callback != nullptr,
              "InferenceEngine: callback must not be empty");
  ServeRequest request = prepare_request(std::move(features), options);
  request.callback = std::move(callback);
  if (should_shed_at_admission(request)) {
    // The callback path has no future to carry ShedError: the callback is
    // simply never invoked, the shed is counted, and false tells the
    // caller the request will not be served.
    shed(request, ShedReason::kAdmission);
    return false;
  }
  return enqueue(std::move(request));
}

// Deprecated positional shims — forward to the ServeOptions form. Their own
// definitions may reference the deprecated declarations without warning.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
std::optional<std::future<Prediction>> InferenceEngine::submit(
    SparseVector features, int top_k, std::optional<bool> exact,
    int page_offset) {
  ServeOptions options;
  options.top_k = top_k;
  options.exact = exact;
  options.page_offset = page_offset;
  return submit(std::move(features), options);
}

bool InferenceEngine::submit_callback(SparseVector features,
                                      std::function<void(Prediction)> callback,
                                      int top_k, std::optional<bool> exact,
                                      int page_offset) {
  ServeOptions options;
  options.top_k = top_k;
  options.exact = exact;
  options.page_offset = page_offset;
  return submit_callback(std::move(features), std::move(callback), options);
}
#pragma GCC diagnostic pop

void InferenceEngine::pause() { queue_.set_paused(true); }

void InferenceEngine::resume() { queue_.set_paused(false); }

void InferenceEngine::stop() {
  if (stopped_.exchange(true)) return;
  queue_.close();        // admission off; queued items still drain
  queue_.set_paused(false);
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void InferenceEngine::worker_main(int worker_id) {
  std::vector<ServeRequest> batch;
  batch.reserve(static_cast<std::size_t>(config_.max_batch));
  ServeRequest request;
  while (queue_.pop(request)) {
    // Pop-time shedding: a deadline that expired while the request sat in
    // the queue means serving it now is pure waste — the client has given
    // up. Shed and take the next one.
    if (request.expired(std::chrono::steady_clock::now())) {
      shed(request, ShedReason::kDeadlineExpired);
      continue;
    }
    batch.clear();
    batch.push_back(std::move(request));
    // Window closes at max_batch requests or max_wait_us after the oldest
    // enqueue — an already-late first request drains only what is
    // immediately available (deadline in the past).
    const auto deadline =
        batch.front().enqueue_time + std::chrono::microseconds(config_.max_wait_us);
    while (static_cast<int>(batch.size()) < config_.max_batch) {
      ServeRequest next;
      if (!queue_.pop_until(next, deadline)) break;
      if (next.expired(std::chrono::steady_clock::now())) {
        shed(next, ShedReason::kDeadlineExpired);
        continue;
      }
      batch.push_back(std::move(next));
    }
    serve_batch(batch, worker_id);
  }
}

void InferenceEngine::update_service_ewma(double per_request_us) noexcept {
  const double alpha = config_.service_ewma_alpha;
  double prev = ewma_service_us_.load(std::memory_order_relaxed);
  double next;
  do {
    next = prev == 0.0 ? per_request_us
                       : (1.0 - alpha) * prev + alpha * per_request_us;
  } while (!ewma_service_us_.compare_exchange_weak(prev, next,
                                                   std::memory_order_relaxed));
}

void InferenceEngine::serve_batch(std::vector<ServeRequest>& batch,
                                  int worker_id) {
  WorkerState& state = worker_state_[static_cast<std::size_t>(worker_id)];
  // One snapshot reference for the whole batch: a concurrent publish
  // never mixes two models inside a batch, and the old model stays alive
  // until the last in-flight batch releases it (RCU grace period).
  std::shared_ptr<const ModelSnapshot> snap = store_->current();
  if (state.snapshot == nullptr || state.snapshot->version != snap->version) {
    if (state.snapshot != nullptr)
      swaps_observed_.fetch_add(1, std::memory_order_relaxed);
    state.snapshot = snap;
    // The BatchOutput's context scratch is sized by the snapshot's
    // architecture; predict_batch rebuilds it automatically when the
    // max-units signature changes. The pagination context is ours to
    // re-target (reset keeps the worker's RNG stream).
    state.page_ctx.reset(*snap->network);
  }
  // Batch composition is final here; count it before fulfilling any
  // promise so stats() read after a future resolves always sees the batch.
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(batch.size(), std::memory_order_relaxed);
  const Network& network = *snap->network;
  const std::size_t n = batch.size();
  const auto service_start = std::chrono::steady_clock::now();

  // A failure on one request must not take down the worker (an uncaught
  // exception in a std::thread is std::terminate — the whole server):
  // route it into the request's future and keep draining.
  auto fulfill = [&](ServeRequest& r, std::span<const Index> labels) {
    try {
      Prediction result;
      result.snapshot_version = snap->version;
      result.labels.assign(labels.begin(), labels.end());
      const auto done = std::chrono::steady_clock::now();
      result.latency_us = std::chrono::duration<double, std::micro>(
                              done - r.enqueue_time)
                              .count();
      latency_.record(result.latency_us);
      const int lane = lane_index(r.priority);
      lane_latency_[lane].record(result.latency_us);
      // Served, but late: the admission estimate under-shot. Counted so
      // operators can see the SLO leak the shedding did not catch.
      if (r.has_deadline() && done > r.deadline)
        lane_counters_[lane].deadline_misses.fetch_add(
            1, std::memory_order_relaxed);
      if (r.callback) {
        r.callback(std::move(result));
        completed_.fetch_add(1, std::memory_order_relaxed);
        lane_counters_[lane].completed.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Counted before set_value so stats() observed after the future
        // resolves always includes this request; set_value runs no user
        // code, so it cannot fail past this point.
        completed_.fetch_add(1, std::memory_order_relaxed);
        lane_counters_[lane].completed.fetch_add(1, std::memory_order_relaxed);
        r.promise.set_value(std::move(result));
      }
    } catch (...) {
      fail(r, std::current_exception());
    }
  };

  // Requests already failed (validation) or served drop out of dispatch.
  state.served.assign(n, 0);

  // Admission validated against the then-current snapshot; a hot-swap to a
  // narrower model may have happened since, so re-check against the
  // snapshot actually serving this batch.
  for (std::size_t i = 0; i < n; ++i) {
    try {
      SLIDE_CHECK(batch[i].features.min_dim() <= snap->input_dim,
                  "InferenceEngine: feature index out of range for the "
                  "snapshot serving this request");
    } catch (...) {
      fail(batch[i], std::current_exception());
      state.served[i] = 1;
    }
  }

  // Dispatch the micro-batch whole: group requests that share
  // (top_k, exact, page_offset) — those parameters shape the answer — and
  // run each group through Network::predict_batch in one call. Paged
  // groups (offset > 0) have no batch entry point; they run per-row
  // through predict_topk_page on the worker's own context.
  for (std::size_t i = 0; i < n; ++i) {
    if (state.served[i]) continue;
    const int top_k = batch[i].top_k;
    const bool exact = batch[i].exact;
    const int page_offset = batch[i].page_offset;
    state.group_features.clear();
    state.group_members.clear();
    for (std::size_t j = i; j < n; ++j) {
      if (state.served[j] || batch[j].top_k != top_k ||
          batch[j].exact != exact || batch[j].page_offset != page_offset)
        continue;
      state.group_features.push_back(&batch[j].features);
      state.group_members.push_back(j);
      state.served[j] = 1;
    }
    if (page_offset > 0) {
      for (std::size_t member : state.group_members) {
        try {
          network.predict_topk_page(batch[member].features, state.page_ctx,
                                    top_k, page_offset, exact,
                                    state.page_out);
          fulfill(batch[member], state.page_out);
        } catch (...) {
          fail(batch[member], std::current_exception());
        }
      }
      continue;
    }
    try {
      network.predict_batch(
          std::span<const SparseVector* const>(state.group_features),
          state.out, /*pool=*/nullptr, top_k, exact);
      for (std::size_t g = 0; g < state.group_members.size(); ++g)
        fulfill(batch[state.group_members[g]], state.out.row(g));
    } catch (...) {
      // The whole group failed before any row was produced.
      for (std::size_t member : state.group_members)
        fail(batch[member], std::current_exception());
    }
  }

  // Feed admission control: per-request service time of this batch folds
  // into the EWMA behind should_shed_at_admission's queue-wait estimate.
  const double elapsed_us = std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() -
                                service_start)
                                .count();
  update_service_ewma(elapsed_us / static_cast<double>(n));
}

void InferenceEngine::enable_online_updates(std::shared_ptr<Network> master,
                                            const OnlineUpdateConfig& config) {
  SLIDE_CHECK(master != nullptr,
              "enable_online_updates: master must not be null");
  SLIDE_CHECK(config.learning_rate > 0.0f,
              "enable_online_updates: learning_rate must be positive");
  SLIDE_CHECK(config.publish_every > 0,
              "enable_online_updates: publish_every must be positive");
  std::lock_guard<std::mutex> lock(online_mutex_);
  SLIDE_CHECK(online_master_ == nullptr,
              "enable_online_updates: already enabled");
  online_config_ = config;
  online_rng_ = Rng(config.seed);
  online_visited_ =
      std::make_unique<VisitedSet>(std::max<Index>(master->max_sampled_units(), 1));
  online_master_ = std::move(master);
  online_enabled_.store(true, std::memory_order_release);
}

std::uint64_t InferenceEngine::publish_master_locked() {
  const Network& master = *online_master_;
  const Precision precision =
      online_config_.publish_precision.value_or(master.precision());
  std::uint64_t version;
  if (online_config_.publish_shards >= 0) {
    version = publish_clone_sharded(*store_, master,
                                    online_config_.publish_shards,
                                    online_config_.rebuild_threads,
                                    "online-update");
  } else {
    version = publish_clone(*store_, master, precision,
                            online_config_.rebuild_threads, "online-update");
  }
  online_publishes_.fetch_add(1, std::memory_order_relaxed);
  // The clone is BUILT at the master's grown width (publish_clone constructs
  // from the live config), so its own appended_units() reads 0; record the
  // master's count here so stats() can report the published label-space
  // delta without touching the master off-lock.
  published_appended_.store(
      master.stack(master.stack_depth() - 1).appended_units(),
      std::memory_order_release);
  return version;
}

std::uint64_t InferenceEngine::update(const OnlineDelta& delta) {
  std::lock_guard<std::mutex> lock(online_mutex_);
  SLIDE_CHECK(online_master_ != nullptr,
              "InferenceEngine::update: call enable_online_updates first");
  Network& master = *online_master_;

  // Grow, then retire, then train: samples may label units this very delta
  // appended, and retired units must stop being sampled as negatives.
  if (delta.add_units > 0) {
    master.add_output_units(delta.add_units);
    labels_added_.fetch_add(static_cast<std::uint64_t>(delta.add_units),
                            std::memory_order_relaxed);
    // Growth widens the sampled universe; the VisitedSet is capacity-fixed.
    if (online_visited_->capacity() < master.max_sampled_units())
      online_visited_ =
          std::make_unique<VisitedSet>(master.max_sampled_units());
  }
  if (!delta.retire.empty()) {
    master.retire_output_units(delta.retire);
    labels_retired_.fetch_add(
        static_cast<std::uint64_t>(delta.retire.size()),
        std::memory_order_relaxed);
  }

  // Train against the fp32 masters in max_batch_size chunks (the gradient
  // accumulators are sized per slot). Single-threaded on purpose: update()
  // rides the control plane, not the serving data plane.
  const int max_batch = master.max_batch_size();
  std::size_t done = 0;
  while (done < delta.samples.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(delta.samples.size() - done,
                              static_cast<std::size_t>(max_batch));
    const float inv_batch = 1.0f / static_cast<float>(chunk);
    for (std::size_t s = 0; s < chunk; ++s) {
      master.train_sample(static_cast<int>(s), delta.samples[done + s],
                          inv_batch, online_rng_, *online_visited_,
                          /*tid=*/0);
    }
    master.apply_updates(online_config_.learning_rate, /*pool=*/nullptr);
    master.maybe_rebuild(++online_iteration_, /*pool=*/nullptr);
    done += chunk;
  }

  const std::uint64_t calls =
      online_updates_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (calls % online_config_.publish_every == 0) {
    // Settle any queued dirty-delta maintenance so the published clone
    // checkpoints tables that reflect every trained weight.
    master.flush_maintenance();
    return publish_master_locked();
  }
  return store_->version();
}

std::uint64_t InferenceEngine::publish_now() {
  std::lock_guard<std::mutex> lock(online_mutex_);
  SLIDE_CHECK(online_master_ != nullptr,
              "InferenceEngine::publish_now: call enable_online_updates "
              "first");
  online_master_->flush_maintenance();
  return publish_master_locked();
}

void InferenceEngine::fail(ServeRequest& request,
                           std::exception_ptr error) noexcept {
  errors_.fetch_add(1, std::memory_order_relaxed);
  if (!request.callback) {
    try {
      request.promise.set_exception(std::move(error));
    } catch (const std::future_error&) {
      // set_value already succeeded: the exception came from the
      // callback-free tail (nothing left to report) — counted above.
    }
  }
}

ServeStats InferenceEngine::stats() const {
  ServeStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  const std::uint64_t batched =
      batched_requests_.load(std::memory_order_relaxed);
  s.mean_batch_size =
      s.batches == 0 ? 0.0
                     : static_cast<double>(batched) /
                           static_cast<double>(s.batches);
  s.queue_depth = queue_.depth();
  s.snapshot_version = store_->version();
  s.swaps_observed = swaps_observed_.load(std::memory_order_relaxed);
  s.latency = latency_.summary();
  s.latency_buckets = latency_.snapshot();
  s.ewma_service_us = ewma_service_us_.load(std::memory_order_relaxed);
  for (int lane = 0; lane < kNumLanes; ++lane) {
    ServeStats::LaneStats& ls = s.lanes[lane];
    const LaneCounters& c = lane_counters_[lane];
    ls.queue_depth = queue_.lane_depth(static_cast<Priority>(lane));
    ls.completed = c.completed.load(std::memory_order_relaxed);
    ls.shed_admission = c.shed_admission.load(std::memory_order_relaxed);
    ls.shed_evicted = c.shed_evicted.load(std::memory_order_relaxed);
    ls.shed_expired = c.shed_expired.load(std::memory_order_relaxed);
    ls.deadline_misses = c.deadline_misses.load(std::memory_order_relaxed);
    ls.latency = lane_latency_[lane].summary();
    ls.buckets = lane_latency_[lane].snapshot();
    s.shed_total += ls.shed_admission + ls.shed_evicted + ls.shed_expired;
    s.deadline_misses += ls.deadline_misses;
  }
  s.online_updates = online_enabled_.load(std::memory_order_acquire);
  s.online_update_calls = online_updates_.load(std::memory_order_relaxed);
  s.online_publishes = online_publishes_.load(std::memory_order_relaxed);
  s.labels_added = labels_added_.load(std::memory_order_relaxed);
  s.labels_retired = labels_retired_.load(std::memory_order_relaxed);
  const std::shared_ptr<const ModelSnapshot> snapshot = store_->current();
  if (snapshot != nullptr && snapshot->network != nullptr) {
    const Network& net = *snapshot->network;
    s.memory = net.memory_footprint();
    {
      const Layer& out_layer = net.stack(net.stack_depth() - 1);
      s.snapshot_appended_labels = out_layer.appended_units();
      s.snapshot_retired_labels = out_layer.retired_count();
      // Online-published clones are built at the grown width (their own
      // appended_units() is 0) — the count recorded at publish time wins.
      const Index published =
          published_appended_.load(std::memory_order_acquire);
      if (published > s.snapshot_appended_labels)
        s.snapshot_appended_labels = published;
    }
    long overlap = 0;
    long oracle = 0;
    for (int i = 0; i < net.stack_depth(); ++i) {
      const Layer& layer = net.stack(i);
      const RetrievalStats rs = layer.retrieval_stats();
      if (rs.adaptive) {
        s.adaptive_retrieval = true;
        s.retrieval_escalations += static_cast<std::uint64_t>(rs.escalations);
        overlap += rs.overlap;
        oracle += rs.oracle;
      }
      const auto* d =
          dynamic_cast<const dist::DistributedSampledLayer*>(&layer);
      if (d == nullptr) continue;
      s.distributed = true;
      const dist::WireCounters wc = d->wire_counters();
      s.wire_bytes_sent += wc.bytes_sent;
      s.wire_bytes_received += wc.bytes_received;
      s.unhealthy_shards += d->unhealthy_shards();
    }
    if (oracle > 0)
      s.retrieval_recall =
          static_cast<double>(overlap) / static_cast<double>(oracle);
  }
  return s;
}

void InferenceEngine::print_stats(std::ostream& out) const {
  const ServeStats s = stats();
  MarkdownTable table({"metric", "value"});
  table.add_row({"submitted", fmt_int(static_cast<long long>(s.submitted))});
  table.add_row({"completed", fmt_int(static_cast<long long>(s.completed))});
  table.add_row({"rejected", fmt_int(static_cast<long long>(s.rejected))});
  table.add_row({"shed", fmt_int(static_cast<long long>(s.shed_total))});
  table.add_row({"deadline misses",
                 fmt_int(static_cast<long long>(s.deadline_misses))});
  table.add_row({"errors", fmt_int(static_cast<long long>(s.errors))});
  table.add_row({"queue depth", fmt_int(static_cast<long long>(s.queue_depth))});
  table.add_row({"batches", fmt_int(static_cast<long long>(s.batches))});
  table.add_row({"mean batch", fmt(s.mean_batch_size, 2)});
  table.add_row({"ewma service", fmt_latency_us(s.ewma_service_us)});
  table.add_row({"snapshot version",
                 fmt_int(static_cast<long long>(s.snapshot_version))});
  table.add_row({"swaps observed",
                 fmt_int(static_cast<long long>(s.swaps_observed))});
  table.add_row({"latency p50", fmt_latency_us(s.latency.p50_us)});
  table.add_row({"latency p95", fmt_latency_us(s.latency.p95_us)});
  table.add_row({"latency p99", fmt_latency_us(s.latency.p99_us)});
  table.add_row({"latency mean", fmt_latency_us(s.latency.mean_us)});
  table.add_row({"latency max", fmt_latency_us(s.latency.max_us)});
  for (int lane = 0; lane < kNumLanes; ++lane) {
    const ServeStats::LaneStats& ls = s.lanes[lane];
    const std::uint64_t shed =
        ls.shed_admission + ls.shed_evicted + ls.shed_expired;
    if (ls.completed == 0 && shed == 0 && ls.queue_depth == 0) continue;
    const std::string prefix = std::string("lane ") +
                               to_string(static_cast<Priority>(lane));
    table.add_row({prefix + " completed",
                   fmt_int(static_cast<long long>(ls.completed))});
    table.add_row({prefix + " shed", fmt_int(static_cast<long long>(shed))});
    table.add_row({prefix + " deadline misses",
                   fmt_int(static_cast<long long>(ls.deadline_misses))});
    table.add_row({prefix + " p99", fmt_latency_us(ls.latency.p99_us)});
  }
  if (s.distributed) {
    table.add_row({"wire bytes sent",
                   fmt_int(static_cast<long long>(s.wire_bytes_sent))});
    table.add_row({"wire bytes received",
                   fmt_int(static_cast<long long>(s.wire_bytes_received))});
    table.add_row({"unhealthy shards",
                   fmt_int(static_cast<long long>(s.unhealthy_shards))});
  }
  if (s.adaptive_retrieval) {
    table.add_row(
        {"retrieval escalations",
         fmt_int(static_cast<long long>(s.retrieval_escalations))});
    table.add_row({"retrieval recall", fmt(s.retrieval_recall, 4)});
  }
  if (s.online_updates) {
    table.add_row({"online updates",
                   fmt_int(static_cast<long long>(s.online_update_calls))});
    table.add_row({"online publishes",
                   fmt_int(static_cast<long long>(s.online_publishes))});
    table.add_row({"labels added",
                   fmt_int(static_cast<long long>(s.labels_added))});
    table.add_row({"labels retired",
                   fmt_int(static_cast<long long>(s.labels_retired))});
  }
  if (s.snapshot_appended_labels > 0 || s.snapshot_retired_labels > 0) {
    table.add_row(
        {"snapshot appended labels",
         fmt_int(static_cast<long long>(s.snapshot_appended_labels))});
    table.add_row(
        {"snapshot retired labels",
         fmt_int(static_cast<long long>(s.snapshot_retired_labels))});
  }
  table.print(out);
}

}  // namespace slide
