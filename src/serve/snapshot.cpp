#include "serve/snapshot.h"

#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "core/serialize.h"
#include "sys/thread_pool.h"

namespace slide {

namespace {

std::shared_ptr<ModelSnapshot> make_snapshot(
    std::shared_ptr<const Network> network, std::uint64_t version,
    std::string source) {
  SLIDE_CHECK(network != nullptr, "ModelStore: network must not be null");
  auto snap = std::make_shared<ModelSnapshot>();
  snap->max_units = network->max_sampled_units();
  snap->input_dim = network->input_dim();
  snap->network = std::move(network);
  snap->version = version;
  snap->source = std::move(source);
  return snap;
}

/// Builds + loads + rebuilds a serving-ready network off the serving path.
std::shared_ptr<const Network> network_from_checkpoint(
    const NetworkConfig& config, std::istream& in, int rebuild_threads) {
  if (rebuild_threads <= 0) rebuild_threads = hardware_threads();
  auto network = std::make_shared<Network>(config, rebuild_threads);
  if (rebuild_threads > 1) {
    ThreadPool pool(rebuild_threads);
    load_weights(*network, in, &pool);
  } else {
    load_weights(*network, in, nullptr);
  }
  return network;
}

}  // namespace

ModelStore::ModelStore(std::shared_ptr<const Network> initial,
                       std::string source) {
  current_ = make_snapshot(std::move(initial), next_version_++,
                           std::move(source));
  input_dim_.store(current_->input_dim, std::memory_order_release);
  publish_count_ = 1;
}

std::shared_ptr<ModelStore> ModelStore::from_checkpoint_file(
    const NetworkConfig& config, const std::string& path,
    int rebuild_threads) {
  std::ifstream in(path, std::ios::binary);
  SLIDE_CHECK(in.good(), "ModelStore: cannot open checkpoint " + path);
  return std::make_shared<ModelStore>(
      network_from_checkpoint(config, in, rebuild_threads), path);
}

std::shared_ptr<ModelStore> ModelStore::from_shard_checkpoints(
    NetworkConfig config, const std::string& base,
    const std::string& coordinator_checkpoint) {
  bool any = false;
  for (LayerSpec& spec : config.layers) {
    if (spec.endpoints.empty()) continue;
    spec.shard_checkpoint_base = base;
    any = true;
  }
  SLIDE_CHECK(any,
              "ModelStore::from_shard_checkpoints: no distributed layer in "
              "the config (set LayerSpec::endpoints)");
  // Workers load their own shard files (and rebuild their tables) inside
  // Network construction, via kInitShard's checkpoint_path.
  auto network = std::make_shared<Network>(config, /*max_threads=*/1);
  if (!coordinator_checkpoint.empty())
    load_weights_file(*network, coordinator_checkpoint);
  return std::make_shared<ModelStore>(std::move(network),
                                      base + ".shard*of*");
}

std::shared_ptr<const ModelSnapshot> ModelStore::current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

std::uint64_t ModelStore::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_->version;
}

std::uint64_t ModelStore::publish(std::shared_ptr<const Network> network,
                                  std::string source) {
  // A snapshot promises fully settled tables: if the network was trained
  // with an async MaintenancePolicy, a background rebuild may still be in
  // flight — let it finish (and publish its table swap) before the serving
  // swap, so every worker that resolves this snapshot sees the same final
  // tables. Reader-safety never depended on this (the table double-buffer
  // handles that); snapshot determinism does.
  if (network != nullptr) network->quiesce_maintenance();
  auto snap = make_snapshot(std::move(network), 0, std::move(source));
  std::lock_guard<std::mutex> lock(mutex_);
  snap->version = next_version_++;
  current_ = std::move(snap);
  input_dim_.store(current_->input_dim, std::memory_order_release);
  ++publish_count_;
  return current_->version;
}

std::uint64_t ModelStore::load_checkpoint(const NetworkConfig& config,
                                          std::istream& in,
                                          const std::string& source,
                                          int rebuild_threads) {
  // Build + load + table rebuild all happen here, before publication —
  // serving traffic never sees a partially-initialized network.
  return publish(network_from_checkpoint(config, in, rebuild_threads),
                 source);
}

std::uint64_t ModelStore::load_checkpoint_file(const NetworkConfig& config,
                                               const std::string& path,
                                               int rebuild_threads) {
  std::ifstream in(path, std::ios::binary);
  SLIDE_CHECK(in.good(), "ModelStore: cannot open checkpoint " + path);
  return load_checkpoint(config, in, path, rebuild_threads);
}

std::future<std::uint64_t> ModelStore::load_checkpoint_file_async(
    NetworkConfig config, std::string path, int rebuild_threads) {
  // The task co-owns the store: dropping the caller's last reference while
  // the load is in flight must not free the store under the loader.
  return std::async(std::launch::async,
                    [self = shared_from_this(), config = std::move(config),
                     path = std::move(path), rebuild_threads] {
                      return self->load_checkpoint_file(config, path,
                                                        rebuild_threads);
                    });
}

std::uint64_t ModelStore::publish_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return publish_count_;
}

std::uint64_t publish_clone(ModelStore& store, const Network& trained,
                            int rebuild_threads, const std::string& source) {
  return publish_clone(store, trained, trained.precision(), rebuild_threads,
                       source);
}

std::uint64_t publish_clone(ModelStore& store, const Network& trained,
                            Precision precision, int rebuild_threads,
                            const std::string& source) {
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_weights(trained, buffer);
  buffer.seekg(0);
  // The fresh network re-derives its bf16 mirrors from the fp32 parameter
  // blocks during the load, so the override needs nothing but the config.
  NetworkConfig config = trained.config();
  config.precision = precision;
  return store.load_checkpoint(config, buffer, source, rebuild_threads);
}

std::uint64_t publish_clone_sharded(ModelStore& store, const Network& trained,
                                    int shards, int rebuild_threads,
                                    const std::string& source) {
  SLIDE_CHECK(shards >= 0, "publish_clone_sharded: shards must be >= 0");
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_weights(trained, buffer);
  buffer.seekg(0);
  // Retarget every hashed layer at the requested shard count; the v3
  // checkpoint loader scatters the trainer's blocks into the new partition
  // by global row index, so the served weights are exactly the trainer's
  // regardless of either side's sharding.
  NetworkConfig config = trained.config();
  for (LayerSpec& spec : config.layers) {
    if (spec.hashed) spec.shards = shards;
  }
  return store.load_checkpoint(config, buffer, source, rebuild_threads);
}

}  // namespace slide
